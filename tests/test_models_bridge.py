"""Tests for the HW/SW bridge and Esary-Proschan bounds."""

import pytest

from repro.controller.spec import Plane
from repro.core.blocks import Basic, KOfN
from repro.core.bounds import (
    esary_proschan_bounds,
    min_cut_lower_bound,
    min_path_upper_bound,
)
from repro.core.cutsets import minimal_cut_sets, minimal_path_sets
from repro.core.structure import StructureFunction
from repro.errors import ModelError
from repro.models.bridge import (
    abstraction_gap,
    hw_availability_implied,
    implied_role_availability,
    implied_role_quorum,
)


class TestImpliedRoleParameters:
    def test_config_role_alpha(self, spec, software):
        # Config instance: six auto processes required -> A^6.
        config = spec.role("Config")
        implied = implied_role_availability(config, software, Plane.CP)
        assert implied == pytest.approx(software.a_process**6)

    def test_database_role_alpha(self, spec, software):
        # Database instance: four manual processes -> A_S^4.
        database = spec.role("Database")
        implied = implied_role_availability(database, software, Plane.CP)
        assert implied == pytest.approx(software.a_unsupervised**4)

    def test_quorums_match_paper_abstraction(self, spec):
        assert implied_role_quorum(spec.role("Config"), Plane.CP) == 1
        assert implied_role_quorum(spec.role("Database"), Plane.CP) == 2
        assert implied_role_quorum(spec.role("Analytics"), Plane.DP) == 0

    def test_implied_alpha_near_paper_ac(self, spec, software):
        # The implied role availabilities straddle the paper's ballpark
        # A_C = 0.9995: Config/Analytics ~0.9999, Database ~0.9992.
        values = [
            implied_role_availability(spec.role(name), software, Plane.CP)
            for name in ("Config", "Control", "Analytics", "Database")
        ]
        assert min(values) > 0.999
        assert max(values) < 1.0


class TestAbstractionGap:
    @pytest.mark.parametrize("name", ["small", "large"])
    def test_implied_hw_is_lower_bound(
        self, spec, hardware, software, name, request
    ):
        topology = request.getfixturevalue(name)
        implied, sw = abstraction_gap(
            spec, topology, name, hardware, software
        )
        assert implied <= sw + 1e-12

    def test_gap_small_at_paper_parameters(
        self, spec, small, hardware, software
    ):
        implied, sw = abstraction_gap(
            spec, small, "small", hardware, software
        )
        # The atomic-role abstraction overstates unavailability by ~13% at
        # the paper's parameters: a whole Database instance fails when ANY
        # of its four processes fails (4 q_S per instance), so the 2-of-3
        # pair term is 3(4 q_S)^2 = 16x the SW model's 4 x 3 q_S^2.
        assert implied < sw
        assert (1 - implied) / (1 - sw) == pytest.approx(1.13, abs=0.03)

    def test_dp_plane_supported(self, spec, small, hardware, software):
        value = hw_availability_implied(
            spec, small, hardware, software, Plane.DP
        )
        assert 0.999 < value <= 1.0


class TestEsaryProschan:
    def two_of_three(self, p=0.99):
        block = KOfN(2, tuple(Basic(x, p) for x in "abc"))
        structure = StructureFunction.from_block(block)
        return (
            block,
            minimal_cut_sets(structure),
            minimal_path_sets(structure),
            {x: p for x in "abc"},
        )

    def test_bounds_bracket_exact(self):
        block, cuts, paths, availability = self.two_of_three()
        lower, upper = esary_proschan_bounds(cuts, paths, availability)
        exact = block.availability()
        assert lower <= exact <= upper

    def test_lower_bound_tight_in_ha_regime(self):
        block, cuts, paths, availability = self.two_of_three(p=0.9999)
        lower = min_cut_lower_bound(cuts, availability)
        exact = block.availability()
        assert (1 - lower) == pytest.approx(1 - exact, rel=1e-3)

    def test_series_bounds_exact(self):
        # For a pure series system both bounds are exact.
        block = Basic("a", 0.9) & Basic("b", 0.8)
        structure = StructureFunction.from_block(block)
        cuts = minimal_cut_sets(structure)
        paths = minimal_path_sets(structure)
        availability = {"a": 0.9, "b": 0.8}
        lower, upper = esary_proschan_bounds(cuts, paths, availability)
        assert lower == pytest.approx(block.availability())
        assert upper == pytest.approx(block.availability())

    def test_parallel_bounds_exact(self):
        block = Basic("a", 0.6) | Basic("b", 0.7)
        structure = StructureFunction.from_block(block)
        lower, upper = esary_proschan_bounds(
            minimal_cut_sets(structure),
            minimal_path_sets(structure),
            {"a": 0.6, "b": 0.7},
        )
        assert lower == pytest.approx(block.availability())
        assert upper == pytest.approx(block.availability())

    def test_empty_inputs_rejected(self):
        with pytest.raises(ModelError):
            min_cut_lower_bound([], {})
        with pytest.raises(ModelError):
            min_path_upper_bound([], {})
