"""Rolling-window SLO math (:mod:`repro.obs.slo`) against hand-computed windows.

Burn rate, error budget, bucket retirement, and the gauge flattening the
serving layer exports — all driven with an injectable fake clock so every
expected number is computable by hand.
"""

from __future__ import annotations

import pytest

from repro.errors import ParameterError
from repro.obs.slo import (
    DEFAULT_BUCKETS,
    DEFAULT_WINDOW_SECONDS,
    SLOConfig,
    SLOTracker,
)


class Clock:
    """A fake monotonic clock the tests advance by hand."""

    def __init__(self, now: float = 0.0):
        self.now = now

    def __call__(self) -> float:
        return self.now


def tracker(clock: Clock, **overrides) -> SLOTracker:
    defaults = dict(
        window_seconds=60.0,
        buckets=6,
        availability_target=0.9,
        latency_target_seconds=0.25,
        latency_quantile_target=0.99,
    )
    defaults.update(overrides)
    return SLOTracker(SLOConfig(**defaults), clock=clock)


class TestConfigValidation:
    def test_defaults_are_the_documented_window(self):
        config = SLOConfig()
        assert config.window_seconds == DEFAULT_WINDOW_SECONDS
        assert config.buckets == DEFAULT_BUCKETS
        assert config.availability_target == 0.999

    @pytest.mark.parametrize(
        "overrides",
        [
            {"window_seconds": 0.0},
            {"window_seconds": -1.0},
            {"buckets": 0},
            {"availability_target": 0.0},
            {"availability_target": 1.0},
            {"latency_quantile_target": 1.5},
            {"latency_target_seconds": 0.0},
        ],
    )
    def test_invalid_values_raise(self, overrides):
        with pytest.raises(ParameterError):
            SLOConfig(**overrides)


class TestBurnRateMath:
    def test_empty_window_is_compliant_with_full_budget(self):
        snapshot = tracker(Clock()).snapshot()
        for objective in ("availability", "latency"):
            record = snapshot[objective]
            assert record["ratio"] == 1.0
            assert record["burn_rate"] == 0.0
            assert record["budget_remaining"] == 1.0
            assert record["compliant"]

    def test_burn_rate_one_consumes_budget_exactly(self):
        # Target 0.9 -> budget 0.1.  18 good + 2 bad = bad fraction 0.1:
        # burning the budget exactly as fast as it accrues.
        slo = tracker(Clock())
        for _ in range(18):
            slo.record(True, 0.0)
        for _ in range(2):
            slo.record(False, 0.0)
        availability = slo.snapshot()["availability"]
        assert availability["good"] == 18
        assert availability["bad"] == 2
        assert availability["ratio"] == pytest.approx(0.9)
        assert availability["burn_rate"] == pytest.approx(1.0)
        assert availability["budget_remaining"] == pytest.approx(0.0)
        assert availability["compliant"]  # ratio == target, on the line

    def test_burn_rate_two_overdraws_the_budget(self):
        # 16 good + 4 bad = bad fraction 0.2 against budget 0.1.
        slo = tracker(Clock())
        for _ in range(16):
            slo.record(True, 0.0)
        for _ in range(4):
            slo.record(False, 0.0)
        availability = slo.snapshot()["availability"]
        assert availability["ratio"] == pytest.approx(0.8)
        assert availability["burn_rate"] == pytest.approx(2.0)
        assert availability["budget_remaining"] == pytest.approx(-1.0)
        assert not availability["compliant"]
        assert not slo.compliance()["availability"]

    def test_latency_objective_judges_against_target_seconds(self):
        # Quantile target 0.99 -> budget 0.01.  98 fast + 2 slow = bad
        # fraction 0.02: burn rate 2, out of compliance.
        slo = tracker(Clock())
        for _ in range(98):
            slo.record(True, 0.1)  # within the 250 ms target
        for _ in range(2):
            slo.record(True, 0.9)  # slow but successful
        snapshot = slo.snapshot()
        assert snapshot["availability"]["compliant"]  # all responses were 2xx
        latency = snapshot["latency"]
        assert latency["ratio"] == pytest.approx(0.98)
        assert latency["burn_rate"] == pytest.approx(2.0)
        assert not latency["compliant"]
        assert latency["target_seconds"] == 0.25

    def test_availability_and_latency_are_independent(self):
        slo = tracker(Clock())
        slo.record(False, 0.01)  # fast failure: bad availability, good latency
        snapshot = slo.snapshot()
        assert snapshot["availability"]["bad"] == 1
        assert snapshot["latency"]["bad"] == 0
        assert snapshot["recorded"] == 1


class TestWindowRetirement:
    """window=60s over 6 buckets -> 10 s resolution, oldest retires whole."""

    def test_events_inside_the_window_are_retained(self):
        clock = Clock(5.0)
        slo = tracker(clock)
        slo.record(False, 0.0)  # lands in bucket [0, 10)
        clock.now = 59.0  # five bucket boundaries later, still in-window
        availability = slo.snapshot()["availability"]
        assert availability["bad"] == 1

    def test_events_past_the_window_retire(self):
        clock = Clock(5.0)
        slo = tracker(clock)
        slo.record(False, 0.0)
        clock.now = 64.0  # the ring has fully rotated past bucket [0, 10)
        availability = slo.snapshot()["availability"]
        assert availability["bad"] == 0
        assert availability["compliant"]  # an empty window is compliant
        assert slo.recorded == 1  # the lifetime count is not windowed

    def test_rolling_mix_keeps_only_recent_buckets(self):
        clock = Clock(0.0)
        slo = tracker(clock)
        for second in range(12):  # one bad every 10 s: t=0..110
            clock.now = second * 10.0
            slo.record(False, 0.0)
        # At t=110 the window [50, 110] holds buckets 5..11 minus the
        # retired head: 6 live buckets of one bad each.
        availability = slo.snapshot()["availability"]
        assert availability["bad"] == 6

    def test_long_idle_gap_clears_everything(self):
        clock = Clock(0.0)
        slo = tracker(clock)
        for _ in range(50):
            slo.record(False, 9.9)
        clock.now = 100_000.0
        snapshot = slo.snapshot()
        assert snapshot["availability"]["bad"] == 0
        assert snapshot["latency"]["bad"] == 0


class TestGauges:
    def test_gauges_flatten_both_objectives(self):
        slo = tracker(Clock())
        for _ in range(16):
            slo.record(True, 0.0)
        for _ in range(4):
            slo.record(False, 0.0)
        gauges = slo.gauges()
        assert gauges["serve.slo.availability.ratio"] == pytest.approx(0.8)
        assert gauges["serve.slo.availability.burn_rate"] == pytest.approx(2.0)
        assert gauges["serve.slo.availability.compliant"] == 0.0
        assert gauges["serve.slo.latency.compliant"] == 1.0
        assert gauges["serve.slo.latency.budget_remaining"] == 1.0

    def test_gauge_prefix_is_configurable(self):
        gauges = tracker(Clock()).gauges(prefix="svc")
        assert "svc.availability.ratio" in gauges
