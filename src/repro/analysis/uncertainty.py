"""Parameter-uncertainty propagation.

The paper is explicit that its inputs are "ballpark parameters" and that
"the resulting relative comparisons and observations remain the same
regardless of the actual values used".  This module tests that assertion
quantitatively:

* :func:`sample_hardware` — draw hardware parameters with each
  *unavailability* scaled log-uniformly within ±``spread_orders`` orders
  of magnitude (the natural uncertainty model for failure data, per the
  paper's own ±1-order sweeps);
* :func:`monte_carlo` — the distribution of any availability model output
  under that input uncertainty;
* :func:`ordering_confidence` — the probability that a claimed ordering
  (e.g. Medium ≤ Small ≤ Large) holds across the uncertainty range;
* :func:`corner_bounds` — guaranteed bounds from monotonicity: every model
  here is non-decreasing in each input availability, so the extremes occur
  at the all-worst / all-best corners.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Mapping, Sequence

import numpy as np

from repro.errors import ParameterError
from repro.params.hardware import HardwareParams
from repro.units import check_positive

HARDWARE_FIELDS = ("a_role", "a_vm", "a_host", "a_rack")


@dataclass(frozen=True)
class UncertaintyResult:
    """Samples of a model output under input uncertainty."""

    samples: tuple[float, ...]

    @property
    def mean(self) -> float:
        return float(np.mean(self.samples))

    def percentile(self, p: float) -> float:
        if not 0.0 <= p <= 100.0:
            raise ParameterError(f"percentile must be in [0, 100], got {p}")
        return float(np.percentile(self.samples, p))

    @property
    def p5(self) -> float:
        return self.percentile(5.0)

    @property
    def p95(self) -> float:
        return self.percentile(95.0)


def _scale(availability: float, orders: float) -> float:
    scaled_downtime = (1.0 - availability) * 10.0**orders
    return max(0.0, 1.0 - scaled_downtime)


def sample_hardware(
    base: HardwareParams,
    spread_orders: float,
    rng: np.random.Generator,
) -> HardwareParams:
    """One draw: each parameter's downtime scaled by 10^U(-s, +s)."""
    check_positive(spread_orders, "spread_orders")
    draws = {
        field: _scale(
            getattr(base, field),
            float(rng.uniform(-spread_orders, spread_orders)),
        )
        for field in HARDWARE_FIELDS
    }
    return replace(base, **draws)


def monte_carlo(
    model: Callable[[HardwareParams], float],
    base: HardwareParams,
    spread_orders: float = 0.5,
    samples: int = 500,
    seed: int = 0,
    workers: int | None = None,
) -> UncertaintyResult:
    """Distribution of ``model`` under log-uniform downtime uncertainty.

    With ``workers=None`` (the default) samples are drawn sequentially from
    one generator — the original, seed-compatible path.  Passing an integer
    ``workers`` routes through :func:`repro.perf.parallel.monte_carlo_parallel`
    instead: chunked ``SeedSequence.spawn`` seed derivation (bit-identical
    for any worker count, but a different stream than this path) with
    vectorized chunk evaluation for the registered closed-form models.
    """
    if samples < 1:
        raise ParameterError(f"samples must be >= 1, got {samples}")
    if workers is not None:
        from repro.perf.parallel import monte_carlo_parallel

        return monte_carlo_parallel(
            model,
            base,
            spread_orders=spread_orders,
            samples=samples,
            seed=seed,
            workers=workers,
        )
    rng = np.random.default_rng(seed)
    values = tuple(
        model(sample_hardware(base, spread_orders, rng))
        for _ in range(samples)
    )
    return UncertaintyResult(values)


def ordering_confidence(
    models: Mapping[str, Callable[[HardwareParams], float]],
    ordering: Sequence[str],
    base: HardwareParams,
    spread_orders: float = 0.5,
    samples: int = 500,
    seed: int = 0,
) -> float:
    """P(model[ordering[0]] <= model[ordering[1]] <= ...) under uncertainty.

    All models in a sample see the *same* parameter draw — the paper's
    comparisons are always like-for-like.
    """
    if len(ordering) < 2:
        raise ParameterError("an ordering needs at least two entries")
    for name in ordering:
        if name not in models:
            raise ParameterError(f"no model named {name!r}")
    rng = np.random.default_rng(seed)
    hits = 0
    for _ in range(samples):
        params = sample_hardware(base, spread_orders, rng)
        values = [models[name](params) for name in ordering]
        if all(a <= b + 1e-15 for a, b in zip(values, values[1:])):
            hits += 1
    return hits / samples


def corner_bounds(
    model: Callable[[HardwareParams], float],
    base: HardwareParams,
    spread_orders: float = 0.5,
) -> tuple[float, float]:
    """Guaranteed (lo, hi) availability bounds from monotonicity.

    Valid for any model non-decreasing in each input availability — all of
    the paper's models are coherent, hence monotone.
    """
    check_positive(spread_orders, "spread_orders")
    worst = replace(
        base,
        **{f: _scale(getattr(base, f), spread_orders) for f in HARDWARE_FIELDS},
    )
    best = replace(
        base,
        **{
            f: _scale(getattr(base, f), -spread_orders)
            for f in HARDWARE_FIELDS
        },
    )
    return model(worst), model(best)
