"""Modeling a different SDN controller — the framework-extensibility claim.

The paper: "other implementations can be analyzed simply by populating
these two tables appropriately."  This example builds a RAFT-based
single-role controller from scratch (never seen by the library), derives
its Tables II/III automatically, and compares it with OpenContrail on the
same hardware.

Run with::

    python examples/custom_controller.py
"""

from repro import (
    PAPER_HARDWARE,
    PAPER_SOFTWARE,
    ControllerSpec,
    ProcessSpec,
    RestartMode,
    RoleKind,
    RoleSpec,
    evaluate_option,
    opencontrail_3x,
)
from repro.controller.process import nodemgr, supervisor
from repro.controller.tables import render_table2, render_table3


def raft_controller(cluster_size: int = 3) -> ControllerSpec:
    """A compact RAFT-replicated controller: one role, embedded store.

    Design choices that differ from OpenContrail:
    * a single homogeneous role (no Config/Control/Analytics split);
    * the consensus store is auto-restarted (systemd-style supervision);
    * DNS is delegated to the fabric, so the DP block is just the flow
      pusher (alpha = A rather than OpenContrail's A^3 block).
    """
    majority = cluster_size // 2 + 1
    controller = RoleSpec(
        "Controller",
        (
            ProcessSpec("api-server", RestartMode.AUTO, cp_quorum=1),
            ProcessSpec(
                "flow-pusher", RestartMode.AUTO, cp_quorum=1, dp_quorum=1
            ),
            ProcessSpec(
                "raft-store", RestartMode.AUTO, cp_quorum=majority
            ),
            ProcessSpec("telemetry", RestartMode.AUTO, cp_quorum=1),
            supervisor(),
            nodemgr(),
        ),
    )
    agent = RoleSpec(
        "Agent",
        (
            ProcessSpec("datapath-agent", RestartMode.AUTO, dp_quorum=1),
            supervisor(),
        ),
        kind=RoleKind.HOST,
    )
    return ControllerSpec(
        "RAFT controller", (controller, agent), cluster_size=cluster_size
    )


def main() -> None:
    raft = raft_controller()
    contrail = opencontrail_3x()

    print("Derived encapsulation tables for the custom controller:\n")
    print(render_table2(raft), end="\n\n")
    print(render_table3(raft), end="\n\n")

    print("Side-by-side on identical hardware and process parameters:\n")
    print(f"{'option':8} {'controller':22} {'A_CP':>11} {'CP m/y':>8} "
          f"{'A_DP':>10} {'DP m/y':>8}")
    for option in ("1S", "2S", "1L", "2L"):
        for spec in (contrail, raft):
            result = evaluate_option(
                spec, option, PAPER_HARDWARE, PAPER_SOFTWARE
            )
            print(
                f"{option:8} {spec.name:22} {result.cp:>11.7f} "
                f"{result.cp_downtime_minutes:>8.2f} {result.dp:>10.6f} "
                f"{result.dp_downtime_minutes:>8.1f}"
            )
    print()
    print(
        "The RAFT design wins on the control plane (fewer critical-path\n"
        "processes, auto-restarted store) and on the data plane (a single\n"
        "per-host agent instead of OpenContrail's two vRouter processes);\n"
        "the weak link in both designs remains host-local software."
    )


if __name__ == "__main__":
    main()
