"""Property-based tests for the Markov and simulation substrates."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.markov.birth_death import birth_death_steady_state
from repro.markov.kofn_markov import (
    kofn_availability_markov,
    kofn_availability_rbd,
)
from repro.sim.events import Event, EventQueue
from repro.sim.measures import BinarySignal

rates = st.floats(min_value=1e-3, max_value=10.0, allow_nan=False)


class TestMarkovProperties:
    @given(
        m=st.integers(min_value=1, max_value=4),
        n=st.integers(min_value=1, max_value=5),
        lam=rates,
        mu=rates,
    )
    @settings(max_examples=60, deadline=None)
    def test_independent_repair_equals_eq1(self, m, n, lam, mu):
        # The central cross-validation, over the whole parameter space.
        markov = kofn_availability_markov(m, n, lam, mu)
        rbd = kofn_availability_rbd(m, n, lam, mu)
        assert markov == pytest.approx(rbd, rel=1e-8, abs=1e-12)

    @given(
        m=st.integers(min_value=1, max_value=4),
        n=st.integers(min_value=1, max_value=5),
        lam=rates,
        mu=rates,
    )
    @settings(max_examples=40, deadline=None)
    def test_shared_repair_never_better(self, m, n, lam, mu):
        if m > n:
            return
        shared = kofn_availability_markov(m, n, lam, mu, shared_repair=True)
        independent = kofn_availability_markov(m, n, lam, mu)
        assert shared <= independent + 1e-9

    @given(
        ups=st.lists(rates, min_size=1, max_size=5),
        downs=st.lists(rates, min_size=1, max_size=5),
    )
    @settings(max_examples=40)
    def test_birth_death_normalizes(self, ups, downs):
        size = min(len(ups), len(downs))
        pi = birth_death_steady_state(ups[:size], downs[:size])
        assert pi.sum() == pytest.approx(1.0)
        assert (pi >= 0).all()


class TestSignalProperties:
    @given(
        updates=st.lists(
            st.tuples(
                st.floats(min_value=0.01, max_value=10.0, allow_nan=False),
                st.booleans(),
            ),
            min_size=1,
            max_size=30,
        ),
        initial=st.booleans(),
    )
    def test_availability_equals_manual_integration(self, updates, initial):
        signal = BinarySignal("s", initial)
        time = 0.0
        up_time = 0.0
        state = initial
        for delta, new_state in updates:
            if state:
                up_time += delta
            time += delta
            signal.update(time, new_state)
            state = new_state
        if time > 0:
            assert signal.availability() == pytest.approx(
                up_time / time, abs=1e-9
            )

    @given(
        times=st.lists(
            st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
            min_size=1,
            max_size=30,
        )
    )
    def test_event_queue_pops_sorted(self, times):
        queue = EventQueue()
        for t in times:
            queue.schedule(Event(t, lambda: None))
        popped = [queue.pop().time for _ in times]
        assert popped == sorted(popped)
