"""Control-network availability: graphs, cut sets, placement, campaigns.

The paper analyzes the controller cluster in isolation; this package adds
the switch-to-controller *network* around it (motivated by Nencioni et
al., PAPERS.md): immutable availability-annotated graphs
(:mod:`repro.network.graph`), per-switch control-path cut sets and exact
evaluation (:mod:`repro.network.paths`), batched (switch, site-set)
sweeps over one SDP compile (:mod:`repro.network.batch`),
controller-placement search (:mod:`repro.network.placement`), and
Monte-Carlo network campaigns with correlated-failure hazards
(:mod:`repro.network.campaign`).  See ``docs/NETWORK.md`` for the model
and conventions.
"""

from repro.network.batch import (
    PairSweepPlan,
    PairSweepResult,
    compile_pair_sweep,
    sweep_site_sets,
)
from repro.network.campaign import (
    NetworkCampaignResult,
    NetworkCampaignSpec,
    NetworkRunResult,
    analytic_per_switch,
    build_network_simulator,
    run_network_campaign,
)
from repro.network.graph import (
    NODE_KINDS,
    NetworkGraph,
    NetworkLink,
    NetworkNode,
    SharedRiskGroup,
)
from repro.network.paths import (
    ControlPathAnalysis,
    analyze_switch,
    control_path_cut_sets,
    control_path_structure,
    exact_control_path_unavailability,
    fleet_availability,
    path_set_lower_bound,
    per_switch_availability,
)
from repro.network.placement import (
    PlacementResult,
    optimize_placement,
    placement_value,
)

__all__ = [
    "NODE_KINDS",
    "NetworkNode",
    "NetworkLink",
    "SharedRiskGroup",
    "NetworkGraph",
    "ControlPathAnalysis",
    "control_path_structure",
    "control_path_cut_sets",
    "path_set_lower_bound",
    "exact_control_path_unavailability",
    "analyze_switch",
    "per_switch_availability",
    "fleet_availability",
    "PairSweepPlan",
    "PairSweepResult",
    "compile_pair_sweep",
    "sweep_site_sets",
    "PlacementResult",
    "placement_value",
    "optimize_placement",
    "NetworkCampaignSpec",
    "NetworkRunResult",
    "NetworkCampaignResult",
    "build_network_simulator",
    "run_network_campaign",
    "analytic_per_switch",
]
