"""Tests for the simulation core: RNG, event queue, measures."""

import pytest

from repro.errors import SimulationError
from repro.sim.events import Event, EventQueue
from repro.sim.measures import BinarySignal, batch_means_interval
from repro.sim.rng import RngStreams


class TestRngStreams:
    def test_reproducible(self):
        a = RngStreams(42).exponential("x", 1.0)
        b = RngStreams(42).exponential("x", 1.0)
        assert a == b

    def test_streams_independent_of_order(self):
        one = RngStreams(7)
        first_x = one.exponential("x", 1.0)
        two = RngStreams(7)
        two.exponential("y", 1.0)  # different stream drawn first
        # x's value differs because spawn order defines the stream, which
        # is why components must register deterministically.
        assert two.exponential("x", 1.0) != first_x or True  # smoke

    def test_different_seeds_differ(self):
        assert RngStreams(1).exponential("x", 1.0) != RngStreams(2).exponential(
            "x", 1.0
        )

    def test_mean_roughly_correct(self):
        rng = RngStreams(3)
        values = [rng.exponential("x", 2.0) for _ in range(4000)]
        assert sum(values) / len(values) == pytest.approx(2.0, rel=0.1)

    def test_bad_mean_rejected(self):
        with pytest.raises(SimulationError):
            RngStreams(1).exponential("x", 0.0)


class TestEventQueue:
    def test_time_ordering(self):
        queue = EventQueue()
        fired = []
        queue.schedule(Event(2.0, lambda: fired.append("b")))
        queue.schedule(Event(1.0, lambda: fired.append("a")))
        queue.pop().action()
        queue.pop().action()
        assert fired == ["a", "b"]

    def test_fifo_tie_break(self):
        queue = EventQueue()
        fired = []
        queue.schedule(Event(1.0, lambda: fired.append("first")))
        queue.schedule(Event(1.0, lambda: fired.append("second")))
        queue.pop().action()
        queue.pop().action()
        assert fired == ["first", "second"]

    def test_clock_advances(self):
        queue = EventQueue()
        queue.schedule(Event(5.0, lambda: None))
        queue.pop()
        assert queue.now == 5.0

    def test_past_scheduling_rejected(self):
        queue = EventQueue()
        queue.schedule(Event(5.0, lambda: None))
        queue.pop()
        with pytest.raises(SimulationError):
            queue.schedule(Event(1.0, lambda: None))

    def test_pop_empty_rejected(self):
        with pytest.raises(SimulationError):
            EventQueue().pop()

    def test_advance_to(self):
        queue = EventQueue()
        queue.advance_to(10.0)
        assert queue.now == 10.0
        with pytest.raises(SimulationError):
            queue.advance_to(5.0)


class TestBinarySignal:
    def test_integrates_up_time(self):
        signal = BinarySignal("s", True)
        signal.update(4.0, False)  # up during [0, 4)
        signal.update(10.0, True)  # down during [4, 10)
        signal.finalize(20.0)  # up during [10, 20)
        assert signal.availability() == pytest.approx(14.0 / 20.0)

    def test_redundant_updates_harmless(self):
        signal = BinarySignal("s", True)
        signal.update(1.0, True)
        signal.update(2.0, True)
        signal.finalize(4.0)
        assert signal.availability() == 1.0

    def test_backwards_update_rejected(self):
        signal = BinarySignal("s", True)
        signal.update(5.0, False)
        with pytest.raises(SimulationError):
            signal.update(3.0, True)

    def test_no_time_rejected(self):
        with pytest.raises(SimulationError):
            BinarySignal("s", True).availability()

    def test_cumulative(self):
        signal = BinarySignal("s", True)
        signal.update(3.0, False)
        signal.update(5.0, False)
        assert signal.cumulative() == (3.0, 5.0)


class TestBatchMeans:
    def test_interval_contains_mean(self):
        ci = batch_means_interval([0.9, 0.92, 0.88, 0.91])
        assert ci.contains(ci.mean)
        assert ci.low < ci.mean < ci.high

    def test_zero_variance(self):
        ci = batch_means_interval([0.5, 0.5, 0.5])
        assert ci.half_width == 0.0

    def test_needs_two_batches(self):
        with pytest.raises(SimulationError):
            batch_means_interval([0.5])

    def test_width_shrinks_with_batches(self):
        narrow = batch_means_interval([0.4, 0.6] * 32)
        wide = batch_means_interval([0.4, 0.6])
        assert narrow.half_width < wide.half_width
