"""Monte-Carlo discrete-event simulation of controller availability.

The paper closes with: "Future work includes simulating the topologies to
validate the conclusions."  This package is that simulator: exponential
failure/repair processes for racks, hosts, VMs, supervisors, and controller
processes; hierarchical failure masking; the two supervisor restart
scenarios; and time-weighted CP/DP availability measurement with
batch-means confidence intervals.

Entry point: :func:`repro.sim.controller_sim.simulate_controller`, or the
analytic-comparison harness :func:`repro.sim.validate.validate_against_analytic`.
"""

from repro.sim.batched import (
    BatchedModel,
    inexpressible_reason,
    plan_batched,
    run_batched,
    validate_batched_mode,
)
from repro.sim.controller_sim import (
    OutageStatistics,
    SimulationConfig,
    SimulationResult,
    simulate_controller,
)
from repro.sim.measures import (
    BinarySignal,
    SignalAttribution,
    batch_means_interval,
    student_t_critical,
)
from repro.sim.scenario import Injection, ScenarioRunner, ScenarioTrace
from repro.sim.validate import ValidationReport, validate_against_analytic
from repro.sim.vrouter_connections import (
    ControlEvent,
    DropInterval,
    VRouterConnectionModel,
)

__all__ = [
    "SimulationConfig",
    "SimulationResult",
    "OutageStatistics",
    "simulate_controller",
    "BinarySignal",
    "SignalAttribution",
    "batch_means_interval",
    "student_t_critical",
    "BatchedModel",
    "inexpressible_reason",
    "plan_batched",
    "run_batched",
    "validate_batched_mode",
    "Injection",
    "ScenarioRunner",
    "ScenarioTrace",
    "ValidationReport",
    "validate_against_analytic",
    "ControlEvent",
    "DropInterval",
    "VRouterConnectionModel",
]
