"""Tests for the reference topologies (repro.topology.reference) — Fig. 2."""

import pytest

from repro.errors import TopologyError
from repro.topology.reference import (
    large_topology,
    medium_topology,
    reference_topology,
    small_topology,
)

ROLES = ("Config", "Control", "Analytics", "Database")


class TestSmall:
    def test_shape(self, small):
        # 1 rack, 3 hosts, 3 combined GCAD VMs, 12 role instances.
        assert len(small.racks) == 1
        assert len(small.hosts) == 3
        assert len(small.vms) == 3
        assert len(small.instances) == 12

    def test_all_roles_share_node_vm(self, small):
        vms = {i.vm for i in small.instances if i.index == 1}
        assert vms == {"GCAD1"}

    def test_single_rack(self, small):
        assert {h.rack for h in small.hosts} == {"R1"}


class TestMedium:
    def test_shape(self, medium):
        # 2 racks, 3 hosts, 12 per-role VMs.
        assert len(medium.racks) == 2
        assert len(medium.hosts) == 3
        assert len(medium.vms) == 12
        assert len(medium.instances) == 12

    def test_node_vms_colocated_per_host(self, medium):
        # G1 ... D1 all on H1 (paper section IV).
        hosts = {
            medium.host_of_vm(i.vm).name
            for i in medium.instances
            if i.index == 1
        }
        assert hosts == {"H1"}

    def test_quorum_majority_in_rack1(self, medium):
        # H1, H2 in R1; H3 in R2.
        racks = {h.name: h.rack for h in medium.hosts}
        assert racks == {"H1": "R1", "H2": "R1", "H3": "R2"}

    def test_vms_are_private(self, medium):
        shared = set(medium.shared_elements())
        assert not any(v.name in shared for v in medium.vms)


class TestLarge:
    def test_shape(self, large):
        # 3 racks, 12 hosts, 12 VMs — every role copy on its own host.
        assert len(large.racks) == 3
        assert len(large.hosts) == 12
        assert len(large.vms) == 12
        assert len(large.instances) == 12

    def test_one_instance_per_host(self, large):
        hosts = [large.host_of_vm(i.vm).name for i in large.instances]
        assert len(set(hosts)) == 12

    def test_node_per_rack(self, large):
        # Node i's four hosts live in rack Ri.
        racks = {
            large.rack_of_host(large.host_of_vm(i.vm).name).name
            for i in large.instances
            if i.index == 2
        }
        assert racks == {"R2"}

    def test_only_racks_shared(self, large):
        shared = set(large.shared_elements())
        assert shared == {"R1", "R2", "R3"}


class TestBuilders:
    def test_from_role_names(self):
        topo = small_topology(ROLES)
        assert topo.role_names() == ROLES

    def test_from_spec(self, spec, small):
        assert small.role_names() == ROLES

    def test_generalized_cluster_size(self):
        topo = large_topology(ROLES, cluster_size=5)
        assert len(topo.racks) == 5
        assert len(topo.instances) == 20

    def test_medium_needs_two_nodes(self):
        with pytest.raises(TopologyError):
            medium_topology(ROLES, cluster_size=1)

    def test_reference_dispatch(self, spec):
        assert reference_topology("small", spec).name == "Small"
        assert reference_topology("LARGE", spec).name == "Large"
        with pytest.raises(TopologyError):
            reference_topology("gigantic", spec)

    def test_duplicate_role_names_rejected(self):
        with pytest.raises(TopologyError):
            small_topology(("A", "A"))
