"""Topology-level outage frequency/duration profiles.

Combines the plane structure functions (:mod:`repro.models.failure_modes`)
with the cut-set frequency calculus (:mod:`repro.analysis.frequency`) to
answer the paper's qualitative warning quantitatively: the Small topology's
availability hides a rare-but-long rack outage, while the Large topology
converts it into more frequent but far shorter process-level events.

Component dynamics are derived so that steady-state unavailabilities match
the analytic models exactly; mean downtimes come from the paper's stated
assumptions (rack: two days to "deliver new HW and rerack servers"; host:
the 5-year-MTBF enterprise server with its maintenance-contract MTTR;
processes: R / R_S).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.frequency import (
    ComponentDynamics,
    OutageProfile,
    system_outage_profile,
)
from repro.controller.spec import ControllerSpec, Plane
from repro.core.cutsets import minimal_cut_sets
from repro.errors import ModelError
from repro.models.failure_modes import build_plane_structure
from repro.params.hardware import HardwareParams
from repro.params.software import RestartScenario, SoftwareParams
from repro.topology.deployment import DeploymentTopology
from repro.units import HOURS_PER_YEAR


@dataclass(frozen=True)
class DowntimeAssumptions:
    """Mean-downtime assumptions per infrastructure level (hours).

    Component unavailabilities always come from the availability
    parameters; these durations only apportion that unavailability between
    frequency and duration.  Defaults follow the paper's prose: racks take
    two days to restore; hosts and VMs restore within the Same-Day window.
    """

    rack_mttr_hours: float = 48.0
    host_mttr_hours: float = 4.0
    vm_mttr_hours: float = 0.5

    def for_level(self, level: str) -> float:
        try:
            return {
                "rack": self.rack_mttr_hours,
                "host": self.host_mttr_hours,
                "vm": self.vm_mttr_hours,
            }[level]
        except KeyError:
            raise ModelError(f"unknown infrastructure level {level!r}") from None


def component_dynamics(
    spec: ControllerSpec,
    topology: DeploymentTopology,
    hardware: HardwareParams,
    software: SoftwareParams,
    scenario: RestartScenario,
    plane: Plane,
    assumptions: DowntimeAssumptions | None = None,
) -> dict[str, ComponentDynamics]:
    """Per-component (unavailability, mean downtime) for a plane structure.

    Keys match the component naming of
    :func:`repro.models.failure_modes.build_plane_structure`.
    """
    assumptions = assumptions or DowntimeAssumptions()
    built = build_plane_structure(
        spec, topology, hardware, software, scenario, plane
    )
    dynamics: dict[str, ComponentDynamics] = {}
    for name, unavailability in built.unavailability.items():
        prefix = name.split(":", 1)[0]
        if prefix in ("rack", "host", "vm"):
            downtime = assumptions.for_level(prefix)
        elif prefix == "sup":
            downtime = (
                software.manual_restart_hours
                if scenario is RestartScenario.REQUIRED
                else software.maintenance_window_hours
            )
        else:  # proc / local processes: R for auto, R_S for manual
            # Match the downtime to the process's unavailability: an
            # unavailability of 1-A means auto restart (R), 1-A_S manual.
            if abs(unavailability - (1.0 - software.a_process)) < abs(
                unavailability - (1.0 - software.a_unsupervised)
            ):
                downtime = software.auto_restart_hours
            else:
                downtime = software.manual_restart_hours
        if unavailability <= 0.0:
            continue  # perfectly available components never cut
        dynamics[name] = ComponentDynamics(
            unavailability=unavailability,
            mean_downtime_hours=downtime,
        )
    return dynamics


def plane_outage_profile(
    spec: ControllerSpec,
    topology: DeploymentTopology,
    hardware: HardwareParams,
    software: SoftwareParams,
    scenario: RestartScenario,
    plane: Plane,
    max_order: int = 2,
    assumptions: DowntimeAssumptions | None = None,
) -> OutageProfile:
    """Outage frequency/duration profile of one plane on one topology.

    Uses minimal cut sets up to ``max_order`` (order-3 cuts contribute
    below 1e-12 at the paper's parameters).
    """
    built = build_plane_structure(
        spec, topology, hardware, software, scenario, plane
    )
    cuts = minimal_cut_sets(built.structure, max_order=max_order)
    dynamics = component_dynamics(
        spec, topology, hardware, software, scenario, plane, assumptions
    )
    usable = [cut for cut in cuts if all(name in dynamics for name in cut)]
    return system_outage_profile(usable, dynamics)


@dataclass(frozen=True)
class OutageComparison:
    """Small-vs-Large outage character for one plane/scenario."""

    small: OutageProfile
    large: OutageProfile

    @property
    def frequency_ratio(self) -> float:
        """How many Large outages occur per Small outage."""
        if self.small.frequency_per_hour == 0.0:
            return float("inf")
        return self.large.frequency_per_hour / self.small.frequency_per_hour

    @property
    def duration_ratio(self) -> float:
        """Mean Small outage duration over mean Large outage duration."""
        if self.large.mean_outage_hours == 0.0:
            return float("inf")
        return self.small.mean_outage_hours / self.large.mean_outage_hours


def fleet_outages_per_year(profile: OutageProfile, sites: int) -> float:
    """Expected outages per year across a fleet of identical sites.

    The paper: "for a network or content or video service provider with
    500 edge sites, a yearly outage may be unacceptable."
    """
    if sites < 1:
        raise ModelError(f"sites must be >= 1, got {sites}")
    return profile.frequency_per_hour * HOURS_PER_YEAR * sites
