"""E2 — regenerate Table II: counts of processes by restart mode by role."""

from repro.controller.tables import render_table2

PAPER_TABLE2 = {
    "Config": (6, 0),
    "Control": (3, 0),
    "Analytics": (4, 1),
    "Database": (0, 4),
}


def test_table2(benchmark, spec):
    text = benchmark(render_table2, spec)
    print("\n" + text)
    assert spec.restart_mode_table() == PAPER_TABLE2
