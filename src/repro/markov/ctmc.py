"""Generic finite CTMC construction and steady-state solution.

States are arbitrary hashable labels; transitions carry exponential rates.
The steady state solves ``pi Q = 0`` with ``sum(pi) = 1`` via a dense
least-squares-free linear solve (one balance equation replaced by the
normalization row), which is robust for the modest state spaces used here
(k-of-n chains, supervisor interaction models).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable

import numpy as np

from repro.errors import ConvergenceError, ModelError, ParameterError
from repro.obs import runtime as obs

State = Hashable


@dataclass
class Ctmc:
    """A finite continuous-time Markov chain under construction."""

    _states: list[State] = field(default_factory=list)
    _index: dict[State, int] = field(default_factory=dict)
    _rates: dict[tuple[int, int], float] = field(default_factory=dict)

    def add_state(self, state: State) -> int:
        """Register a state (idempotent); returns its index."""
        if state not in self._index:
            self._index[state] = len(self._states)
            self._states.append(state)
        return self._index[state]

    def add_transition(self, source: State, target: State, rate: float) -> None:
        """Add an exponential transition; parallel rates accumulate."""
        if rate < 0:
            raise ParameterError(f"rate must be >= 0, got {rate}")
        if source == target:
            raise ModelError("self-transitions are meaningless in a CTMC")
        if rate == 0:
            return
        i = self.add_state(source)
        j = self.add_state(target)
        self._rates[(i, j)] = self._rates.get((i, j), 0.0) + rate

    @property
    def states(self) -> tuple[State, ...]:
        return tuple(self._states)

    def generator(self) -> np.ndarray:
        """The generator matrix Q (rows sum to zero)."""
        n = len(self._states)
        if n == 0:
            raise ModelError("CTMC has no states")
        q = np.zeros((n, n))
        for (i, j), rate in self._rates.items():
            q[i, j] += rate
            q[i, i] -= rate
        return q

    def steady_state(self) -> dict[State, float]:
        """Steady-state distribution as a state -> probability map."""
        pi = steady_state(self.generator())
        return {state: float(pi[i]) for i, state in enumerate(self._states)}

    def probability(self, predicate) -> float:
        """Total steady-state probability of states satisfying ``predicate``."""
        distribution = self.steady_state()
        return sum(p for state, p in distribution.items() if predicate(state))


def steady_state(q: np.ndarray) -> np.ndarray:
    """Solve ``pi Q = 0``, ``sum(pi) = 1`` for an irreducible generator.

    Replaces the last balance column with the normalization constraint and
    solves the square system.  Raises :class:`ConvergenceError` when the
    chain is reducible (singular system) or produces an invalid
    distribution.
    """
    obs.note_solver("markov")
    obs.count("markov.steady_state_solves")
    q = np.asarray(q, dtype=float)
    if q.ndim != 2 or q.shape[0] != q.shape[1]:
        raise ModelError(f"generator must be square, got shape {q.shape}")
    n = q.shape[0]
    if not np.allclose(q.sum(axis=1), 0.0, atol=1e-9 * max(1.0, np.abs(q).max())):
        raise ModelError("generator rows must sum to zero")
    a = q.T.copy()
    a[-1, :] = 1.0
    b = np.zeros(n)
    b[-1] = 1.0
    try:
        pi = np.linalg.solve(a, b)
    except np.linalg.LinAlgError as exc:
        raise ConvergenceError(
            "singular steady-state system (reducible chain?)"
        ) from exc
    if np.any(pi < -1e-9):
        raise ConvergenceError("steady state has negative probabilities")
    pi = np.clip(pi, 0.0, None)
    total = pi.sum()
    if not np.isfinite(total) or total <= 0:
        raise ConvergenceError("steady state failed to normalize")
    return pi / total
