"""Reproducible random-number streams with batched draws.

Each simulated component draws from its own numpy Generator, spawned from a
single root seed via ``SeedSequence``; runs are bit-reproducible for a given
seed and component set, and independent across components regardless of the
event interleaving.

Exponential variates are the simulator's only hot-path draws, so they are
**buffered**: each stream pre-draws a block of *standard* exponentials
(mean 1.0) with one vectorized ``Generator.standard_exponential`` call and
hands them out one by one, scaled by the requested mean at pop time.  Block
draws consume the underlying bit stream exactly like repeated scalar draws,
and IEEE multiplication is order-insensitive, so the buffered sequence is
element-for-element identical to per-variate ``Generator.exponential``
calls (``tests/test_sim_perf_engine.py`` proves this).  Scaling at pop time
also keeps varying means correct: one stream may legitimately be asked for
different means on successive draws (R vs R_S repair selection).  Blocks
refill geometrically (doubling up to a cap) so short-lived streams waste
few draws while hot streams amortize the numpy call overhead.

A stream consumed through :meth:`RngStreams.exponential` must not *also* be
consumed through the raw :meth:`RngStreams.stream` generator — buffering
pre-draws from the generator, so interleaving raw draws would desynchronize
the sequence.  Every stream in this repository uses exactly one of the two
access paths (exponential clocks vs. the alternative repair-distribution
samplers), which keeps runs pure functions of the root seed.

:func:`derive_seeds` extends the same discipline across *runs*: independent
replications (and parallel workers) get child seeds spawned from one root
``SeedSequence``, so a replication's stream depends only on ``(root seed,
replication index)`` — never on how the replications are scheduled.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SimulationError

#: First buffered block size per stream; refills double up to the cap.
INITIAL_BLOCK = 8
#: Largest buffered block; bounds per-stream memory at ~8 KiB of doubles.
MAX_BLOCK = 1024


class _BufferedStream:
    """One named stream: a generator plus a block of standard exponentials."""

    __slots__ = ("generator", "_buffer", "_index", "_block")

    def __init__(self, generator: np.random.Generator):
        self.generator = generator
        self._buffer = generator.standard_exponential(INITIAL_BLOCK)
        self._index = 0
        self._block = INITIAL_BLOCK

    def exponential(self, mean: float) -> float:
        """The next exponential variate, scaled to ``mean``."""
        index = self._index
        if index >= len(self._buffer):
            self._block = min(self._block * 2, MAX_BLOCK)
            self._buffer = self.generator.standard_exponential(self._block)
            index = 0
        self._index = index + 1
        return float(self._buffer[index] * mean)


class RngStreams:
    """A family of named, independent random streams under one root seed."""

    def __init__(self, seed: int):
        self._root = np.random.SeedSequence(seed)
        self._streams: dict[str, np.random.Generator] = {}
        self._buffered: dict[str, _BufferedStream] = {}

    def stream(self, name: str) -> np.random.Generator:
        """The generator dedicated to ``name`` (created on first use).

        Streams are spawned in first-use order, so a run is reproducible as
        long as components are registered in a deterministic order.  Do not
        mix raw draws from this generator with :meth:`exponential` on the
        same name (see the module docstring).
        """
        if name not in self._streams:
            child = self._root.spawn(1)[0]
            self._streams[name] = np.random.default_rng(child)
        return self._streams[name]

    def exponential(self, name: str, mean: float) -> float:
        """One exponential variate with the given mean from ``name``'s stream.

        Drawn from the stream's buffered block — element-for-element
        identical to calling ``stream(name).exponential(mean)`` repeatedly.
        """
        if mean <= 0:
            raise SimulationError(
                f"exponential mean must be > 0, got {mean} for {name!r}"
            )
        buffered = self._buffered.get(name)
        if buffered is None:
            buffered = _BufferedStream(self.stream(name))
            self._buffered[name] = buffered
        return buffered.exponential(mean)


def derive_seeds(seed: int, count: int) -> tuple[int, ...]:
    """``count`` independent integer child seeds of a root ``seed``.

    Children are spawned with ``np.random.SeedSequence.spawn``, so child
    ``i`` is a pure function of ``(seed, i)``: the derivation is identical
    no matter how many workers later consume the seeds, which is what makes
    parallel replication runs bit-identical to sequential ones.
    """
    if count < 0:
        raise SimulationError(f"count must be >= 0, got {count}")
    children = np.random.SeedSequence(seed).spawn(count)
    return tuple(
        int(child.generate_state(2, np.uint64)[0]) for child in children
    )
