"""Tests for the supervisor-process CTMC and transient analysis."""

import math

import pytest

from repro.markov.kofn_markov import kofn_chain
from repro.markov.supervisor_markov import (
    UP_DOWN,
    effective_availability_markov,
    supervisor_process_chain,
)
from repro.markov.transient import (
    expected_first_outage_hours,
    survival_probability,
    transient_availability,
)
from repro.params.software import RestartScenario, SoftwareParams

S1 = RestartScenario.NOT_REQUIRED
S2 = RestartScenario.REQUIRED


class TestSupervisorChain:
    def test_scenario1_has_four_states(self, software):
        chain = supervisor_process_chain(software, S1)
        assert len(chain.states) == 4

    def test_scenario2_has_no_up_down_state(self, software):
        # A supervisor failure kills the node-role, so (process up,
        # supervisor down) is unreachable and never constructed.
        chain = supervisor_process_chain(software, S2)
        assert UP_DOWN not in chain.states
        assert len(chain.states) == 3

    def test_scenario1_validates_paper_a_star(self, software):
        result = effective_availability_markov(software, S1)
        # Paper: A* ~= 0.99998 — exact chain agrees to ~0.1% on the
        # unavailability.
        assert result.exact_availability == pytest.approx(
            result.paper_approximation, abs=3e-7
        )
        assert result.approximation_error < 0.01

    def test_scenario2_validates_paper_a_star(self, software):
        result = effective_availability_markov(software, S2)
        assert result.approximation_error < 0.01
        assert result.exact_availability == pytest.approx(0.9998, abs=3e-5)

    def test_scenario2_worse_than_scenario1(self, software):
        a1 = effective_availability_markov(software, S1).exact_availability
        a2 = effective_availability_markov(software, S2).exact_availability
        assert a2 < a1

    def test_approximation_degrades_gracefully_when_stressed(self):
        # At stressed parameters the paper's mixing argument is still
        # within ~20% on the unavailability.
        stressed = SoftwareParams(
            mtbf_hours=100.0,
            auto_restart_hours=0.5,
            manual_restart_hours=5.0,
            maintenance_window_hours=10.0,
        )
        for scenario in (S1, S2):
            result = effective_availability_markov(stressed, scenario)
            assert result.approximation_error < 0.2, scenario


class TestTransient:
    def up(self, failed):
        return failed <= 1  # 2-of-3 quorum

    def test_transient_starts_at_one(self):
        chain = kofn_chain(3, 1 / 5000, 1.0)
        assert transient_availability(chain, self.up, 0.0, start=0) == pytest.approx(
            1.0
        )

    def test_transient_approaches_steady_state(self):
        chain = kofn_chain(3, 0.01, 1.0)
        steady = chain.probability(lambda failed: failed <= 1)
        late = transient_availability(chain, self.up, 5_000.0, start=0)
        assert late == pytest.approx(steady, rel=1e-6)

    def test_survival_decreasing_in_time(self):
        chain = kofn_chain(3, 0.01, 1.0)
        s1 = survival_probability(chain, self.up, 10.0, start=0)
        s2 = survival_probability(chain, self.up, 100.0, start=0)
        assert 0.0 <= s2 <= s1 <= 1.0

    def test_survival_consistent_with_hitting_time(self):
        # For small t, 1 - S(t) ~= t / E[T_outage] when outages are
        # approximately exponential arrivals.
        chain = kofn_chain(3, 1 / 5000, 1.0)
        expected = expected_first_outage_hours(chain, self.up, start=0)
        t = expected / 1000.0
        survival = survival_probability(chain, self.up, t, start=0)
        assert 1 - survival == pytest.approx(t / expected, rel=0.05)

    def test_hitting_time_matches_exponential_structure(self):
        # A 1-of-1 component: E[first failure] = MTBF exactly.
        chain = kofn_chain(1, 0.01, 1.0)
        expected = expected_first_outage_hours(
            chain, lambda failed: failed == 0, start=0
        )
        assert expected == pytest.approx(100.0)

    def test_paper_single_rack_narrative(self):
        # "no rack-related downtime for many years followed by a ...
        # extended outage": a rack with a 500-year MTBF has >98% chance of
        # surviving a decade without any outage.
        years = 8766.0
        chain = kofn_chain(1, 1 / (500 * years), 1 / 48.0)
        survival = survival_probability(
            chain, lambda failed: failed == 0, 10 * years, start=0
        )
        assert survival == pytest.approx(math.exp(-10 / 500), rel=1e-6)

    def test_survival_must_start_up(self):
        chain = kofn_chain(3, 0.01, 1.0)
        from repro.errors import ModelError

        with pytest.raises(ModelError):
            survival_probability(chain, lambda failed: failed == 0, 1.0, start=3)

    def test_hitting_time_from_down_state_is_zero(self):
        chain = kofn_chain(3, 0.01, 1.0)
        assert (
            expected_first_outage_hours(chain, lambda f: f <= 1, start=2)
            == 0.0
        )
