"""Tests for topology outage profiles (repro.models.outage)."""

import pytest

from repro.controller.spec import Plane
from repro.models.outage import (
    DowntimeAssumptions,
    OutageComparison,
    component_dynamics,
    fleet_outages_per_year,
    plane_outage_profile,
)
from repro.models.sw import cp_availability
from repro.params.software import RestartScenario

S1 = RestartScenario.NOT_REQUIRED
S2 = RestartScenario.REQUIRED


class TestComponentDynamics:
    def test_unavailabilities_match_parameters(
        self, spec, small, hardware, software
    ):
        dynamics = component_dynamics(
            spec, small, hardware, software, S1, Plane.CP
        )
        assert 1 - dynamics["rack:R1"].unavailability == pytest.approx(
            hardware.a_rack
        )
        assert 1 - dynamics["host:H1"].unavailability == pytest.approx(
            hardware.a_host
        )
        assert 1 - dynamics[
            "proc:Config/config-api-1"
        ].unavailability == pytest.approx(software.a_process)
        assert 1 - dynamics[
            "proc:Database/kafka-2"
        ].unavailability == pytest.approx(software.a_unsupervised)

    def test_process_downtimes_by_restart_mode(
        self, spec, small, hardware, software
    ):
        dynamics = component_dynamics(
            spec, small, hardware, software, S1, Plane.CP
        )
        assert dynamics[
            "proc:Config/config-api-1"
        ].mean_downtime_hours == pytest.approx(software.auto_restart_hours)
        assert dynamics[
            "proc:Database/kafka-1"
        ].mean_downtime_hours == pytest.approx(software.manual_restart_hours)

    def test_custom_assumptions(self, spec, small, hardware, software):
        assumptions = DowntimeAssumptions(rack_mttr_hours=96.0)
        dynamics = component_dynamics(
            spec, small, hardware, software, S1, Plane.CP, assumptions
        )
        assert dynamics["rack:R1"].mean_downtime_hours == 96.0

    def test_supervisor_downtime_by_scenario(
        self, spec, small, hardware, software
    ):
        dynamics = component_dynamics(
            spec, small, hardware, software, S2, Plane.CP
        )
        assert dynamics["sup:Config-1"].mean_downtime_hours == pytest.approx(
            software.manual_restart_hours
        )


class TestPlaneProfiles:
    def test_unavailability_matches_closed_form(
        self, spec, small, hardware, software
    ):
        # The union-bound unavailability over order<=2 cuts must track the
        # closed-form CP unavailability (order-3 cuts are ~1e-12).
        profile = plane_outage_profile(
            spec, small, hardware, software, S1, Plane.CP
        )
        closed = 1 - cp_availability(spec, "small", hardware, software, S1)
        assert profile.unavailability == pytest.approx(closed, rel=0.05)

    def test_small_outages_longer_than_large(
        self, spec, small, large, hardware, software
    ):
        # The paper's rare-but-long story: the Small topology's CP outages
        # are dominated by the 48 h rack event; Large converts them into
        # short process-level events.
        comparison = OutageComparison(
            small=plane_outage_profile(
                spec, small, hardware, software, S1, Plane.CP
            ),
            large=plane_outage_profile(
                spec, large, hardware, software, S1, Plane.CP
            ),
        )
        assert comparison.duration_ratio > 5.0
        assert comparison.small.mean_outage_hours > 3.0
        assert comparison.large.mean_outage_hours < 1.0

    def test_downtime_identity(self, spec, large, hardware, software):
        profile = plane_outage_profile(
            spec, large, hardware, software, S2, Plane.CP
        )
        assert profile.unavailability == pytest.approx(
            profile.frequency_per_hour * profile.mean_outage_hours
        )

    def test_dp_dominated_by_vrouter(self, spec, small, hardware, software):
        # DP outage frequency is dominated by the per-host vRouter
        # processes (two 1-of-1 cuts at rate ~1/F each).
        profile = plane_outage_profile(
            spec, small, hardware, software, S1, Plane.DP
        )
        per_process_rate = (1 - software.a_process) / (
            software.auto_restart_hours
        )
        assert profile.frequency_per_hour > 2 * per_process_rate * 0.9


class TestFleet:
    def test_fleet_scaling(self, spec, small, hardware, software):
        profile = plane_outage_profile(
            spec, small, hardware, software, S1, Plane.CP
        )
        one = fleet_outages_per_year(profile, 1)
        five_hundred = fleet_outages_per_year(profile, 500)
        assert five_hundred == pytest.approx(500 * one)
        # The paper's warning: at 500 edge sites, outages become routine.
        assert five_hundred > 1.0

    def test_fleet_validation(self, spec, small, hardware, software):
        profile = plane_outage_profile(
            spec, small, hardware, software, S1, Plane.CP
        )
        from repro.errors import ModelError

        with pytest.raises(ModelError):
            fleet_outages_per_year(profile, 0)
