"""The discrete-event simulation core.

:class:`AvailabilitySimulator` runs a set of :class:`Component` instances
with exponential failure/repair dynamics under hierarchical masking, and
integrates caller-supplied binary system signals (CP up, DP up, ...) over
simulated time with per-batch accounting.

Correctness notes (these are tested):

* Failure clocks only run while a component is effectively up.  Because
  failures are exponential, *resampling* a fresh failure time whenever the
  effective state is re-evaluated is distributionally equivalent to pausing
  the clock (memorylessness), so every effective-state change simply bumps
  the component's epoch and reschedules.
* Repairs continue while a component is masked (a replaced server does not
  un-replace because its rack lost power).
* Scenario-2 supervisor semantics are injected through ``on_repair`` hooks:
  when a supervisor completes its manual restart it restores all of its
  supervised processes (the paper's "the supervisor can then auto-restart
  those processes under its oversight").
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.errors import SimulationError
from repro.obs import runtime as obs
from repro.sim.entities import Component, ComponentState
from repro.sim.events import Event, EventQueue
from repro.sim.measures import BinarySignal
from repro.sim.rng import RngStreams

RepairPolicy = Callable[[Component], float]
SignalPredicate = Callable[["AvailabilitySimulator"], bool]
RepairHook = Callable[["AvailabilitySimulator", Component], None]


class AvailabilitySimulator:
    """Generic failure/repair simulator over a component dependency DAG."""

    def __init__(
        self,
        components: Sequence[Component],
        seed: int,
        repair_policy: RepairPolicy | None = None,
        on_repair: RepairHook | None = None,
        repair_sampler=None,
    ):
        self.components: dict[str, Component] = {}
        for component in components:
            if component.key in self.components:
                raise SimulationError(f"duplicate component {component.key!r}")
            self.components[component.key] = component
        for component in components:
            for dependency in component.dependencies:
                if dependency not in self.components:
                    raise SimulationError(
                        f"{component.key!r} depends on unknown "
                        f"{dependency!r}"
                    )
                self.components[dependency].dependents.append(component.key)
        self._queue = EventQueue()
        self._rng = RngStreams(seed)
        self._repair_policy = repair_policy or (lambda c: c.repair_mean)
        self._on_repair = on_repair
        if repair_sampler is None:
            from repro.sim.distributions import exponential_repairs

            repair_sampler = exponential_repairs
        self._repair_sampler = repair_sampler
        self._signals: list[tuple[BinarySignal, SignalPredicate]] = []
        self._batch_records: dict[str, list[float]] = {}
        #: Events executed across every :meth:`run` of this simulator.
        self.events_processed = 0

    # -- state queries -----------------------------------------------------------

    @property
    def now(self) -> float:
        return self._queue.now

    def intrinsically_up(self, key: str) -> bool:
        return self.components[key].state is ComponentState.UP

    def effectively_up(self, key: str) -> bool:
        """Intrinsically up and every dependency effectively up."""
        component = self.components[key]
        if component.state is not ComponentState.UP:
            return False
        return all(self.effectively_up(d) for d in component.dependencies)

    # -- signals ------------------------------------------------------------------

    def add_signal(self, name: str, predicate: SignalPredicate) -> None:
        signal = BinarySignal(name, predicate(self), start_time=self.now)
        self._signals.append((signal, predicate))
        self._batch_records[name] = []

    def _refresh_signals(self) -> None:
        for signal, predicate in self._signals:
            signal.update(self.now, predicate(self))

    # -- scheduling ----------------------------------------------------------------

    def _schedule_failure(self, component: Component) -> None:
        if component.failure_rate <= 0.0:
            return
        delay = self._rng.exponential(
            f"fail:{component.key}", 1.0 / component.failure_rate
        )
        epoch = component.epoch
        self._queue.schedule(
            Event(
                time=self.now + delay,
                action=lambda: self._fail(component.key, epoch),
                component=component.key,
                epoch=epoch,
            )
        )

    def _schedule_repair(self, component: Component) -> None:
        mean = self._repair_policy(component)
        delay = self._repair_sampler(
            self._rng, f"repair:{component.key}", mean
        )
        epoch = component.epoch
        self._queue.schedule(
            Event(
                time=self.now + delay,
                action=lambda: self._repair(component.key, epoch),
                component=component.key,
                epoch=epoch,
            )
        )

    def _transitive_dependents(self, key: str) -> list[str]:
        seen: list[str] = []
        stack = list(self.components[key].dependents)
        while stack:
            dependent = stack.pop()
            if dependent not in seen:
                seen.append(dependent)
                stack.extend(self.components[dependent].dependents)
        return seen

    def _reschedule_subtree(self, key: str) -> None:
        """Re-evaluate failure clocks for ``key``'s dependents.

        Every transitive dependent gets its pending *failure* clock
        invalidated; those now effectively up get a fresh one (valid by
        memorylessness), those masked get none.  Pending repairs are left
        alone — repairs proceed regardless of masking.
        """
        for dependent_key in self._transitive_dependents(key):
            dependent = self.components[dependent_key]
            if dependent.state is ComponentState.UP:
                dependent.bump()
                if self.effectively_up(dependent_key):
                    self._schedule_failure(dependent)

    # -- transitions -----------------------------------------------------------------

    def _fail(self, key: str, epoch: int) -> None:
        component = self.components[key]
        if component.epoch != epoch or component.state is not ComponentState.UP:
            return  # stale clock
        component.state = ComponentState.REPAIRING
        component.bump()
        self._schedule_repair(component)
        self._reschedule_subtree(key)
        self._refresh_signals()

    def _repair(self, key: str, epoch: int) -> None:
        component = self.components[key]
        if (
            component.epoch != epoch
            or component.state is not ComponentState.REPAIRING
        ):
            return  # cancelled (e.g. supervisor restored the process)
        component.state = ComponentState.UP
        component.bump()
        if self._on_repair is not None:
            self._on_repair(self, component)
        if self.effectively_up(key):
            self._schedule_failure(component)
        self._reschedule_subtree(key)
        self._refresh_signals()

    def advance_time(self, time: float) -> None:
        """Move the clock forward with no intervening events (scenario use)."""
        self._queue.advance_to(time)
        self._refresh_signals()

    def force_fail(self, key: str) -> None:
        """Fail a component immediately without scheduling its repair.

        Used by the deterministic scenario runner
        (:mod:`repro.sim.scenario`); the component stays down until
        :meth:`force_repair`.
        """
        component = self.components[key]
        if component.state is ComponentState.REPAIRING:
            return
        component.state = ComponentState.REPAIRING
        component.bump()
        self._reschedule_subtree(key)
        self._refresh_signals()

    def force_repair(self, key: str) -> None:
        """Repair a component immediately (scenario counterpart of force_fail).

        Applies the same supervisor hook as a stochastic repair, so a
        scenario-restarted supervisor restores its processes.
        """
        component = self.components[key]
        if component.state is ComponentState.UP:
            return
        component.state = ComponentState.UP
        component.bump()
        if self._on_repair is not None:
            self._on_repair(self, component)
        if self.effectively_up(key):
            self._schedule_failure(component)
        self._reschedule_subtree(key)
        self._refresh_signals()

    def restore_component(self, key: str) -> None:
        """Force a component up immediately (used by supervisor hooks).

        Cancels its pending repair, marks it up, and schedules a fresh
        failure clock if it is effectively up.
        """
        component = self.components[key]
        if component.state is ComponentState.UP:
            return
        component.state = ComponentState.UP
        component.bump()
        if self.effectively_up(key):
            self._schedule_failure(component)
        self._reschedule_subtree(key)

    # -- run loop ---------------------------------------------------------------------

    def run(self, horizon: float, batches: int = 10) -> None:
        """Simulate to ``horizon`` time units with ``batches`` batch windows."""
        if horizon <= 0:
            raise SimulationError(f"horizon must be > 0, got {horizon}")
        if batches < 1:
            raise SimulationError(f"batches must be >= 1, got {batches}")
        obs.note_solver("simulation")
        with obs.span(
            "sim.run",
            horizon=horizon,
            batches=batches,
            components=len(self.components),
        ):
            events_before = self.events_processed
            for component in self.components.values():
                if component.state is ComponentState.UP and self.effectively_up(
                    component.key
                ):
                    self._schedule_failure(component)
            boundaries = [horizon * (i + 1) / batches for i in range(batches)]
            previous: dict[str, tuple[float, float]] = {
                signal.name: (0.0, 0.0) for signal, _ in self._signals
            }
            boundary_index = 0
            while self._queue and boundary_index < batches:
                event = self._queue.pop()
                while (
                    boundary_index < batches
                    and event.time >= boundaries[boundary_index]
                ):
                    self._record_batch(boundaries[boundary_index], previous)
                    boundary_index += 1
                if event.time >= horizon:
                    break
                event.action()
                self.events_processed += 1
            while boundary_index < batches:
                self._record_batch(boundaries[boundary_index], previous)
                boundary_index += 1
        if obs.enabled():
            obs.count("sim.events", self.events_processed - events_before)
            for signal, _ in self._signals:
                obs.count(
                    f"sim.outage_episodes.{signal.name}", signal.outage_count
                )

    def _record_batch(
        self, boundary: float, previous: dict[str, tuple[float, float]]
    ) -> None:
        for signal, predicate in self._signals:
            signal.update(boundary, predicate(self))
            up, total = signal.cumulative()
            prev_up, prev_total = previous[signal.name]
            batch_total = total - prev_total
            if batch_total > 0:
                self._batch_records[signal.name].append(
                    (up - prev_up) / batch_total
                )
            previous[signal.name] = (up, total)

    # -- results -------------------------------------------------------------------------

    def availability(self, name: str) -> float:
        return self.signal(name).availability()

    def signal(self, name: str) -> BinarySignal:
        """Access a signal's full record (outage episodes, integrals)."""
        for signal, _ in self._signals:
            if signal.name == name:
                return signal
        raise SimulationError(f"unknown signal {name!r}")

    def batch_availabilities(self, name: str) -> list[float]:
        if name not in self._batch_records:
            raise SimulationError(f"unknown signal {name!r}")
        return list(self._batch_records[name])
