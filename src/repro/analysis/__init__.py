"""Parameter sweeps, sensitivity analysis, and figure-series generation."""

from repro.analysis.figures import fig3_series, fig4_series, fig5_series
from repro.analysis.frequency import (
    ComponentDynamics,
    OutageProfile,
    cut_set_frequency,
    system_outage_profile,
)
from repro.analysis.sweep import sweep
from repro.analysis.sensitivity import (
    hardware_tornado,
    local_sensitivity,
    unavailability_elasticity,
)
from repro.analysis.crossover import (
    option_crossover_orders,
    refine_crossing,
    sweep_crossings,
)
from repro.analysis.sla import (
    annual_downtime_samples,
    exceedance_probability,
    zero_downtime_probability,
)
from repro.analysis.uncertainty import (
    corner_bounds,
    monte_carlo,
    ordering_confidence,
)

__all__ = [
    "fig3_series",
    "fig4_series",
    "fig5_series",
    "sweep",
    "local_sensitivity",
    "unavailability_elasticity",
    "hardware_tornado",
    "ComponentDynamics",
    "OutageProfile",
    "cut_set_frequency",
    "system_outage_profile",
    "monte_carlo",
    "ordering_confidence",
    "corner_bounds",
    "sweep_crossings",
    "refine_crossing",
    "option_crossover_orders",
    "annual_downtime_samples",
    "exceedance_probability",
    "zero_downtime_probability",
]
