"""Shared fixtures: the reference spec, parameters, and topologies."""

from __future__ import annotations

import pytest

from repro.controller.library import (
    flat_consensus_controller,
    split_state_controller,
    toy_controller,
)
from repro.controller.opencontrail import opencontrail_3x
from repro.params.defaults import PAPER_HARDWARE, PAPER_SOFTWARE
from repro.params.hardware import HardwareParams
from repro.params.software import SoftwareParams
from repro.topology.reference import (
    large_topology,
    medium_topology,
    small_topology,
)


@pytest.fixture(scope="session")
def spec():
    """The OpenContrail 3.x reference controller specification."""
    return opencontrail_3x()


@pytest.fixture(scope="session")
def hardware():
    """The paper's hardware defaults (Fig. 3 / section VI values)."""
    return PAPER_HARDWARE


@pytest.fixture(scope="session")
def software():
    """The paper's software defaults (F=5000h, R=0.1h, R_S=1h)."""
    return PAPER_SOFTWARE


@pytest.fixture(scope="session")
def small(spec):
    return small_topology(spec)


@pytest.fixture(scope="session")
def medium(spec):
    return medium_topology(spec)


@pytest.fixture(scope="session")
def large(spec):
    return large_topology(spec)


@pytest.fixture(scope="session")
def toy_spec():
    return toy_controller()


@pytest.fixture(scope="session")
def flat_spec():
    return flat_consensus_controller()


@pytest.fixture(scope="session")
def split_spec():
    return split_state_controller()


@pytest.fixture(scope="session")
def stressed_hardware():
    """Low-availability hardware for simulation validation runs."""
    return HardwareParams(a_role=1.0, a_vm=0.998, a_host=0.998, a_rack=0.999)


@pytest.fixture(scope="session")
def stressed_software():
    """Low-availability software so simulated failures actually occur."""
    return SoftwareParams.from_availabilities(0.995, 0.95, mtbf_hours=100.0)
