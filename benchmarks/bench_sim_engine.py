"""Simulation-engine hot-path throughput (:mod:`repro.sim`).

Times the same hazard-laden campaign workload as
``bench_faults_campaign.py`` and compares its sequential events/sec
against the throughput recorded *before* the hot-path overhaul (batched
RNG, cached effective state, slotted tuple-entry event queue, stale-event
compaction, warm-pool dispatch).  Also times the parallel path cold
(first dispatch creates the pool) and warm (pool reused), checks
bit-identity across worker counts, measures the streaming-telemetry tax
(sequential campaign with the JSONL sink on vs off, < 5% required), times
the struct-of-arrays lockstep kernel on an expressible mega-batch
campaign (>= 5x the live sequential scalar rate required on the reference
container), and writes ``sim_engine`` + ``telemetry_overhead`` +
``sim_batched`` sections to ``BENCH_perf.json`` (other sections are
preserved).  Runnable as a pytest
benchmark *or* directly as a script — ``python
benchmarks/bench_sim_engine.py --horizon 300 --replications 5 --workers 2
--repeats 1 --check`` is the CI smoke invocation.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if __name__ == "__main__":  # script mode: make src/ importable without install
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.faults import (
    CampaignSpec,
    CommonCauseSpec,
    MaintenanceSpec,
    RackPowerSpec,
    run_campaign,
)
from repro.obs import telemetry
from repro.perf.parallel import shutdown_warm_pools
from repro.reporting.tables import format_table

BENCH_SEED = 20190324  # shared with bench_perf_engine.py / bench_faults_campaign.py
DEFAULT_OUT = REPO_ROOT / "BENCH_perf.json"

#: Sequential events/sec of this exact workload measured on the
#: pre-overhaul engine (the ``events_per_second_sequential`` recorded in
#: BENCH_perf.json's ``faults_campaign`` section before this change).
BASELINE_EVENTS_PER_SEC = 18307.4274735464


def _best_of(fn, repeats: int):
    best_time, result = float("inf"), None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best_time = min(best_time, time.perf_counter() - start)
    return best_time, result


def _spec(horizon: float, replications: int) -> CampaignSpec:
    return CampaignSpec(
        option="1S",
        horizon_hours=horizon,
        replications=replications,
        seed=BENCH_SEED,
        hazards=(
            CommonCauseSpec("role:Control", 0.4),
            RackPowerSpec(mtbf_hours=3000.0),
            MaintenanceSpec(
                "host:H2", start_hours=100.0,
                period_hours=500.0, duration_hours=25.0,
            ),
        ),
        repair_crews=2,
    )


def _fingerprint(result):
    return tuple(
        (r.cp, r.shared_dp, r.local_dp, r.dp)
        for r in result.replications.results
    )


def run_sim_engine_bench(
    horizon: float = 4000.0,
    replications: int = 8,
    workers: int = 4,
    repeats: int = 3,
) -> dict:
    """Time the simulation engine and return the BENCH_perf.json section."""
    spec = _spec(horizon, replications)

    sequential_s, sequential = _best_of(
        lambda: run_campaign(spec, workers=1), repeats
    )

    shutdown_warm_pools()  # make the first parallel dispatch genuinely cold
    cold_start = time.perf_counter()
    parallel = run_campaign(spec, workers=workers)
    parallel_cold_s = time.perf_counter() - cold_start
    parallel_warm_s, parallel_warm = _best_of(
        lambda: run_campaign(spec, workers=workers), max(repeats, 1)
    )
    if _fingerprint(parallel) != _fingerprint(sequential) or _fingerprint(
        parallel_warm
    ) != _fingerprint(sequential):
        raise AssertionError("campaign results differ across worker counts")

    events = sum(stat["events"] for stat in sequential.stats)
    events_per_sec = events / sequential_s
    return {
        "seed": BENCH_SEED,
        "cpus": os.cpu_count() or 1,
        "option": spec.option,
        "horizon_hours": horizon,
        "replications": replications,
        "workers": workers,
        "repeats": repeats,
        "events": events,
        "events_purged": sum(
            stat.get("events_purged", 0) for stat in sequential.stats
        ),
        "queue_compactions": sum(
            stat.get("queue_compactions", 0) for stat in sequential.stats
        ),
        "sequential_s": sequential_s,
        "parallel_cold_s": parallel_cold_s,
        "parallel_warm_s": parallel_warm_s,
        "speedup_parallel_warm": sequential_s / parallel_warm_s,
        "warm_vs_cold_pool": parallel_cold_s / parallel_warm_s,
        "events_per_second_sequential": events_per_sec,
        "baseline_events_per_second": BASELINE_EVENTS_PER_SEC,
        "speedup_vs_baseline": events_per_sec / BASELINE_EVENTS_PER_SEC,
        "bit_identical_across_workers": True,
    }


def _expressible_spec(horizon: float, replications: int) -> CampaignSpec:
    """A kernel-expressible campaign: scenario 1, no hazards, no crews."""
    return CampaignSpec(
        option="1S",
        horizon_hours=horizon,
        replications=replications,
        seed=BENCH_SEED,
        batches=4,
    )


def run_sim_batched_bench(
    horizon: float = 5000.0,
    replications: int = 384,
    scalar_replications: int = 4,
    repeats: int = 2,
) -> dict:
    """Time the struct-of-arrays lockstep kernel vs the scalar engine.

    The scalar engine is timed sequentially on a few replications of an
    expressible campaign; the kernel then advances a mega-batch of
    ``replications`` rows of the same workload in lockstep.  Throughput is
    compared per replication (identical simulated work per row), and the
    kernel's results are checked bit-identical against the scalar engine
    before any timing is trusted.  Returns the ``sim_batched``
    BENCH_perf.json section.
    """
    scalar_spec = _expressible_spec(horizon, scalar_replications)
    batched_spec = _expressible_spec(horizon, replications)

    # Equivalence first: same spec, both engines, == availabilities.
    scalar_probe = run_campaign(scalar_spec, batched="off")
    batched_probe = run_campaign(scalar_spec, batched="on")
    if _fingerprint(scalar_probe) != _fingerprint(batched_probe):
        raise AssertionError(
            "batched kernel results differ from the scalar engine"
        )

    scalar_s, scalar = _best_of(
        lambda: run_campaign(scalar_spec, batched="off"), repeats
    )
    scalar_events = sum(stat["events"] for stat in scalar.stats)
    scalar_rate = scalar_events / scalar_s
    events_per_replication = scalar_events / scalar_replications

    batched_s, batched = _best_of(
        lambda: run_campaign(batched_spec, batched="on"), repeats
    )
    live_events = sum(stat["events"] for stat in batched.stats)
    # Scalar-equivalent throughput: the kernel performs the same simulated
    # work per replication as the scalar engine (it just never materializes
    # stale events), so events/sec is normalized to scalar event counts.
    scalar_equivalent = events_per_replication * replications
    batched_rate = scalar_equivalent / batched_s
    speedup = batched_rate / scalar_rate

    return {
        "seed": BENCH_SEED,
        "cpus": os.cpu_count() or 1,
        "option": batched_spec.option,
        "horizon_hours": horizon,
        "replications": replications,
        "scalar_replications": scalar_replications,
        "repeats": repeats,
        "scalar_sequential_s": scalar_s,
        "scalar_events": scalar_events,
        "scalar_events_per_second": scalar_rate,
        "batched_s": batched_s,
        "batched_live_events": live_events,
        "events_per_second_scalar_equivalent": batched_rate,
        "speedup_vs_scalar_sequential": speedup,
        "baseline_events_per_second": BASELINE_EVENTS_PER_SEC,
        "speedup_vs_recorded_baseline": (
            batched_rate / BASELINE_EVENTS_PER_SEC
        ),
        "bit_identical_vs_scalar": True,
    }


def run_telemetry_overhead_bench(
    horizon: float = 4000.0,
    replications: int = 8,
    repeats: int = 3,
    telemetry_out: Path | None = None,
) -> dict:
    """Measure the streaming-telemetry tax on the sequential campaign.

    Runs the same workload with the JSONL telemetry sink off and on and
    returns the ``telemetry_overhead`` BENCH_perf.json section.  The
    instrumented run must stay bit-identical to the plain one — telemetry
    is observational only.  The event file holds the last instrumented
    repeat (earlier repeats are truncated away so event counts are
    per-run).
    """
    spec = _spec(horizon, replications)
    plain_s, plain = _best_of(
        lambda: run_campaign(spec, workers=1), repeats
    )

    path = (
        Path(telemetry_out)
        if telemetry_out is not None
        else REPO_ROOT / "telemetry_overhead.jsonl.tmp"
    )
    counts = {"events": 0}

    def instrumented_run():
        path.unlink(missing_ok=True)
        sink = telemetry.JsonlSink(path)
        telemetry.start([sink])
        try:
            return run_campaign(spec, workers=1)
        finally:
            telemetry.stop()
            counts["events"] = sink.events_written

    telemetry_s, instrumented = _best_of(instrumented_run, repeats)
    if telemetry_out is None:
        path.unlink(missing_ok=True)
    if _fingerprint(instrumented) != _fingerprint(plain):
        raise AssertionError(
            "telemetry-on campaign results differ from telemetry-off"
        )

    return {
        "seed": BENCH_SEED,
        "cpus": os.cpu_count() or 1,
        "horizon_hours": horizon,
        "replications": replications,
        "repeats": repeats,
        "plain_s": plain_s,
        "telemetry_s": telemetry_s,
        "overhead_s": telemetry_s - plain_s,
        "overhead_fraction": telemetry_s / plain_s - 1.0,
        "events_emitted": counts["events"],
        "telemetry_file": str(telemetry_out) if telemetry_out else None,
        "bit_identical_with_telemetry": True,
    }


def _report(
    record: dict,
    out_path: Path,
    telemetry_record: dict | None = None,
    batched_record: dict | None = None,
) -> None:
    rows = [
        (
            "sequential",
            f"{record['sequential_s'] * 1e3:.1f}",
            f"{record['events_per_second_sequential']:.0f}",
            f"{record['speedup_vs_baseline']:.2f}x",
        ),
        (
            f"parallel cold (w={record['workers']})",
            f"{record['parallel_cold_s'] * 1e3:.1f}",
            "-",
            "-",
        ),
        (
            f"parallel warm (w={record['workers']})",
            f"{record['parallel_warm_s'] * 1e3:.1f}",
            "-",
            f"{record['speedup_parallel_warm']:.2f}x",
        ),
    ]
    print(
        "\n"
        + format_table(
            ("Path", "Wall (ms)", "Events/s", "Speedup"),
            rows,
            title=(
                f"Sim engine ({record['events']} events, "
                f"{record['events_purged']} purged stale, "
                f"baseline {record['baseline_events_per_second']:.0f} ev/s)"
            ),
        )
    )
    if batched_record is not None:
        print(
            f"batched kernel: "
            f"{batched_record['events_per_second_scalar_equivalent']:,.0f} "
            f"scalar-equivalent ev/s over "
            f"{batched_record['replications']} lockstep replications — "
            f"{batched_record['speedup_vs_scalar_sequential']:.2f}x the "
            f"live scalar rate "
            f"({batched_record['scalar_events_per_second']:,.0f} ev/s), "
            f"{batched_record['speedup_vs_recorded_baseline']:.2f}x the "
            f"recorded pre-overhaul baseline"
        )
    if telemetry_record is not None:
        print(
            f"telemetry overhead: "
            f"{telemetry_record['overhead_fraction'] * 100:+.2f}% "
            f"({telemetry_record['telemetry_s'] * 1e3:.1f} ms vs "
            f"{telemetry_record['plain_s'] * 1e3:.1f} ms, "
            f"{telemetry_record['events_emitted']} events)"
        )
    merged = {}
    if out_path.exists():
        merged = json.loads(out_path.read_text(encoding="utf-8"))
    merged["sim_engine"] = record
    if telemetry_record is not None:
        merged["telemetry_overhead"] = telemetry_record
    if batched_record is not None:
        merged["sim_batched"] = batched_record
    out_path.write_text(
        json.dumps(merged, indent=2) + "\n", encoding="utf-8"
    )
    print(f"wrote {out_path}")


def _throughput_ok(record: dict, minimum: float | None = None) -> bool:
    """Sequential throughput target.

    The 3x target is measured against a baseline recorded on the repo's
    reference container at the full workload; foreign machines (CI runners
    with different per-core speed) only need to clear half of it.  An
    explicit ``minimum`` (events/sec floor) overrides the ratio test —
    the right gate for shrunk smoke workloads, whose per-replication
    simulator build dilutes events/sec — and only binds on runners with
    >= 2 CPUs (a single-core box is too weak/contended for an absolute
    floor to be meaningful).
    """
    if minimum is not None:
        if record["cpus"] < 2:
            return True
        return record["events_per_second_sequential"] >= minimum
    return record["speedup_vs_baseline"] >= 1.5


def _batched_ok(record: dict, minimum: float | None = None) -> bool:
    """Lockstep-kernel speedup target.

    The >= 5x target over the live sequential scalar rate holds on the
    repo's reference container at the full mega-batch workload (hundreds
    of lockstep rows — the kernel's fixed per-round numpy dispatch cost
    amortizes across rows).  Foreign machines need half of it; an explicit
    ``minimum`` (scalar-equivalent events/sec floor) overrides the ratio
    test for shrunk smoke workloads, and floors only bind on runners with
    >= 2 CPUs, like the other targets.
    """
    if minimum is not None:
        if record["cpus"] < 2:
            return True
        return record["events_per_second_scalar_equivalent"] >= minimum
    if record["cpus"] < 2:
        return record["speedup_vs_scalar_sequential"] >= 2.5
    return record["speedup_vs_scalar_sequential"] >= 5.0


def _parallel_ok(record: dict) -> bool:
    """Warm-pool parallel speedup > 1, only where the cores exist."""
    if record["cpus"] < 2:
        return True
    return record["speedup_parallel_warm"] > 1.0


def _telemetry_ok(record: dict) -> bool:
    """Streaming telemetry must cost < 5% on the sequential campaign.

    Gated like the other targets: single-core (or contended CI) boxes
    pass vacuously, and a sub-100 ms absolute delta passes regardless of
    the ratio — on smoke-sized workloads the ratio denominator is too
    small for a percentage to be meaningful.
    """
    if record["cpus"] < 2:
        return True
    if record["overhead_s"] < 0.1:
        return True
    return record["overhead_fraction"] < 0.05


def test_sim_engine():
    record = run_sim_engine_bench()
    telemetry_record = run_telemetry_overhead_bench()
    batched_record = run_sim_batched_bench()
    _report(record, DEFAULT_OUT, telemetry_record, batched_record)
    assert record["bit_identical_across_workers"]
    assert record["events"] > 0
    assert _throughput_ok(record)
    assert _parallel_ok(record)
    assert telemetry_record["bit_identical_with_telemetry"]
    assert _telemetry_ok(telemetry_record)
    assert batched_record["bit_identical_vs_scalar"]
    assert _batched_ok(batched_record)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--horizon", type=float, default=4000.0)
    parser.add_argument("--replications", type=int, default=8)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT)
    parser.add_argument(
        "--telemetry-out",
        type=Path,
        default=None,
        metavar="FILE.jsonl",
        help="keep the instrumented run's telemetry stream at this path",
    )
    parser.add_argument(
        "--min-events-per-sec",
        type=float,
        default=None,
        help="explicit sequential events/sec floor for --check",
    )
    parser.add_argument(
        "--batched-replications",
        type=int,
        default=384,
        help="lockstep rows for the sim_batched section",
    )
    parser.add_argument(
        "--batched-horizon",
        type=float,
        default=5000.0,
        help="horizon (hours) for the sim_batched workload",
    )
    parser.add_argument(
        "--min-batched-events-per-sec",
        type=float,
        default=None,
        help=(
            "explicit scalar-equivalent events/sec floor for the "
            "sim_batched --check (CPU-gated like the other floors)"
        ),
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="fail unless throughput and parallel targets are met",
    )
    args = parser.parse_args(argv)
    record = run_sim_engine_bench(
        horizon=args.horizon,
        replications=args.replications,
        workers=args.workers,
        repeats=args.repeats,
    )
    telemetry_record = run_telemetry_overhead_bench(
        horizon=args.horizon,
        replications=args.replications,
        repeats=args.repeats,
        telemetry_out=args.telemetry_out,
    )
    batched_record = run_sim_batched_bench(
        horizon=args.batched_horizon,
        replications=args.batched_replications,
        repeats=args.repeats,
    )
    _report(record, args.out, telemetry_record, batched_record)
    if args.check:
        assert _throughput_ok(record, args.min_events_per_sec)
        assert _parallel_ok(record)
        assert _telemetry_ok(telemetry_record)
        assert _batched_ok(batched_record, args.min_batched_events_per_sec)
    return 0


if __name__ == "__main__":
    sys.exit(main())
