"""How wrong is the independence assumption?  A fault-injection campaign.

Every analytic model in the paper multiplies independent element
availabilities.  Real deployments violate that in well-known ways —
common-cause software faults take out whole quorums, racks lose power as a
unit, maintenance is scheduled, repair crews are finite.  This example
loads the campaign spec next to this script (``campaign_small_ccf.json``:
beta-factor common cause over the Control and Database roles, a periodic
maintenance window on one host, two repair crews), simulates it, and puts
the measured availabilities next to what the independent analytic model
predicts for the *same* parameters.

Run with::

    python examples/fault_campaign.py
"""

import json
from dataclasses import replace
from pathlib import Path

from repro.faults import CampaignSpec, evaluate_campaign
from repro.reporting.faults import crossval_rows
from repro.reporting.tables import format_table

SPEC_PATH = Path(__file__).resolve().parent / "campaign_small_ccf.json"


def main() -> None:
    spec = CampaignSpec.from_json(SPEC_PATH.read_text(encoding="utf-8"))
    print(
        f"Campaign (option {spec.option}): "
        f"{spec.replications} replications x {spec.horizon_hours:.0f}h, "
        f"{len(spec.hazards)} hazards, spec hash {spec.params_hash()[:12]}\n"
    )

    # The degenerate control: same seed and horizon, hazards stripped.
    # beta=0 / unlimited crews / no maintenance *is* the independent model,
    # so this one must agree with the analytic prediction within its CI.
    control = evaluate_campaign(replace(spec, hazards=(), repair_crews=None))
    hazarded = evaluate_campaign(spec)

    for title, crossval in (
        ("degenerate control (no hazards)", control),
        ("with correlated hazards", hazarded),
    ):
        headers, rows = crossval_rows(crossval)
        print(format_table(headers, rows, title=title))
        result = crossval.result
        print(
            f"  injections: {result.total_injections()}, "
            f"repairs queued: {result.total_queued}\n"
        )

    drop = control.simulated("cp") - hazarded.simulated("cp")
    ratio = hazarded.unavailability_ratio("cp")
    print(
        f"Correlation costs {drop:.4f} of control-plane availability here —\n"
        f"the measured CP unavailability is {ratio:.1f}x what the\n"
        "independence assumption predicts.  The analytic column never\n"
        "moves: the gap is the model error a beta-factor hazard injects,\n"
        "which no amount of per-element redundancy tuning can see."
    )

    # Specs are plain JSON values: tweak, hash, and re-run reproducibly.
    record = json.loads(SPEC_PATH.read_text(encoding="utf-8"))
    assert CampaignSpec.from_dict(record) == spec


if __name__ == "__main__":
    main()
