"""Outage frequency and duration analysis.

Availability alone hides the paper's most operationally important point:
"the single-rack Small topology may experience no rack-related downtime for
many years followed by a highly-publicized extended outage.  A_R = 0.99999
could consist of a rack failure every 500 years, lasting two days".  Two
systems with identical availability can have wildly different outage
*frequency* and *duration* profiles, and "for a network or content or video
service provider with 500 edge sites, a yearly outage may be unacceptable".

This module quantifies that decomposition using the standard cut-set
frequency calculus for independent repairable components:

* a component with steady-state unavailability ``q`` and mean downtime
  ``d`` has failure frequency ``w = q / d`` (returns per hour);
* a minimal cut set ``C`` occurs with frequency
  ``w_C = (prod_{i in C} q_i) * (sum_{i in C} 1/d_i)`` — the cut is one
  repair away from completion, and any member's failure completes it;
* system outage frequency is (to rare-event order) the sum over minimal
  cut sets, and the mean outage duration is ``U_sys / w_sys``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from repro.errors import ParameterError
from repro.units import HOURS_PER_YEAR, check_probability, check_positive


@dataclass(frozen=True)
class ComponentDynamics:
    """Steady-state unavailability plus mean downtime of one component.

    ``unavailability = MTTR / (MTBF + MTTR)`` and ``mean_downtime_hours =
    MTTR``; together they determine the failure frequency without needing
    the MTBF separately.
    """

    unavailability: float
    mean_downtime_hours: float

    def __post_init__(self) -> None:
        check_probability(self.unavailability, "unavailability")
        check_positive(self.mean_downtime_hours, "mean_downtime_hours")
        if self.unavailability >= 1.0:
            raise ParameterError("a permanently-down component has no cycle")

    @property
    def failure_frequency_per_hour(self) -> float:
        """``w = q / d`` — how often the component goes down."""
        return self.unavailability / self.mean_downtime_hours

    @property
    def mtbf_hours(self) -> float:
        """Mean up time between failures implied by (q, d)."""
        q = self.unavailability
        return self.mean_downtime_hours * (1.0 - q) / q

    @classmethod
    def from_mtbf(cls, mtbf_hours: float, mttr_hours: float) -> "ComponentDynamics":
        check_positive(mtbf_hours, "mtbf_hours")
        check_positive(mttr_hours, "mttr_hours")
        return cls(
            unavailability=mttr_hours / (mtbf_hours + mttr_hours),
            mean_downtime_hours=mttr_hours,
        )


@dataclass(frozen=True)
class OutageProfile:
    """System-level outage statistics derived from minimal cut sets."""

    unavailability: float
    frequency_per_hour: float

    @property
    def outages_per_year(self) -> float:
        return self.frequency_per_hour * HOURS_PER_YEAR

    @property
    def mean_outage_hours(self) -> float:
        """Mean duration of one outage: ``U / w``."""
        if self.frequency_per_hour == 0.0:
            return 0.0
        return self.unavailability / self.frequency_per_hour

    @property
    def mean_years_between_outages(self) -> float:
        if self.frequency_per_hour == 0.0:
            return float("inf")
        return 1.0 / (self.frequency_per_hour * HOURS_PER_YEAR)

    @property
    def downtime_minutes_per_year(self) -> float:
        return self.unavailability * HOURS_PER_YEAR * 60.0


def cut_set_frequency(
    cut: Iterable[str],
    dynamics: Mapping[str, ComponentDynamics],
) -> float:
    """Occurrence frequency (per hour) of one minimal cut set.

    ``w_C = (prod q_i) * (sum 1/d_i)``: with all members down but one, the
    remaining member fails at rate ``~1/MTBF ~ q/d / q = 1/d * ...`` —
    equivalently, the cut event ends when any member repairs (total rate
    ``sum 1/d_i``) and has probability ``prod q_i``, so it must begin at
    the same rate in steady state.
    """
    members = list(cut)
    if not members:
        raise ParameterError("a cut set needs at least one component")
    probability = 1.0
    exit_rate = 0.0
    for name in members:
        try:
            component = dynamics[name]
        except KeyError:
            raise ParameterError(f"no dynamics for component {name!r}") from None
        probability *= component.unavailability
        exit_rate += 1.0 / component.mean_downtime_hours
    return probability * exit_rate


def system_outage_profile(
    cut_sets: Sequence[Iterable[str]],
    dynamics: Mapping[str, ComponentDynamics],
) -> OutageProfile:
    """Rare-event outage profile from minimal cut sets.

    Frequency is the sum of cut frequencies; unavailability the union
    bound.  Both are exact to first order in the component
    unavailabilities — the regime of every number in the paper.
    """
    frequency = 0.0
    unavailability = 0.0
    for cut in cut_sets:
        members = list(cut)
        frequency += cut_set_frequency(members, dynamics)
        probability = 1.0
        for name in members:
            probability *= dynamics[name].unavailability
        unavailability += probability
    return OutageProfile(
        unavailability=min(1.0, unavailability),
        frequency_per_hour=frequency,
    )


def paper_rack_dynamics() -> ComponentDynamics:
    """The paper's rack decomposition: a failure every 500 years, two days.

    Yields unavailability ~1.1e-5, consistent with ``A_R = 0.99999``.
    """
    return ComponentDynamics.from_mtbf(
        mtbf_hours=500.0 * HOURS_PER_YEAR, mttr_hours=48.0
    )
