"""Minimal cut sets and probability-ordered failure modes.

Section VI-G of the paper reasons about *dominant failure modes* ("one
Database supervisor failure and any Database process failure in another
node ..."), i.e. the most probable minimal cut sets of the availability
model.  This module computes minimal cut sets of any coherent structure
function exactly, estimates each set's occurrence probability, and ranks
them — the machinery behind :mod:`repro.models.failure_modes`.

A *cut set* is a set of components whose simultaneous failure takes the
system down (with all other components up); it is *minimal* when no proper
subset is also a cut set.  Dually, a *path set* is a set of components whose
joint operation keeps the system up.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.core.structure import StructureFunction
from repro.errors import ModelError
from repro.units import check_probability


def minimal_cut_sets(
    structure: StructureFunction, max_order: int | None = None
) -> list[frozenset[str]]:
    """All minimal cut sets of a coherent structure function.

    Searches subsets in increasing size order; a subset is a cut set when
    failing exactly those components (all others up) takes the system down,
    and is kept only if no already-found cut set is contained in it (which,
    given the size-ordered search and coherence, yields exactly the minimal
    sets).

    Args:
        structure: the system structure function.
        max_order: optionally stop after cut sets of this cardinality;
            high-availability analyses rarely need more than order 3.
    """
    names = structure.names
    all_up = {name: True for name in names}
    if not structure(all_up):
        raise ModelError("system is down with all components up; no cut sets")
    limit = len(names) if max_order is None else min(max_order, len(names))
    found: list[frozenset[str]] = []
    for size in range(1, limit + 1):
        for combo in itertools.combinations(names, size):
            candidate = frozenset(combo)
            if any(existing <= candidate for existing in found):
                continue
            state = dict(all_up)
            for name in combo:
                state[name] = False
            if not structure(state):
                found.append(candidate)
    return found


def minimal_path_sets(
    structure: StructureFunction, max_order: int | None = None
) -> list[frozenset[str]]:
    """All minimal path sets, via duality on the complemented structure."""
    names = structure.names
    dual = StructureFunction(
        names, lambda state: not structure({n: not state.get(n, True) for n in names})
    )
    return minimal_cut_sets(dual, max_order=max_order)


@dataclass(frozen=True)
class RankedCutSet:
    """A minimal cut set with its occurrence probability."""

    components: frozenset[str]
    probability: float

    @property
    def order(self) -> int:
        return len(self.components)


def rank_cut_sets(
    cut_sets: Sequence[frozenset[str]],
    unavailability: Mapping[str, float],
) -> list[RankedCutSet]:
    """Rank cut sets by the probability that all members are down.

    ``unavailability[name]`` is the per-component probability of being down.
    The product over a cut set is the rare-event (first-order) estimate of
    that failure mode's probability — the standard basis for "dominant
    failure mode" statements.  Returned most-probable first; ties broken by
    lower order then name for determinism.
    """
    ranked = []
    for cut in cut_sets:
        probability = 1.0
        for name in cut:
            q = unavailability.get(name)
            if q is None:
                raise ModelError(f"missing unavailability for component {name!r}")
            check_probability(q, name)
            probability *= q
        ranked.append(RankedCutSet(cut, probability))
    ranked.sort(key=lambda r: (-r.probability, r.order, tuple(sorted(r.components))))
    return ranked


def union_bound(ranked: Sequence[RankedCutSet]) -> float:
    """Upper bound on system unavailability: sum of cut-set probabilities.

    The rare-event approximation used implicitly throughout the paper's
    qualitative discussion; exact to first order in the per-component
    unavailabilities.
    """
    return min(1.0, sum(r.probability for r in ranked))


def exact_unavailability(
    cut_sets: Sequence[frozenset[str]],
    unavailability: Mapping[str, float],
) -> float:
    """Exact system unavailability via inclusion-exclusion over cut sets.

    ``P(system down) = P(union of cut events)`` where a cut event is "all
    components in the cut are down".  Exponential in ``len(cut_sets)``;
    intended as a test oracle for small systems.
    """
    sets = list(cut_sets)
    total = 0.0
    for r in range(1, len(sets) + 1):
        sign = 1.0 if r % 2 == 1 else -1.0
        for combo in itertools.combinations(sets, r):
            union: frozenset[str] = frozenset().union(*combo)
            probability = 1.0
            for name in union:
                probability *= unavailability[name]
            total += sign * probability
    return min(1.0, max(0.0, total))
