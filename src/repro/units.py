"""Availability units and conversions.

The paper expresses resiliency interchangeably as an availability fraction
(e.g. ``0.99999``), annual downtime in minutes per year (``m/y``), "nines"
(``5`` nines), and MTBF/MTTR pairs (``A = MTTF/(MTTF+MTTR)``).  This module
provides the conversions among those representations, used throughout the
models, analyses, and benchmark harnesses.

The paper's downtime figures are quoted in minutes per *calendar* year; we
use the 365.25-day Julian year (525 960 minutes) by default, matching the
paper's quoted values (e.g. availability 0.999989 -> "5.9 minutes/year"), and
expose the constant so callers may substitute a 365-day year.
"""

from __future__ import annotations

import math

from repro.errors import ParameterError

#: Minutes in a Julian year (365.25 days), the paper's downtime denominator.
MINUTES_PER_YEAR: float = 365.25 * 24 * 60

#: Hours in a Julian year.
HOURS_PER_YEAR: float = 365.25 * 24


def check_probability(value: float, name: str = "probability") -> float:
    """Validate that ``value`` lies in the closed interval ``[0, 1]``.

    Returns the value unchanged so the function can be used inline::

        self.a_host = check_probability(a_host, "A_H")

    Raises:
        ParameterError: if ``value`` is not a finite number in ``[0, 1]``.
    """
    try:
        numeric = float(value)
    except (TypeError, ValueError) as exc:
        raise ParameterError(f"{name} must be a real number, got {value!r}") from exc
    if math.isnan(numeric) or not 0.0 <= numeric <= 1.0:
        raise ParameterError(f"{name} must be in [0, 1], got {numeric!r}")
    return numeric


def check_positive(value: float, name: str = "value") -> float:
    """Validate that ``value`` is a finite, strictly positive number."""
    try:
        numeric = float(value)
    except (TypeError, ValueError) as exc:
        raise ParameterError(f"{name} must be a real number, got {value!r}") from exc
    if not math.isfinite(numeric) or numeric <= 0.0:
        raise ParameterError(f"{name} must be finite and > 0, got {numeric!r}")
    return numeric


def availability_from_mtbf(mtbf: float, mttr: float) -> float:
    """Steady-state availability ``A = MTBF / (MTBF + MTTR)``.

    ``mtbf`` and ``mttr`` must share a time unit (the paper uses hours).
    ``mttr`` may be zero (a never-failing or instantly-repaired element).
    """
    check_positive(mtbf, "MTBF")
    if mttr < 0:
        raise ParameterError(f"MTTR must be >= 0, got {mttr!r}")
    return mtbf / (mtbf + mttr)


def mttr_from_availability(availability: float, mtbf: float) -> float:
    """Invert ``A = MTBF/(MTBF+MTTR)`` to recover the MTTR."""
    check_probability(availability, "availability")
    check_positive(mtbf, "MTBF")
    if availability == 0.0:
        raise ParameterError("availability 0 implies infinite MTTR")
    return mtbf * (1.0 - availability) / availability


def downtime_minutes_per_year(
    availability: float, minutes_per_year: float = MINUTES_PER_YEAR
) -> float:
    """Annual downtime in minutes implied by a steady-state availability."""
    check_probability(availability, "availability")
    return (1.0 - availability) * minutes_per_year


def availability_from_downtime(
    minutes: float, minutes_per_year: float = MINUTES_PER_YEAR
) -> float:
    """Availability implied by an annual downtime of ``minutes`` per year."""
    if minutes < 0 or minutes > minutes_per_year:
        raise ParameterError(
            f"annual downtime must be in [0, {minutes_per_year}], got {minutes!r}"
        )
    return 1.0 - minutes / minutes_per_year


def nines(availability: float) -> float:
    """Number of "nines" of availability: ``-log10(1 - A)``.

    ``A = 0.999`` -> 3.0; ``A = 0.99995`` -> ~4.3.  Returns ``inf`` for a
    perfectly available element.
    """
    check_probability(availability, "availability")
    if availability == 1.0:
        return math.inf
    return -math.log10(1.0 - availability)


def availability_from_nines(n: float) -> float:
    """Availability with ``n`` nines: ``1 - 10**-n``."""
    if n < 0:
        raise ParameterError(f"nines must be >= 0, got {n!r}")
    return 1.0 - 10.0 ** (-n)


def scale_downtime(availability: float, orders_of_magnitude: float) -> float:
    """Scale an availability by orders of magnitude of *downtime*.

    This is the x-axis transformation of the paper's Figs. 4-5: the sweep
    variable ``x in [-1, +1]`` maps a default availability ``A`` to an
    availability with ``10**-x`` times the downtime, i.e.::

        A(x) = 1 - (1 - A) * 10**(-x)

    ``x = -1`` means one order of magnitude *more* downtime (10x less
    reliable); ``x = +1`` means one order of magnitude *less* downtime.
    """
    check_probability(availability, "availability")
    scaled_downtime = (1.0 - availability) * 10.0 ** (-orders_of_magnitude)
    if scaled_downtime > 1.0:
        raise ParameterError(
            "scaling by {0:+g} orders pushes unavailability above 1".format(
                orders_of_magnitude
            )
        )
    return 1.0 - scaled_downtime
