"""End-to-end controller simulation tests (repro.sim.controller_sim / validate).

These use stressed parameters (availabilities around 0.95-0.999) so that
failures occur within modest horizons; the validation criterion is the
unavailability ratio against the closed-form models computed from the
*same* parameters.
"""

import pytest

from repro.params.software import RestartScenario
from repro.sim.controller_sim import (
    SimulationConfig,
    build_simulator,
    simulate_controller,
)
from repro.sim.validate import validate_against_analytic

S1 = RestartScenario.NOT_REQUIRED
S2 = RestartScenario.REQUIRED


def config(horizon=40_000.0, seed=17):
    return SimulationConfig(
        seed=seed,
        horizon_hours=horizon,
        batches=8,
        rack_mtbf_hours=2000.0,
        host_mtbf_hours=1000.0,
        vm_mtbf_hours=500.0,
    )


class TestConstruction:
    def test_component_inventory_small(
        self, spec, small, stressed_hardware, stressed_software
    ):
        sim = build_simulator(
            spec, small, stressed_hardware, stressed_software, S2, config()
        )
        keys = set(sim.components)
        # 1 rack + 3 hosts + 3 VMs + 12 supervisors + 54 regular cluster
        # processes (18 Table-I processes x 3 nodes) + the local vRouter.
        assert sum(k.startswith("rack:") for k in keys) == 1
        assert sum(k.startswith("host:") for k in keys) == 3
        assert sum(k.startswith("vm:") for k in keys) == 3
        assert sum(k.startswith("sup:") for k in keys) == 12
        assert sum(k.startswith("proc:") for k in keys) == 54
        assert "local:supervisor" in keys
        assert "local:vrouter-agent" in keys

    def test_scenario2_processes_depend_on_supervisor(
        self, spec, small, stressed_hardware, stressed_software
    ):
        sim = build_simulator(
            spec, small, stressed_hardware, stressed_software, S2, config()
        )
        proc = sim.components["proc:Database/kafka-1"]
        assert "sup:Database-1" in proc.dependencies

    def test_scenario1_processes_independent_of_supervisor(
        self, spec, small, stressed_hardware, stressed_software
    ):
        sim = build_simulator(
            spec, small, stressed_hardware, stressed_software, S1, config()
        )
        proc = sim.components["proc:Database/kafka-1"]
        assert all(not d.startswith("sup:") for d in proc.dependencies)


@pytest.mark.slow
class TestScenario2Agreement:
    """Scenario 2 has no window approximation; agreement should be tight."""

    @pytest.mark.parametrize("name", ["small", "large"])
    def test_dp_ratio_near_one(
        self, spec, stressed_hardware, stressed_software, name, request
    ):
        topology = request.getfixturevalue(name)
        report = validate_against_analytic(
            spec,
            topology,
            name,
            stressed_hardware,
            stressed_software,
            S2,
            config(),
        )
        assert report.unavailability_ratio("ldp") == pytest.approx(1.0, abs=0.2)
        assert report.unavailability_ratio("dp") == pytest.approx(1.0, abs=0.2)

    def test_cp_ratio_reasonable(
        self, spec, small, stressed_hardware, stressed_software
    ):
        report = validate_against_analytic(
            spec, small, "small", stressed_hardware, stressed_software, S2,
            config(),
        )
        # The simulator's supervisor-restores-processes coupling makes it
        # slightly *more* available than the independence-based analytic;
        # the ratio sits below but near 1.
        assert 0.6 < report.unavailability_ratio("cp") < 1.3


@pytest.mark.slow
class TestScenario1Agreement:
    def test_ldp_matches_effective_availability(
        self, spec, small, stressed_hardware, stressed_software
    ):
        report = validate_against_analytic(
            spec, small, "small", stressed_hardware, stressed_software, S1,
            config(horizon=60_000.0),
        )
        # With the A* correction the local DP agrees within ~15%.
        assert report.unavailability_ratio("ldp") == pytest.approx(
            1.0, abs=0.2
        )

    def test_cp_ratio_reasonable(
        self, spec, large, stressed_hardware, stressed_software
    ):
        report = validate_against_analytic(
            spec, large, "large", stressed_hardware, stressed_software, S1,
            config(),
        )
        assert 0.6 < report.unavailability_ratio("cp") < 1.4


class TestResultShape:
    def test_intervals_present(
        self, spec, small, stressed_hardware, stressed_software
    ):
        result = simulate_controller(
            spec, small, stressed_hardware, stressed_software, S2,
            config(horizon=5_000.0),
        )
        for plane in ("cp", "sdp", "ldp", "dp"):
            ci = result.interval(plane)
            # The normal-approximation half-width may push past 1 for
            # near-perfect signals; the mean itself must be a probability.
            assert ci.low <= ci.mean <= ci.high
            assert 0.0 <= ci.mean <= 1.0

    def test_dp_never_exceeds_components(
        self, spec, small, stressed_hardware, stressed_software
    ):
        result = simulate_controller(
            spec, small, stressed_hardware, stressed_software, S2,
            config(horizon=5_000.0),
        )
        assert result.dp <= result.shared_dp + 1e-12
        assert result.dp <= result.local_dp + 1e-12

    def test_seed_reproducibility(
        self, spec, small, stressed_hardware, stressed_software
    ):
        runs = [
            simulate_controller(
                spec, small, stressed_hardware, stressed_software, S1,
                config(horizon=3_000.0, seed=23),
            ).cp
            for _ in range(2)
        ]
        assert runs[0] == runs[1]
