"""The global observability runtime — zero-cost when disabled.

Instrumented code never holds a tracer or registry directly; it calls the
module-level helpers here (:func:`span`, :func:`count`, :func:`gauge`,
:func:`observe`, :func:`note_solver`, :func:`annotate`).  When no
:class:`ObsSession` is active — the default — every helper is a single
``None`` check returning a shared no-op object, so the hot paths (exact
engine evaluations, Monte-Carlo chunks, simulator event loops) pay
effectively nothing; the acceptance bench bounds the disabled-mode overhead
of the 10k-sample Monte-Carlo run below 5%.

Instrumentation is *observational only*: no helper touches random state or
feeds back into model code, so an instrumented run is bit-identical to an
uninstrumented one (enforced by ``tests/test_obs_determinism.py``).

Typical session::

    from repro.obs import runtime as obs

    session = obs.start("sweep-study")
    with obs.span("sweep", points=2001):
        result = fig3_series_vectorized(hardware, points=2001)
    manifest = session.build_manifest(arguments={"points": 2001})
    obs.stop()
    manifest.write("trace.json")

Worker processes spawned by the parallel runners inherit nothing: a child
process starts with the runtime disabled, which keeps chunk evaluation
identical no matter where it runs.
"""

from __future__ import annotations

import functools
from contextlib import contextmanager
from typing import Any, Callable, Iterator, Mapping

from repro.errors import ObservabilityError
from repro.obs.manifest import PhaseTiming, RunManifest
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer

__all__ = [
    "ObsSession",
    "start",
    "stop",
    "active",
    "enabled",
    "session",
    "span",
    "traced",
    "count",
    "gauge",
    "observe",
    "note_solver",
    "annotate",
]


class ObsSession:
    """One instrumented run: a tracer, a metrics registry, and provenance."""

    def __init__(self, command: str = ""):
        self.command = command
        self.tracer = Tracer()
        self.metrics = MetricsRegistry()
        self.solver_path: list[str] = []
        self.annotations: dict[str, Any] = {}

    def note_solver(self, label: str) -> None:
        """Record that an evaluation route was exercised (order-preserving)."""
        if label not in self.solver_path:
            self.solver_path.append(label)

    def annotate(self, key: str, value: Any) -> None:
        """Attach provenance (topology name, seed material) to the session."""
        self.annotations[key] = value

    def build_manifest(
        self,
        arguments: Mapping[str, Any] | None = None,
        topology: str | None = None,
        seed: Mapping[str, Any] | None = None,
    ) -> RunManifest:
        """Assemble the :class:`RunManifest` for everything recorded so far.

        ``topology``/``seed`` fall back to the session annotations
        (``"topology"`` and any ``"seed.*"`` keys) that instrumented layers
        recorded during the run.
        """
        if topology is None:
            annotated = self.annotations.get("topology")
            topology = annotated if isinstance(annotated, str) else None
        seed_material = {
            key.split(".", 1)[1]: value
            for key, value in self.annotations.items()
            if key.startswith("seed.")
        }
        seed_material.update(dict(seed or {}))
        phases = tuple(
            PhaseTiming(name=root.name, seconds=root.duration)
            for root in self.tracer.roots()
        )
        return RunManifest.build(
            command=self.command,
            arguments=arguments,
            topology=topology,
            seed=seed_material,
            solver_path=tuple(self.solver_path),
            phases=phases,
            metrics=self.metrics.snapshot(),
            spans=tuple(span.to_dict() for span in self.tracer.spans),
        )


class _NullSpan:
    """Shared no-op context manager returned while the runtime is disabled."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc_info) -> bool:
        return False


_NULL_SPAN = _NullSpan()
_session: ObsSession | None = None


def start(command: str = "") -> ObsSession:
    """Activate a fresh session; raises if one is already active."""
    global _session
    if _session is not None:
        raise ObservabilityError(
            "an observability session is already active; stop() it first"
        )
    _session = ObsSession(command)
    return _session


def stop() -> ObsSession | None:
    """Deactivate and return the current session (``None`` if inactive)."""
    global _session
    finished, _session = _session, None
    return finished


def active() -> ObsSession | None:
    """The current session, or ``None``."""
    return _session


def enabled() -> bool:
    """True while a session is active (instrumentation is recording)."""
    return _session is not None


@contextmanager
def session(command: str = "") -> Iterator[ObsSession]:
    """``with session("study") as s: ...`` — start/stop bracketed."""
    current = start(command)
    try:
        yield current
    finally:
        stop()


# -- hot-path helpers (no-ops while disabled) ----------------------------------


def span(name: str, **attrs: Any):
    """A timed span under the active tracer, or a shared no-op."""
    current = _session
    if current is None:
        return _NULL_SPAN
    return current.tracer.span(name, **attrs)


def traced(name: str | None = None) -> Callable:
    """Decorator: time calls as spans whenever a session is active."""

    def decorate(fn: Callable) -> Callable:
        span_name = name or fn.__qualname__

        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            current = _session
            if current is None:
                return fn(*args, **kwargs)
            with current.tracer.span(span_name):
                return fn(*args, **kwargs)

        return wrapper

    return decorate


def count(name: str, amount: float = 1.0) -> None:
    """Increment a counter (no-op while disabled)."""
    current = _session
    if current is not None:
        current.metrics.counter(name).increment(amount)


def gauge(name: str, value: float) -> None:
    """Set a gauge (no-op while disabled)."""
    current = _session
    if current is not None:
        current.metrics.gauge(name).set(value)


def observe(name: str, value: float) -> None:
    """Record a duration in a timing histogram (no-op while disabled)."""
    current = _session
    if current is not None:
        current.metrics.histogram(name).observe(value)


def note_solver(label: str) -> None:
    """Record the evaluation route on the active session's solver path."""
    current = _session
    if current is not None:
        current.note_solver(label)


def annotate(key: str, value: Any) -> None:
    """Attach provenance to the active session (no-op while disabled)."""
    current = _session
    if current is not None:
        current.annotate(key, value)
