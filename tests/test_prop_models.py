"""Property-based tests on the paper's availability models."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.controller.opencontrail import opencontrail_3x
from repro.controller.spec import Plane
from repro.models.hw_closed import hw_large, hw_medium, hw_small
from repro.models.sw import cp_availability, plane_availability
from repro.params.hardware import HardwareParams
from repro.params.software import RestartScenario, SoftwareParams

SPEC = opencontrail_3x()

hw_availabilities = st.floats(min_value=0.5, max_value=1.0, allow_nan=False)
sw_availabilities = st.floats(min_value=0.6, max_value=0.999999, allow_nan=False)


@st.composite
def hardware_params(draw):
    return HardwareParams(
        a_role=draw(hw_availabilities),
        a_vm=draw(hw_availabilities),
        a_host=draw(hw_availabilities),
        a_rack=draw(hw_availabilities),
    )


@st.composite
def software_params(draw):
    a = draw(sw_availabilities)
    a_s = draw(st.floats(min_value=0.5, max_value=1.0, allow_nan=False)) * a
    a_s = max(a_s, 1e-6)
    return SoftwareParams.from_availabilities(a, a_s)


class TestHwModelProperties:
    @given(params=hardware_params())
    @settings(max_examples=60)
    def test_results_are_probabilities(self, params):
        for model in (hw_small, hw_medium, hw_large):
            value = model(params)
            assert 0.0 <= value <= 1.0

    @given(params=hardware_params())
    @settings(max_examples=60)
    def test_two_racks_never_beat_one(self, params):
        # The "one rack or three, not two" law holds across the whole
        # parameter space, not just at the defaults.
        assert hw_medium(params) <= hw_small(params) + 1e-12

    @given(params=hardware_params(), factor=st.floats(0.9, 1.0))
    @settings(max_examples=40)
    def test_monotone_in_role_availability(self, params, factor):
        degraded = params.with_role_availability(params.a_role * factor)
        for model in (hw_small, hw_medium, hw_large):
            assert model(degraded) <= model(params) + 1e-12

    @given(params=hardware_params())
    @settings(max_examples=40)
    def test_upper_bounded_by_perfect_roles(self, params):
        perfect = params.with_role_availability(1.0)
        for model in (hw_small, hw_medium, hw_large):
            assert model(params) <= model(perfect) + 1e-12


class TestSwModelProperties:
    @given(hardware=hardware_params(), software=software_params())
    @settings(max_examples=30, deadline=None)
    def test_cp_is_probability(self, hardware, software):
        for topology in ("small", "medium", "large"):
            for scenario in RestartScenario:
                value = cp_availability(
                    SPEC, topology, hardware, software, scenario
                )
                assert 0.0 <= value <= 1.0

    @given(hardware=hardware_params(), software=software_params())
    @settings(max_examples=30, deadline=None)
    def test_scenario2_never_better(self, hardware, software):
        for topology in ("small", "large"):
            a1 = cp_availability(
                SPEC, topology, hardware, software,
                RestartScenario.NOT_REQUIRED,
            )
            a2 = cp_availability(
                SPEC, topology, hardware, software, RestartScenario.REQUIRED
            )
            assert a2 <= a1 + 1e-12

    @given(hardware=hardware_params(), software=software_params())
    @settings(max_examples=30, deadline=None)
    def test_shared_dp_at_least_cp(self, hardware, software):
        # The DP requires a strict subset of the CP's quorum blocks per
        # role... not a subset relation in general, but with Table III
        # (DP: 2 one-of-n units vs CP: 16 units incl. all DP members'
        # availabilities) the DP shared availability dominates.
        for topology in ("small", "large"):
            cp = plane_availability(
                SPEC, Plane.CP, topology, hardware, software,
                RestartScenario.NOT_REQUIRED,
            )
            dp = plane_availability(
                SPEC, Plane.DP, topology, hardware, software,
                RestartScenario.NOT_REQUIRED,
            )
            assert dp >= cp - 1e-12
