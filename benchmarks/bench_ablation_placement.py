"""A6 — placement ablation: which layouts actually buy availability?

Uses the exact engine on layouts the paper has no closed form for:

* *CrossRackSmall* — Small's 3 hosts, one per rack.  Captures essentially
  all of Large's availability at a quarter of the hosts, isolating rack
  diversity (not host count) as the active ingredient of section V's
  S -> L improvement.
* *DatabaseSpread* — only the quorum role crosses racks.  Fails: the
  co-located 1-of-3 roles keep rack R1 an order-1 cut.
"""

import pytest

from repro.controller.spec import Plane
from repro.models.sw import plane_availability_exact
from repro.params.software import RestartScenario
from repro.reporting.tables import format_table
from repro.topology.custom import (
    cross_rack_small,
    database_spread,
    hardware_footprint,
)
from repro.topology.reference import large_topology, small_topology
from repro.units import downtime_minutes_per_year


def evaluate_layouts(spec, hardware, software):
    layouts = (
        small_topology(spec),
        cross_rack_small(spec),
        database_spread(spec),
        large_topology(spec),
    )
    rows = []
    for topology in layouts:
        availability = plane_availability_exact(
            spec, Plane.CP, topology, hardware, software,
            RestartScenario.NOT_REQUIRED,
        )
        rows.append((topology.name, hardware_footprint(topology), availability))
    return rows


def test_placement_ablation(benchmark, spec, hardware, software):
    rows = benchmark(evaluate_layouts, spec, hardware, software)
    print(
        "\n"
        + format_table(
            ("Layout", "Racks", "Hosts", "VMs", "A_CP", "Downtime m/y"),
            [
                (
                    name,
                    racks,
                    hosts,
                    vms,
                    f"{a:.8f}",
                    f"{downtime_minutes_per_year(a):.2f}",
                )
                for name, (racks, hosts, vms), a in rows
            ],
            title="Ablation A6: placement layouts (exact engine, option 1*)",
        )
    )
    values = {name: a for name, _, a in rows}
    # Rack diversity is the active ingredient: 3 hosts across 3 racks
    # recovers ~all of Large's benefit.
    assert values["CrossRackSmall"] > values["Small"]
    gap_large = 1 - values["Large"]
    gap_cross = 1 - values["CrossRackSmall"]
    assert gap_cross == pytest.approx(gap_large, rel=0.25)
    # Spreading only the Database role is NOT enough: rack R1 still kills
    # the co-located 1-of-3 roles.
    assert values["DatabaseSpread"] < values["CrossRackSmall"]
    assert 1 - values["DatabaseSpread"] == pytest.approx(
        1 - values["Small"], rel=0.25
    )
