"""Span-based tracing with monotonic timings and nesting.

A :class:`Tracer` records *spans* — named, timed sections of work — as they
complete.  Spans nest: a span opened while another is active records that
span as its parent, so the collected list reconstructs the call tree of an
instrumented run.  Timings come from ``time.perf_counter`` (monotonic, not
wall-clock), expressed relative to the tracer's creation so a trace is
self-contained.

Two entry styles are provided, mirroring the usual tracing APIs:

* context manager — ``with tracer.span("engine.evaluate", roles=3): ...``
* decorator — ``@tracer.wrap("mc.chunk")`` times every call of a function.

Tracers only *observe*: they never touch random state and attach no
behavior to the traced code, which is what lets the determinism tests
demand bit-identical results with tracing on and off.  Most code should not
hold a tracer directly but go through :mod:`repro.obs.runtime`, whose
module-level helpers collapse to no-ops when no session is active.

Alongside in-process spans this module carries the *cross-boundary* trace
context: :class:`TraceContext` is a W3C-``traceparent``-shaped
``(trace_id, span_id, parent_span_id)`` triple assigned per HTTP request
by :mod:`repro.serve.app`, installed with :func:`trace_scope` (a
:mod:`contextvars` scope, so it follows ``await`` chains and
``asyncio.to_thread`` hops), and shipped as a plain dict across the
process-pool boundary by :func:`repro.perf.parallel.dispatch_chunks`.  Ids
come from ``os.urandom`` — never from the seeded simulation generators —
so installing, propagating, or dropping a context cannot perturb results.
"""

from __future__ import annotations

import contextlib
import functools
import os
import time
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Mapping

__all__ = [
    "Span",
    "TraceContext",
    "Tracer",
    "current_trace",
    "new_span_id",
    "new_trace_id",
    "trace_scope",
]


def new_trace_id() -> str:
    """A fresh 128-bit trace id (32 hex chars), from ``os.urandom``."""
    return os.urandom(16).hex()


def new_span_id() -> str:
    """A fresh 64-bit span id (16 hex chars), from ``os.urandom``."""
    return os.urandom(8).hex()


@dataclass(frozen=True)
class TraceContext:
    """One position in a distributed trace (W3C trace-context shaped).

    Attributes:
        trace_id: 32-hex-char id shared by every span of one request.
        span_id: 16-hex-char id of the current span.
        parent_span_id: the span this one was forked from, or ``None``
            at the root (the HTTP request itself).
    """

    trace_id: str
    span_id: str
    parent_span_id: str | None = None

    @classmethod
    def new(cls) -> "TraceContext":
        """A fresh root context (new trace id, new span id, no parent)."""
        return cls(trace_id=new_trace_id(), span_id=new_span_id())

    def child(self) -> "TraceContext":
        """A child context: same trace, new span, parented to this one."""
        return TraceContext(
            trace_id=self.trace_id,
            span_id=new_span_id(),
            parent_span_id=self.span_id,
        )

    @property
    def traceparent(self) -> str:
        """The W3C ``traceparent`` header value for this context."""
        return f"00-{self.trace_id}-{self.span_id}-01"

    @classmethod
    def from_traceparent(cls, header: str | None) -> "TraceContext | None":
        """Parse a ``traceparent`` header; ``None`` when absent/malformed.

        A parsed header yields a *child* of the caller's span (their span
        id becomes ``parent_span_id``), which is how an upstream trace
        continues through this service.
        """
        if not header:
            return None
        parts = header.strip().split("-")
        if len(parts) < 4:
            return None
        _, trace_id, span_id = parts[0], parts[1], parts[2]
        if len(trace_id) != 32 or len(span_id) != 16:
            return None
        try:
            int(trace_id, 16), int(span_id, 16)
        except ValueError:
            return None
        return cls(
            trace_id=trace_id.lower(),
            span_id=new_span_id(),
            parent_span_id=span_id.lower(),
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_span_id": self.parent_span_id,
        }

    @classmethod
    def from_dict(cls, record: Mapping[str, Any]) -> "TraceContext":
        return cls(
            trace_id=str(record["trace_id"]),
            span_id=str(record["span_id"]),
            parent_span_id=(
                None
                if record.get("parent_span_id") is None
                else str(record["parent_span_id"])
            ),
        )


_CURRENT_TRACE: ContextVar[TraceContext | None] = ContextVar(
    "repro_trace_context", default=None
)


def current_trace() -> TraceContext | None:
    """The installed :class:`TraceContext`, or ``None`` outside any scope."""
    return _CURRENT_TRACE.get()


@contextlib.contextmanager
def trace_scope(context: TraceContext | None) -> Iterator[TraceContext | None]:
    """Install ``context`` for the body (``None`` clears any outer scope).

    Context variables follow ``await`` chains and are snapshotted into
    ``asyncio.to_thread`` workers, so a scope opened in a request handler
    is visible to the blocking campaign code the handler hops to.
    """
    token = _CURRENT_TRACE.set(context)
    try:
        yield context
    finally:
        _CURRENT_TRACE.reset(token)


@dataclass(frozen=True)
class Span:
    """One completed, timed section of work.

    Attributes:
        name: dotted span name (``"engine.evaluate_topology"``).
        start: seconds since the tracer's epoch at which the span opened.
        duration: elapsed monotonic seconds.
        depth: nesting depth (0 for top-level spans).
        parent: name of the enclosing span, or ``None`` at top level.
        attrs: small JSON-serializable attributes (grid sizes, counts...).
    """

    name: str
    start: float
    duration: float
    depth: int
    parent: str | None
    attrs: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "start": self.start,
            "duration": self.duration,
            "depth": self.depth,
            "parent": self.parent,
            "attrs": dict(self.attrs),
        }

    @classmethod
    def from_dict(cls, record: dict[str, Any]) -> "Span":
        return cls(
            name=record["name"],
            start=record["start"],
            duration=record["duration"],
            depth=record["depth"],
            parent=record["parent"],
            attrs=dict(record.get("attrs", {})),
        )


class _ActiveSpan:
    """Context manager for one open span (appends to the tracer on exit)."""

    __slots__ = ("_tracer", "name", "attrs", "_start")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict[str, Any]):
        self._tracer = tracer
        self.name = name
        self.attrs = attrs
        self._start = 0.0

    def __enter__(self) -> "_ActiveSpan":
        self._start = self._tracer._clock()
        self._tracer._stack.append(self)
        return self

    def __exit__(self, *exc_info) -> bool:
        tracer = self._tracer
        end = tracer._clock()
        stack = tracer._stack
        stack.pop()
        parent = stack[-1].name if stack else None
        tracer.spans.append(
            Span(
                name=self.name,
                start=self._start - tracer._epoch,
                duration=end - self._start,
                depth=len(stack),
                parent=parent,
                attrs=self.attrs,
            )
        )
        return False


class Tracer:
    """Collects nested :class:`Span` records under one monotonic clock.

    Spans are appended in *completion* order (children before parents);
    :meth:`roots` recovers the top-level phases in start order.
    """

    def __init__(self, clock: Callable[[], float] = time.perf_counter):
        self._clock = clock
        self._epoch = clock()
        self._stack: list[_ActiveSpan] = []
        self.spans: list[Span] = []

    def span(self, name: str, **attrs: Any) -> _ActiveSpan:
        """Open a span: ``with tracer.span("phase", size=n): ...``."""
        return _ActiveSpan(self, name, attrs)

    def wrap(self, name: str | None = None) -> Callable:
        """Decorator timing every call of the wrapped function as a span."""

        def decorate(fn: Callable) -> Callable:
            span_name = name or fn.__qualname__

            @functools.wraps(fn)
            def wrapper(*args, **kwargs):
                with self.span(span_name):
                    return fn(*args, **kwargs)

            return wrapper

        return decorate

    @property
    def depth(self) -> int:
        """Current nesting depth (number of open spans)."""
        return len(self._stack)

    def roots(self) -> list[Span]:
        """Completed top-level spans, in start order."""
        return sorted(
            (s for s in self.spans if s.depth == 0), key=lambda s: s.start
        )

    def total(self, name: str) -> float:
        """Summed duration of all completed spans called ``name``."""
        return sum(s.duration for s in self.spans if s.name == name)
