"""k-of-n repairable blocks as CTMCs.

With per-component exponential failure rate ``lam`` and repair rate ``mu``,
the number of *failed* components is a birth-death CTMC.  Two repair
policies are modeled:

* **independent repair** (one crew per component) — repair rate from ``i``
  failed is ``i * mu``.  The steady-state up-probability of the block then
  equals the paper's Eq. (1) with ``alpha = mu / (lam + mu)``, because the
  components are independent in steady state.  This is the cross-validation
  used by the tests.
* **shared repair** (a single crew) — repair rate is ``mu`` regardless of
  the backlog.  The resulting availability is strictly lower for n > 1;
  the combinatorial Eq. (1) cannot express this, which is exactly why the
  Markov substrate earns its place (ablation A4).
"""

from __future__ import annotations

from repro.core.kofn import a_m_of_n
from repro.errors import ParameterError
from repro.markov.ctmc import Ctmc
from repro.units import check_positive


def kofn_chain(
    n: int, lam: float, mu: float, shared_repair: bool = False
) -> Ctmc:
    """The birth-death CTMC on the number of failed components (0..n)."""
    if n < 1:
        raise ParameterError(f"n must be >= 1, got {n}")
    check_positive(lam, "failure rate lam")
    check_positive(mu, "repair rate mu")
    chain = Ctmc()
    for failed in range(n + 1):
        chain.add_state(failed)
    for failed in range(n):
        chain.add_transition(failed, failed + 1, (n - failed) * lam)
    for failed in range(1, n + 1):
        rate = mu if shared_repair else failed * mu
        chain.add_transition(failed, failed - 1, rate)
    return chain


def kofn_availability_markov(
    m: int, n: int, lam: float, mu: float, shared_repair: bool = False
) -> float:
    """Steady-state probability that at least ``m`` of ``n`` components are up."""
    if m <= 0:
        return 1.0
    if m > n:
        return 0.0
    chain = kofn_chain(n, lam, mu, shared_repair=shared_repair)
    max_failed = n - m
    return chain.probability(lambda failed: failed <= max_failed)


def kofn_availability_rbd(m: int, n: int, lam: float, mu: float) -> float:
    """Eq. (1) with ``alpha = mu/(lam+mu)`` — the independent-repair oracle."""
    check_positive(lam, "failure rate lam")
    check_positive(mu, "repair rate mu")
    return a_m_of_n(m, n, mu / (lam + mu))


def shared_repair_penalty(m: int, n: int, lam: float, mu: float) -> float:
    """Extra unavailability caused by sharing a single repair crew.

    ``U_shared - U_independent`` — non-negative, and growing with the load
    ``n * lam / mu``.  Quantifies how optimistic the paper's independence
    assumption is when field repairs queue behind one operations team.
    """
    independent = kofn_availability_markov(m, n, lam, mu, shared_repair=False)
    shared = kofn_availability_markov(m, n, lam, mu, shared_repair=True)
    return independent - shared
