"""Tests for the SW-centric models (repro.models.sw) — Eqs. (9)-(15)."""

import pytest

from repro.controller.spec import Plane
from repro.errors import ModelError
from repro.models.sw import (
    cp_availability,
    plane_availability,
    plane_availability_exact,
    plane_requirements,
    shared_dp_availability,
)
from repro.params.software import RestartScenario

S1 = RestartScenario.NOT_REQUIRED
S2 = RestartScenario.REQUIRED


class TestClosedFormVsEngine:
    """The reference-topology closed forms must match the exact engine."""

    @pytest.mark.parametrize("scenario", [S1, S2])
    @pytest.mark.parametrize("plane", [Plane.CP, Plane.DP])
    def test_small(self, spec, hardware, software, small, scenario, plane):
        closed = plane_availability(
            spec, plane, "small", hardware, software, scenario
        )
        exact = plane_availability_exact(
            spec, plane, small, hardware, software, scenario
        )
        assert closed == pytest.approx(exact, rel=1e-12)

    @pytest.mark.parametrize("scenario", [S1, S2])
    @pytest.mark.parametrize("plane", [Plane.CP, Plane.DP])
    def test_large(self, spec, hardware, software, large, scenario, plane):
        closed = plane_availability(
            spec, plane, "large", hardware, software, scenario
        )
        exact = plane_availability_exact(
            spec, plane, large, hardware, software, scenario
        )
        assert closed == pytest.approx(exact, rel=1e-12)

    @pytest.mark.parametrize("scenario", [S1, S2])
    def test_medium(self, spec, hardware, software, medium, scenario):
        closed = plane_availability(
            spec, Plane.CP, "medium", hardware, software, scenario
        )
        exact = plane_availability_exact(
            spec, Plane.CP, medium, hardware, software, scenario
        )
        assert closed == pytest.approx(exact, rel=1e-12)

    def test_stressed_parameters_agreement(
        self, spec, stressed_hardware, stressed_software, small, large
    ):
        for name, topo in (("small", small), ("large", large)):
            for scenario in (S1, S2):
                closed = cp_availability(
                    spec, name, stressed_hardware, stressed_software, scenario
                )
                exact = plane_availability_exact(
                    spec,
                    Plane.CP,
                    topo,
                    stressed_hardware,
                    stressed_software,
                    scenario,
                )
                assert closed == pytest.approx(exact, rel=1e-10)


class TestScenarioOrdering:
    def test_supervisor_required_is_lower_bound(
        self, spec, hardware, software
    ):
        # Scenario 2 is the "realistic lower bound": always at most the
        # scenario-1 availability.
        for topology in ("small", "medium", "large"):
            a1 = cp_availability(spec, topology, hardware, software, S1)
            a2 = cp_availability(spec, topology, hardware, software, S2)
            assert a2 <= a1

    def test_large_beats_small(self, spec, hardware, software):
        for scenario in (S1, S2):
            assert cp_availability(
                spec, "large", hardware, software, scenario
            ) > cp_availability(spec, "small", hardware, software, scenario)

    def test_dp_shared_higher_than_cp(self, spec, hardware, software):
        # The DP needs only 2 process blocks (Table III sums: 0, 2) versus
        # the CP's 16, so the shared DP availability exceeds CP
        # availability.
        for topology in ("small", "large"):
            for scenario in (S1, S2):
                assert shared_dp_availability(
                    spec, topology, hardware, software, scenario
                ) >= cp_availability(
                    spec, topology, hardware, software, scenario
                )


class TestManualProcessesCarryAs:
    def test_database_uses_unsupervised_availability(
        self, spec, hardware, software
    ):
        # Raising R_S (worsening A_S only) must hurt CP availability even
        # in scenario 1, because the Database processes restart manually.
        from dataclasses import replace

        worse = replace(software, manual_restart_hours=5.0)
        assert cp_availability(
            spec, "small", hardware, worse, S1
        ) < cp_availability(spec, "small", hardware, software, S1)

    def test_dp_block_uses_cubed_availability(self, spec, software):
        # The {control+dns+named} unit has alpha = A^3 (Table III footnote).
        reqs = plane_requirements(spec, Plane.DP, software, S1)
        control = next(r for r in reqs if r.role == "Control")
        assert control.units[0].alpha == pytest.approx(
            software.a_process**3
        )

    def test_cp_requirements_cover_four_roles(self, spec, software):
        reqs = plane_requirements(spec, Plane.CP, software, S1)
        assert {r.role for r in reqs} == {
            "Config",
            "Control",
            "Analytics",
            "Database",
        }

    def test_dp_requirements_cover_two_roles(self, spec, software):
        reqs = plane_requirements(spec, Plane.DP, software, S1)
        assert {r.role for r in reqs} == {"Config", "Control"}

    def test_scenario2_adds_supervisor_extra(self, spec, software):
        reqs = plane_requirements(spec, Plane.CP, software, S2)
        for requirement in reqs:
            assert requirement.extra_instance_availability == pytest.approx(
                software.a_unsupervised
            )
        reqs1 = plane_requirements(spec, Plane.CP, software, S1)
        for requirement in reqs1:
            assert requirement.extra_instance_availability == 1.0


class TestOtherControllers:
    def test_flat_consensus_evaluates(self, flat_spec, hardware, software):
        a = cp_availability(flat_spec, "small", hardware, software, S2)
        assert 0.99 < a < 1.0

    def test_split_state_evaluates(self, split_spec, hardware, software):
        a = cp_availability(split_spec, "large", hardware, software, S1)
        assert 0.99 < a < 1.0

    def test_unknown_topology_rejected(self, spec, hardware, software):
        with pytest.raises(ModelError):
            plane_availability(
                spec, Plane.CP, "gigantic", hardware, software, S1
            )
