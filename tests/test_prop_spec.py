"""Property-based tests over *random controller specifications*.

The paper claims the framework handles "any distributed SDN controller"
via the encapsulation tables.  These tests generate random controllers —
random roles, processes, restart modes, quorums, DP groups — and check the
framework-wide invariants: derived tables are consistent with the spec,
and the reference-topology closed forms agree with the exact engine for
every generated controller.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.controller.process import ProcessSpec, RestartMode, nodemgr, supervisor
from repro.controller.role import RoleSpec
from repro.controller.spec import ControllerSpec, Plane
from repro.models.sw import plane_availability, plane_availability_exact
from repro.params.hardware import HardwareParams
from repro.params.software import RestartScenario, SoftwareParams
from repro.topology.reference import large_topology, small_topology


@st.composite
def controller_specs(draw) -> ControllerSpec:
    n_roles = draw(st.integers(min_value=1, max_value=3))
    roles = []
    for r in range(n_roles):
        n_processes = draw(st.integers(min_value=1, max_value=4))
        processes = []
        group_quorum = None
        for p in range(n_processes):
            restart = draw(st.sampled_from(list(RestartMode)))
            cp_quorum = draw(st.integers(min_value=0, max_value=3))
            in_group = draw(st.booleans())
            if in_group:
                if group_quorum is None:
                    group_quorum = draw(st.integers(min_value=1, max_value=3))
                dp_quorum, dp_group = group_quorum, "g"
            else:
                dp_quorum, dp_group = draw(st.integers(min_value=0, max_value=3)), None
            processes.append(
                ProcessSpec(
                    f"p{p}",
                    restart,
                    cp_quorum=cp_quorum,
                    dp_quorum=dp_quorum,
                    dp_group=dp_group,
                )
            )
        if draw(st.booleans()):
            processes.append(supervisor())
        if draw(st.booleans()):
            processes.append(nodemgr())
        roles.append(RoleSpec(f"Role{r}", tuple(processes)))
    return ControllerSpec("Fuzzed", tuple(roles), cluster_size=3)


@st.composite
def parameter_sets(draw):
    hardware = HardwareParams(
        a_role=1.0,
        a_vm=draw(st.floats(min_value=0.8, max_value=1.0)),
        a_host=draw(st.floats(min_value=0.8, max_value=1.0)),
        a_rack=draw(st.floats(min_value=0.8, max_value=1.0)),
    )
    a = draw(st.floats(min_value=0.7, max_value=0.99999))
    a_s = a * draw(st.floats(min_value=0.7, max_value=1.0))
    software = SoftwareParams.from_availabilities(a, max(a_s, 1e-6))
    return hardware, software


class TestDerivedTableInvariants:
    @given(spec=controller_specs())
    @settings(max_examples=50)
    def test_table2_counts_regular_processes(self, spec):
        table = spec.restart_mode_table()
        for role in spec.cluster_roles:
            auto, manual = table[role.name]
            assert auto + manual == len(role.regular_processes)

    @given(spec=controller_specs())
    @settings(max_examples=50)
    def test_table3_counts_bounded_by_processes(self, spec):
        for plane in (Plane.CP, Plane.DP):
            for role in spec.cluster_roles:
                m, n = role.quorum_counts(plane.value)
                assert m + n <= len(role.regular_processes)
                assert m + n == len(
                    [u for u in role.quorum_units(plane.value) if u.quorum >= 1]
                )

    @given(spec=controller_specs())
    @settings(max_examples=50)
    def test_process_rows_cover_regular_processes(self, spec):
        rows = spec.process_rows()
        expected = sum(len(r.regular_processes) for r in spec.roles)
        assert len(rows) == expected


class TestClosedFormVsEngineFuzzed:
    @given(spec=controller_specs(), params=parameter_sets())
    @settings(max_examples=25, deadline=None)
    def test_small_topology_agreement(self, spec, params):
        hardware, software = params
        topology = small_topology(spec)
        for plane in (Plane.CP, Plane.DP):
            for scenario in RestartScenario:
                closed = plane_availability(
                    spec, plane, "small", hardware, software, scenario
                )
                exact = plane_availability_exact(
                    spec, plane, topology, hardware, software, scenario
                )
                assert closed == pytest.approx(exact, abs=1e-10), (
                    plane,
                    scenario,
                )

    @given(spec=controller_specs(), params=parameter_sets())
    @settings(max_examples=25, deadline=None)
    def test_large_topology_agreement(self, spec, params):
        hardware, software = params
        topology = large_topology(spec)
        for scenario in RestartScenario:
            closed = plane_availability(
                spec, Plane.CP, "large", hardware, software, scenario
            )
            exact = plane_availability_exact(
                spec, Plane.CP, topology, hardware, software, scenario
            )
            assert closed == pytest.approx(exact, abs=1e-10), scenario

    @given(spec=controller_specs(), params=parameter_sets())
    @settings(max_examples=20, deadline=None)
    def test_scenario2_never_better_fuzzed(self, spec, params):
        hardware, software = params
        a1 = plane_availability(
            spec, Plane.CP, "small", hardware, software,
            RestartScenario.NOT_REQUIRED,
        )
        a2 = plane_availability(
            spec, Plane.CP, "small", hardware, software,
            RestartScenario.REQUIRED,
        )
        assert a2 <= a1 + 1e-12
