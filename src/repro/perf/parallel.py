"""Deterministic parallel Monte-Carlo over input-parameter uncertainty.

:func:`monte_carlo_parallel` reproduces the study of
:func:`repro.analysis.uncertainty.monte_carlo` — the distribution of a
hardware-availability model output under log-uniform downtime uncertainty —
but restructured for throughput:

* the sample index space is split into **fixed-size chunks**; chunk ``c``
  draws from a generator seeded with ``np.random.SeedSequence(seed,
  spawn_key=(c,))`` (the ``SeedSequence.spawn`` child derivation), so every
  sample is a pure function of ``(seed, chunk_size, sample index)`` —
  results are **bit-identical regardless of the worker count**;
* chunks are dispatched to a :class:`concurrent.futures.ProcessPoolExecutor`
  when ``workers > 1`` and evaluated inline otherwise;
* within a chunk, models registered in :data:`ARRAY_MODELS` (the section V
  closed forms) are evaluated **vectorized** over the whole chunk via
  :mod:`repro.perf.vectorized`; unregistered models fall back to scalar
  calls, still parallelized across workers.

The draw scheme intentionally differs from the sequential seed path (which
threads one generator through every sample): the sequential path's draws
depend on sample *order*, which cannot be parallelized without either
serializing the generator or fixing a derivation tree.  This module fixes
the tree; the two paths agree in distribution and are separately
deterministic.
"""

from __future__ import annotations

import atexit
import pickle
import time
from collections import OrderedDict
from concurrent.futures import Executor, ProcessPoolExecutor
from dataclasses import replace
from typing import Callable, Sequence

import numpy as np

from repro.analysis.uncertainty import (
    HARDWARE_FIELDS,
    UncertaintyResult,
)
from repro.errors import ParameterError
from repro.models.hw_closed import hw_large, hw_medium, hw_small
from repro.obs import runtime as obs
from repro.obs import telemetry
from repro.obs.trace import Span, TraceContext, current_trace, trace_scope
from repro.params.hardware import HardwareParams
from repro.perf.vectorized import (
    hw_large_array,
    hw_medium_array,
    hw_small_array,
)
from repro.units import check_positive

__all__ = [
    "ARRAY_MODELS",
    "DEFAULT_CHUNK_SIZE",
    "MAX_RIDEBACK_SPANS",
    "MAX_WARM_POOLS",
    "PoolHandle",
    "acquire_warm_pool",
    "monte_carlo_parallel",
    "chunk_bounds",
    "broadcast_value",
    "dispatch_chunks",
    "evaluate_chunk",
    "evaluate_chunk_captured",
    "get_warm_pool",
    "map_chunked",
    "shutdown_warm_pools",
    "split_chunks",
    "warm_pool_count",
    "warm_pool_lease_count",
]

#: Scalar model -> vectorized counterpart used for whole-chunk evaluation.
ARRAY_MODELS: dict[Callable[[HardwareParams], float], Callable[..., np.ndarray]] = {
    hw_small: hw_small_array,
    hw_medium: hw_medium_array,
    hw_large: hw_large_array,
}

#: Samples per chunk.  Part of the deterministic derivation scheme: results
#: depend on ``(seed, chunk_size)`` but never on the worker count.
DEFAULT_CHUNK_SIZE = 1024


def chunk_bounds(samples: int, chunk_size: int) -> list[tuple[int, int, int]]:
    """``(chunk index, start, stop)`` triples covering ``range(samples)``."""
    if samples < 1:
        raise ParameterError(f"samples must be >= 1, got {samples}")
    if chunk_size < 1:
        raise ParameterError(f"chunk_size must be >= 1, got {chunk_size}")
    return [
        (c, start, min(start + chunk_size, samples))
        for c, start in enumerate(range(0, samples, chunk_size))
    ]


def _scale_array(availability: float, orders: np.ndarray) -> np.ndarray:
    """Vectorized ``uncertainty._scale``: downtime scaled by ``10**orders``."""
    scaled_downtime = (1.0 - availability) * 10.0**orders
    return np.maximum(0.0, 1.0 - scaled_downtime)


def _mc_chunk(
    model: Callable[[HardwareParams], float],
    array_model: Callable[..., np.ndarray] | None,
    base: HardwareParams,
    spread_orders: float,
    seed: int,
    chunk_index: int,
    count: int,
) -> np.ndarray:
    """Evaluate one chunk of samples (runs in a worker process).

    Module-level so it pickles under :class:`ProcessPoolExecutor`.
    """
    rng = np.random.default_rng(
        np.random.SeedSequence(seed, spawn_key=(chunk_index,))
    )
    draws = rng.uniform(
        -spread_orders, spread_orders, size=(count, len(HARDWARE_FIELDS))
    )
    columns = {
        field: _scale_array(getattr(base, field), draws[:, j])
        for j, field in enumerate(HARDWARE_FIELDS)
    }
    if array_model is not None:
        out = array_model(
            columns["a_role"],
            columns["a_vm"],
            columns["a_host"],
            columns["a_rack"],
        )
        return np.asarray(out, dtype=float)
    values = np.empty(count, dtype=float)
    for i in range(count):
        params = replace(
            base, **{f: float(columns[f][i]) for f in HARDWARE_FIELDS}
        )
        values[i] = model(params)
    return values


def monte_carlo_parallel(
    model: Callable[[HardwareParams], float],
    base: HardwareParams,
    spread_orders: float = 0.5,
    samples: int = 500,
    seed: int = 0,
    workers: int = 1,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    vectorize: bool = True,
    array_model: Callable[..., np.ndarray] | None = None,
    executor: Executor | None = None,
) -> UncertaintyResult:
    """Parallel/vectorized distribution of ``model`` under input uncertainty.

    Args:
        model: scalar availability model of :class:`HardwareParams`.  Must
            be picklable (a module-level function) when ``workers > 1``.
        base: nominal hardware parameters.
        spread_orders: ±orders of magnitude of downtime uncertainty.
        samples: number of Monte-Carlo samples.
        seed: root seed of the ``SeedSequence`` derivation tree.
        workers: process count; ``<= 1`` evaluates inline (no pool).
        chunk_size: samples per chunk.  Changing it changes the draws;
            changing ``workers`` never does.
        vectorize: evaluate chunks through the model's registered array
            counterpart (:data:`ARRAY_MODELS`) when available.
        array_model: explicit vectorized counterpart overriding the
            registry; called as ``array_model(a_role, a_vm, a_host,
            a_rack)`` on equal-length arrays.
        executor: reuse an existing executor (e.g. a warm process pool)
            instead of creating one per call; ``workers`` is then only the
            chunk-dispatch width.

    Returns:
        The same :class:`UncertaintyResult` as the sequential path, with
        samples ordered by sample index.
    """
    check_positive(spread_orders, "spread_orders")
    if workers < 1:
        raise ParameterError(f"workers must be >= 1, got {workers}")
    chunks = chunk_bounds(samples, chunk_size)
    resolved = array_model
    if resolved is None and vectorize:
        resolved = ARRAY_MODELS.get(model)
    jobs = [
        (model, resolved, base, spread_orders, seed, c, stop - start)
        for c, start, stop in chunks
    ]
    obs.note_solver("monte-carlo")
    if resolved is not None:
        obs.note_solver("vectorized")
    obs.annotate("seed.mc_root", seed)
    obs.annotate("seed.mc_chunk_size", chunk_size)
    with obs.span(
        "perf.monte_carlo",
        samples=samples,
        chunks=len(jobs),
        workers=workers,
        vectorized=resolved is not None,
    ):
        wall_start = time.perf_counter()
        inline = executor is None and (workers == 1 or len(jobs) == 1)
        if executor is not None:
            timed = list(executor.map(_mc_chunk_star, jobs))
        elif inline:
            timed = [_mc_chunk_star(job) for job in jobs]
        else:
            with ProcessPoolExecutor(max_workers=workers) as pool:
                timed = list(pool.map(_mc_chunk_star, jobs))
        parts = [values for values, _ in timed]
        wall = time.perf_counter() - wall_start
    if obs.enabled():
        _record_mc_metrics(
            samples,
            [seconds for _, seconds in timed],
            wall,
            1 if inline else min(workers, len(jobs)),
        )
    values = np.concatenate(parts)
    return UncertaintyResult(tuple(float(v) for v in values))


def _record_mc_metrics(
    samples: int,
    chunk_seconds: list[float],
    wall: float,
    effective_workers: int,
) -> None:
    """Publish the throughput metrics of one Monte-Carlo dispatch."""
    for seconds in chunk_seconds:
        obs.observe("perf.mc.chunk_seconds", seconds)
    obs.count("perf.mc.samples", samples)
    obs.count("perf.mc.chunks", len(chunk_seconds))
    if wall > 0.0:
        obs.gauge("perf.mc.samples_per_second", samples / wall)
        busy = sum(chunk_seconds)
        obs.gauge(
            "perf.mc.worker_utilization",
            min(1.0, busy / (wall * effective_workers)),
        )


def _mc_chunk_star(job: tuple) -> tuple[np.ndarray, float]:
    """Evaluate one chunk, timed.

    The per-chunk wall time rides back with the values (an observation
    only — the sample values are untouched), so the parent process can
    report chunk-time histograms and worker utilization even for chunks
    evaluated in pool workers, where the parent's runtime state is
    invisible.
    """
    start = time.perf_counter()
    values = _mc_chunk(*job)
    return values, time.perf_counter() - start


# -- warm process pools -------------------------------------------------------
#
# ``ProcessPoolExecutor`` start-up (fork/spawn + interpreter import) costs a
# large fraction of a short dispatch — replication batches measured in
# hundreds of milliseconds pay it on every call when pools are created cold.
# The registry below keeps pools alive across calls, keyed by their full
# construction recipe ``(workers, initializer, initargs)``, so a repeated
# dispatch (benchmark repeats, campaign sweeps at one spec) reuses warm
# worker processes.  Worker processes are fresh interpreters: they start
# with observability *disabled*, which keeps pool-dispatched replications
# trace-free exactly like the cold-pool path before them.
#
# Two lifecycles share the registry:
#
# * **Anonymous reuse** (:func:`get_warm_pool`) — the CLI path.  Each call
#   refreshes the pool's LRU position; pools beyond :data:`MAX_WARM_POOLS`
#   are evicted oldest-first.  Nothing pins a pool, so a sweep over many
#   distinct broadcast specs churns through the cap as before.
# * **Explicit leases** (:func:`acquire_warm_pool`) — the long-running
#   server path.  A :class:`PoolHandle` pins its pool against LRU eviction
#   until released, so a service's job pool cannot be shut down underneath
#   it by unrelated dispatches.  Leases never change which pool a recipe
#   maps to, so CLI callers and lease holders with equal recipes share one
#   pool — the "one pool lifecycle for both" contract.

#: Live warm pools are capped; the least-recently-used *unleased* pool
#: beyond the cap is shut down (each pool owns OS processes — an unbounded
#: registry would leak them under e.g. a sweep over many distinct broadcast
#: specs).  Leased pools are never evicted, so the live count can exceed
#: the cap while more than ``MAX_WARM_POOLS`` leases are outstanding.
MAX_WARM_POOLS = 4

_WARM_POOLS: OrderedDict[tuple, ProcessPoolExecutor] = OrderedDict()

#: Outstanding lease counts by pool key (absent key == no leases).
_POOL_LEASES: dict[tuple, int] = {}


def _pool_unusable(pool: ProcessPoolExecutor) -> bool:
    """True when the pool can no longer accept work (broken or shut down)."""
    return bool(
        getattr(pool, "_broken", False)
        or getattr(pool, "_shutdown_thread", False)
    )


def _obtain_pool(key: tuple) -> ProcessPoolExecutor:
    """The live pool for ``key``, creating/replacing and trimming the LRU."""
    workers, initializer, initargs = key
    pool = _WARM_POOLS.get(key)
    if pool is not None:
        if not _pool_unusable(pool):
            _WARM_POOLS.move_to_end(key)
            return pool
        del _WARM_POOLS[key]
        pool.shutdown(wait=False, cancel_futures=True)
    pool = ProcessPoolExecutor(
        max_workers=workers, initializer=initializer, initargs=initargs
    )
    _WARM_POOLS[key] = pool
    _trim_pools()
    if obs.enabled():
        obs.gauge("perf.warm_pools.live", len(_WARM_POOLS))
    return pool


def _trim_pools() -> None:
    """Evict least-recently-used unleased pools beyond the cap."""
    if len(_WARM_POOLS) <= MAX_WARM_POOLS:
        return
    for key in list(_WARM_POOLS):
        if len(_WARM_POOLS) <= MAX_WARM_POOLS:
            return
        if _POOL_LEASES.get(key, 0) > 0:
            continue
        evicted = _WARM_POOLS.pop(key)
        evicted.shutdown(wait=False, cancel_futures=True)


def get_warm_pool(
    workers: int,
    initializer: Callable[..., None] | None = None,
    initargs: tuple = (),
) -> ProcessPoolExecutor:
    """A reusable process pool for ``workers`` with the given initializer.

    Pools are cached by ``(workers, initializer, initargs)`` — ``initargs``
    must therefore be hashable (pass pickled ``bytes`` for rich objects).
    The initializer runs once per worker *process*, which makes it the
    cheap broadcast channel for per-dispatch-constant state (e.g. a frozen
    campaign spec): send it once per worker instead of once per job.
    Broken or shut-down pools are replaced transparently; all pools are
    shut down at interpreter exit (or explicitly via
    :func:`shutdown_warm_pools`).  For a pool that must survive unrelated
    dispatch churn (a long-running server), hold a lease via
    :func:`acquire_warm_pool` instead.
    """
    if workers < 1:
        raise ParameterError(f"workers must be >= 1, got {workers}")
    return _obtain_pool((workers, initializer, initargs))


class PoolHandle:
    """An explicit lease on one warm pool's lifecycle.

    While any handle on a recipe is unreleased, the registry never
    LRU-evicts that recipe's pool; :func:`shutdown_warm_pools` (and the
    interpreter-exit hook) still closes it, and :attr:`executor`
    transparently re-creates a pool that was shut down or broke while
    leased.  Handles are context managers::

        with acquire_warm_pool(workers=4) as handle:
            handle.executor.map(...)

    Releasing is idempotent; using :attr:`executor` after release raises
    :class:`~repro.errors.ParameterError`.
    """

    __slots__ = ("_key", "_released")

    def __init__(self, key: tuple):
        self._key = key
        self._released = False

    @property
    def workers(self) -> int:
        return self._key[0]

    @property
    def released(self) -> bool:
        return self._released

    @property
    def executor(self) -> ProcessPoolExecutor:
        """The leased pool (replaced transparently if broken/shut down)."""
        if self._released:
            raise ParameterError("pool handle has been released")
        return _obtain_pool(self._key)

    def release(self) -> None:
        """Drop this lease; the pool becomes LRU-evictable again."""
        if self._released:
            return
        self._released = True
        remaining = _POOL_LEASES.get(self._key, 0) - 1
        if remaining > 0:
            _POOL_LEASES[self._key] = remaining
        else:
            _POOL_LEASES.pop(self._key, None)
            _trim_pools()

    def __enter__(self) -> "PoolHandle":
        return self

    def __exit__(self, *exc_info) -> None:
        self.release()


def acquire_warm_pool(
    workers: int,
    initializer: Callable[..., None] | None = None,
    initargs: tuple = (),
) -> PoolHandle:
    """Lease the warm pool for this recipe (see :class:`PoolHandle`).

    The same registry backs :func:`get_warm_pool`, so a lease shares its
    pool with anonymous callers of the same recipe — acquiring never forks
    a second pool, it only pins the shared one.
    """
    if workers < 1:
        raise ParameterError(f"workers must be >= 1, got {workers}")
    key = (workers, initializer, initargs)
    _obtain_pool(key)
    _POOL_LEASES[key] = _POOL_LEASES.get(key, 0) + 1
    return PoolHandle(key)


def shutdown_warm_pools(wait: bool = True) -> int:
    """Shut down every cached pool; returns how many were live.

    Outstanding leases survive a shutdown: their next ``executor`` access
    re-creates the pool (a lease pins a *recipe*, not one executor object).
    """
    count = len(_WARM_POOLS)
    while _WARM_POOLS:
        _, pool = _WARM_POOLS.popitem(last=False)
        pool.shutdown(wait=wait, cancel_futures=True)
    return count


def warm_pool_count() -> int:
    """How many warm pools are currently cached (for tests/diagnostics)."""
    return len(_WARM_POOLS)


def warm_pool_lease_count() -> int:
    """How many pool recipes currently hold at least one lease."""
    return len(_POOL_LEASES)


atexit.register(shutdown_warm_pools)


def split_chunks(items: Sequence, parts: int) -> list[list]:
    """Split ``items`` into at most ``parts`` contiguous, balanced chunks.

    Contiguity is what preserves determinism downstream: flattening the
    per-chunk results in chunk order reproduces the original item order
    regardless of which worker ran which chunk.
    """
    if parts < 1:
        raise ParameterError(f"parts must be >= 1, got {parts}")
    items = list(items)
    parts = min(parts, len(items)) or 1
    base, extra = divmod(len(items), parts)
    chunks: list[list] = []
    start = 0
    for index in range(parts):
        size = base + (1 if index < extra else 0)
        chunks.append(items[start : start + size])
        start += size
    return chunks


# -- broadcast dispatch -------------------------------------------------------
#
# Per-worker-process slot for dispatch-constant state.  Replication jobs
# used to carry the full (spec, topology, params, ...) tuple per job; with
# the broadcast channel the constant part pickles once per worker process
# (via the pool initializer) and each job shrinks to its seed.

_BROADCAST = None


def _install_broadcast(blob: bytes) -> None:
    """Pool initializer: unpickle the broadcast context (runs per worker)."""
    global _BROADCAST
    _BROADCAST = pickle.loads(blob)


def broadcast_value():
    """The context broadcast to this process by :func:`map_chunked`."""
    return _BROADCAST


def evaluate_chunk(payload: tuple) -> list:
    """Run ``worker`` over one contiguous chunk (inside a pool worker)."""
    worker, items = payload
    return [worker(item) for item in items]


#: Most worker-side spans shipped back per chunk — a cap, not a promise:
#: span ride-back is an observation channel, and an instrumentation-happy
#: worker must not bloat the result pickle.
MAX_RIDEBACK_SPANS = 64


def evaluate_chunk_captured(payload: tuple) -> tuple:
    """Run one chunk under a worker-side metrics session, timed.

    Pool workers carry a disabled obs runtime, so counters recorded inside
    a chunk (simulator events, outage episodes) would silently vanish.
    This wrapper brackets the chunk in its own session and ships the
    registry snapshot — plus the chunk wall time and the chunk's completed
    spans (capped at :data:`MAX_RIDEBACK_SPANS`) — back through the result
    channel, for the parent to merge in chunk-index order.  Warm pools
    reuse worker processes, so the session is always closed (try/finally)
    before the next chunk arrives.

    The optional fourth payload element is a serialized
    :class:`~repro.obs.trace.TraceContext` (the request trace of the
    dispatch), installed for the chunk's duration so worker-side code
    observes the same distributed trace the parent does.  Purely
    observational: results are bit-identical with or without it.
    """
    worker, items, chunk_index = payload[0], payload[1], payload[2]
    trace_record = payload[3] if len(payload) > 3 else None
    trace = (
        TraceContext.from_dict(trace_record)
        if trace_record is not None
        else None
    )
    # Fork-started workers inherit a *copy* of the parent's active session
    # (its recordings are invisible to the parent); drop it so the chunk's
    # metrics land in a registry of their own.
    obs.stop()
    session = obs.start(f"chunk:{chunk_index}")
    try:
        with trace_scope(trace):
            start = time.perf_counter()
            results = [worker(item) for item in items]
            seconds = time.perf_counter() - start
        snapshot = session.metrics.snapshot()
        spans = [
            span.to_dict()
            for span in session.tracer.spans[:MAX_RIDEBACK_SPANS]
        ]
    finally:
        obs.stop()
    return chunk_index, results, snapshot, seconds, spans


def _merge_worker_spans(
    session, chunk_index: int, spans: list[dict]
) -> None:
    """Fold one chunk's ride-back spans into the parent session's tracer.

    Merged spans keep their worker-side nesting but sit one depth level
    down (never at depth 0, so :meth:`~repro.obs.trace.Tracer.roots` —
    the manifest's phase list — stays a parent-only view), carry a
    ``chunk`` attribute, and fall back to a synthetic ``chunk:<i>`` parent
    at what was the worker's top level.  ``pool.map`` yields chunks in
    submission order, so the merge order is chunk-index order regardless
    of which worker finished first — the same determinism contract as the
    metric-snapshot merge.
    """
    for record in spans:
        attrs = dict(record.get("attrs", {}))
        attrs["chunk"] = chunk_index
        session.tracer.spans.append(
            Span(
                name=record["name"],
                start=record["start"],
                duration=record["duration"],
                depth=record["depth"] + 1,
                parent=record["parent"] or f"chunk:{chunk_index}",
                attrs=attrs,
            )
        )


def dispatch_chunks(pool, worker, items: Sequence, workers: int) -> tuple:
    """Chunk ``items`` per worker, dispatch on ``pool``, flatten in order.

    While the parent holds an obs session or a telemetry bus, chunks run
    through :func:`evaluate_chunk_captured`: worker-side metric registries
    merge into the parent session (counters add; gauges last-writer-wins
    in chunk-index order; histogram bins element-wise; worker spans fold
    in one depth level down) and a ``progress`` heartbeat plus a
    ``metrics`` snapshot event are emitted per completed chunk.  The
    ambient :class:`~repro.obs.trace.TraceContext` (if any) rides to the
    workers as a plain dict.  With session and bus both disabled the plain
    payload shape runs — the instrumentation costs nothing.
    """
    items = list(items)
    chunks = split_chunks(items, workers)
    session = obs.active()
    if session is None and not telemetry.enabled():
        collected: list = []
        for part in pool.map(
            evaluate_chunk, [(worker, chunk) for chunk in chunks]
        ):
            collected.extend(part)
        return tuple(collected)
    tracker = (
        telemetry.ProgressTracker(len(items))
        if telemetry.enabled()
        else None
    )
    context = current_trace()
    trace_record = context.to_dict() if context is not None else None
    payloads = [
        (worker, chunk, index, trace_record)
        for index, chunk in enumerate(chunks)
    ]
    collected = []
    for chunk_index, part, snapshot, seconds, spans in pool.map(
        evaluate_chunk_captured, payloads
    ):
        collected.extend(part)
        if session is not None:
            session.metrics.merge_snapshot(snapshot)
            session.metrics.histogram("perf.chunk_seconds").observe(seconds)
            _merge_worker_spans(session, chunk_index, spans)
        if tracker is not None:
            events = snapshot.get("counters", {}).get("sim.events", 0)
            telemetry.emit(
                "progress",
                chunk=chunk_index,
                **tracker.update(completed=len(part), events=int(events)),
            )
            # Merged parent-side view when a session exists, otherwise
            # the worker chunk's own registry snapshot.
            telemetry.emit(
                "metrics",
                snapshot=(
                    session.metrics.snapshot()
                    if session is not None
                    else snapshot
                ),
            )
    return tuple(collected)


def map_chunked(worker, items: Sequence, workers: int, context) -> tuple:
    """Run ``worker`` over ``items`` on a warm pool with ``context`` broadcast.

    ``context`` (any picklable object) is shipped once per worker process
    through the pool initializer; ``worker`` — a module-level function of a
    single item — reads it back with :func:`broadcast_value`.  Items are
    dispatched as contiguous chunks (one per worker) and results flattened
    in chunk order, so the output order equals the input order for any
    worker count — the property seeded replications rely on for
    bit-identical results.  See :func:`dispatch_chunks` for the worker-
    metrics/telemetry behavior under an active session or bus.
    """
    pool = get_warm_pool(
        workers,
        initializer=_install_broadcast,
        initargs=(pickle.dumps(context),),
    )
    return dispatch_chunks(pool, worker, items, workers)
