"""A3 — validation: Monte-Carlo simulation vs the analytic models.

The paper's stated future work ("simulating the topologies to validate the
conclusions").  Runs at stressed parameters (availabilities ~0.95-0.999) so
failures occur within a tractable horizon; both routes see identical
parameters, so the unavailability ratios validate the model structure.
"""

import pytest

from repro.params.hardware import HardwareParams
from repro.params.software import RestartScenario, SoftwareParams
from repro.reporting.tables import format_table
from repro.sim.controller_sim import SimulationConfig
from repro.sim.validate import validate_against_analytic
from repro.topology.reference import small_topology

HW = HardwareParams(a_role=1.0, a_vm=0.998, a_host=0.998, a_rack=0.999)
SW = SoftwareParams.from_availabilities(0.995, 0.95, mtbf_hours=100.0)
CONFIG = SimulationConfig(
    seed=29,
    horizon_hours=20_000.0,
    batches=8,
    rack_mtbf_hours=2000.0,
    host_mtbf_hours=1000.0,
    vm_mtbf_hours=500.0,
)


def run_validation(spec):
    topology = small_topology(spec)
    return validate_against_analytic(
        spec, topology, "small", HW, SW, RestartScenario.REQUIRED, CONFIG
    )


def test_sim_validation(benchmark, spec):
    report = benchmark.pedantic(run_validation, args=(spec,), rounds=1, iterations=1)
    rows = []
    for plane, sim_value, analytic in (
        ("cp", report.simulated.cp, report.analytic_cp),
        ("sdp", report.simulated.shared_dp, report.analytic_sdp),
        ("ldp", report.simulated.local_dp, report.analytic_ldp),
        ("dp", report.simulated.dp, report.analytic_dp),
    ):
        rows.append(
            (
                plane.upper(),
                f"{sim_value:.6f}",
                f"{analytic:.6f}",
                f"{report.unavailability_ratio(plane):.3f}",
            )
        )
    print(
        "\n"
        + format_table(
            ("Plane", "Simulated", "Analytic", "Unavailability ratio"),
            rows,
            title="Ablation A3: Monte-Carlo vs analytic (option 2S, stressed)",
        )
    )
    # Scenario 2 has no window approximation: tight agreement expected.
    assert report.unavailability_ratio("ldp") == pytest.approx(1.0, abs=0.25)
    assert report.unavailability_ratio("dp") == pytest.approx(1.0, abs=0.25)
    assert 0.5 < report.unavailability_ratio("cp") < 1.5
