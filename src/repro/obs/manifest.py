"""Run manifests — the provenance record of one instrumented run.

Availability numbers are only trustworthy when the run that produced them
is reconstructible (Nencioni et al. and Sakic & Kellerer both archive the
full parameter/seed/solver record next to every result).  A
:class:`RunManifest` captures exactly that for this codebase:

* the invoked command and its arguments, plus a canonical SHA-256
  ``params_hash`` over them (two manifests with equal hashes evaluated the
  same configuration);
* the topology and seed material (root seed, chunk size, worker count —
  everything the deterministic derivation trees depend on);
* the package version and the **solver path** — which evaluation routes
  (closed-form / exact engine / Markov / Monte-Carlo / vectorized /
  simulation) the run actually exercised;
* per-phase timings and the full metrics/span record of the run.

Manifests round-trip losslessly through JSON (``to_json``/``from_json``;
floats survive exactly via ``repr``-based encoding), which the determinism
suite asserts.  CSV export lives in :mod:`repro.reporting.manifest`.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Mapping

from repro.errors import ObservabilityError

__all__ = [
    "SCHEMA_VERSION",
    "PhaseTiming",
    "RunManifest",
    "params_hash",
    "package_version",
]

#: Bumped whenever the manifest layout changes incompatibly.
SCHEMA_VERSION = 1


def package_version() -> str:
    """The repro package version (imported lazily to avoid install cycles)."""
    try:
        from repro import __version__

        return __version__
    except Exception:  # pragma: no cover - only on broken installs
        return "unknown"


def _canonical(value: Any) -> Any:
    """Reduce a value to canonical JSON-encodable form for hashing."""
    if isinstance(value, Mapping):
        return {str(k): _canonical(v) for k, v in sorted(value.items())}
    if isinstance(value, (list, tuple, set, frozenset)):
        items = sorted(value) if isinstance(value, (set, frozenset)) else value
        return [_canonical(v) for v in items]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


def params_hash(params: Mapping[str, Any]) -> str:
    """Canonical SHA-256 hex digest of a parameter mapping.

    Key order, tuple-vs-list, and nested mappings are normalized first, so
    logically equal configurations hash equal regardless of construction
    order.
    """
    canonical = json.dumps(
        _canonical(dict(params)), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class PhaseTiming:
    """Wall time of one top-level phase of the run."""

    name: str
    seconds: float

    def to_dict(self) -> dict[str, Any]:
        return {"name": self.name, "seconds": self.seconds}

    @classmethod
    def from_dict(cls, record: Mapping[str, Any]) -> "PhaseTiming":
        return cls(name=record["name"], seconds=record["seconds"])


@dataclass(frozen=True)
class RunManifest:
    """Everything needed to attribute, audit, and reproduce one run."""

    command: str
    arguments: dict[str, Any]
    params_hash: str
    topology: str | None
    seed: dict[str, Any]
    solver_path: tuple[str, ...]
    phases: tuple[PhaseTiming, ...]
    metrics: dict[str, Any]
    spans: tuple[dict[str, Any], ...]
    package_version: str
    schema_version: int = SCHEMA_VERSION

    @classmethod
    def build(
        cls,
        command: str,
        arguments: Mapping[str, Any] | None = None,
        topology: str | None = None,
        seed: Mapping[str, Any] | None = None,
        solver_path: tuple[str, ...] = (),
        phases: tuple[PhaseTiming, ...] = (),
        metrics: Mapping[str, Any] | None = None,
        spans: tuple[dict[str, Any], ...] = (),
    ) -> "RunManifest":
        """Assemble a manifest, deriving the params hash and version."""
        arguments = dict(arguments or {})
        return cls(
            command=command,
            arguments=arguments,
            params_hash=params_hash(arguments),
            topology=topology,
            seed=dict(seed or {}),
            solver_path=tuple(solver_path),
            phases=tuple(phases),
            metrics=dict(metrics or {}),
            spans=tuple(dict(s) for s in spans),
            package_version=package_version(),
        )

    # -- serialization ---------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        return {
            "schema_version": self.schema_version,
            "command": self.command,
            "arguments": dict(self.arguments),
            "params_hash": self.params_hash,
            "topology": self.topology,
            "seed": dict(self.seed),
            "solver_path": list(self.solver_path),
            "phases": [phase.to_dict() for phase in self.phases],
            "metrics": dict(self.metrics),
            "spans": [dict(span) for span in self.spans],
            "package_version": self.package_version,
        }

    @classmethod
    def from_dict(cls, record: Mapping[str, Any]) -> "RunManifest":
        try:
            return cls(
                command=record["command"],
                arguments=dict(record["arguments"]),
                params_hash=record["params_hash"],
                topology=record["topology"],
                seed=dict(record["seed"]),
                solver_path=tuple(record["solver_path"]),
                phases=tuple(
                    PhaseTiming.from_dict(p) for p in record["phases"]
                ),
                metrics=dict(record["metrics"]),
                spans=tuple(dict(s) for s in record["spans"]),
                package_version=record["package_version"],
                schema_version=record.get("schema_version", SCHEMA_VERSION),
            )
        except KeyError as missing:
            raise ObservabilityError(
                f"manifest record is missing field {missing}"
            ) from None

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "RunManifest":
        try:
            record = json.loads(text)
        except json.JSONDecodeError as error:
            raise ObservabilityError(
                f"manifest is not valid JSON: {error}"
            ) from None
        if not isinstance(record, dict):
            raise ObservabilityError("manifest JSON must be an object")
        return cls.from_dict(record)

    def write(self, path: str | Path) -> Path:
        """Write the manifest as JSON (parent directories created)."""
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(self.to_json() + "\n", encoding="utf-8")
        return target

    @classmethod
    def load(cls, path: str | Path) -> "RunManifest":
        try:
            text = Path(path).read_text(encoding="utf-8")
        except OSError as error:
            raise ObservabilityError(
                f"cannot read manifest {path}: {error}"
            ) from None
        return cls.from_json(text)

    # -- convenience -----------------------------------------------------------

    def phase_seconds(self) -> dict[str, float]:
        """Summed wall time per phase name."""
        totals: dict[str, float] = {}
        for phase in self.phases:
            totals[phase.name] = totals.get(phase.name, 0.0) + phase.seconds
        return totals
