"""P1 — speedups of the parallel/vectorized evaluation engine.

Measures the three throughput layers of :mod:`repro.perf` against the
sequential seed paths and records the results in ``BENCH_perf.json`` at the
repository root:

* ``monte_carlo``: a 10k-sample uncertainty run of the Large HW model,
  sequential generator loop vs the chunked ``SeedSequence.spawn`` runner
  with 4 process workers and vectorized chunk evaluation (target >= 4x);
* ``sweep``: the Fig. 3 closed forms on a 2001-point grid, per-point Python
  loop vs whole-grid array evaluation (target >= 10x);
* ``engine_cache``: repeated exact-engine evaluations with and without the
  frozen-parameter memo.

Timings are best-of-``repeats`` wall clock; the Monte-Carlo comparison
reports both a cold pool (process startup included) and a warm pool
(steady-state throughput).  Runnable as a pytest benchmark *or* directly as
a script — ``python benchmarks/bench_perf_engine.py --samples 400
--points 101 --workers 2`` is the CI smoke invocation.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if __name__ == "__main__":  # script mode: make src/ importable without install
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.analysis.figures import fig3_series
from repro.analysis.uncertainty import monte_carlo
from repro.models.engine import (
    clear_engine_cache,
    evaluate_topology_cached,
)
from repro.models.hw_closed import hw_large
from repro.models.sw import plane_requirements
from repro.controller.opencontrail import opencontrail_3x
from repro.controller.spec import Plane
from repro.params.defaults import PAPER_HARDWARE, PAPER_SOFTWARE
from repro.params.software import RestartScenario
from repro.obs import runtime as obs
from repro.perf import fig3_series_vectorized, monte_carlo_parallel
from repro.reporting.tables import format_table
from repro.topology.reference import reference_topology

BENCH_SEED = 20190324  # the paper's conference date; any fixed value works
DEFAULT_OUT = REPO_ROOT / "BENCH_perf.json"


def _best_of(fn, repeats: int) -> float:
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return min(times)


def run_perf_bench(
    samples: int = 10_000,
    points: int = 2001,
    workers: int = 4,
    repeats: int = 3,
) -> dict:
    """Time every layer and return the record written to BENCH_perf.json."""
    hardware = PAPER_HARDWARE

    # -- monte carlo: sequential seed path vs parallel engine ----------------
    mc_sequential = _best_of(
        lambda: monte_carlo(
            hw_large, hardware, samples=samples, seed=BENCH_SEED
        ),
        repeats,
    )
    mc_cold = _best_of(
        lambda: monte_carlo_parallel(
            hw_large, hardware, samples=samples, seed=BENCH_SEED,
            workers=workers,
        ),
        repeats,
    )
    with ProcessPoolExecutor(max_workers=workers) as pool:
        warm = lambda: monte_carlo_parallel(  # noqa: E731
            hw_large, hardware, samples=samples, seed=BENCH_SEED,
            workers=workers, executor=pool,
        )
        warm()  # first dispatch pays the fork cost
        mc_warm = _best_of(warm, repeats)

    # -- sweeps: per-point loop vs whole-grid arrays -------------------------
    sweep_scalar = _best_of(
        lambda: fig3_series(hardware, points=points), repeats
    )
    sweep_vector = _best_of(
        lambda: fig3_series_vectorized(hardware, points=points), repeats
    )

    # -- engine memo cache ---------------------------------------------------
    spec = opencontrail_3x()
    topology = reference_topology("small", spec)
    requirements = plane_requirements(
        spec, Plane.CP, PAPER_SOFTWARE, RestartScenario.REQUIRED
    )
    availability = {
        "rack": hardware.a_rack,
        "host": hardware.a_host,
        "vm": hardware.a_vm,
    }
    evaluations = 50

    def engine_cold() -> None:
        clear_engine_cache()
        for _ in range(evaluations):
            evaluate_topology_cached(topology, requirements, availability)

    def engine_warm() -> None:
        for _ in range(evaluations):
            evaluate_topology_cached(topology, requirements, availability)

    cache_cold = _best_of(engine_cold, repeats)
    evaluate_topology_cached(topology, requirements, availability)
    cache_warm = _best_of(engine_warm, repeats)

    # -- observability overhead ----------------------------------------------
    # The instrumentation must be zero-cost while disabled and near-free even
    # while recording, so the whole MC run (inline, vectorized) is timed with
    # the runtime off and with a session actively collecting spans/metrics.
    # Extra repeats: the quantity of interest is a ratio of two short runs.
    obs_repeats = max(repeats, 5)

    def mc_inline() -> None:
        monte_carlo_parallel(
            hw_large, hardware, samples=samples, seed=BENCH_SEED, workers=1
        )

    obs.stop()  # belt and braces: measure from a known-disabled state
    obs_disabled = _best_of(mc_inline, obs_repeats)
    with obs.session("bench-overhead"):
        obs_enabled = _best_of(mc_inline, obs_repeats)

    return {
        "seed": BENCH_SEED,
        "workers": workers,
        "repeats": repeats,
        "monte_carlo": {
            "samples": samples,
            "sequential_s": mc_sequential,
            "parallel_cold_pool_s": mc_cold,
            "parallel_warm_pool_s": mc_warm,
            "speedup_cold_pool": mc_sequential / mc_cold,
            "speedup_warm_pool": mc_sequential / mc_warm,
        },
        "sweep": {
            "points": points,
            "scalar_s": sweep_scalar,
            "vectorized_s": sweep_vector,
            "speedup": sweep_scalar / sweep_vector,
        },
        "engine_cache": {
            "evaluations": evaluations,
            "uncached_s": cache_cold,
            "cached_s": cache_warm,
            "speedup": cache_cold / cache_warm,
        },
        "obs_overhead": {
            "samples": samples,
            "disabled_s": obs_disabled,
            "enabled_s": obs_enabled,
            "overhead_fraction": obs_enabled / obs_disabled - 1.0,
        },
    }


def _report(record: dict, out_path: Path) -> None:
    mc, sw, ec = record["monte_carlo"], record["sweep"], record["engine_cache"]
    rows = [
        (
            f"monte_carlo x{mc['samples']} (cold pool)",
            f"{mc['sequential_s'] * 1e3:.1f}",
            f"{mc['parallel_cold_pool_s'] * 1e3:.1f}",
            f"{mc['speedup_cold_pool']:.1f}x",
        ),
        (
            f"monte_carlo x{mc['samples']} (warm pool)",
            f"{mc['sequential_s'] * 1e3:.1f}",
            f"{mc['parallel_warm_pool_s'] * 1e3:.1f}",
            f"{mc['speedup_warm_pool']:.1f}x",
        ),
        (
            f"fig3 sweep x{sw['points']}",
            f"{sw['scalar_s'] * 1e3:.1f}",
            f"{sw['vectorized_s'] * 1e3:.1f}",
            f"{sw['speedup']:.1f}x",
        ),
        (
            f"exact engine x{ec['evaluations']}",
            f"{ec['uncached_s'] * 1e3:.1f}",
            f"{ec['cached_s'] * 1e3:.1f}",
            f"{ec['speedup']:.1f}x",
        ),
        (
            f"obs tracing x{record['obs_overhead']['samples']}",
            f"{record['obs_overhead']['disabled_s'] * 1e3:.1f}",
            f"{record['obs_overhead']['enabled_s'] * 1e3:.1f}",
            f"{record['obs_overhead']['overhead_fraction'] * 100:+.1f}%",
        ),
    ]
    print(
        "\n"
        + format_table(
            ("Workload", "Sequential (ms)", "Engine (ms)", "Speedup"),
            rows,
            title=(
                f"P1: parallel/vectorized evaluation engine "
                f"(workers={record['workers']})"
            ),
        )
    )
    out_path.write_text(json.dumps(record, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {out_path}")


def test_perf_engine():
    record = run_perf_bench()
    _report(record, DEFAULT_OUT)
    # Acceptance thresholds: 4 workers beat the sequential 10k-sample seed
    # path >= 4x, whole-grid sweeps beat the per-point loop >= 10x.
    assert record["monte_carlo"]["speedup_warm_pool"] >= 4.0
    assert record["sweep"]["speedup"] >= 10.0
    assert record["engine_cache"]["speedup"] >= 2.0
    # Tracing a 10k-sample MC run costs < 5% over the disabled-mode path
    # (and the disabled-mode hooks are a strict subset of that work).
    assert record["obs_overhead"]["overhead_fraction"] < 0.05


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--samples", type=int, default=10_000)
    parser.add_argument("--points", type=int, default=2001)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT)
    parser.add_argument(
        "--check",
        action="store_true",
        help="fail unless the acceptance speedups are met",
    )
    args = parser.parse_args(argv)
    record = run_perf_bench(
        samples=args.samples,
        points=args.points,
        workers=args.workers,
        repeats=args.repeats,
    )
    _report(record, args.out)
    if args.check:
        assert record["monte_carlo"]["speedup_warm_pool"] >= 4.0
        assert record["sweep"]["speedup"] >= 10.0
    return 0


if __name__ == "__main__":
    sys.exit(main())
