"""Per-outage attribution: exact conservation and forensic cross-checks.

The attribution ledger (:class:`repro.sim.measures.SignalAttribution`)
charges every outage episode of a signal to the component/hazard whose
transition opened it.  Durations are kept as raw per-cause tuples and
summed with ``math.fsum`` — an exactly-rounded sum, hence independent of
grouping — so the ledger conserves each signal's total outage time with
``==``, not approximately.  These tests enforce that invariant over
arbitrary up/down sequences (hypothesis) and real fault campaigns, pin
the beta=0 no-common-cause-attribution guarantee, and cross-check the
hazard-free component ranking against analytic Birnbaum importance via
:mod:`repro.obs.forensics`.
"""

from __future__ import annotations

from math import fsum

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ObservabilityError
from repro.faults import (
    CampaignSpec,
    CommonCauseSpec,
    MaintenanceSpec,
    RackPowerSpec,
    run_campaign,
)
from repro.faults.campaign import materialize
from repro.obs import forensics
from repro.sim.measures import UNATTRIBUTED, BinarySignal, SignalAttribution

PLANES = ("cp", "sdp", "ldp", "dp")

_RESULT_ATTRS = {
    "cp": "cp",
    "sdp": "shared_dp",
    "ldp": "local_dp",
    "dp": "dp",
}

KNOWN_SOURCES = {
    "stochastic",
    "scenario",
    "common_cause",
    "rack_power",
    "maintenance",
    UNATTRIBUTED,
}


@st.composite
def signal_histories(draw):
    """An initial state plus arbitrary timed up/down transitions.

    Durations are adversarial floats (including 0-length episodes); the
    cause element stands in for the engine's stamping — ``None`` models a
    down edge the engine could not attribute.
    """
    initial = draw(st.booleans())
    steps = draw(
        st.lists(
            st.tuples(
                st.floats(
                    min_value=0.0,
                    max_value=1e6,
                    allow_nan=False,
                    allow_infinity=False,
                ),
                st.booleans(),
                st.sampled_from(
                    ["rack:R1", "host:H1", "vm:V1", "proc:a", None]
                ),
            ),
            max_size=80,
        )
    )
    return initial, steps


def _drive(initial, steps) -> BinarySignal:
    signal = BinarySignal("cp", initial=initial)
    now = 0.0
    for dt, state, cause in steps:
        now += dt
        was_up = signal.state
        signal.update(now, state)
        if was_up and not state and cause is not None:
            signal.attribute_open_outage(cause, "stochastic", 0)
    return signal


def _all_durations(ledger: SignalAttribution):
    return [d for tup in ledger.components.values() for d in tup]


class TestConservationProperty:
    @given(signal_histories())
    @settings(max_examples=200, deadline=None)
    def test_ledger_conserves_outage_time_exactly(self, history):
        initial, steps = history
        signal = _drive(initial, steps)
        ledger = signal.attribution()
        total = signal.outage_seconds()
        # Exact equality (==), not approx: fsum over the episode-duration
        # multiset is exactly rounded, so regrouping by cause loses nothing.
        assert ledger.total_seconds() == total
        assert fsum(_all_durations(ledger)) == total
        assert fsum(d for t in ledger.sources.values() for d in t) == total
        completed = signal.outage_count
        assert ledger.episode_count == completed + ledger.open_episodes
        assert ledger.open_episodes in (0, 1)

    @given(signal_histories(), signal_histories())
    @settings(max_examples=100, deadline=None)
    def test_merge_is_exact_tuple_concatenation(self, first, second):
        a = _drive(*first).attribution()
        b = _drive(*second).attribution()
        merged = SignalAttribution.merge([a, b], name="cp")
        assert merged.total_seconds() == fsum(
            _all_durations(a) + _all_durations(b)
        )
        assert merged.episode_count == a.episode_count + b.episode_count
        for key, durations in merged.components.items():
            assert durations == a.components.get(key, ()) + (
                b.components.get(key, ())
            )

    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        beta=st.floats(min_value=0.0, max_value=0.9, allow_nan=False),
        crews=st.sampled_from([None, 1]),
    )
    @settings(max_examples=8, deadline=None)
    def test_campaign_replication_ledgers_conserve(self, seed, beta, crews):
        """Arbitrary fail/repair/hazard sequences via seeded campaigns."""
        spec = CampaignSpec(
            option="1S",
            horizon_hours=400.0,
            replications=1,
            seed=seed,
            batches=2,
            hazards=(
                CommonCauseSpec("role:Control", beta),
                RackPowerSpec(mtbf_hours=1500.0),
                MaintenanceSpec(
                    "host:H2",
                    start_hours=50.0,
                    period_hours=200.0,
                    duration_hours=10.0,
                ),
            ),
            repair_crews=crews,
        )
        result = run_campaign(spec).replications.results[0]
        for name in PLANES:
            ledger = result.signal_attribution(name)
            total = ledger.total_seconds()
            assert fsum(_all_durations(ledger)) == total
            assert fsum(d for t in ledger.sources.values() for d in t) == (
                total
            )
            assert set(ledger.sources) <= KNOWN_SOURCES
            # The ledger total is the signal's downtime integral.
            availability = getattr(result, _RESULT_ATTRS[name])
            assert total == pytest.approx(
                (1.0 - availability) * spec.horizon_hours, abs=1e-6
            )


class TestCampaignAttribution:
    @pytest.fixture(scope="class")
    def campaign(self):
        return run_campaign(
            CampaignSpec(
                option="1S",
                horizon_hours=1500.0,
                replications=3,
                seed=11,
                batches=2,
                hazards=(
                    CommonCauseSpec("role:Control", 0.4),
                    RackPowerSpec(mtbf_hours=1000.0),
                    MaintenanceSpec(
                        "host:H2",
                        start_hours=100.0,
                        period_hours=500.0,
                        duration_hours=25.0,
                    ),
                ),
                repair_crews=2,
            )
        )

    def test_merged_ledger_conserves_exactly(self, campaign):
        for name in PLANES:
            merged = campaign.attribution(name)
            assert merged.total_seconds() == fsum(_all_durations(merged))
            per_rep = [
                result.signal_attribution(name)
                for result in campaign.replications.results
            ]
            assert merged.episode_count == sum(
                ledger.episode_count for ledger in per_rep
            )
            assert merged.total_seconds() == fsum(
                d for ledger in per_rep for d in _all_durations(ledger)
            )

    def test_hazard_sources_show_up_in_the_ledger(self, campaign):
        sources = set()
        for name in PLANES:
            sources |= set(campaign.attribution(name).sources)
        assert sources <= KNOWN_SOURCES
        assert "stochastic" in sources
        # The aggressive rack-power hazard must trigger at least one
        # attributed outage somewhere across 3 x 1500 h.
        assert "rack_power" in sources

    def test_to_dict_round_trip_shape(self, campaign):
        record = campaign.attribution("cp").to_dict()
        assert record["episodes"] >= 1
        assert record["total_seconds"] == pytest.approx(
            fsum(record["components"].values())
        )
        assert all(isinstance(k, str) for k in record["depths"])

    def test_beta_zero_attributes_nothing_to_common_cause(self):
        campaign = run_campaign(
            CampaignSpec(
                option="1S",
                horizon_hours=1500.0,
                replications=2,
                seed=11,
            ).with_beta(0.0)
        )
        assert campaign.total_injections("common_cause") == 0
        for name in PLANES:
            ledger = campaign.attribution(name)
            assert ledger.source_seconds().get("common_cause", 0.0) == 0.0


class TestForensics:
    @pytest.fixture(scope="class")
    def materialized(self):
        spec = CampaignSpec(option="1S", horizon_hours=6000.0,
                            replications=3, seed=5, batches=2)
        controller, topology, hardware, software, scenario = materialize(
            spec
        )
        return spec, controller, topology, hardware

    def test_infra_structure_shape(self, materialized):
        _, controller, topology, hardware = materialized
        structure = forensics.infra_structure(controller, topology, "cp")
        assert "rack:R1" in structure.names
        assert any(name.startswith("host:") for name in structure.names)
        probabilities = forensics.infra_probabilities(topology, hardware)
        assert set(probabilities) == set(structure.names)
        availability = structure.availability(probabilities)
        assert 0.0 < availability < 1.0
        # All infra up => plane infra up; single rack down => plane down.
        assert structure({n: True for n in structure.names})
        assert not structure({n: n != "rack:R1" for n in structure.names})

    def test_unknown_signal_is_an_error(self, materialized):
        _, controller, topology, _ = materialized
        with pytest.raises(ObservabilityError):
            forensics.infra_structure(controller, topology, "ldp")

    def test_importance_orders_rack_first(self, materialized):
        _, controller, topology, hardware = materialized
        importance = forensics.infra_importance(
            controller, topology, hardware, "cp"
        )
        criticality = importance["criticality"]
        rack = criticality["rack:R1"]
        assert all(
            rack > value
            for name, value in criticality.items()
            if name != "rack:R1"
        )
        fv = importance["fussell_vesely"]
        assert fv["rack:R1"] == max(fv.values())

    def test_hazard_free_ranking_agrees_with_birnbaum(self, materialized):
        """Acceptance: simulated attribution matches analytic criticality.

        On the Small reference topology the single rack dominates every
        host/vm by orders of magnitude analytically; a hazard-free
        campaign's CP ledger must reproduce that ordering.  min_ratio
        keeps Monte-Carlo near-ties (host vs its own vm) out of scope.
        """
        spec, controller, topology, hardware = materialized
        campaign = run_campaign(spec)
        check = forensics.crosscheck_attribution(
            campaign.attribution("cp"),
            controller,
            topology,
            hardware,
            signal="cp",
            min_ratio=5.0,
        )
        assert check.agrees, check.violations
        assert check.simulated_seconds.get("rack:R1", 0.0) > 0.0
        record = check.to_dict()
        assert record["agrees"] is True
        assert record["violations"] == []
