"""Continuous-time Markov chain availability models.

An independent validation route for the paper's combinatorial formulas:
an m-of-n block of repairable components with exponential failure/repair is
a CTMC whose steady-state up-probability equals Eq. (1) when every
component has its own repair crew — and *differs* when repair capacity is
shared, an assumption the RBD algebra cannot express.  The k-of-n builders
here are cross-checked against :mod:`repro.core.kofn` in the tests and used
by the ablation benchmark on repair-capacity sensitivity.
"""

from repro.markov.ctmc import Ctmc, steady_state
from repro.markov.birth_death import birth_death_steady_state
from repro.markov.kofn_markov import (
    kofn_availability_markov,
    kofn_chain,
)
from repro.markov.supervisor_markov import (
    effective_availability_markov,
    supervisor_process_chain,
)
from repro.markov.transient import (
    expected_first_outage_hours,
    survival_probability,
    transient_availability,
)

__all__ = [
    "Ctmc",
    "steady_state",
    "birth_death_steady_state",
    "kofn_chain",
    "kofn_availability_markov",
    "supervisor_process_chain",
    "effective_availability_markov",
    "transient_availability",
    "survival_probability",
    "expected_first_outage_hours",
]
