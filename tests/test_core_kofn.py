"""Tests for Eq. (1), the k-of-n block availability (repro.core.kofn)."""

from fractions import Fraction

import numpy as np
import pytest

from repro.core.kofn import (
    a_m_of_n,
    a_m_of_n_array,
    a_m_of_n_exact,
    binomial_pmf,
    kofn_unavailability,
)
from repro.errors import ParameterError


class TestAMofN:
    def test_zero_of_n_always_available(self):
        # The paper's "0 of 3" processes (supervisor, nodemgr).
        assert a_m_of_n(0, 3, 0.0) == 1.0
        assert a_m_of_n(0, 3, 0.7) == 1.0

    def test_m_greater_than_n_unavailable(self):
        # Eq. (1): A_{m/n} = 0 for m > n — the "2 of 3 with 1 host" case.
        assert a_m_of_n(2, 1, 0.9999) == 0.0
        assert a_m_of_n(3, 2, 1.0) == 0.0

    def test_one_of_one(self):
        assert a_m_of_n(1, 1, 0.75) == pytest.approx(0.75)

    def test_series_all_of_n(self):
        assert a_m_of_n(3, 3, 0.9) == pytest.approx(0.9**3)

    def test_parallel_one_of_n(self):
        assert a_m_of_n(1, 3, 0.9) == pytest.approx(1 - 0.1**3)

    def test_two_of_three_polynomial(self):
        # A_{2/3} = alpha^2 (3 - 2 alpha), the conclusion's closed form.
        alpha = 0.97
        assert a_m_of_n(2, 3, alpha) == pytest.approx(
            alpha**2 * (3 - 2 * alpha)
        )

    def test_perfect_components(self):
        assert a_m_of_n(2, 3, 1.0) == 1.0

    def test_dead_components(self):
        assert a_m_of_n(1, 5, 0.0) == 0.0

    def test_matches_exact_fraction_oracle(self):
        for m in range(0, 6):
            for n in range(0, 5):
                alpha = Fraction(7, 10)
                expected = float(a_m_of_n_exact(m, n, alpha))
                assert a_m_of_n(m, n, 0.7) == pytest.approx(
                    expected, rel=1e-12
                )

    def test_high_availability_precision(self):
        # The complementary-sum form retains precision at alpha -> 1:
        # 1 - A_{2/3}(1 - 1e-8) = 3e-16 + O(e^3), representable in float.
        u = kofn_unavailability(2, 3, 1 - 1e-8)
        assert u == pytest.approx(3e-16, rel=1e-6)

    def test_rejects_negative_n(self):
        with pytest.raises(ParameterError):
            a_m_of_n(1, -1, 0.5)

    def test_rejects_bad_alpha(self):
        with pytest.raises(ParameterError):
            a_m_of_n(1, 3, 1.5)


class TestUnavailability:
    def test_complements_availability(self):
        for m, n, alpha in [(1, 3, 0.9), (2, 3, 0.99), (3, 5, 0.8)]:
            assert kofn_unavailability(m, n, alpha) == pytest.approx(
                1 - a_m_of_n(m, n, alpha), abs=1e-12
            )

    def test_zero_requirement(self):
        assert kofn_unavailability(0, 3, 0.5) == 0.0

    def test_impossible_requirement(self):
        assert kofn_unavailability(4, 3, 0.5) == 1.0


class TestArrayForm:
    def test_matches_scalar(self):
        alphas = np.linspace(0.0, 1.0, 7)
        vector = a_m_of_n_array(2, 3, alphas)
        for value, alpha in zip(vector, alphas):
            assert value == pytest.approx(a_m_of_n(2, 3, float(alpha)))

    def test_shape_preserved(self):
        grid = np.ones((2, 3)) * 0.9
        assert a_m_of_n_array(1, 2, grid).shape == (2, 3)

    def test_m_zero_all_ones(self):
        assert np.all(a_m_of_n_array(0, 3, np.array([0.1, 0.5])) == 1.0)

    def test_m_too_large_all_zeros(self):
        assert np.all(a_m_of_n_array(4, 3, np.array([0.9, 1.0])) == 0.0)

    def test_rejects_out_of_range(self):
        with pytest.raises(ParameterError):
            a_m_of_n_array(1, 3, np.array([0.5, 1.2]))


class TestBinomialPmf:
    def test_sums_to_one(self):
        total = sum(binomial_pmf(k, 5, 0.3) for k in range(6))
        assert total == pytest.approx(1.0)

    def test_out_of_range_k_is_zero(self):
        assert binomial_pmf(-1, 3, 0.5) == 0.0
        assert binomial_pmf(4, 3, 0.5) == 0.0

    def test_known_value(self):
        assert binomial_pmf(2, 3, 0.5) == pytest.approx(0.375)

    def test_certain_success(self):
        assert binomial_pmf(3, 3, 1.0) == 1.0
        assert binomial_pmf(2, 3, 1.0) == 0.0
