"""Transient availability and first-outage analysis.

Steady-state availability (all the paper reports) averages over an infinite
horizon; operators also care about *when* the first outage arrives.  For a
CTMC this is exact matrix-exponential work (scipy):

* :func:`transient_availability` — ``P(system up at time t)`` from a given
  start state;
* :func:`survival_probability` — ``P(no system outage in [0, t])``, by
  making the down states absorbing;
* :func:`expected_first_outage_hours` — mean hitting time of the down set.

Combined with the k-of-n chains these quantify the paper's narrative that
a single-rack site may see "no rack-related downtime for many years
followed by a highly-publicized extended outage".
"""

from __future__ import annotations

from typing import Callable, Hashable

import numpy as np
from scipy.linalg import expm

from repro.errors import ModelError
from repro.markov.ctmc import Ctmc

State = Hashable


def _up_indices(chain: Ctmc, up: Callable[[State], bool]) -> list[int]:
    return [i for i, state in enumerate(chain.states) if up(state)]


def transient_availability(
    chain: Ctmc,
    up: Callable[[State], bool],
    t_hours: float,
    start: State | None = None,
) -> float:
    """``P(system up at t)`` starting from ``start`` (default: first state)."""
    if t_hours < 0:
        raise ModelError(f"t must be >= 0, got {t_hours}")
    states = chain.states
    if not states:
        raise ModelError("empty chain")
    start_index = 0 if start is None else list(states).index(start)
    q = chain.generator()
    distribution = np.zeros(len(states))
    distribution[start_index] = 1.0
    at_t = distribution @ expm(q * t_hours)
    return float(sum(at_t[i] for i in _up_indices(chain, up)))


def survival_probability(
    chain: Ctmc,
    up: Callable[[State], bool],
    t_hours: float,
    start: State | None = None,
) -> float:
    """``P(no outage in [0, t])`` — down states made absorbing.

    The start state must be an up state.
    """
    if t_hours < 0:
        raise ModelError(f"t must be >= 0, got {t_hours}")
    states = list(chain.states)
    start_index = 0 if start is None else states.index(start)
    if not up(states[start_index]):
        raise ModelError("survival analysis must start in an up state")
    q = chain.generator().copy()
    for i, state in enumerate(states):
        if not up(state):
            q[i, :] = 0.0  # absorbing
    distribution = np.zeros(len(states))
    distribution[start_index] = 1.0
    at_t = distribution @ expm(q * t_hours)
    up_idx = _up_indices(chain, up)
    return float(sum(at_t[i] for i in up_idx))


def expected_first_outage_hours(
    chain: Ctmc,
    up: Callable[[State], bool],
    start: State | None = None,
) -> float:
    """Mean hitting time of the down set from ``start``.

    Solves the standard linear system ``(Q_UU) h = -1`` restricted to the
    up states, where ``Q_UU`` is the generator block among up states.
    """
    states = list(chain.states)
    start_index = 0 if start is None else states.index(start)
    if not up(states[start_index]):
        return 0.0
    up_idx = _up_indices(chain, up)
    if len(up_idx) == len(states):
        return float("inf")  # no reachable down state
    q = chain.generator()
    q_uu = q[np.ix_(up_idx, up_idx)]
    try:
        hitting = np.linalg.solve(q_uu, -np.ones(len(up_idx)))
    except np.linalg.LinAlgError as exc:
        raise ModelError(
            "singular hitting-time system (down set unreachable?)"
        ) from exc
    position = up_idx.index(start_index)
    return float(hitting[position])
