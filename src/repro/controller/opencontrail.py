"""OpenContrail 3.x reference profile — the paper's Table I as data.

Role/process inventory, restart modes, and quorum requirements transcribed
from section III and Tables I-III:

* All Config, Control, and vRouter processes are auto-restarted by their
  supervisor; all Analytics processes except *redis* are auto-restarted;
  all Database processes require manual restart.
* CP quorums: the four Database processes are "2 of 3"; *dns*, *named*,
  *supervisor*, and *nodemgr* are "0 of 3"; everything else is "1 of 3".
* DP quorums: *discovery* is "1 of 3"; ``{control+dns+named}`` is a single
  co-located "1 of 3" block (Table III footnote); both vRouter processes are
  "1 of 1"; everything else is "0 of n".
"""

from __future__ import annotations

from repro.controller.process import ProcessSpec, RestartMode, nodemgr, supervisor
from repro.controller.role import RoleKind, RoleSpec
from repro.controller.spec import ControllerSpec

_AUTO = RestartMode.AUTO
_MANUAL = RestartMode.MANUAL


def config_role() -> RoleSpec:
    """The Config node type (northbound API and schema transformation)."""
    return RoleSpec(
        "Config",
        (
            ProcessSpec("config-api", _AUTO, cp_quorum=1, dp_quorum=0),
            ProcessSpec("discovery", _AUTO, cp_quorum=1, dp_quorum=1),
            ProcessSpec("schema", _AUTO, cp_quorum=1, dp_quorum=0),
            ProcessSpec("svc-monitor", _AUTO, cp_quorum=1, dp_quorum=0),
            ProcessSpec("ifmap", _AUTO, cp_quorum=1, dp_quorum=0),
            ProcessSpec("device-manager", _AUTO, cp_quorum=1, dp_quorum=0),
            supervisor(),
            nodemgr(),
        ),
    )


def control_role() -> RoleSpec:
    """The Control node type (BGP route distribution to vRouter agents).

    *control*, *dns*, and *named* form the co-located ``{control+dns+named}``
    "1 of 3" data-plane block: a host's vRouter agent needs all three on at
    least one common Control node.
    """
    return RoleSpec(
        "Control",
        (
            ProcessSpec(
                "control", _AUTO, cp_quorum=1, dp_quorum=1, dp_group="ctl"
            ),
            ProcessSpec("dns", _AUTO, cp_quorum=0, dp_quorum=1, dp_group="ctl"),
            ProcessSpec(
                "named", _AUTO, cp_quorum=0, dp_quorum=1, dp_group="ctl"
            ),
            supervisor(),
            nodemgr(),
        ),
    )


def analytics_role() -> RoleSpec:
    """The Analytics node type (operational data collection and query)."""
    return RoleSpec(
        "Analytics",
        (
            ProcessSpec("analytics-api", _AUTO, cp_quorum=1, dp_quorum=0),
            ProcessSpec("alarm-gen", _AUTO, cp_quorum=1, dp_quorum=0),
            ProcessSpec("collector", _AUTO, cp_quorum=1, dp_quorum=0),
            ProcessSpec("query-engine", _AUTO, cp_quorum=1, dp_quorum=0),
            ProcessSpec("redis", _MANUAL, cp_quorum=1, dp_quorum=0),
            supervisor(),
            nodemgr(),
        ),
    )


def database_role() -> RoleSpec:
    """The Database node type — the only "2 of 3" quorum processes.

    Separate Cassandra clusters persist the Config and Analytics data;
    Zookeeper guarantees ID uniqueness for Config; Kafka streams Analytics
    events.  All four are clustered 2N+1 and require a "2 of 3" quorum for
    control-plane availability; all require manual restart.
    """
    return RoleSpec(
        "Database",
        (
            ProcessSpec("cassandra-config", _MANUAL, cp_quorum=2, dp_quorum=0),
            ProcessSpec(
                "cassandra-analytics", _MANUAL, cp_quorum=2, dp_quorum=0
            ),
            ProcessSpec("kafka", _MANUAL, cp_quorum=2, dp_quorum=0),
            ProcessSpec("zookeeper", _MANUAL, cp_quorum=2, dp_quorum=0),
            supervisor(),
            nodemgr(),
        ),
    )


def vrouter_role() -> RoleSpec:
    """The per-host vRouter role — the data plane's single points of failure.

    Both *vrouter-agent* and *vrouter-dpdk* are "1 of 1" for the host data
    plane: failure of either takes down forwarding for the entire host
    (section III).  Neither is required for the SDN control plane.
    """
    return RoleSpec(
        "vRouter",
        (
            ProcessSpec("vrouter-agent", _AUTO, cp_quorum=0, dp_quorum=1),
            ProcessSpec("vrouter-dpdk", _AUTO, cp_quorum=0, dp_quorum=1),
            supervisor(),
            nodemgr(),
        ),
        kind=RoleKind.HOST,
    )


def opencontrail_3x(cluster_size: int = 3) -> ControllerSpec:
    """The complete OpenContrail 3.x specification (paper Table I).

    Args:
        cluster_size: controller nodes in the 2N+1 cluster; the paper
            analyses the minimum deployment of 3 ("generalization to N>1 is
            straightforward" — pass 5, 7, ... to do so; "2 of 3" Database
            quorums are interpreted as majority quorums and scale to
            ``cluster_size // 2 + 1``).
    """
    roles = (
        config_role(),
        control_role(),
        analytics_role(),
        database_role(),
        vrouter_role(),
    )
    if cluster_size != 3:
        if cluster_size < 3 or cluster_size % 2 == 0:
            raise ValueError(
                "cluster_size must be an odd number >= 3 (the 2N+1 rule)"
            )
        majority = cluster_size // 2 + 1
        roles = tuple(
            _rescale_quorums(role, majority) if role.kind is RoleKind.CLUSTER
            else role
            for role in roles
        )
    return ControllerSpec("OpenContrail 3.x", roles, cluster_size=cluster_size)


def _rescale_quorums(role: RoleSpec, majority: int) -> RoleSpec:
    """Map the 3-node quorums onto a larger cluster: 2-of-3 becomes majority."""
    processes = tuple(
        ProcessSpec(
            p.name,
            p.restart,
            cp_quorum=majority if p.cp_quorum == 2 else p.cp_quorum,
            dp_quorum=majority if p.dp_quorum == 2 else p.dp_quorum,
            dp_group=p.dp_group,
            kind=p.kind,
        )
        for p in role.processes
    )
    return RoleSpec(role.name, processes, kind=role.kind)
