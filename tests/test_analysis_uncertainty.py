"""Tests for uncertainty propagation (repro.analysis.uncertainty)."""

import numpy as np
import pytest

from repro.analysis.uncertainty import (
    UncertaintyResult,
    corner_bounds,
    monte_carlo,
    ordering_confidence,
    sample_hardware,
)
from repro.errors import ParameterError
from repro.models.hw_closed import hw_large, hw_medium, hw_small


class TestSampling:
    def test_samples_within_spread(self, hardware):
        rng = np.random.default_rng(1)
        for _ in range(50):
            draw = sample_hardware(hardware, 0.5, rng)
            for field in ("a_role", "a_vm", "a_host", "a_rack"):
                base_u = 1 - getattr(hardware, field)
                draw_u = 1 - getattr(draw, field)
                assert base_u / 10**0.5 <= draw_u <= base_u * 10**0.5 * (1 + 1e-9)

    def test_deterministic_per_seed(self, hardware):
        a = monte_carlo(hw_small, hardware, samples=20, seed=7)
        b = monte_carlo(hw_small, hardware, samples=20, seed=7)
        assert a.samples == b.samples

    def test_validation(self, hardware):
        with pytest.raises(ParameterError):
            monte_carlo(hw_small, hardware, samples=0)
        rng = np.random.default_rng(0)
        with pytest.raises(ParameterError):
            sample_hardware(hardware, 0.0, rng)


class TestResult:
    def test_percentiles_ordered(self, hardware):
        result = monte_carlo(hw_small, hardware, samples=200, seed=3)
        assert result.p5 <= result.mean <= result.p95

    def test_percentile_validation(self):
        result = UncertaintyResult((0.5, 0.6))
        with pytest.raises(ParameterError):
            result.percentile(101)


class TestPaperRobustnessClaim:
    """'The resulting relative comparisons and observations remain the
    same regardless of the actual values used.'"""

    def test_one_or_three_racks_ordering_robust(self, hardware):
        confidence = ordering_confidence(
            {"small": hw_small, "medium": hw_medium, "large": hw_large},
            ("medium", "small", "large"),
            hardware,
            spread_orders=0.5,
            samples=300,
            seed=11,
        )
        assert confidence == 1.0

    def test_ordering_holds_at_one_full_order(self, hardware):
        confidence = ordering_confidence(
            {"small": hw_small, "large": hw_large},
            ("small", "large"),
            hardware,
            spread_orders=1.0,
            samples=300,
            seed=13,
        )
        assert confidence == 1.0

    def test_ordering_validation(self, hardware):
        with pytest.raises(ParameterError):
            ordering_confidence({"a": hw_small}, ("a",), hardware)
        with pytest.raises(ParameterError):
            ordering_confidence({"a": hw_small}, ("a", "ghost"), hardware)


class TestCornerBounds:
    def test_bounds_bracket_samples(self, hardware):
        lo, hi = corner_bounds(hw_large, hardware, spread_orders=0.5)
        result = monte_carlo(hw_large, hardware, 0.5, samples=200, seed=5)
        assert lo <= min(result.samples)
        assert max(result.samples) <= hi

    def test_bounds_bracket_base(self, hardware):
        lo, hi = corner_bounds(hw_small, hardware, 0.3)
        assert lo <= hw_small(hardware) <= hi

    def test_wider_spread_widens_bounds(self, hardware):
        narrow = corner_bounds(hw_small, hardware, 0.2)
        wide = corner_bounds(hw_small, hardware, 1.0)
        assert wide[0] <= narrow[0] and narrow[1] <= wide[1]
