"""E3 — regenerate Table III: counts of processes by quorum type by role."""

from repro.controller.spec import Plane
from repro.controller.tables import render_table3

PAPER_CP = {
    "Config": (0, 6),
    "Control": (0, 1),
    "Analytics": (0, 5),
    "Database": (4, 0),
}
PAPER_DP = {
    "Config": (0, 1),
    "Control": (0, 1),
    "Analytics": (0, 0),
    "Database": (0, 0),
}


def test_table3(benchmark, spec):
    text = benchmark(render_table3, spec)
    print("\n" + text)
    assert spec.quorum_table(Plane.CP) == PAPER_CP
    assert spec.quorum_table(Plane.DP) == PAPER_DP
    assert spec.quorum_sums(Plane.CP) == (4, 12)
    assert spec.quorum_sums(Plane.DP) == (0, 2)
