"""Plain-text, CSV, and manifest rendering for the CLI, benchmarks, examples."""

from repro.reporting.tables import format_table
from repro.reporting.csvout import write_csv
from repro.reporting.faults import attribution_payload, attribution_rows
from repro.reporting.manifest import (
    write_manifest_csv,
    write_manifest_json,
    write_spans_csv,
)
from repro.reporting.network import (
    evaluate_payload,
    evaluate_rows,
    placement_payload,
    placement_rows,
    write_network_json,
)

__all__ = [
    "format_table",
    "write_csv",
    "attribution_rows",
    "attribution_payload",
    "write_manifest_json",
    "write_manifest_csv",
    "write_spans_csv",
    "evaluate_rows",
    "evaluate_payload",
    "placement_rows",
    "placement_payload",
    "write_network_json",
]
