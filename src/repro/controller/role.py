"""Role-level specification and quorum-unit derivation.

A *role* (the paper's "node type") is a set of processes replicated across
the controller cluster (cluster roles: Config, Control, Analytics, Database)
or present on every compute host (the host role: vRouter).

For availability evaluation each plane's requirements are reduced to
*quorum units*: independent m-of-x blocks, where a unit is either a single
process or a co-located group of processes (the paper's
``{control+dns+named}`` block whose per-instance availability is the product
of its members' availabilities).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Mapping

from repro.controller.process import ProcessKind, ProcessSpec, RestartMode
from repro.errors import SpecError


class RoleKind(enum.Enum):
    """Where instances of the role live."""

    CLUSTER = "cluster"  # replicated 2N+1 across controller nodes
    HOST = "host"  # one instance per compute host (vRouter)


@dataclass(frozen=True)
class QuorumUnit:
    """An independent m-of-x availability block for one plane.

    Attributes:
        label: unit name — the process name, or ``{a+b+c}`` for a group.
        quorum: minimum instances required (the ``m`` in ``m of x``).
        members: the processes forming the unit; a single-process unit has
            one member.  The unit's per-instance availability is the product
            of its members' availabilities (co-location).
    """

    label: str
    quorum: int
    members: tuple[ProcessSpec, ...]

    def alpha(self, availability: Mapping[RestartMode, float]) -> float:
        """Per-instance availability of the unit.

        ``availability`` maps each restart mode to the corresponding process
        availability (``A`` for AUTO, ``A_S`` for MANUAL, in the paper's
        notation).
        """
        value = 1.0
        for member in self.members:
            value *= availability[member.restart]
        return value


@dataclass(frozen=True)
class RoleSpec:
    """One controller role and its processes.

    Attributes:
        name: role name (e.g. ``"Config"``).
        processes: the role's processes; names must be unique.  Supervisor
            and nodemgr processes are added by most profiles but are not
            mandatory (a controller without per-role supervisors sets
            no SUPERVISOR-kind process and uses scenario 1 semantics).
        kind: cluster-replicated or per-host.
    """

    name: str
    processes: tuple[ProcessSpec, ...]
    kind: RoleKind = RoleKind.CLUSTER

    def __post_init__(self) -> None:
        if not self.name:
            raise SpecError("role name must be non-empty")
        object.__setattr__(self, "processes", tuple(self.processes))
        names = [p.name for p in self.processes]
        if len(set(names)) != len(names):
            raise SpecError(f"duplicate process names in role {self.name!r}")
        supervisors = [
            p for p in self.processes if p.kind is ProcessKind.SUPERVISOR
        ]
        if len(supervisors) > 1:
            raise SpecError(f"role {self.name!r} has multiple supervisors")
        self._validate_groups()

    def _validate_groups(self) -> None:
        groups: dict[str, list[ProcessSpec]] = {}
        for process in self.processes:
            if process.dp_group is not None:
                groups.setdefault(process.dp_group, []).append(process)
        for label, members in groups.items():
            quorums = {p.dp_quorum for p in members}
            if len(quorums) != 1:
                raise SpecError(
                    f"dp_group {label!r} in role {self.name!r} mixes quorum "
                    f"requirements {sorted(quorums)}"
                )

    # -- lookups ------------------------------------------------------------

    @property
    def supervisor(self) -> ProcessSpec | None:
        """The role's supervisor process, if it has one."""
        for process in self.processes:
            if process.kind is ProcessKind.SUPERVISOR:
                return process
        return None

    @property
    def regular_processes(self) -> tuple[ProcessSpec, ...]:
        """Processes counted in the paper's Table II (excludes supervisor/nodemgr)."""
        return tuple(
            p for p in self.processes if p.kind is ProcessKind.REGULAR
        )

    def process(self, name: str) -> ProcessSpec:
        """Look up a process by name."""
        for candidate in self.processes:
            if candidate.name == name:
                return candidate
        raise SpecError(f"role {self.name!r} has no process {name!r}")

    # -- quorum units ---------------------------------------------------------

    def quorum_units(self, plane: str) -> tuple[QuorumUnit, ...]:
        """The role's m-of-x availability blocks for ``plane`` ('cp' or 'dp').

        Processes with a zero requirement for the plane contribute no unit
        (a "0 of n" block has availability 1).  DP co-location groups are
        merged into a single unit whose per-instance availability multiplies
        its members' availabilities.
        """
        if plane not in ("cp", "dp"):
            raise SpecError(f"plane must be 'cp' or 'dp', got {plane!r}")
        units: list[QuorumUnit] = []
        grouped: dict[str, list[ProcessSpec]] = {}
        for process in self.processes:
            quorum = process.cp_quorum if plane == "cp" else process.dp_quorum
            if quorum == 0:
                continue
            if plane == "dp" and process.dp_group is not None:
                grouped.setdefault(process.dp_group, []).append(process)
                continue
            units.append(QuorumUnit(process.name, quorum, (process,)))
        for label in sorted(grouped):
            members = tuple(grouped[label])
            joined = "{" + "+".join(p.name for p in members) + "}"
            units.append(QuorumUnit(joined, members[0].dp_quorum, members))
        return tuple(units)

    def quorum_counts(self, plane: str) -> tuple[int, int]:
        """Table III entry for this role: ``(M, N)``.

        ``M`` = number of quorum units requiring "2 of n" or more, ``N`` =
        number requiring "1 of n" — the paper's ``M_R`` and ``N_R`` columns.
        """
        units = self.quorum_units(plane)
        m = sum(1 for unit in units if unit.quorum >= 2)
        n = sum(1 for unit in units if unit.quorum == 1)
        return m, n

    def restart_counts(self) -> tuple[int, int]:
        """Table II entry for this role: ``(auto, manual)`` regular-process counts."""
        auto = sum(
            1
            for p in self.regular_processes
            if p.restart is RestartMode.AUTO
        )
        manual = sum(
            1
            for p in self.regular_processes
            if p.restart is RestartMode.MANUAL
        )
        return auto, manual
