"""Hot-path engine optimizations: exact-equivalence tests.

Every optimization in the simulation core — buffered RNG blocks, the
memoized effective-state cache, stale-event heap compaction, the warm
process-pool registry — claims *bit-exact* equivalence with the
straightforward implementation it replaced.  These tests check each claim
directly: buffered draws against scalar draws, the cache against a fresh
uncached dependency walk (property-based, over arbitrary transition
sequences), compacted heaps against uncompacted pop order, and the
chunked warm-pool dispatch against inline evaluation.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ParameterError, SimulationError
from repro.perf.parallel import (
    MAX_WARM_POOLS,
    acquire_warm_pool,
    broadcast_value,
    get_warm_pool,
    map_chunked,
    shutdown_warm_pools,
    split_chunks,
    warm_pool_count,
    warm_pool_lease_count,
)
from repro.sim.engine import AvailabilitySimulator
from repro.sim.entities import Component, ComponentKind, ComponentState
from repro.sim.events import (
    COMPACT_MIN_SIZE,
    COMPACT_STALE_FRACTION,
    Event,
    EventQueue,
)
from repro.sim.rng import INITIAL_BLOCK, MAX_BLOCK, RngStreams


# -- buffered RNG -------------------------------------------------------------


class TestBufferedRng:
    def test_buffered_equals_scalar_draws(self):
        """Block-buffered draws are element-for-element identical to the
        per-variate ``Generator.exponential`` calls they replaced, across
        several geometric refills (8 -> 16 -> ... -> 1024 -> 1024)."""
        count = 3 * MAX_BLOCK  # crosses every block size at least once
        buffered = RngStreams(42)
        reference = RngStreams(42)
        generator = reference.stream("clock")
        for i in range(count):
            assert buffered.exponential("clock", 3.5) == generator.exponential(
                3.5
            ), f"draw {i} diverged"

    def test_varying_means_scale_at_pop(self):
        """One stream asked for different means on successive draws (the
        R vs R_S repair selection) still matches scalar draws exactly."""
        means = [0.5, 120.0, 0.5, 3.0, 7.25] * (INITIAL_BLOCK * 4)
        buffered = RngStreams(7)
        generator = RngStreams(7).stream("repair")
        got = [buffered.exponential("repair", m) for m in means]
        expected = [generator.exponential(m) for m in means]
        assert got == expected

    def test_streams_buffer_independently(self):
        """Interleaved draws on two streams never cross-contaminate."""
        buffered = RngStreams(9)
        ref_a = RngStreams(9)
        # Streams spawn in first-use order: touch "a" then "b" everywhere.
        gen_a = ref_a.stream("a")
        gen_b = ref_a.stream("b")
        for _ in range(INITIAL_BLOCK * 3):
            assert buffered.exponential("a", 1.0) == gen_a.exponential(1.0)
            assert buffered.exponential("b", 2.0) == gen_b.exponential(2.0)

    def test_nonpositive_mean_rejected_without_consuming(self):
        streams = RngStreams(3)
        with pytest.raises(SimulationError, match="mean must be > 0"):
            streams.exponential("s", 0.0)
        with pytest.raises(SimulationError, match="mean must be > 0"):
            streams.exponential("s", -1.0)
        # The rejected calls consumed nothing: the first real draw equals
        # a fresh stream's first draw.
        assert streams.exponential("s", 1.0) == RngStreams(3).exponential(
            "s", 1.0
        )


# -- heap compaction ----------------------------------------------------------


def _noop() -> None:
    pass


class TestQueueCompaction:
    def _queue_with_staleset(self, stale_keys: set[str]) -> EventQueue:
        return EventQueue(stale=lambda event: event.component in stale_keys)

    def test_compaction_purges_stale_keeps_live_order(self):
        """Stale entries vanish; survivors pop in the exact original order,
        including FIFO ties at equal times."""
        stale: set[str] = set()
        queue = self._queue_with_staleset(stale)
        # Interleave live and (later) stale events, with time ties.
        for i in range(40):
            queue.schedule(
                Event(time=float(i // 4), action=_noop, component=f"live{i}")
            )
            queue.schedule(
                Event(time=float(i // 4), action=_noop, component=f"dead{i}")
            )
        stale.update(f"dead{i}" for i in range(40))
        purged = queue.compact()
        assert purged == 40
        assert queue.purged == 40
        assert queue.compactions == 1
        assert len(queue) == 40
        popped = [queue.pop() for _ in range(40)]
        # Original schedule order of the survivors: live0, live1, ... with
        # times i//4 — nondecreasing times, FIFO within each tie group.
        assert [event.component for event in popped] == [
            f"live{i}" for i in range(40)
        ]
        assert [event.time for event in popped] == [float(i // 4) for i in range(40)]

    def test_note_stale_triggers_lazy_compaction(self):
        stale: set[str] = set()
        queue = self._queue_with_staleset(stale)
        total = COMPACT_MIN_SIZE * 2
        for i in range(total):
            queue.schedule(
                Event(time=float(i), action=_noop, component=f"c{i}")
            )
        corpses = int(total * COMPACT_STALE_FRACTION) + 2
        stale.update(f"c{i}" for i in range(corpses))
        queue.note_stale(corpses)
        assert queue.compactions == 1
        assert queue.purged == corpses
        assert len(queue) == total - corpses
        assert queue.stale_hint == 0

    def test_small_heaps_never_compact(self):
        """Below COMPACT_MIN_SIZE a rebuild costs more than it saves."""
        stale: set[str] = set()
        queue = self._queue_with_staleset(stale)
        for i in range(COMPACT_MIN_SIZE // 2):
            queue.schedule(
                Event(time=float(i), action=_noop, component=f"c{i}")
            )
        stale.update(f"c{i}" for i in range(COMPACT_MIN_SIZE // 2))
        queue.note_stale(COMPACT_MIN_SIZE // 2)
        assert queue.compactions == 0
        assert queue.stale_hint == COMPACT_MIN_SIZE // 2

    def test_queue_without_predicate_ignores_compaction(self):
        queue = EventQueue()
        for i in range(COMPACT_MIN_SIZE * 2):
            queue.schedule(Event(time=float(i), action=_noop))
        queue.note_stale(COMPACT_MIN_SIZE * 2)
        assert len(queue) == COMPACT_MIN_SIZE * 2  # nothing dropped


# -- cached effective state (property-based) ----------------------------------

#: A diamond-over-chain dependency graph: rack -> two hosts -> two VMs ->
#: one process needing both VMs.  Covers shared roots, fan-out, and fan-in.
_GRAPH = {
    "rack:R": (),
    "host:A": ("rack:R",),
    "host:B": ("rack:R",),
    "vm:A": ("host:A",),
    "vm:B": ("host:B",),
    "proc:P": ("vm:A", "vm:B"),
}

_KINDS = {
    "rack:R": ComponentKind.RACK,
    "host:A": ComponentKind.HOST,
    "host:B": ComponentKind.HOST,
    "vm:A": ComponentKind.VM,
    "vm:B": ComponentKind.VM,
    "proc:P": ComponentKind.PROCESS,
}


def _graph_simulator() -> AvailabilitySimulator:
    components = [
        Component(
            key=key,
            kind=_KINDS[key],
            failure_rate=0.0,
            repair_mean=1.0,
            dependencies=deps,
        )
        for key, deps in _GRAPH.items()
    ]
    return AvailabilitySimulator(
        components, seed=1, repair_sampler=lambda rng, name, mean: mean
    )


def _fresh_walk(simulator: AvailabilitySimulator, key: str) -> bool:
    """The seed engine's uncached recursive effective-state evaluation."""
    component = simulator.components[key]
    if component.state is not ComponentState.UP:
        return False
    return all(
        _fresh_walk(simulator, dependency)
        for dependency in component.dependencies
    )


_OPS = st.lists(
    st.tuples(
        st.sampled_from(["fail", "fail_repair", "fail_hold", "repair"]),
        st.sampled_from(sorted(_GRAPH)),
    ),
    max_size=40,
)


class TestCachedEffectiveState:
    @settings(max_examples=200, deadline=None)
    @given(ops=_OPS)
    def test_cache_agrees_with_fresh_walk(self, ops):
        """After any fail/repair/hold sequence, the memoized
        ``effectively_up`` equals an uncached dependency walk for every
        component."""
        simulator = _graph_simulator()
        for op, key in ops:
            if op == "fail":
                simulator.force_fail(key)
            elif op == "fail_repair":
                simulator.force_fail(key, repair=True)
            elif op == "fail_hold":
                simulator.force_fail(key, repair=True, hold=True)
            else:
                simulator.force_repair(key)
            for probe in _GRAPH:
                assert simulator.effectively_up(probe) == _fresh_walk(
                    simulator, probe
                ), f"cache diverged at {probe!r} after {op} {key!r}"


# -- selector errors ----------------------------------------------------------


class TestResolveGroupErrors:
    def test_well_formed_but_empty_role(self):
        simulator = _graph_simulator()
        with pytest.raises(
            SimulationError, match="matched no components.*role 'Analytics'"
        ):
            simulator.resolve_group("role:Analytics")

    def test_well_formed_but_empty_kind(self):
        simulator = _graph_simulator()  # has no supervisors
        with pytest.raises(
            SimulationError,
            match="matched no components: no 'supervisor' components",
        ):
            simulator.resolve_group("kind:supervisor")

    def test_unknown_kind_is_unresolvable_not_empty(self):
        simulator = _graph_simulator()
        with pytest.raises(
            SimulationError, match="'toaster' is not a component kind"
        ):
            simulator.resolve_group("kind:toaster")

    def test_gibberish_selector_is_unresolvable(self):
        simulator = _graph_simulator()
        with pytest.raises(
            SimulationError, match="cannot resolve component or group"
        ):
            simulator.resolve_group("nonsense")


# -- signal dependency declarations -------------------------------------------


class TestSignalDeclarations:
    def test_unknown_dependency_rejected(self):
        simulator = _graph_simulator()
        with pytest.raises(
            SimulationError, match="declares unknown dependency"
        ):
            simulator.add_signal(
                "bad", lambda sim: True, depends_on=["vm:MISSING"]
            )

    def test_duplicate_signal_rejected(self):
        simulator = _graph_simulator()
        simulator.add_signal("s", lambda sim: True, depends_on=["vm:A"])
        with pytest.raises(SimulationError, match="duplicate signal"):
            simulator.add_signal("s", lambda sim: True)

    def test_declared_signal_tracks_only_its_keys(self):
        """A signal declared over one branch of the diamond reflects that
        branch's transitions and is untouched by the other branch."""
        simulator = _graph_simulator()
        simulator.add_signal(
            "a-branch",
            lambda sim: sim.effectively_up("vm:A"),
            depends_on=["rack:R", "host:A", "vm:A"],
        )
        simulator.force_fail("host:B")  # other branch
        assert simulator.signal("a-branch").state is True
        simulator.force_fail("host:A")
        assert simulator.signal("a-branch").state is False
        simulator.force_repair("host:A")
        assert simulator.signal("a-branch").state is True


# -- warm pools and chunked dispatch ------------------------------------------


def _identity(item):
    return item


def _with_broadcast(item):
    return (item, broadcast_value())


@pytest.fixture(autouse=True)
def _clean_pools():
    yield
    shutdown_warm_pools()


class TestWarmPools:
    def test_pool_is_reused_for_same_recipe(self):
        first = get_warm_pool(2)
        second = get_warm_pool(2)
        assert first is second
        assert warm_pool_count() == 1

    def test_distinct_recipes_get_distinct_pools(self):
        assert get_warm_pool(2) is not get_warm_pool(3)
        assert warm_pool_count() == 2

    def test_shutdown_forgets_pools(self):
        pool = get_warm_pool(2)
        assert shutdown_warm_pools() == 1
        assert warm_pool_count() == 0
        assert get_warm_pool(2) is not pool

    def test_registry_is_bounded(self):
        for workers in range(1, MAX_WARM_POOLS + 3):
            get_warm_pool(workers)
        assert warm_pool_count() == MAX_WARM_POOLS

    def test_invalid_worker_count_rejected(self):
        with pytest.raises(ParameterError, match="workers must be >= 1"):
            get_warm_pool(0)

    def test_map_chunked_preserves_order_and_broadcasts(self):
        items = list(range(11))
        results = map_chunked(_with_broadcast, items, workers=2, context="ctx")
        assert [item for item, _ in results] == items
        assert all(context == "ctx" for _, context in results)


class TestPoolHandles:
    def test_lease_shares_the_anonymous_pool(self):
        handle = acquire_warm_pool(2)
        try:
            assert handle.executor is get_warm_pool(2)
            assert warm_pool_lease_count() == 1
        finally:
            handle.release()
        assert warm_pool_lease_count() == 0

    def test_release_is_idempotent(self):
        handle = acquire_warm_pool(2)
        handle.release()
        handle.release()
        assert handle.released
        assert warm_pool_lease_count() == 0

    def test_released_handle_refuses_access(self):
        handle = acquire_warm_pool(2)
        handle.release()
        with pytest.raises(ParameterError, match="released"):
            handle.executor

    def test_context_manager_releases(self):
        with acquire_warm_pool(2) as handle:
            assert not handle.released
            assert warm_pool_lease_count() == 1
        assert handle.released
        assert warm_pool_lease_count() == 0

    def test_leased_pool_is_pinned_against_eviction(self):
        handle = acquire_warm_pool(1)
        try:
            pinned = handle.executor
            for workers in range(2, MAX_WARM_POOLS + 4):
                get_warm_pool(workers)
            # The LRU trimmed unleased pools, never the leased one.
            assert warm_pool_count() <= MAX_WARM_POOLS + 1
            assert handle.executor is pinned
        finally:
            handle.release()

    def test_shutdown_survivable_by_lease(self):
        handle = acquire_warm_pool(2)
        try:
            before = handle.executor
            shutdown_warm_pools()
            # The registry dropped the pool; the lease re-obtains a fresh,
            # usable one on next access instead of a shut-down executor.
            after = handle.executor
            assert after is not before
            assert after.submit(_identity, 5).result() == 5
        finally:
            handle.release()

    def test_lease_survives_worker_use(self):
        with acquire_warm_pool(2) as handle:
            results = [
                handle.executor.submit(_identity, item) for item in range(5)
            ]
            assert [f.result() for f in results] == list(range(5))


class TestSplitChunks:
    def test_contiguous_balanced_cover(self):
        chunks = split_chunks(list(range(10)), 3)
        assert chunks == [[0, 1, 2, 3], [4, 5, 6], [7, 8, 9]]
        assert [x for chunk in chunks for x in chunk] == list(range(10))

    def test_more_parts_than_items(self):
        assert split_chunks([1, 2], 5) == [[1], [2]]

    def test_empty_items(self):
        assert split_chunks([], 4) == [[]]

    def test_invalid_parts_rejected(self):
        with pytest.raises(ParameterError, match="parts must be >= 1"):
            split_chunks([1], 0)
