"""Model parameters: hardware and software availabilities.

The paper's models are driven by a handful of availability parameters
("intended to represent ballpark parameters ... for relative, qualitative
comparisons"):

* hardware: role/VM/host/rack availabilities (:class:`HardwareParams`),
* software: process failure/restart times and the derived supervised and
  unsupervised availabilities (:class:`SoftwareParams`).

:mod:`repro.params.defaults` carries the exact values printed in the paper.
"""

from repro.params.hardware import HardwareParams, MaintenanceLevel
from repro.params.software import RestartScenario, SoftwareParams
from repro.params.defaults import (
    PAPER_HARDWARE,
    PAPER_HARDWARE_FIG3,
    PAPER_SOFTWARE,
    paper_hardware,
    paper_software,
)

__all__ = [
    "HardwareParams",
    "MaintenanceLevel",
    "SoftwareParams",
    "RestartScenario",
    "PAPER_HARDWARE",
    "PAPER_HARDWARE_FIG3",
    "PAPER_SOFTWARE",
    "paper_hardware",
    "paper_software",
]
