"""Time-weighted measurement of binary availability signals.

:class:`BinarySignal` integrates a boolean signal over simulated time —
the estimator of steady-state availability — and records per-batch means so
a confidence interval can be formed by the batch-means method (simulation
output is autocorrelated; i.i.d. formulas on raw samples would be wrong).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Iterable, Mapping, Sequence

from repro.errors import SimulationError

#: Cause label for outage episodes no transition was recorded for (e.g. a
#: signal that starts down before any component transition).
UNATTRIBUTED = "unattributed"


def build_attribution(
    name: str,
    durations: Sequence[float],
    causes: Sequence[tuple[str, str, int] | None],
    open_cause: tuple[str, str, int] | None = None,
    open_duration: float | None = None,
) -> "SignalAttribution":
    """Build a :class:`SignalAttribution` from episode durations and causes.

    ``durations``/``causes`` are the completed episodes, aligned;
    ``open_duration`` (when not ``None``) adds one still-open episode
    charged to ``open_cause``.  Episodes with a ``None`` cause are charged
    to :data:`UNATTRIBUTED`; depths are counted only when ``>= 0``.  Both
    the scalar :meth:`BinarySignal.attribution` and the batched kernel's
    result assembly route through this single charging rule, so their
    ledgers are definitionally identical for identical episode streams.
    """
    components: dict[str, tuple[float, ...]] = {}
    sources: dict[str, tuple[float, ...]] = {}
    depths: dict[int, int] = {}

    def charge(cause: tuple[str, str, int] | None, duration: float):
        component, source, depth = cause or (UNATTRIBUTED, UNATTRIBUTED, -1)
        components[component] = components.get(component, ()) + (duration,)
        sources[source] = sources.get(source, ()) + (duration,)
        if depth >= 0:
            depths[depth] = depths.get(depth, 0) + 1

    for duration, cause in zip(durations, causes):
        charge(cause, duration)
    open_episodes = 0
    if open_duration is not None:
        open_episodes = 1
        charge(open_cause, open_duration)
    return SignalAttribution(
        name=name,
        components=components,
        sources=sources,
        depths=depths,
        open_episodes=open_episodes,
    )


@dataclass(frozen=True, slots=True)
class SignalAttribution:
    """Per-signal downtime attribution ledger.

    Maps each *cause* of the signal's outage episodes — the component key
    whose transition opened the episode, and the hazard source behind that
    transition — to the tuple of episode durations it is charged with.
    Durations are kept as tuples (never pre-summed): ``math.fsum`` over a
    multiset of floats is exactly rounded and therefore grouping-
    independent, which is what lets the conservation invariant hold with
    ``==`` — the per-component ledger sums *exactly* to the signal's total
    outage seconds, and merging across replications (tuple concatenation)
    preserves that exactness.
    """

    name: str
    components: Mapping[str, tuple[float, ...]] = field(default_factory=dict)
    sources: Mapping[str, tuple[float, ...]] = field(default_factory=dict)
    #: episode counts by depth of the flipped key in the triggering
    #: component's dependents closure (0 = the component itself).
    depths: Mapping[int, int] = field(default_factory=dict)
    open_episodes: int = 0

    @property
    def episode_count(self) -> int:
        return sum(len(durations) for durations in self.components.values())

    def component_seconds(self) -> dict[str, float]:
        """Exact downtime seconds charged to each component."""
        return {
            key: math.fsum(durations)
            for key, durations in self.components.items()
        }

    def source_seconds(self) -> dict[str, float]:
        """Exact downtime seconds charged to each hazard source."""
        return {
            key: math.fsum(durations)
            for key, durations in self.sources.items()
        }

    def total_seconds(self) -> float:
        """Total attributed downtime (fsum over the full duration multiset)."""
        return math.fsum(
            duration
            for durations in self.components.values()
            for duration in durations
        )

    def to_dict(self) -> dict:
        """JSON-serializable summary (seconds per cause, episode counts)."""
        return {
            "episodes": self.episode_count,
            "open_episodes": self.open_episodes,
            "total_seconds": self.total_seconds(),
            "components": self.component_seconds(),
            "sources": self.source_seconds(),
            "depths": {str(k): v for k, v in sorted(self.depths.items())},
        }

    @classmethod
    def merge(
        cls, ledgers: Iterable["SignalAttribution"], name: str | None = None
    ) -> "SignalAttribution":
        """Concatenate ledgers (e.g. across campaign replications)."""
        components: dict[str, tuple[float, ...]] = {}
        sources: dict[str, tuple[float, ...]] = {}
        depths: dict[int, int] = {}
        open_episodes = 0
        merged_name = name
        for ledger in ledgers:
            if merged_name is None:
                merged_name = ledger.name
            for key, durations in ledger.components.items():
                components[key] = components.get(key, ()) + tuple(durations)
            for key, durations in ledger.sources.items():
                sources[key] = sources.get(key, ()) + tuple(durations)
            for depth, count in ledger.depths.items():
                depths[depth] = depths.get(depth, 0) + count
            open_episodes += ledger.open_episodes
        return cls(
            name=merged_name or "",
            components=components,
            sources=sources,
            depths=depths,
            open_episodes=open_episodes,
        )


class BinarySignal:
    """Integrates an up/down signal over time.

    Besides the time-weighted availability, the signal records *outage
    episodes* — maximal down intervals — enabling frequency/duration
    statistics that validate the cut-set outage calculus
    (:mod:`repro.analysis.frequency`).

    Instances sit on the simulator's per-event path (every state-changing
    event updates every signal), so the class is slotted.
    """

    __slots__ = (
        "name",
        "_state",
        "_last_change",
        "_up_time",
        "_total_time",
        "_outage_started",
        "_outage_durations",
        "_outage_causes",
        "_open_cause",
    )

    def __init__(self, name: str, initial: bool, start_time: float = 0.0):
        self.name = name
        self._state = bool(initial)
        self._last_change = start_time
        self._up_time = 0.0
        self._total_time = 0.0
        self._outage_started = None if self._state else start_time
        self._outage_durations: list[float] = []
        # One cause per completed episode, aligned with _outage_durations:
        # (component_key, hazard_source, closure_depth) or None.
        self._outage_causes: list[tuple[str, str, int] | None] = []
        self._open_cause: tuple[str, str, int] | None = None

    @property
    def state(self) -> bool:
        return self._state

    def update(self, time: float, state: bool) -> None:
        """Record the signal value from ``time`` onward."""
        if time < self._last_change:
            raise SimulationError(
                f"signal {self.name!r} updated backwards in time"
            )
        elapsed = time - self._last_change
        self._total_time += elapsed
        if self._state:
            self._up_time += elapsed
        state = bool(state)
        if self._state and not state:
            self._outage_started = time
            self._open_cause = None
        elif not self._state and state:
            if self._outage_started is not None:
                self._outage_durations.append(time - self._outage_started)
                self._outage_causes.append(self._open_cause)
            self._outage_started = None
            self._open_cause = None
        self._state = state
        self._last_change = time

    @property
    def outage_count(self) -> int:
        """Completed outage episodes observed so far."""
        return len(self._outage_durations)

    @property
    def outage_durations(self) -> tuple[float, ...]:
        """Durations of the completed outage episodes."""
        return tuple(self._outage_durations)

    def mean_outage_duration(self) -> float:
        """Mean completed-outage length; raises when none were observed."""
        if not self._outage_durations:
            raise SimulationError(
                f"signal {self.name!r} observed no completed outages"
            )
        return sum(self._outage_durations) / len(self._outage_durations)

    def outage_frequency(self) -> float:
        """Completed outages per unit of observed time."""
        if self._total_time <= 0:
            raise SimulationError(
                f"signal {self.name!r} observed no time; run the simulation"
            )
        return len(self._outage_durations) / self._total_time

    def attribute_open_outage(
        self, component: str, source: str, depth: int
    ) -> None:
        """Stamp the cause of the outage episode that just opened.

        The engine calls this immediately after the up->down edge it
        caused; only the first stamp per episode sticks (the triggering
        transition, not later pile-on failures during the same outage).
        No-op while the signal is up.
        """
        if self._outage_started is not None and self._open_cause is None:
            self._open_cause = (component, source, depth)

    def outage_seconds(self) -> float:
        """Total outage time: completed episodes plus any open episode.

        ``fsum`` over the episode-duration multiset — the exact quantity
        the attribution ledger conserves.
        """
        durations = list(self._outage_durations)
        if self._outage_started is not None:
            durations.append(self._last_change - self._outage_started)
        return math.fsum(durations)

    def attribution(self) -> SignalAttribution:
        """The per-cause downtime ledger observed so far.

        Includes a trailing still-open episode (duration up to the last
        integration point) so the ledger conserves :meth:`outage_seconds`
        exactly; episodes with no recorded cause are charged to
        :data:`UNATTRIBUTED`.
        """
        open_duration = None
        if self._outage_started is not None:
            open_duration = self._last_change - self._outage_started
        return build_attribution(
            self.name,
            self._outage_durations,
            self._outage_causes,
            open_cause=self._open_cause,
            open_duration=open_duration,
        )

    def finalize(self, time: float) -> None:
        """Close the integration window at the horizon."""
        self.update(time, self._state)

    @property
    def observed_time(self) -> float:
        return self._total_time

    def cumulative(self) -> tuple[float, float]:
        """``(up_time, total_time)`` integrated so far — batch bookkeeping."""
        return self._up_time, self._total_time

    def availability(self) -> float:
        """Fraction of observed time the signal was up."""
        if self._total_time <= 0:
            raise SimulationError(
                f"signal {self.name!r} observed no time; run the simulation"
            )
        return self._up_time / self._total_time


@dataclass(frozen=True, slots=True)
class ConfidenceInterval:
    """A symmetric normal-approximation confidence interval."""

    mean: float
    half_width: float
    batches: int

    @property
    def low(self) -> float:
        return self.mean - self.half_width

    @property
    def high(self) -> float:
        return self.mean + self.half_width

    def contains(self, value: float) -> bool:
        return self.low <= value <= self.high


def _betacf(a: float, b: float, x: float) -> float:
    """Continued fraction for the incomplete beta function (Lentz)."""
    tiny = 1e-300
    qab, qap, qam = a + b, a + 1.0, a - 1.0
    c = 1.0
    d = 1.0 - qab * x / qap
    if abs(d) < tiny:
        d = tiny
    d = 1.0 / d
    h = d
    for m in range(1, 300):
        m2 = 2 * m
        aa = m * (b - m) * x / ((qam + m2) * (a + m2))
        d = 1.0 + aa * d
        if abs(d) < tiny:
            d = tiny
        c = 1.0 + aa / c
        if abs(c) < tiny:
            c = tiny
        d = 1.0 / d
        h *= d * c
        aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2))
        d = 1.0 + aa * d
        if abs(d) < tiny:
            d = tiny
        c = 1.0 + aa / c
        if abs(c) < tiny:
            c = tiny
        d = 1.0 / d
        delta = d * c
        h *= delta
        if abs(delta - 1.0) < 1e-15:
            break
    return h


def _betai(a: float, b: float, x: float) -> float:
    """Regularized incomplete beta function I_x(a, b)."""
    if x <= 0.0:
        return 0.0
    if x >= 1.0:
        return 1.0
    ln_front = (
        math.lgamma(a + b) - math.lgamma(a) - math.lgamma(b)
        + a * math.log(x) + b * math.log(1.0 - x)
    )
    front = math.exp(ln_front)
    if x < (a + 1.0) / (a + b + 2.0):
        return front * _betacf(a, b, x) / a
    return 1.0 - front * _betacf(b, a, 1.0 - x) / b


def _student_t_cdf(t: float, df: int) -> float:
    """P(T <= t) for Student's t with ``df`` degrees of freedom."""
    if t == 0.0:
        return 0.5
    x = df / (df + t * t)
    tail = 0.5 * _betai(df / 2.0, 0.5, x)
    return 1.0 - tail if t > 0 else tail


@lru_cache(maxsize=None)
def student_t_critical(df: int, confidence: float = 0.95) -> float:
    """Two-sided Student-t critical value, scipy-free.

    The smallest ``t`` with ``P(|T| <= t) >= confidence`` for ``df``
    degrees of freedom, found by bisecting the exact CDF (regularized
    incomplete beta via a Lentz continued fraction).  Accurate to ~1e-10;
    e.g. ``student_t_critical(1) == 12.7062...``,
    ``student_t_critical(9) == 2.2622...``.
    """
    if df < 1:
        raise SimulationError(
            f"Student-t needs at least 1 degree of freedom, got {df}"
        )
    if not 0.0 < confidence < 1.0:
        raise SimulationError(
            f"confidence must be in (0, 1), got {confidence}"
        )
    target = 0.5 + confidence / 2.0  # one-sided quantile of the two-sided CI
    low, high = 0.0, 1.0
    while _student_t_cdf(high, df) < target:
        high *= 2.0
        if high > 1e12:  # pragma: no cover - defensive
            break
    for _ in range(200):
        mid = 0.5 * (low + high)
        if _student_t_cdf(mid, df) < target:
            low = mid
        else:
            high = mid
        if high - low <= 1e-12 * max(1.0, high):
            break
    return 0.5 * (low + high)


def batch_means_interval(
    batch_values: list[float],
    z: float | None = None,
    confidence: float = 0.95,
) -> ConfidenceInterval:
    """Batch-means confidence interval from per-batch availability means.

    Standard method for steady-state simulation output: split the horizon
    into equal batches, treat batch means as approximately i.i.d. samples
    of the batch-mean distribution.  With ``k`` batches the variance is
    estimated with ``k - 1`` degrees of freedom, so the default critical
    value is Student-t with ``df = k - 1`` at ``confidence`` (a fixed
    normal ``z`` badly undercovers at small ``k``; at ``k = 2`` the true
    coverage of a ±1.96σ interval is ~70 %, not 95 %).  Pass an explicit
    ``z`` to override the critical value (the legacy normal behavior).
    Requires at least 2 batches.
    """
    k = len(batch_values)
    if k < 2:
        raise SimulationError(
            f"batch-means needs at least 2 batches, got {k}"
        )
    critical = z if z is not None else student_t_critical(k - 1, confidence)
    mean = sum(batch_values) / k
    variance = sum((v - mean) ** 2 for v in batch_values) / (k - 1)
    half_width = critical * math.sqrt(variance / k)
    return ConfidenceInterval(mean=mean, half_width=half_width, batches=k)
