"""Per-request trace state and latency attribution for the serving layer.

Every HTTP request handled by :class:`repro.serve.app.ServeApp` gets a
:class:`RequestTrace`: the request's :class:`~repro.obs.trace.TraceContext`
(root span of the distributed trace) plus an accumulator of named latency
*segments* — where the request's wall time actually went:

* ``queue_wait`` — time a campaign job sat in its shard queue before a
  worker picked it up;
* ``cache`` — time inside the single-flight cache not spent computing
  (a hit's lookup, or a coalesced waiter's wait on another request's
  in-flight computation);
* ``batch_assembly`` — time a hardware query waited for its micro-batch
  window to fill/flush;
* ``kernel_compute`` — time in the vectorized kernel (or the blocking
  analytic evaluation) itself;
* ``other`` — the residual (routing, JSON encode/decode, event-loop
  scheduling), added by :meth:`RequestTrace.finalize` so the segments of
  a request always sum to its measured wall latency.

The trace is installed with :func:`request_scope` — a
:mod:`contextvars` scope, so the cache and batcher deep below the router
can attribute time to the right request without new call signatures, and
a scope captured at batch-submit time survives into the flush callback.
Everything here is observational: no segment recording touches query
results, and with no scope installed every hook is a single ``None``
check.
"""

from __future__ import annotations

import contextlib
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.obs.trace import TraceContext, trace_scope

__all__ = [
    "SEGMENT_NAMES",
    "RequestTrace",
    "current_request",
    "request_scope",
]

#: The attribution segments exported as ``serve.segment_seconds.*``
#: histograms (``other`` is the finalize-time residual).
SEGMENT_NAMES = (
    "queue_wait",
    "cache",
    "batch_assembly",
    "kernel_compute",
    "other",
)


@dataclass
class RequestTrace:
    """One request's trace context plus its latency attribution."""

    context: TraceContext
    started: float
    segments: dict[str, float] = field(default_factory=dict)
    annotations: dict[str, Any] = field(default_factory=dict)

    def add_segment(self, name: str, seconds: float) -> None:
        """Attribute ``seconds`` of this request's wall time to ``name``."""
        if seconds > 0.0:
            self.segments[name] = self.segments.get(name, 0.0) + seconds

    def annotate(self, **fields: Any) -> None:
        """Attach small JSON-serializable facts (cache owner, batch size)."""
        self.annotations.update(fields)

    def finalize(self, total_seconds: float) -> dict[str, float]:
        """Close the books: add the ``other`` residual and return segments.

        The residual is clamped at zero, so double-counted segments (a
        bug) show up as segments summing to *more* than the wall latency —
        the property the loadtest's coverage check enforces from outside.
        """
        named = sum(self.segments.values())
        self.add_segment("other", total_seconds - named)
        return dict(self.segments)

    def payload(self) -> dict[str, Any]:
        """The ``trace`` section embedded in query responses."""
        record: dict[str, Any] = {
            "trace_id": self.context.trace_id,
            "span_id": self.context.span_id,
            "segments": {
                name: round(seconds, 9)
                for name, seconds in sorted(self.segments.items())
            },
        }
        if self.context.parent_span_id:
            record["parent_span_id"] = self.context.parent_span_id
        record.update(self.annotations)
        return record


_CURRENT_REQUEST: ContextVar[RequestTrace | None] = ContextVar(
    "serve_request_trace", default=None
)


def current_request() -> RequestTrace | None:
    """The in-scope :class:`RequestTrace`, or ``None`` outside a request."""
    return _CURRENT_REQUEST.get()


@contextlib.contextmanager
def request_scope(trace: RequestTrace) -> Iterator[RequestTrace]:
    """Install ``trace`` (and its context as the ambient obs trace)."""
    token = _CURRENT_REQUEST.set(trace)
    try:
        with trace_scope(trace.context):
            yield trace
    finally:
        _CURRENT_REQUEST.reset(token)
