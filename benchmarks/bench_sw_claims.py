"""E9 — section VI-G text claims: the CP/DP downtime table.

Regenerates the quoted downtime figures for all four options:
CP 5.9 / 6.6 / 0.7 / 1.4 min/yr and DP 26 / 131 / 21 / 126 min/yr, plus
the supervisor multipliers ("increases downtime by 5x ... by 6x").
"""

import pytest

from repro.models.sw_options import PAPER_OPTIONS, evaluate_all_options
from repro.reporting.tables import format_table

PAPER_CP_MINUTES = {"1S": 5.9, "2S": 6.6, "1L": 0.7, "2L": 1.4}
PAPER_DP_MINUTES = {"1S": 26.0, "2S": 131.0, "1L": 21.0, "2L": 126.0}


def test_sw_claims(benchmark, spec, hardware, software):
    results = benchmark(evaluate_all_options, spec, hardware, software)
    print(
        "\n"
        + format_table(
            ("Option", "A_CP", "CP m/y (paper)", "A_DP", "DP m/y (paper)"),
            [
                (
                    option,
                    f"{r.cp:.7f}",
                    f"{r.cp_downtime_minutes:.2f} ({PAPER_CP_MINUTES[option]})",
                    f"{r.dp:.6f}",
                    f"{r.dp_downtime_minutes:.1f} ({PAPER_DP_MINUTES[option]})",
                )
                for option, r in results.items()
            ],
            title="Section VI-G: SW-centric downtime, paper vs measured",
        )
    )
    for option in PAPER_OPTIONS:
        result = results[option]
        assert result.cp_downtime_minutes == pytest.approx(
            PAPER_CP_MINUTES[option], abs=0.15
        ), option
        assert result.dp_downtime_minutes == pytest.approx(
            PAPER_DP_MINUTES[option], abs=1.5
        ), option
    assert results["2S"].dp_downtime_minutes / results[
        "1S"
    ].dp_downtime_minutes == pytest.approx(5.0, abs=0.5)
    assert results["2L"].dp_downtime_minutes / results[
        "1L"
    ].dp_downtime_minutes == pytest.approx(6.0, abs=0.5)
