"""Stochastic fault-injection campaigns (:mod:`repro.faults`).

The analytic models assume independent failures and unlimited repair
capacity; this package quantifies how wrong those assumptions become under
correlated failures, scheduled maintenance, and repair-crew contention:

* :mod:`repro.faults.hazards` — composable hazard models (beta-factor
  common cause, rack power events, maintenance windows, limited repair
  crews, link flaps, shared-risk-group failures);
* :mod:`repro.faults.campaign` — declarative, JSON-serializable
  :class:`CampaignSpec` plus a replication runner that is bit-identical
  across worker counts;
* :mod:`repro.faults.crossval` — the matching analytic prediction per
  campaign and the availability gap.

CLI entry point: ``repro-avail faults``.
"""

from repro.faults.campaign import CampaignResult, CampaignSpec, run_campaign
from repro.faults.crossval import (
    CrossValidation,
    analytic_for_campaign,
    evaluate_campaign,
)
from repro.faults.hazards import (
    CommonCauseSpec,
    HazardSet,
    LinkFlapSpec,
    MaintenanceSpec,
    RackPowerSpec,
    RepairCrews,
    RepairCrewsSpec,
    SrgFailureSpec,
    attach_hazards,
    hazard_from_dict,
)

__all__ = [
    "CampaignSpec",
    "CampaignResult",
    "run_campaign",
    "CrossValidation",
    "analytic_for_campaign",
    "evaluate_campaign",
    "CommonCauseSpec",
    "RackPowerSpec",
    "MaintenanceSpec",
    "RepairCrewsSpec",
    "LinkFlapSpec",
    "SrgFailureSpec",
    "RepairCrews",
    "HazardSet",
    "attach_hazards",
    "hazard_from_dict",
]
