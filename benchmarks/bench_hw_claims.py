"""E7 — section V-D text claims: topology comparison and rack economics.

Regenerates the HW-centric comparison table behind the paper's narrative:
"one rack or three, but not two", the ~5 min/yr third-rack saving, and the
S/M/L availability anchors, including the closed-form-vs-exact-engine
agreement.
"""

import pytest

from repro.models.hw_closed import hw_availability
from repro.models.hw_exact import hw_availability_exact
from repro.reporting.tables import format_table
from repro.topology.reference import reference_topology
from repro.units import downtime_minutes_per_year


def evaluate_all(hardware, spec):
    rows = []
    for name in ("small", "medium", "large"):
        closed = hw_availability(name, hardware)
        exact = hw_availability_exact(
            reference_topology(name, spec), hardware
        )
        rows.append((name, closed, exact))
    return rows


def test_hw_claims(benchmark, spec, hardware):
    rows = benchmark(evaluate_all, hardware, spec)
    print(
        "\n"
        + format_table(
            ("Topology", "Closed form", "Exact engine", "Downtime m/y"),
            [
                (
                    name,
                    f"{closed:.8f}",
                    f"{exact:.8f}",
                    f"{downtime_minutes_per_year(closed):.2f}",
                )
                for name, closed, exact in rows
            ],
            title="Section V-D: HW-centric topology comparison",
        )
    )
    values = {name: closed for name, closed, _ in rows}
    for name, closed, exact in rows:
        assert closed == pytest.approx(exact, rel=1e-10), name
    # One rack or three, not two.
    assert values["medium"] < values["small"] < values["large"]
    # Third rack saves ~5 min/yr.
    saving = downtime_minutes_per_year(
        values["medium"]
    ) - downtime_minutes_per_year(values["large"])
    assert saving == pytest.approx(5.2, abs=0.5)
