"""Tests for the command-line interface (repro.cli)."""

import pytest

from repro.cli import main


class TestCli:
    def test_tables(self, capsys):
        assert main(["tables"]) == 0
        out = capsys.readouterr().out
        assert "TABLE I" in out and "TABLE III" in out

    def test_hw(self, capsys):
        assert main(["hw"]) == 0
        out = capsys.readouterr().out
        assert "Small" in out and "Large" in out
        assert "0.9999887" in out

    def test_hw_custom_parameters(self, capsys):
        assert main(["hw", "--a-rack", "0.9999"]) == 0
        out = capsys.readouterr().out
        assert "Small" in out

    def test_sw(self, capsys):
        assert main(["sw"]) == 0
        out = capsys.readouterr().out
        for option in ("1S", "2S", "1L", "2L"):
            assert option in out

    def test_fig3_with_csv(self, capsys, tmp_path):
        csv_path = tmp_path / "fig3.csv"
        assert main(["fig3", "--points", "3", "--csv", str(csv_path)]) == 0
        assert csv_path.exists()
        out = capsys.readouterr().out
        assert "Small" in out

    def test_fig4(self, capsys):
        assert main(["fig4", "--points", "3"]) == 0
        assert "1S" in capsys.readouterr().out

    def test_fig5(self, capsys):
        assert main(["fig5", "--points", "3"]) == 0
        assert "2L" in capsys.readouterr().out

    def test_modes(self, capsys):
        assert main(["modes", "--option", "1S", "--plane", "dp", "--top", "3"]) == 0
        out = capsys.readouterr().out
        assert "vrouter" in out

    def test_simulate(self, capsys):
        assert (
            main(
                [
                    "simulate",
                    "--option",
                    "2S",
                    "--horizon",
                    "2000",
                    "--batches",
                    "4",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "Monte-Carlo validation" in out
        assert "LDP" in out

    def test_no_command_errors(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_command_errors(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])


class TestCliTelemetry:
    def test_faults_telemetry_stream_and_tail(self, capsys, tmp_path):
        stream = tmp_path / "run.jsonl"
        assert (
            main(
                [
                    "faults",
                    "--horizon", "500",
                    "--replications", "2",
                    "--telemetry", str(stream),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "downtime attribution" in out
        assert f"wrote telemetry stream {stream}" in out
        assert stream.exists()

        assert main(["obs", "tail", str(stream)]) == 0
        tail = capsys.readouterr().out
        assert "run.start" in tail
        assert "campaign.start" in tail
        assert "progress" in tail
        assert "campaign.end" in tail
        assert "event(s)" in tail

    def test_obs_tail_without_file_errors(self, capsys):
        assert main(["obs", "tail"]) == 2
        assert "requires a telemetry file" in capsys.readouterr().err

    def test_faults_json_payload_includes_attribution(self, tmp_path, capsys):
        import json

        out_path = tmp_path / "campaign.json"
        assert (
            main(
                [
                    "faults",
                    "--horizon", "500",
                    "--replications", "2",
                    "--json", str(out_path),
                ]
            )
            == 0
        )
        capsys.readouterr()
        payload = json.loads(out_path.read_text(encoding="utf-8"))
        attribution = payload["attribution"]
        for plane in ("cp", "sdp", "ldp", "dp"):
            record = attribution[plane]
            assert record["total_seconds"] == pytest.approx(
                sum(record["components"].values())
            )
