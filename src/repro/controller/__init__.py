"""Controller software specification.

The paper encapsulates the entire OpenContrail 3.x implementation in two
tables — Table II (process counts by restart mode by role) and Table III
(process counts by quorum type by role) — "so that other implementations can
be analyzed simply by populating these two tables appropriately".

This package is the executable form of that encapsulation:

* :class:`~repro.controller.process.ProcessSpec` — one process: name,
  restart mode, CP/DP quorum requirements, data-plane co-location group.
* :class:`~repro.controller.role.RoleSpec` — one role (node type).
* :class:`~repro.controller.spec.ControllerSpec` — the whole controller;
  Tables II and III are *derived views* (:meth:`restart_mode_table`,
  :meth:`quorum_table`).
* :mod:`~repro.controller.opencontrail` — the OpenContrail 3.x reference
  profile (the paper's Table I).
* :mod:`~repro.controller.library` — alternative controller profiles
  demonstrating the framework's extensibility.
"""

from repro.controller.process import ProcessKind, ProcessSpec, RestartMode
from repro.controller.role import QuorumUnit, RoleKind, RoleSpec
from repro.controller.spec import ControllerSpec, Plane
from repro.controller.opencontrail import opencontrail_3x

__all__ = [
    "ProcessKind",
    "ProcessSpec",
    "RestartMode",
    "QuorumUnit",
    "RoleKind",
    "RoleSpec",
    "ControllerSpec",
    "Plane",
    "opencontrail_3x",
]
