"""Empirical coverage of batch-means confidence intervals.

The batch-means half-width must use Student-t critical values with
``k - 1`` degrees of freedom: with few batches the sample standard
deviation is itself noisy, and the old fixed ``z = 1.96`` interval is far
too narrow — at ``k = 2`` its true coverage is ``(2/pi)*atan(1.96) ~ 0.70``
instead of the nominal 0.95.  These tests measure coverage on Bernoulli
batch means over many seeded experiments: the t interval must stay near
nominal at every batch count, and the z interval must demonstrably
under-cover at ``k = 2``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.sim.measures import batch_means_interval, student_t_critical

P_TRUE = 0.3
SAMPLES_PER_BATCH = 50
EXPERIMENTS = 2000


def _coverage(k: int, z: float | None) -> float:
    """Fraction of seeded experiments whose interval contains ``P_TRUE``."""
    rng = np.random.default_rng(20260808 + k)
    draws = rng.random((EXPERIMENTS, k, SAMPLES_PER_BATCH)) < P_TRUE
    batch_means = draws.mean(axis=2)
    covered = 0
    for row in batch_means:
        interval = batch_means_interval([float(v) for v in row], z=z)
        if abs(interval.mean - P_TRUE) <= interval.half_width:
            covered += 1
    return covered / EXPERIMENTS


@pytest.mark.parametrize("k", [2, 5, 30])
def test_t_interval_coverage_near_nominal(k):
    """Student-t intervals hold ~95% coverage at every batch count.

    The tolerance (0.92) absorbs Monte-Carlo noise and the mild
    non-normality of small Bernoulli batch means; the broken z interval
    at k=2 sits near 0.70, far below it.
    """
    assert _coverage(k, z=None) >= 0.92


def test_z_interval_undercovers_at_two_batches():
    """The pre-fix fixed-z interval misses badly with two batches."""
    assert _coverage(2, z=1.96) <= 0.80


def test_z_and_t_agree_at_many_batches():
    """With many batches t -> z, so the two intervals nearly coincide."""
    critical = student_t_critical(200)
    assert critical == pytest.approx(1.96, abs=0.02)


def test_t_critical_monotone_in_df():
    values = [student_t_critical(df) for df in (1, 2, 5, 30, 1000)]
    assert values == sorted(values, reverse=True)
    assert values[0] == pytest.approx(12.706, rel=1e-3)
