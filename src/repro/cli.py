"""Command-line interface: ``repro-avail`` / ``python -m repro``.

Subcommands mirror the paper's artifacts:

* ``tables`` — print Tables I-III for the OpenContrail 3.x profile.
* ``hw`` — HW-centric availabilities (Fig. 3 anchors) for S/M/L.
* ``sw`` — SW-centric option results (1S/2S/1L/2L) with downtime.
* ``fig3`` / ``fig4`` / ``fig5`` — dump the figure series (optionally CSV).
* ``modes`` — dominant failure modes of a plane/option.
* ``simulate`` — run the Monte-Carlo validation at stressed parameters.
* ``faults`` — run a stochastic fault-injection campaign (correlated
  failures, maintenance windows, limited repair crews) and cross-validate
  it against the analytic prediction; ``--sweep-beta`` sweeps the
  common-cause fraction.
* ``network`` — control-network graph analysis (:mod:`repro.network`):
  ``evaluate`` prints per-switch control-path cut sets, bounds, and exact
  availability; ``place`` runs the controller-placement search.
* ``perf`` — time the vectorized/parallel evaluation engine against the
  sequential paths (``--workers``, ``--vectorize``).
* ``obs`` — render a stored run manifest, run a small instrumented demo
  workload and print its trace summary, or (``obs tail FILE.jsonl``)
  pretty-print a recorded telemetry event stream; ``obs tail --follow``
  keeps streaming new events as they are appended (surviving rotation),
  like ``tail -F``.
* ``serve`` — run the availability service (:mod:`repro.serve`): analytic
  queries with single-flight caching and micro-batching, campaign jobs on
  the sharded queue, OpenMetrics on ``/metrics``.
* ``query`` — send one JSON request to a running service and print the
  response.

Every subcommand additionally accepts the global ``--trace FILE.json``
flag (before or after the subcommand name): the whole invocation then runs
under an observability session and writes its :class:`RunManifest` —
parameters, seeds, solver path, per-phase timings, metrics, spans — to the
file on exit.  The ``simulate``, ``faults``, and ``network`` subcommands
also accept
``--telemetry FILE.jsonl``: the run then streams progress/heartbeat and
metric-snapshot events to a rotating JSONL sink (readable afterwards with
``obs tail``) without perturbing results — telemetry-on runs stay
bit-identical to telemetry-off runs.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.analysis.figures import fig3_series, fig4_series, fig5_series
from repro.analysis.report import generate_report, render_report
from repro.analysis.sweep import SweepResult
from repro.controller.opencontrail import opencontrail_3x
from repro.controller.spec import Plane
from repro.controller.tables import render_table1, render_table2, render_table3
from repro.models.failure_modes import dominant_failure_modes
from repro.models.hw_closed import hw_large, hw_medium, hw_small
from repro.models.design import CostModel, enumerate_designs, pareto_frontier
from repro.models.outage import fleet_outages_per_year, plane_outage_profile
from repro.models.sw_options import PAPER_OPTIONS, evaluate_option, parse_option
from repro.obs import RunManifest, render_manifest
from repro.obs import runtime as obs_runtime
from repro.obs import telemetry
from repro.params.defaults import PAPER_HARDWARE, PAPER_SOFTWARE
from repro.params.hardware import HardwareParams
from repro.params.software import SoftwareParams
from repro.reporting.csvout import write_csv
from repro.reporting.manifest import write_manifest_json
from repro.reporting.tables import format_table
from repro.sim.controller_sim import SimulationConfig
from repro.sim.validate import validate_against_analytic
from repro.topology.reference import reference_topology
from repro.units import downtime_minutes_per_year


def _add_hardware_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--a-role", type=float, default=PAPER_HARDWARE.a_role)
    parser.add_argument("--a-vm", type=float, default=PAPER_HARDWARE.a_vm)
    parser.add_argument("--a-host", type=float, default=PAPER_HARDWARE.a_host)
    parser.add_argument("--a-rack", type=float, default=PAPER_HARDWARE.a_rack)


def _hardware(args: argparse.Namespace) -> HardwareParams:
    return HardwareParams(
        a_role=args.a_role,
        a_vm=args.a_vm,
        a_host=args.a_host,
        a_rack=args.a_rack,
    )


def _print_sweep(result: SweepResult, csv_path: str | None) -> None:
    headers = (result.parameter, *result.labels)
    rows = [
        tuple(f"{value:.8f}" for value in row) for row in result.rows()
    ]
    print(format_table(headers, rows))
    if csv_path:
        write_csv(csv_path, headers, result.rows())
        print(f"\nwrote {csv_path}")


def _cmd_tables(args: argparse.Namespace) -> int:
    spec = opencontrail_3x()
    print(render_table1(spec))
    print()
    print(render_table2(spec))
    print()
    print(render_table3(spec))
    return 0


def _cmd_hw(args: argparse.Namespace) -> int:
    hardware = _hardware(args)
    rows = []
    for label, model in (
        ("Small", hw_small),
        ("Medium", hw_medium),
        ("Large", hw_large),
    ):
        availability = model(hardware)
        rows.append(
            (
                label,
                f"{availability:.8f}",
                f"{downtime_minutes_per_year(availability):.2f}",
            )
        )
    print(
        format_table(
            ("Topology", "Availability", "Downtime (min/yr)"),
            rows,
            title="HW-centric controller availability (section V)",
        )
    )
    return 0


def _cmd_sw(args: argparse.Namespace) -> int:
    spec = opencontrail_3x()
    hardware = _hardware(args)
    software = PAPER_SOFTWARE
    rows = []
    for option in PAPER_OPTIONS:
        result = evaluate_option(spec, option, hardware, software)
        rows.append(
            (
                option,
                f"{result.cp:.7f}",
                f"{result.cp_downtime_minutes:.2f}",
                f"{result.dp:.6f}",
                f"{result.dp_downtime_minutes:.1f}",
            )
        )
    print(
        format_table(
            ("Option", "A_CP", "CP m/y", "A_DP", "DP m/y"),
            rows,
            title="SW-centric availability (section VI)",
        )
    )
    return 0


def _cmd_fig(args: argparse.Namespace) -> int:
    spec = opencontrail_3x()
    hardware = _hardware(args)
    if args.figure == "fig3":
        result = fig3_series(hardware, points=args.points)
    elif args.figure == "fig4":
        result = fig4_series(spec, hardware, PAPER_SOFTWARE, points=args.points)
    else:
        result = fig5_series(spec, hardware, PAPER_SOFTWARE, points=args.points)
    _print_sweep(result, args.csv)
    return 0


def _cmd_modes(args: argparse.Namespace) -> int:
    spec = opencontrail_3x()
    scenario, topology_name = parse_option(args.option)
    topology = reference_topology(topology_name, spec)
    plane = Plane.CP if args.plane == "cp" else Plane.DP
    ranked = dominant_failure_modes(
        spec,
        topology,
        _hardware(args),
        PAPER_SOFTWARE,
        scenario,
        plane,
        max_order=args.max_order,
        top=args.top,
    )
    rows = [
        (
            i + 1,
            f"{mode.probability:.3e}",
            " + ".join(sorted(mode.components)),
        )
        for i, mode in enumerate(ranked)
    ]
    print(
        format_table(
            ("Rank", "Probability", "Minimal cut set"),
            rows,
            title=(
                f"Dominant {args.plane.upper()} failure modes, option "
                f"{args.option.upper()}"
            ),
        )
    )
    return 0


def _cmd_design(args: argparse.Namespace) -> int:
    spec = opencontrail_3x()
    scenario = (
        parse_option(f"{args.scenario}S")[0]
    )
    points = enumerate_designs(
        spec,
        _hardware(args),
        PAPER_SOFTWARE,
        scenario,
        cost_model=CostModel(
            rack_cost=args.rack_cost, host_cost=args.host_cost
        ),
    )
    frontier = {p.name for p in pareto_frontier(points)}
    rows = [
        (
            p.name,
            len(p.topology.racks),
            len(p.topology.hosts),
            f"{p.cost:.0f}",
            f"{p.availability:.8f}",
            f"{p.downtime_minutes:.2f}",
            "yes" if p.name in frontier else "",
        )
        for p in points
    ]
    print(
        format_table(
            (
                "Layout",
                "Racks",
                "Hosts",
                "Cost",
                "A_CP",
                "Downtime m/y",
                "Pareto",
            ),
            rows,
            title="Deployment design search (exact engine)",
        )
    )
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    spec = opencontrail_3x()
    scenario, topology_name = parse_option(args.option)
    topology = reference_topology(topology_name, spec)
    report = generate_report(
        spec, topology, _hardware(args), PAPER_SOFTWARE, scenario,
        top=args.top,
    )
    print(render_report(report))
    return 0


def _cmd_outage(args: argparse.Namespace) -> int:
    spec = opencontrail_3x()
    scenario, _ = parse_option(args.option)
    plane = Plane.CP if args.plane == "cp" else Plane.DP
    hardware = _hardware(args)
    rows = []
    for name in ("small", "large"):
        topology = reference_topology(name, spec)
        profile = plane_outage_profile(
            spec, topology, hardware, PAPER_SOFTWARE, scenario, plane
        )
        rows.append(
            (
                name,
                f"{profile.downtime_minutes_per_year:.2f}",
                f"{profile.outages_per_year:.4f}",
                f"{profile.mean_outage_hours:.2f}",
                f"{fleet_outages_per_year(profile, args.sites):.1f}",
            )
        )
    print(
        format_table(
            (
                "Topology",
                "Downtime m/y",
                "Outages/yr",
                "Mean outage (h)",
                f"Outages/yr ({args.sites} sites)",
            ),
            rows,
            title=(
                f"Outage profile, {args.plane.upper()} plane, option "
                f"{args.option.upper()[0]}*"
            ),
        )
    )
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    spec = opencontrail_3x()
    scenario, topology_name = parse_option(args.option)
    topology = reference_topology(topology_name, spec)
    hardware = HardwareParams(
        a_role=1.0, a_vm=args.a_vm, a_host=args.a_host, a_rack=args.a_rack
    )
    software = SoftwareParams.from_availabilities(
        args.a_process, args.a_unsupervised, mtbf_hours=args.mtbf
    )
    config = SimulationConfig(
        seed=args.seed,
        horizon_hours=args.horizon,
        batches=args.batches,
        rack_mtbf_hours=args.mtbf * 20,
        host_mtbf_hours=args.mtbf * 10,
        vm_mtbf_hours=args.mtbf * 5,
    )
    report = validate_against_analytic(
        spec, topology, topology_name, hardware, software, scenario, config
    )
    rows = []
    for plane, sim_value, analytic in (
        ("CP", report.simulated.cp, report.analytic_cp),
        ("SDP", report.simulated.shared_dp, report.analytic_sdp),
        ("LDP", report.simulated.local_dp, report.analytic_ldp),
        ("DP", report.simulated.dp, report.analytic_dp),
    ):
        rows.append(
            (
                plane,
                f"{sim_value:.6f}",
                f"{analytic:.6f}",
                f"{report.unavailability_ratio(plane.lower()):.3f}",
            )
        )
    print(
        format_table(
            ("Plane", "Simulated", "Analytic", "Unavail ratio"),
            rows,
            title=(
                f"Monte-Carlo validation, option {args.option.upper()}, "
                f"{args.horizon:.0f} simulated hours"
            ),
        )
    )
    return 0


def _cmd_faults(args: argparse.Namespace) -> int:
    from dataclasses import replace as dc_replace
    from pathlib import Path

    from repro.faults import CampaignSpec, evaluate_campaign
    from repro.reporting.csvout import write_csv
    from repro.reporting.faults import (
        attribution_rows,
        crossval_payload,
        crossval_rows,
        sweep_payload,
        sweep_rows,
        write_campaign_json,
    )

    if args.campaign:
        spec = CampaignSpec.from_json(
            Path(args.campaign).read_text(encoding="utf-8")
        )
        # Explicit flags refine a file-loaded spec.
        overrides = {}
        if args.replications is not None:
            overrides["replications"] = args.replications
        if args.horizon is not None:
            overrides["horizon_hours"] = args.horizon
        if args.seed is not None:
            overrides["seed"] = args.seed
        if args.crews is not None:
            overrides["repair_crews"] = args.crews
        if overrides:
            spec = dc_replace(spec, **overrides)
    else:
        spec = CampaignSpec(
            option=args.option,
            horizon_hours=args.horizon or 20_000.0,
            replications=args.replications or 4,
            seed=args.seed if args.seed is not None else 1,
            batches=args.batches,
            repair_crews=args.crews,
        )
    if args.beta is not None:
        spec = spec.with_beta(args.beta, args.beta_group)

    if args.sweep_beta:
        betas = [float(b) for b in args.sweep_beta.split(",") if b.strip()]
        crossvals = [
            evaluate_campaign(
                spec.with_beta(beta, args.beta_group),
                workers=args.workers,
                batched=args.batched,
            )
            for beta in betas
        ]
        headers, rows = sweep_rows(crossvals, betas)
        print(
            format_table(
                headers,
                rows,
                title=(
                    f"Common-cause beta sweep, option {spec.option}, "
                    f"{spec.replications}x{spec.horizon_hours:.0f}h"
                ),
            )
        )
        payload = sweep_payload(crossvals, betas)
    else:
        crossval = evaluate_campaign(
            spec, workers=args.workers, batched=args.batched
        )
        headers, rows = crossval_rows(crossval)
        print(
            format_table(
                headers,
                rows,
                title=(
                    f"Fault campaign vs analytic, option {spec.option}, "
                    f"{len(spec.hazards)} hazard(s), crews="
                    f"{spec.repair_crews or 'unlimited'}"
                ),
            )
        )
        result = crossval.result
        print(
            f"\ninjections: {result.total_injections()}  "
            f"repairs queued: {result.total_queued}  "
            f"max queue depth: {result.max_queue_depth}"
        )
        attr_headers, attr_rows = attribution_rows(
            result, signal=args.attribution_signal, top=args.attribution_top
        )
        if attr_rows:
            print()
            print(
                format_table(
                    attr_headers,
                    attr_rows,
                    title=(
                        f"{args.attribution_signal.upper()} downtime "
                        "attribution (simulated hours per triggering "
                        "component)"
                    ),
                )
            )
        payload = crossval_payload(crossval)

    if args.json:
        write_campaign_json(args.json, payload)
        print(f"wrote {args.json}")
    if args.csv:
        write_csv(args.csv, headers, rows)
        print(f"wrote {args.csv}")
    return 0


def _cmd_network(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.network import analyze_switch, optimize_placement
    from repro.network.graph import NetworkGraph
    from repro.reporting.network import (
        evaluate_payload,
        evaluate_rows,
        placement_payload,
        placement_rows,
        write_network_json,
    )
    from repro.topology.network_reference import (
        NETWORK_REFERENCE_BUILDERS,
        reference_network,
    )

    if args.graph_file:
        graph = NetworkGraph.from_json(
            Path(args.graph_file).read_text(encoding="utf-8")
        )
    else:
        if args.graph not in NETWORK_REFERENCE_BUILDERS:
            print(
                f"unknown reference graph {args.graph!r}; expected one of "
                f"{sorted(NETWORK_REFERENCE_BUILDERS)}",
                file=sys.stderr,
            )
            return 2
        graph = reference_network(args.graph)
    obs_runtime.annotate("topology", graph.name)
    obs_runtime.annotate("graph_hash", graph.graph_hash())
    sites = (
        tuple(s.strip() for s in args.sites.split(",") if s.strip())
        if args.sites
        else None
    )

    if args.action == "evaluate":
        analyses = [
            analyze_switch(
                graph,
                switch,
                sites,
                max_order=args.max_order,
                evaluator=args.evaluator,
            )
            for switch in graph.switches
        ]
        headers, rows = evaluate_rows(analyses)
        print(
            format_table(
                headers,
                rows,
                title=(
                    f"Control-path availability, graph {graph.name} "
                    f"(cut order <= {args.max_order or 'full'}, "
                    f"evaluator "
                    f"{analyses[0].evaluator if analyses else args.evaluator})"
                ),
            )
        )
        payload = evaluate_payload(graph, analyses)
    else:
        result = optimize_placement(
            graph,
            k=args.k,
            candidates=sites,
            method=args.method,
            restarts=args.restarts,
            seed=args.seed,
        )
        headers, rows = placement_rows(result)
        print(
            format_table(
                headers,
                rows,
                title=(
                    f"Placement {result.sites} on {graph.name} "
                    f"(method={result.method}, k={result.k})"
                ),
            )
        )
        print(
            f"\nfleet A_CP: {result.availability:.8f}  "
            f"bound: {result.bound:.8f}  gap: {result.gap:.2e}  "
            f"evaluations: {result.evaluations}"
        )
        payload = placement_payload(graph, result)

    if args.json:
        write_network_json(args.json, payload)
        print(f"wrote {args.json}")
    if args.csv:
        write_csv(args.csv, headers, rows)
        print(f"wrote {args.csv}")
    return 0


def _cmd_perf(args: argparse.Namespace) -> int:
    import json
    import time

    from repro.analysis.uncertainty import monte_carlo
    from repro.models.hw_closed import hw_large
    from repro.perf import fig3_series_vectorized, monte_carlo_parallel

    hardware = _hardware(args)

    def best_of(fn, repeats: int) -> float:
        times = []
        for _ in range(repeats):
            start = time.perf_counter()
            fn()
            times.append(time.perf_counter() - start)
        return min(times)

    sweep_scalar = best_of(
        lambda: fig3_series(hardware, points=args.points), args.repeats
    )
    sweep_vector = best_of(
        lambda: fig3_series_vectorized(hardware, points=args.points),
        args.repeats,
    )
    mc_sequential = best_of(
        lambda: monte_carlo(
            hw_large, hardware, samples=args.samples, seed=args.seed
        ),
        args.repeats,
    )
    mc_engine = best_of(
        lambda: monte_carlo_parallel(
            hw_large,
            hardware,
            samples=args.samples,
            seed=args.seed,
            workers=args.workers,
            vectorize=args.vectorize,
        ),
        args.repeats,
    )
    rows = [
        (
            f"fig3 sweep ({args.points} pts)",
            f"{sweep_scalar * 1e3:.2f}",
            f"{sweep_vector * 1e3:.2f}",
            f"{sweep_scalar / sweep_vector:.1f}x",
        ),
        (
            f"monte_carlo ({args.samples} samples)",
            f"{mc_sequential * 1e3:.2f}",
            f"{mc_engine * 1e3:.2f}",
            f"{mc_sequential / mc_engine:.1f}x",
        ),
    ]
    print(
        format_table(
            ("Workload", "Sequential (ms)", "Perf engine (ms)", "Speedup"),
            rows,
            title=(
                f"Evaluation-engine timings (workers={args.workers}, "
                f"vectorize={args.vectorize}, best of {args.repeats})"
            ),
        )
    )
    if args.json:
        payload = {
            "workers": args.workers,
            "vectorize": args.vectorize,
            "points": args.points,
            "samples": args.samples,
            "sweep_scalar_s": sweep_scalar,
            "sweep_vectorized_s": sweep_vector,
            "sweep_speedup": sweep_scalar / sweep_vector,
            "monte_carlo_sequential_s": mc_sequential,
            "monte_carlo_engine_s": mc_engine,
            "monte_carlo_speedup": mc_sequential / mc_engine,
        }
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
        print(f"\nwrote {args.json}")
    return 0


def _cmd_obs(args: argparse.Namespace) -> int:
    if args.action == "tail":
        if not args.file:
            print("obs tail requires a telemetry file", file=sys.stderr)
            return 2
        counts: dict[str, int] = {}
        if args.file.startswith(("http://", "https://")):
            # SSE mode: connect to a running server's /v1/events (or a
            # job's /v1/jobs/<id>/events) and stream until the server
            # closes the stream, Ctrl-C, or --idle-timeout.
            try:
                for event in telemetry.follow_sse(
                    args.file, idle_timeout=args.idle_timeout
                ):
                    kind = event.get("kind", "?")
                    counts[kind] = counts.get(kind, 0) + 1
                    print(telemetry.render_event(event), flush=True)
            except KeyboardInterrupt:
                pass
        elif args.follow:
            # Live mode: arrival order, surviving file rotation, until
            # Ctrl-C (or --idle-timeout seconds without a new event).
            try:
                for event in telemetry.follow_events(
                    args.file, idle_timeout=args.idle_timeout
                ):
                    kind = event.get("kind", "?")
                    counts[kind] = counts.get(kind, 0) + 1
                    print(telemetry.render_event(event), flush=True)
            except KeyboardInterrupt:
                pass
        else:
            for event in telemetry.read_events(args.file):
                kind = event.get("kind", "?")
                counts[kind] = counts.get(kind, 0) + 1
                print(telemetry.render_event(event))
        total = sum(counts.values())
        by_kind = "  ".join(
            f"{kind}={counts[kind]}" for kind in sorted(counts)
        )
        print(f"\n{total} event(s)" + (f"  [{by_kind}]" if by_kind else ""))
        return 0
    if args.manifest:
        manifest = RunManifest.load(args.manifest)
        print(render_manifest(manifest))
        return 0
    # Demo: run a small instrumented workload covering the closed forms,
    # the vectorized sweep, and the parallel Monte-Carlo, then print the
    # resulting manifest.  Reuses the --trace session when one is active.
    from repro.perf import fig3_series_vectorized, monte_carlo_parallel

    own_session = not obs_runtime.enabled()
    session = obs_runtime.start("obs-demo") if own_session else (
        obs_runtime.active()
    )
    try:
        hardware = _hardware(args)
        with obs_runtime.span("obs.demo"):
            for model in (hw_small, hw_medium, hw_large):
                model(hardware)
            fig3_series_vectorized(hardware, points=41)
            monte_carlo_parallel(
                hw_large,
                hardware,
                samples=args.samples,
                seed=args.seed,
                workers=1,
            )
        manifest = session.build_manifest(
            arguments=_manifest_arguments(args),
            seed={"root": args.seed},
        )
    finally:
        if own_session:
            obs_runtime.stop()
    print(render_manifest(manifest))
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    import signal

    from repro.serve import AdmissionPolicy, ServeApp, ServeConfig

    if args.action == "loadtest":
        return _cmd_serve_loadtest(args)

    config = ServeConfig(
        host=args.host,
        port=args.port,
        cache_entries=args.cache_entries,
        shards=args.shards,
        workers_per_job=args.workers,
        admission=AdmissionPolicy(
            max_queue_depth=args.max_queue_depth,
            max_tenant_inflight=args.max_tenant_inflight,
        ),
    )

    async def run() -> int:
        app = ServeApp(config)
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, stop.set)
            except NotImplementedError:  # platforms without signal support
                pass
        await app.start()
        # The bench harness and smoke tests parse this line for the port.
        print(f"serving on http://{config.host}:{app.port}", flush=True)
        try:
            await stop.wait()
        finally:
            await app.stop()
        print(
            f"server shutdown clean after {app.requests_served} request(s)"
        )
        return 0

    # The SSE endpoints stream whatever telemetry bus is active; without
    # --telemetry, run an empty-sink bus so /v1/events works out of the box
    # (events fan out to connected clients and go nowhere else).
    own_bus = not telemetry.enabled()
    if own_bus:
        telemetry.start([])
    try:
        return asyncio.run(run())
    finally:
        if own_bus:
            telemetry.stop()


def _cmd_serve_loadtest(args: argparse.Namespace) -> int:
    import asyncio
    import json

    from repro.serve.loadtest import LoadtestConfig, run_loadtest

    config = LoadtestConfig(
        host=args.host,
        port=args.port,
        requests=args.requests,
        rate=args.rate,
        tenants=args.tenants,
        seed=args.seed,
    )
    report = asyncio.run(run_loadtest(config))
    summary = report.summary()
    print(json.dumps(summary, indent=2, sort_keys=True))
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(summary, handle, indent=2, sort_keys=True)
        print(f"wrote {args.json}", file=sys.stderr)
    failures = []
    if report.transport_errors:
        failures.append(f"{report.transport_errors} transport error(s)")
    if report.server_errors:
        failures.append(f"{report.server_errors} 5xx response(s)")
    coverage = report.coverage()
    if args.check_coverage:
        if coverage is None:
            failures.append("attribution coverage unavailable (no /v1/stats)")
        elif abs(coverage - 1.0) > args.coverage_tolerance:
            failures.append(
                f"attribution coverage {coverage:.4f} outside "
                f"1±{args.coverage_tolerance}"
            )
    if failures:
        print("loadtest FAILED: " + "; ".join(failures), file=sys.stderr)
        return 1
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    import http.client
    import json as json_module

    try:
        body = json_module.loads(args.body)
    except json_module.JSONDecodeError as error:
        print(f"query body is not valid JSON: {error}", file=sys.stderr)
        return 2
    headers = {"Content-Type": "application/json"}
    if args.tenant:
        headers["X-Tenant"] = args.tenant
    connection = http.client.HTTPConnection(
        args.host, args.port, timeout=args.timeout
    )
    try:
        connection.request(
            "POST", args.path, body=json_module.dumps(body), headers=headers
        )
        response = connection.getresponse()
        payload = response.read().decode("utf-8")
    finally:
        connection.close()
    try:
        print(json_module.dumps(json_module.loads(payload), indent=2))
    except json_module.JSONDecodeError:
        print(payload)
    return 0 if 200 <= response.status < 300 else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-avail",
        description=(
            "Distributed SDN controller failure-mode and availability "
            "analysis (ISPASS 2019 reproduction)"
        ),
    )
    parser.add_argument(
        "--trace",
        default=None,
        metavar="FILE.json",
        help="record the run under tracing and write its manifest here",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    sub = subparsers.add_parser("tables", help="print Tables I-III")
    sub.set_defaults(handler=_cmd_tables)

    sub = subparsers.add_parser("hw", help="HW-centric availabilities")
    _add_hardware_arguments(sub)
    sub.set_defaults(handler=_cmd_hw)

    sub = subparsers.add_parser("sw", help="SW-centric option results")
    _add_hardware_arguments(sub)
    sub.set_defaults(handler=_cmd_sw)

    for figure in ("fig3", "fig4", "fig5"):
        sub = subparsers.add_parser(figure, help=f"regenerate {figure} series")
        _add_hardware_arguments(sub)
        sub.add_argument("--points", type=int, default=11)
        sub.add_argument("--csv", default=None, help="also write CSV here")
        sub.set_defaults(handler=_cmd_fig, figure=figure)

    sub = subparsers.add_parser("modes", help="dominant failure modes")
    _add_hardware_arguments(sub)
    sub.add_argument("--option", default="2S", help="1S/2S/1L/2L")
    sub.add_argument("--plane", choices=("cp", "dp"), default="cp")
    sub.add_argument("--max-order", type=int, default=2)
    sub.add_argument("--top", type=int, default=10)
    sub.set_defaults(handler=_cmd_modes)

    sub = subparsers.add_parser(
        "design", help="cost:resiliency design search"
    )
    _add_hardware_arguments(sub)
    sub.add_argument("--scenario", choices=("1", "2"), default="2")
    sub.add_argument("--rack-cost", type=float, default=10.0)
    sub.add_argument("--host-cost", type=float, default=1.0)
    sub.set_defaults(handler=_cmd_design)

    sub = subparsers.add_parser(
        "report", help="full availability report for one option"
    )
    _add_hardware_arguments(sub)
    sub.add_argument("--option", default="2S", help="1S/2S/1L/2L")
    sub.add_argument("--top", type=int, default=5)
    sub.set_defaults(handler=_cmd_report)

    sub = subparsers.add_parser(
        "outage", help="outage frequency/duration profiles"
    )
    _add_hardware_arguments(sub)
    sub.add_argument("--option", default="1S", help="1S/2S/1L/2L")
    sub.add_argument("--plane", choices=("cp", "dp"), default="cp")
    sub.add_argument("--sites", type=int, default=500)
    sub.set_defaults(handler=_cmd_outage)

    sub = subparsers.add_parser(
        "simulate", help="Monte-Carlo validation (stressed parameters)"
    )
    sub.add_argument("--option", default="1S")
    sub.add_argument("--a-process", type=float, default=0.995)
    sub.add_argument("--a-unsupervised", type=float, default=0.95)
    sub.add_argument("--a-vm", type=float, default=0.998)
    sub.add_argument("--a-host", type=float, default=0.998)
    sub.add_argument("--a-rack", type=float, default=0.999)
    sub.add_argument("--mtbf", type=float, default=100.0)
    sub.add_argument("--horizon", type=float, default=50_000.0)
    sub.add_argument("--batches", type=int, default=10)
    sub.add_argument("--seed", type=int, default=1)
    sub.add_argument(
        "--telemetry",
        default=argparse.SUPPRESS,
        metavar="FILE.jsonl",
        help="stream progress/metric telemetry events to this JSONL file",
    )
    sub.set_defaults(handler=_cmd_simulate)

    sub = subparsers.add_parser(
        "faults",
        help="fault-injection campaign with analytic cross-validation",
    )
    sub.add_argument(
        "--campaign",
        default=None,
        metavar="FILE.json",
        help="load a CampaignSpec from this JSON file",
    )
    sub.add_argument("--option", default="1S", help="1S/2S/1L/2L")
    sub.add_argument("--horizon", type=float, default=None)
    sub.add_argument("--replications", type=int, default=None)
    sub.add_argument("--batches", type=int, default=4)
    sub.add_argument("--seed", type=int, default=None)
    sub.add_argument("--workers", type=int, default=1)
    sub.add_argument(
        "--batched",
        choices=("auto", "on", "off"),
        default="auto",
        help=(
            "struct-of-arrays lockstep kernel: auto falls back to the "
            "scalar engine when hazards/crews/scenario-2 need it, on "
            "requires the kernel, off forces the scalar engine"
        ),
    )
    sub.add_argument(
        "--crews",
        type=int,
        default=None,
        help="limit concurrent repairs to this many crews",
    )
    sub.add_argument(
        "--beta",
        type=float,
        default=None,
        help="attach a common-cause hazard with this beta factor",
    )
    sub.add_argument(
        "--beta-group",
        default=None,
        help="group selector for --beta/--sweep-beta (default kind:vm)",
    )
    sub.add_argument(
        "--sweep-beta",
        default=None,
        metavar="B0,B1,...",
        help="run one campaign per comma-separated beta value",
    )
    sub.add_argument(
        "--attribution-signal",
        choices=("cp", "sdp", "ldp", "dp"),
        default="cp",
        help="signal whose downtime attribution table to print",
    )
    sub.add_argument(
        "--attribution-top",
        type=int,
        default=10,
        help="show at most this many attribution rows",
    )
    sub.add_argument("--json", default=None, help="also write results here")
    sub.add_argument("--csv", default=None, help="also write table rows here")
    sub.add_argument(
        "--telemetry",
        default=argparse.SUPPRESS,
        metavar="FILE.jsonl",
        help="stream progress/metric telemetry events to this JSONL file",
    )
    sub.set_defaults(handler=_cmd_faults)

    sub = subparsers.add_parser(
        "network",
        help=(
            "control-network graph analysis: per-switch control-path "
            "availability and controller placement"
        ),
    )
    sub.add_argument(
        "action",
        choices=("evaluate", "place"),
        help=(
            "'evaluate' prints per-switch cut sets/bounds/exact A_CP; "
            "'place' searches controller placements"
        ),
    )
    sub.add_argument(
        "--graph",
        default="ring",
        help=(
            "reference graph name (line, ring, fat_tree, backbone, "
            "two_tier)"
        ),
    )
    sub.add_argument(
        "--graph-file",
        default=None,
        metavar="FILE.json",
        help="load a NetworkGraph from this JSON file instead",
    )
    sub.add_argument(
        "--sites",
        default=None,
        metavar="A,B,...",
        help=(
            "controller sites (evaluate) or candidate sites (place); "
            "default: every site node"
        ),
    )
    sub.add_argument(
        "--max-order",
        type=int,
        default=None,
        help="bound cut-set enumeration order (default: complete)",
    )
    sub.add_argument(
        "--evaluator",
        choices=("auto", "sdp", "factored"),
        default="auto",
        help=(
            "exact evaluator for 'evaluate': sum-of-disjoint-products "
            "(default) or the Shannon-factored oracle"
        ),
    )
    sub.add_argument("--k", type=int, default=1, help="sites to place")
    sub.add_argument(
        "--method",
        choices=("auto", "exact", "greedy", "local"),
        default="auto",
        help="placement search method",
    )
    sub.add_argument(
        "--restarts",
        type=int,
        default=4,
        help="random restarts for --method local",
    )
    sub.add_argument(
        "--seed",
        type=int,
        default=0,
        help="root seed for --method local restarts",
    )
    sub.add_argument("--json", default=None, help="also write results here")
    sub.add_argument("--csv", default=None, help="also write table rows here")
    sub.add_argument(
        "--telemetry",
        default=argparse.SUPPRESS,
        metavar="FILE.jsonl",
        help="stream placement/candidate telemetry events to this JSONL file",
    )
    sub.set_defaults(handler=_cmd_network)

    sub = subparsers.add_parser(
        "perf", help="time the vectorized/parallel evaluation engine"
    )
    _add_hardware_arguments(sub)
    sub.add_argument("--workers", type=int, default=4)
    sub.add_argument(
        "--vectorize",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="evaluate Monte-Carlo chunks through the array models",
    )
    sub.add_argument("--samples", type=int, default=2000)
    sub.add_argument("--points", type=int, default=201)
    sub.add_argument("--repeats", type=int, default=3)
    sub.add_argument("--seed", type=int, default=0)
    sub.add_argument("--json", default=None, help="also write timings here")
    sub.set_defaults(handler=_cmd_perf)

    sub = subparsers.add_parser(
        "obs",
        help=(
            "render a run manifest, trace a demo workload, or tail a "
            "telemetry file"
        ),
    )
    _add_hardware_arguments(sub)
    sub.add_argument(
        "action",
        nargs="?",
        choices=("tail",),
        default=None,
        help="'tail' pretty-prints a recorded telemetry JSONL file",
    )
    sub.add_argument(
        "file",
        nargs="?",
        default=None,
        metavar="FILE.jsonl|URL",
        help=(
            "telemetry file for 'tail', or an http(s) SSE URL "
            "(a server's /v1/events) to stream live"
        ),
    )
    sub.add_argument(
        "--manifest",
        default=None,
        metavar="FILE.json",
        help="render this stored manifest instead of running the demo",
    )
    sub.add_argument("--samples", type=int, default=512)
    sub.add_argument("--seed", type=int, default=0)
    sub.add_argument(
        "--follow",
        action="store_true",
        help=(
            "with 'tail': keep streaming new events as they are appended "
            "(tail -F semantics, surviving file rotation) until Ctrl-C"
        ),
    )
    sub.add_argument(
        "--idle-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="with --follow: stop after this long without a new event",
    )
    sub.set_defaults(handler=_cmd_obs)

    sub = subparsers.add_parser(
        "serve",
        help=(
            "run the availability service: cached analytic queries, "
            "micro-batching, campaign job queue, OpenMetrics, live SSE "
            "('serve loadtest' drives a running server)"
        ),
    )
    sub.add_argument(
        "action",
        nargs="?",
        choices=("run", "loadtest"),
        default="run",
        help=(
            "'run' (default) starts the server; 'loadtest' drives "
            "open-loop multi-tenant traffic against a running one"
        ),
    )
    sub.add_argument("--host", default="127.0.0.1")
    sub.add_argument(
        "--port",
        type=int,
        default=8323,
        help="TCP port (0 picks an ephemeral port, printed at startup)",
    )
    sub.add_argument(
        "--cache-entries",
        type=int,
        default=256,
        help="LRU bound on cached query results",
    )
    sub.add_argument(
        "--shards", type=int, default=2, help="campaign job queue shards"
    )
    sub.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes per campaign job",
    )
    sub.add_argument(
        "--max-queue-depth",
        type=int,
        default=32,
        help="shed job submissions beyond this many in flight (429)",
    )
    sub.add_argument(
        "--max-tenant-inflight",
        type=int,
        default=8,
        help="shed a tenant's submissions beyond this many in flight (429)",
    )
    sub.add_argument(
        "--telemetry",
        default=None,
        metavar="FILE.jsonl",
        help="stream serve.* lifecycle and metrics events to this JSONL file",
    )
    sub.add_argument(
        "--requests",
        type=int,
        default=200,
        help="with 'loadtest': number of requests in the plan",
    )
    sub.add_argument(
        "--rate",
        type=float,
        default=200.0,
        help="with 'loadtest': offered arrivals per second (open loop)",
    )
    sub.add_argument(
        "--tenants",
        type=int,
        default=3,
        help="with 'loadtest': distinct tenant identities in the mix",
    )
    sub.add_argument(
        "--seed",
        type=int,
        default=0,
        help="with 'loadtest': seed for the deterministic request plan",
    )
    sub.add_argument(
        "--json",
        default=None,
        help="with 'loadtest': also write the report here",
    )
    sub.add_argument(
        "--check-coverage",
        action="store_true",
        help=(
            "with 'loadtest': fail unless attribution segments sum to the "
            "request-latency total within --coverage-tolerance"
        ),
    )
    sub.add_argument(
        "--coverage-tolerance",
        type=float,
        default=0.05,
        help="allowed |coverage - 1| for --check-coverage (default 0.05)",
    )
    sub.set_defaults(handler=_cmd_serve)

    sub = subparsers.add_parser(
        "query",
        help="send one JSON request to a running availability service",
    )
    sub.add_argument(
        "body",
        help='JSON request body, e.g. \'{"kind": "option", "option": "2S"}\'',
    )
    sub.add_argument("--host", default="127.0.0.1")
    sub.add_argument("--port", type=int, default=8323)
    sub.add_argument(
        "--path",
        default="/v1/query",
        help="endpoint path (default /v1/query; use /v1/jobs to submit)",
    )
    sub.add_argument("--tenant", default=None, help="X-Tenant header value")
    sub.add_argument("--timeout", type=float, default=30.0)
    sub.set_defaults(handler=_cmd_query)

    # The --trace flag is also accepted after the subcommand name
    # (``repro-avail perf --trace out.json``).  SUPPRESS keeps an omitted
    # per-subcommand flag from clobbering a value parsed at the top level.
    for sub in set(subparsers.choices.values()):
        sub.add_argument(
            "--trace",
            default=argparse.SUPPRESS,
            metavar="FILE.json",
            help=argparse.SUPPRESS,
        )

    return parser


#: argparse bookkeeping fields that are not run parameters.
_NON_PARAMETER_FIELDS = frozenset(
    {"handler", "trace", "manifest", "telemetry", "action", "file"}
)


def _manifest_arguments(args: argparse.Namespace) -> dict[str, object]:
    """The JSON-serializable run parameters of a parsed invocation."""
    return {
        name: value
        for name, value in vars(args).items()
        if name not in _NON_PARAMETER_FIELDS
        and isinstance(value, (str, int, float, bool, type(None)))
    }


def _seed_material(args: argparse.Namespace) -> dict[str, object]:
    """Seed-bearing arguments (everything the derivation trees hang off)."""
    return {
        name: getattr(args, name)
        for name in ("seed", "samples", "workers", "batches", "horizon")
        if hasattr(args, name)
    }


def _run_handler(args: argparse.Namespace) -> int:
    """Run the subcommand handler, inside a telemetry session if asked."""
    telemetry_path = getattr(args, "telemetry", None)
    if not telemetry_path:
        return args.handler(args)
    telemetry.start([telemetry.JsonlSink(telemetry_path)])
    try:
        telemetry.emit("run.start", command=args.command)
        status = args.handler(args)
        telemetry.emit("run.end", command=args.command, status=status)
    finally:
        telemetry.stop()
    print(f"wrote telemetry stream {telemetry_path}")
    return status


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    trace_path = getattr(args, "trace", None)
    if not trace_path:
        return _run_handler(args)
    session = obs_runtime.start(command=args.command)
    try:
        with obs_runtime.span(f"cli.{args.command}"):
            status = _run_handler(args)
    finally:
        obs_runtime.stop()
    manifest = session.build_manifest(
        arguments=_manifest_arguments(args), seed=_seed_material(args)
    )
    write_manifest_json(trace_path, manifest)
    print(f"wrote trace manifest {trace_path}")
    return status


if __name__ == "__main__":
    sys.exit(main())
