"""Network analysis throughput: cut-set compilation and placement search.

Times (a) full per-switch control-path analyses — structure lowering,
complete minimal cut/path enumeration, and the Shannon-factored exact
evaluator — over the reference ring and fat-tree graphs, and (b) an
exhaustive k=2 placement search over seven candidate sites on the backbone
mesh, then appends a ``network`` section to ``BENCH_perf.json`` (other
sections are preserved).  Runnable as a pytest benchmark *or* directly as
a script — ``python benchmarks/bench_network.py --repeats 1 --check`` is
the CI smoke invocation.

Acceptance floors are deliberately an order of magnitude below the rates
measured on a development laptop, and are waived entirely on single-core
runners where timing is meaningless.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if __name__ == "__main__":  # script mode: make src/ importable without install
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.network import analyze_switch, optimize_placement
from repro.network.paths import _exact_unavailability_cached
from repro.reporting.tables import format_table
from repro.topology.network_reference import (
    backbone_network,
    fat_tree_pod,
    ring_network,
)

BENCH_SEED = 20190324  # shared with bench_perf_engine.py
DEFAULT_OUT = REPO_ROOT / "BENCH_perf.json"

#: Floors ~10x below a development-laptop measurement; see module docstring.
ANALYSIS_FLOOR_PER_S = 0.5
PLACEMENT_FLOOR_EVALS_PER_S = 3.0


def _best_of(fn, repeats: int):
    best_time, result = float("inf"), None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best_time = min(best_time, time.perf_counter() - start)
    return best_time, result


def _run_analyses():
    """Full-order analysis of every switch on the ring and fat-tree pod.

    The exact-evaluator memo is cleared first so every repeat pays the
    whole pipeline (prune, enumerate, factor), not a cache lookup.
    """
    _exact_unavailability_cached.cache_clear()
    analyses = []
    for graph in (ring_network(), fat_tree_pod()):
        for switch in graph.switches:
            analyses.append(analyze_switch(graph, switch))
    return analyses


def _run_placement():
    """Exhaustive k=2 search over all 7 backbone attachment points."""
    _exact_unavailability_cached.cache_clear()
    graph = backbone_network()
    candidates = tuple(
        node.name for node in graph.nodes if node.kind in ("site", "router")
    )
    return optimize_placement(
        graph, k=2, candidates=candidates, method="exact"
    )


def run_network_bench(repeats: int = 3) -> dict:
    """Time both workloads and return the BENCH_perf.json section."""
    analysis_s, analyses = _best_of(_run_analyses, repeats)
    placement_s, placement = _best_of(_run_placement, repeats)
    cut_sets = sum(len(a.cut_sets) for a in analyses)
    return {
        "seed": BENCH_SEED,
        "cpus": os.cpu_count() or 1,
        "repeats": repeats,
        "analysis_switches": len(analyses),
        "analysis_cut_sets": cut_sets,
        "analysis_s": analysis_s,
        "analyses_per_second": len(analyses) / analysis_s,
        "placement_candidates": len(placement.candidates),
        "placement_evaluations": placement.evaluations,
        "placement_sites": list(placement.sites),
        "placement_s": placement_s,
        "placement_evaluations_per_second": (
            placement.evaluations / placement_s
        ),
    }


def _report(record: dict, out_path: Path) -> None:
    rows = [
        (
            f"analyze {record['analysis_switches']} switches "
            f"({record['analysis_cut_sets']} cut sets)",
            f"{record['analysis_s'] * 1e3:.1f}",
            f"{record['analyses_per_second']:.1f}/s",
        ),
        (
            f"place k=2 over {record['placement_candidates']} candidates",
            f"{record['placement_s'] * 1e3:.1f}",
            f"{record['placement_evaluations_per_second']:.1f} evals/s",
        ),
    ]
    print(
        "\n"
        + format_table(
            ("Workload", "Best (ms)", "Throughput"),
            rows,
            title="Network control-path analysis",
        )
    )
    merged = {}
    if out_path.exists():
        merged = json.loads(out_path.read_text(encoding="utf-8"))
    merged["network"] = record
    out_path.write_text(
        json.dumps(merged, indent=2) + "\n", encoding="utf-8"
    )
    print(f"wrote {out_path}")


def _floors_ok(record: dict) -> bool:
    """Throughput floors, waived where timing cannot be meaningful."""
    if record["cpus"] < 2:
        return True
    return (
        record["analyses_per_second"] >= ANALYSIS_FLOOR_PER_S
        and record["placement_evaluations_per_second"]
        >= PLACEMENT_FLOOR_EVALS_PER_S
    )


def test_network_bench():
    record = run_network_bench()
    _report(record, DEFAULT_OUT)
    assert record["analysis_cut_sets"] > 0
    assert record["placement_evaluations"] == 21  # C(7, 2)
    assert _floors_ok(record)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT)
    parser.add_argument(
        "--check",
        action="store_true",
        help="fail unless both workloads meet their throughput floors",
    )
    args = parser.parse_args(argv)
    record = run_network_bench(repeats=args.repeats)
    _report(record, args.out)
    if args.check:
        assert _floors_ok(record)
    return 0


if __name__ == "__main__":
    sys.exit(main())
