"""Tests for the HW-centric models (closed forms, exact engine, approximations)."""

import pytest

from repro.core.kofn import a_m_of_n
from repro.errors import ModelError
from repro.models.hw_approx import (
    hw_approx_large,
    hw_approx_medium,
    hw_approx_small,
    hw_approximation,
    two_of_three_polynomial,
)
from repro.models.hw_closed import (
    hw_availability,
    hw_large,
    hw_medium,
    hw_medium_paper,
    hw_small,
)
from repro.models.hw_exact import (
    hw_availability_exact,
    hw_availability_exact_for_spec,
)
from repro.params.hardware import HardwareParams
from repro.topology.reference import (
    large_topology,
    medium_topology,
    small_topology,
)

ROLES = ("Config", "Control", "Analytics", "Database")


class TestClosedFormsVsEngine:
    """The printed equations and the enumeration engine must agree."""

    def test_small(self, hardware, small):
        assert hw_small(hardware) == pytest.approx(
            hw_availability_exact(small, hardware), rel=1e-12
        )

    def test_medium(self, hardware, medium):
        assert hw_medium(hardware) == pytest.approx(
            hw_availability_exact(medium, hardware), rel=1e-12
        )

    def test_large(self, hardware, large):
        assert hw_large(hardware) == pytest.approx(
            hw_availability_exact(large, hardware), rel=1e-12
        )

    @pytest.mark.parametrize("a_role", [0.9, 0.99, 0.999, 0.9999])
    def test_agreement_across_role_availability(self, a_role, hardware):
        params = hardware.with_role_availability(a_role)
        topo = large_topology(ROLES)
        assert hw_large(params) == pytest.approx(
            hw_availability_exact(topo, params), rel=1e-12
        )

    def test_degraded_hardware_agreement(self):
        params = HardwareParams(
            a_role=0.97, a_vm=0.98, a_host=0.95, a_rack=0.9
        )
        for name, topo in (
            ("small", small_topology(ROLES)),
            ("medium", medium_topology(ROLES)),
            ("large", large_topology(ROLES)),
        ):
            assert hw_availability(name, params) == pytest.approx(
                hw_availability_exact(topo, params), rel=1e-10
            ), name


class TestPaperMediumForm:
    def test_corrected_form_matches_exact_to_first_order(self, hardware):
        exact = hw_medium(hardware)
        printed = hw_medium_paper(hardware)
        # Agreement to O((1-A)^2): unavailabilities within ~1%.
        assert (1 - printed) == pytest.approx(1 - exact, rel=0.01)

    def test_as_printed_form_overestimates(self, hardware):
        # Discrepancy D1: the verbatim Eq. (6) drops an A_R and lands ~1e-5
        # high, contradicting Fig. 3.
        verbatim = hw_medium_paper(hardware, as_printed=True)
        exact = hw_medium(hardware)
        assert verbatim - exact == pytest.approx(1e-5, rel=0.2)


class TestSectionVDClaims:
    """The qualitative conclusions of section V-D."""

    def test_role_separation_does_not_improve_availability(self, hardware):
        # S -> M: "separation of roles onto separate VMs does not improve
        # availability" — in fact two racks slightly reduce it.
        assert hw_medium(hardware) <= hw_small(hardware)

    def test_two_racks_slightly_worse_than_one(self, hardware):
        # "adding a second rack actually slightly reduces availability".
        small = hw_small(hardware)
        medium = hw_medium(hardware)
        assert medium < small
        assert small - medium < 1e-6  # "slightly"

    def test_third_rack_improves(self, hardware):
        # M -> L improves availability.
        assert hw_large(hardware) > hw_medium(hardware)

    def test_one_rack_or_three_not_two(self, hardware):
        ranking = sorted(
            ("small", "medium", "large"),
            key=lambda n: hw_availability(n, hardware),
        )
        assert ranking == ["medium", "small", "large"]


class TestApproximations:
    def test_small_approximation_close(self, hardware):
        exact = hw_small(hardware)
        approx = hw_approx_small(hardware)
        assert (1 - approx) == pytest.approx(1 - exact, rel=0.02)

    def test_medium_approximation_equals_small(self, hardware):
        assert hw_approx_medium(hardware) == hw_approx_small(hardware)

    def test_large_approximation_close(self, hardware):
        exact = hw_large(hardware)
        approx = hw_approx_large(hardware)
        assert (1 - approx) == pytest.approx(1 - exact, rel=0.05)

    def test_conclusion_polynomial(self):
        alpha = 0.9993
        assert two_of_three_polynomial(alpha) == pytest.approx(
            a_m_of_n(2, 3, alpha)
        )

    def test_dispatch(self, hardware):
        assert hw_approximation("small", hardware) == hw_approx_small(hardware)
        with pytest.raises(ModelError):
            hw_approximation("huge", hardware)


class TestGeneralizations:
    def test_five_node_cluster(self, hardware):
        # Larger clusters with majority quorum are strictly better.
        three = hw_large(hardware, quorums=(1, 1, 1, 2), n=3)
        five = hw_large(hardware, quorums=(1, 1, 1, 3), n=5)
        assert five > three

    def test_custom_quorums_in_exact_engine(self, hardware):
        topo = small_topology(("Config", "Database"))
        result = hw_availability_exact(
            topo, hardware, quorums={"Config": 1, "Database": 2}
        )
        assert 0 < result < 1

    def test_unknown_role_rejected(self, hardware, small):
        with pytest.raises(ModelError):
            hw_availability_exact(small, hardware, quorums={"Ghost": 1})

    def test_spec_derived_quorums(self, spec, hardware, small):
        from_spec = hw_availability_exact_for_spec(small, spec, hardware)
        explicit = hw_availability_exact(
            small,
            hardware,
            quorums={"Config": 1, "Control": 1, "Analytics": 1, "Database": 2},
        )
        assert from_spec == pytest.approx(explicit, rel=1e-12)

    def test_dispatch_unknown_topology(self, hardware):
        with pytest.raises(ModelError):
            hw_availability("gigantic", hardware)


class TestFig3Anchors:
    """The availability values read off Fig. 3 / quoted in section V-D."""

    def test_default_values(self, hardware):
        assert hw_small(hardware) == pytest.approx(0.999989, abs=1.5e-6)
        assert hw_medium(hardware) == pytest.approx(0.999989, abs=1.5e-6)
        assert hw_large(hardware) == pytest.approx(0.999999, abs=5e-7)

    def test_small_range_over_sweep(self, hardware):
        # "Small and Medium availabilities range between 0.999986 and
        # 0.999990" over A_C in [0.999, 1.0].
        low = hw_small(hardware.with_role_availability(0.999))
        high = hw_small(hardware.with_role_availability(1.0))
        assert low == pytest.approx(0.999986, abs=2e-6)
        assert high == pytest.approx(0.999990, abs=2e-6)

    def test_large_range_over_sweep(self, hardware):
        # "Large availability ranges between 0.999996 and 0.9999999".
        low = hw_large(hardware.with_role_availability(0.999))
        high = hw_large(hardware.with_role_availability(1.0))
        assert low == pytest.approx(0.999996, abs=1e-6)
        assert high == pytest.approx(0.9999999, abs=1e-7)

    def test_third_rack_saves_five_minutes(self, hardware):
        # "Controller availability increases from 0.999989 to 0.9999990
        # (a savings of 5 minutes/year in downtime)".
        from repro.units import downtime_minutes_per_year

        saving = downtime_minutes_per_year(
            hw_medium(hardware)
        ) - downtime_minutes_per_year(hw_large(hardware))
        assert saving == pytest.approx(5.0, abs=0.5)
