"""Monte-Carlo validation of the analytic models — the paper's future work.

"Future work includes simulating the topologies to validate the
conclusions."  This example runs the discrete-event simulator on the Small
topology under both supervisor scenarios at stressed parameters (so
failures actually occur in a short run) and compares the measured CP/DP
availabilities with the closed-form predictions from identical parameters.

Run with::

    python examples/simulation_validation.py
"""

from repro import HardwareParams, RestartScenario, opencontrail_3x
from repro.params.software import SoftwareParams
from repro.sim.controller_sim import SimulationConfig
from repro.sim.validate import validate_against_analytic
from repro.topology.reference import small_topology

# Stressed parameters: ~100x the paper's failure rates, same structure.
HARDWARE = HardwareParams(a_role=1.0, a_vm=0.998, a_host=0.998, a_rack=0.999)
SOFTWARE = SoftwareParams.from_availabilities(0.995, 0.95, mtbf_hours=100.0)
CONFIG = SimulationConfig(
    seed=11,
    horizon_hours=60_000.0,
    batches=10,
    rack_mtbf_hours=2000.0,
    host_mtbf_hours=1000.0,
    vm_mtbf_hours=500.0,
)


def main() -> None:
    spec = opencontrail_3x()
    topology = small_topology(spec)
    print(
        f"Simulating {spec.name} on the {topology.name} topology for "
        f"{CONFIG.horizon_hours:,.0f} hours\n(stressed parameters: "
        f"A={SOFTWARE.a_process:.3f}, A_S={SOFTWARE.a_unsupervised:.3f})\n"
    )
    for scenario in (RestartScenario.NOT_REQUIRED, RestartScenario.REQUIRED):
        report = validate_against_analytic(
            spec, topology, "small", HARDWARE, SOFTWARE, scenario, CONFIG
        )
        print(f"Scenario: supervisor {scenario.name}")
        print(f"  {'plane':5} {'simulated':>10} {'analytic':>10} "
              f"{'U ratio':>8} {'analytic in 95% CI':>20}")
        for plane, sim_value, analytic in (
            ("cp", report.simulated.cp, report.analytic_cp),
            ("sdp", report.simulated.shared_dp, report.analytic_sdp),
            ("ldp", report.simulated.local_dp, report.analytic_ldp),
            ("dp", report.simulated.dp, report.analytic_dp),
        ):
            print(
                f"  {plane:5} {sim_value:>10.5f} {analytic:>10.5f} "
                f"{report.unavailability_ratio(plane):>8.3f} "
                f"{str(report.analytic_within_interval(plane)):>20}"
            )
        print()
    print(
        "Unavailability ratios near 1.0 validate the analytic structure.\n"
        "Residual deviation in scenario 1 reflects the paper's own A*\n"
        "approximation (supervisor outage window), amplified here by the\n"
        "stressed parameters; at the paper's availabilities the effect is\n"
        "below measurement precision."
    )


if __name__ == "__main__":
    main()
