"""Whole-grid (vectorized) evaluation of the closed-form models.

The figure sweeps in :mod:`repro.analysis.figures` call each closed-form
model once per grid point from a Python loop.  This module evaluates the
same models over *entire grids at once* by routing every k-of-n block
through :func:`repro.core.kofn.a_m_of_n_array` and every conditioning
weight through :func:`repro.core.kofn.binomial_pmf_array`:

* :func:`hw_small_array` / :func:`hw_medium_array` / :func:`hw_large_array`
  — section V closed forms with any subset of the four hardware
  availabilities given as arrays (inputs broadcast);
* :func:`plane_availability_array` / :func:`local_dp_availability_array` —
  the section VI SW-centric closed forms with the process availabilities
  ``A``/``A_S`` given as arrays;
* :func:`fig3_series_vectorized` / :func:`fig4_series_vectorized` /
  :func:`fig5_series_vectorized` — drop-in replacements for the
  :mod:`repro.analysis.figures` generators returning identical
  :class:`~repro.analysis.sweep.SweepResult` objects (the scalar and
  vectorized paths agree to ~1 ulp; tested to 1e-12);
* :func:`sweep_vectorized` — the generic sweep harness for caller-supplied
  array evaluators;
* :func:`segment_products` / :func:`segment_sums` /
  :func:`gather_segment_products` — ragged-segment reductions over the
  last axis, the primitives the batched network sweeps
  (:mod:`repro.network.batch`) use to evaluate thousands of
  sum-of-disjoint-products terms as a handful of array ops.

All array math is elementwise, so a value at one grid point is exactly the
value the same inputs would produce at any other grid position or chunk
size — the property the parallel Monte-Carlo runner relies on.
"""

from __future__ import annotations

import time
from typing import Callable, Mapping, Sequence

import numpy as np

from repro.analysis.sweep import SweepResult, grid
from repro.controller.process import RestartMode
from repro.controller.role import RoleSpec
from repro.controller.spec import ControllerSpec, Plane
from repro.core.kofn import a_m_of_n_array, binomial_pmf_array
from repro.errors import ModelError, ParameterError
from repro.models.hw_closed import PAPER_ROLE_QUORUMS
from repro.models.sw import _plane_required
from repro.obs import runtime as obs
from repro.models.sw_options import PAPER_OPTIONS, parse_option
from repro.params.defaults import FIG3_ROLE_AVAILABILITY_RANGE
from repro.params.hardware import HardwareParams
from repro.params.software import RestartScenario, SoftwareParams

__all__ = [
    "hw_small_array",
    "hw_medium_array",
    "hw_large_array",
    "hw_availability_array",
    "plane_availability_array",
    "local_dp_availability_array",
    "dp_availability_array",
    "fig3_series_vectorized",
    "fig4_series_vectorized",
    "fig5_series_vectorized",
    "sweep_vectorized",
    "segment_products",
    "segment_sums",
    "gather_segment_products",
]


# -- ragged-segment reductions -------------------------------------------------


def _check_offsets(offsets: np.ndarray, length: int) -> np.ndarray:
    offsets = np.asarray(offsets, dtype=np.intp)
    if offsets.ndim != 1 or offsets.size < 1:
        raise ParameterError("offsets must be a non-empty 1-D integer array")
    if offsets[0] != 0 or offsets[-1] != length:
        raise ParameterError(
            f"offsets must start at 0 and end at {length}, got "
            f"[{int(offsets[0])}, ..., {int(offsets[-1])}]"
        )
    if np.any(np.diff(offsets) < 0):
        raise ParameterError("offsets must be non-decreasing")
    return offsets


def _segment_reduce(
    ufunc: np.ufunc, identity: float, values: np.ndarray, offsets: np.ndarray
) -> np.ndarray:
    values = np.asarray(values, dtype=float)
    offsets = _check_offsets(offsets, values.shape[-1])
    segments = offsets.size - 1
    out = np.full(values.shape[:-1] + (segments,), identity)
    if segments == 0:
        return out
    lengths = np.diff(offsets)
    starts = offsets[:-1][lengths > 0]
    if starts.size:
        # Dropping empty segments keeps the surviving starts strictly
        # increasing, so reduceat's segment boundaries stay correct; empty
        # segments keep the identity value.
        out[..., lengths > 0] = ufunc.reduceat(values, starts, axis=-1)
    return out


def segment_products(
    values: np.ndarray, offsets: np.ndarray
) -> np.ndarray:
    """Products of consecutive ragged segments along the last axis.

    ``offsets`` has one more entry than there are segments; segment ``j``
    is ``values[..., offsets[j]:offsets[j+1]]``.  Empty segments produce
    the empty product, 1.0.  Leading axes broadcast through — a matrix of
    per-scenario factor rows reduces every row with one call.
    """
    return _segment_reduce(np.multiply, 1.0, values, offsets)


def segment_sums(values: np.ndarray, offsets: np.ndarray) -> np.ndarray:
    """Sums of consecutive ragged segments along the last axis.

    Same segment convention as :func:`segment_products`; empty segments
    produce the empty sum, 0.0.
    """
    return _segment_reduce(np.add, 0.0, values, offsets)


def gather_segment_products(
    factors: np.ndarray, indices: np.ndarray, offsets: np.ndarray
) -> np.ndarray:
    """Segment products of ``factors`` gathered through a flat index array.

    Segment ``j``'s product is over ``factors[..., indices[k]]`` for
    ``offsets[j] <= k < offsets[j+1]`` — the shape of a compiled
    sum-of-disjoint-products term list, where ``indices`` concatenates
    every term's element indices and ``offsets`` delimits terms.
    """
    indices = np.asarray(indices, dtype=np.intp)
    if indices.ndim != 1:
        raise ParameterError("indices must be a 1-D integer array")
    gathered = np.take(np.asarray(factors, dtype=float), indices, axis=-1)
    return segment_products(gathered, offsets)


# -- HW-centric closed forms over arrays (section V) ---------------------------


def _conditional_array(
    x: int, alpha: np.ndarray, quorums: Sequence[int]
) -> np.ndarray:
    """Vectorized ``(A | x blocks up)`` — product of ``A_{m/x}(alpha)``."""
    value = np.ones_like(alpha)
    for m in quorums:
        value = value * a_m_of_n_array(m, x, alpha)
    return value


def _broadcast(*values: np.ndarray | float) -> tuple[np.ndarray, ...]:
    arrays = np.broadcast_arrays(*(np.asarray(v, dtype=float) for v in values))
    return tuple(arrays)


def hw_small_array(
    a_role: np.ndarray | float,
    a_vm: np.ndarray | float,
    a_host: np.ndarray | float,
    a_rack: np.ndarray | float,
    quorums: Sequence[int] = PAPER_ROLE_QUORUMS,
    n: int = 3,
) -> np.ndarray:
    """Vectorized :func:`repro.models.hw_closed.hw_small` (Eqs. 2-3)."""
    a_role, a_vm, a_host, a_rack = _broadcast(a_role, a_vm, a_host, a_rack)
    block = a_vm * a_host
    total = np.zeros_like(a_role)
    for x in range(n + 1):
        total = total + binomial_pmf_array(x, n, block) * _conditional_array(
            x, a_role, quorums
        )
    return total * a_rack


def hw_medium_array(
    a_role: np.ndarray | float,
    a_vm: np.ndarray | float,
    a_host: np.ndarray | float,
    a_rack: np.ndarray | float,
    quorums: Sequence[int] = PAPER_ROLE_QUORUMS,
    n: int = 3,
) -> np.ndarray:
    """Vectorized :func:`repro.models.hw_closed.hw_medium` (Eqs. 4-5)."""
    if n < 2:
        raise ModelError("the Medium topology needs at least 2 nodes")
    a_role, a_vm, a_host, a_rack = _broadcast(a_role, a_vm, a_host, a_rack)
    alpha = a_role * a_vm

    def hosts_term(k: int) -> np.ndarray:
        total = np.zeros_like(alpha)
        for x in range(k + 1):
            total = total + binomial_pmf_array(
                x, k, a_host
            ) * _conditional_array(x, alpha, quorums)
        return total

    both_up = a_rack * a_rack * hosts_term(n)
    r1_only = a_rack * (1.0 - a_rack) * hosts_term(n - 1)
    r2_only = (1.0 - a_rack) * a_rack * hosts_term(1)
    return both_up + r1_only + r2_only


def hw_large_array(
    a_role: np.ndarray | float,
    a_vm: np.ndarray | float,
    a_host: np.ndarray | float,
    a_rack: np.ndarray | float,
    quorums: Sequence[int] = PAPER_ROLE_QUORUMS,
    n: int = 3,
) -> np.ndarray:
    """Vectorized :func:`repro.models.hw_closed.hw_large` (Eqs. 7-8)."""
    a_role, a_vm, a_host, a_rack = _broadcast(a_role, a_vm, a_host, a_rack)
    alpha = a_role * a_vm * a_host
    total = np.zeros_like(alpha)
    for r in range(n + 1):
        total = total + binomial_pmf_array(
            r, n, a_rack
        ) * _conditional_array(r, alpha, quorums)
    return total


_HW_DISPATCH = {
    "small": hw_small_array,
    "medium": hw_medium_array,
    "large": hw_large_array,
}


def hw_availability_array(
    topology_name: str,
    a_role: np.ndarray | float,
    a_vm: np.ndarray | float,
    a_host: np.ndarray | float,
    a_rack: np.ndarray | float,
    quorums: Sequence[int] = PAPER_ROLE_QUORUMS,
    n: int = 3,
) -> np.ndarray:
    """Vectorized closed-form availability by reference topology name."""
    try:
        model = _HW_DISPATCH[topology_name.lower()]
    except KeyError:
        raise ModelError(
            f"no vectorized closed form for topology {topology_name!r}; "
            f"expected one of {sorted(_HW_DISPATCH)}"
        ) from None
    return model(a_role, a_vm, a_host, a_rack, quorums=quorums, n=n)


# -- SW-centric closed forms over arrays (section VI) --------------------------


def _unit_alpha_arrays(
    role: RoleSpec, plane: Plane, a: np.ndarray, a_s: np.ndarray
) -> list[tuple[int, np.ndarray]]:
    """Each quorum unit as ``(quorum, per-instance alpha array)``.

    A unit's per-instance availability is the product of its members'
    availabilities — ``A`` per AUTO member, ``A_S`` per MANUAL member — so
    over the grid it is ``A**n_auto * A_S**n_manual`` elementwise.
    """
    units = []
    for unit in role.quorum_units(plane.value):
        n_auto = sum(
            1 for member in unit.members if member.restart is RestartMode.AUTO
        )
        n_manual = len(unit.members) - n_auto
        units.append((unit.quorum, a**n_auto * a_s**n_manual))
    return units


def _role_term_array(
    units: Sequence[tuple[int, np.ndarray]],
    candidates: int,
    rho: np.ndarray,
) -> np.ndarray:
    """Vectorized Eqs. (12)-(14) for one role (cf. ``models.sw._role_term``)."""
    if not units:
        return np.ones_like(rho)
    total = np.zeros_like(rho)
    for g in range(candidates + 1):
        weight = binomial_pmf_array(g, candidates, rho)
        value = weight
        for quorum, alpha in units:
            value = value * a_m_of_n_array(quorum, g, alpha)
        total = total + value
    return total


def _roles_product_array(
    spec: ControllerSpec,
    plane: Plane,
    a: np.ndarray,
    a_s: np.ndarray,
    scenario: RestartScenario,
    candidates: int,
    rho_base: float,
) -> np.ndarray:
    """Vectorized product over cluster roles of conditional availabilities."""
    value = np.ones_like(a)
    for role in spec.cluster_roles:
        units = _unit_alpha_arrays(role, plane, a, a_s)
        if not units:
            continue
        if scenario is RestartScenario.REQUIRED and role.supervisor is not None:
            rho = rho_base * a_s
        else:
            rho = np.full_like(a, rho_base)
        value = value * _role_term_array(units, candidates, rho)
    return value


def plane_availability_array(
    spec: ControllerSpec,
    plane: Plane,
    topology_name: str,
    hardware: HardwareParams,
    a: np.ndarray | float,
    a_s: np.ndarray | float,
    scenario: RestartScenario,
) -> np.ndarray:
    """Vectorized :func:`repro.models.sw.plane_availability`.

    ``a``/``a_s`` are the supervised / unsupervised process availabilities
    (the paper's ``A`` and ``A_S``) as arrays over the grid; the hardware
    availabilities stay scalar (the Figs. 4-5 sweep shape).
    """
    a, a_s = _broadcast(a, a_s)
    name = topology_name.lower()
    if name not in _HW_DISPATCH:
        raise ModelError(
            f"no vectorized SW-centric closed form for topology "
            f"{topology_name!r}; expected one of {sorted(_HW_DISPATCH)}"
        )
    if name != "large" and not _plane_required(spec, plane):
        return np.ones_like(a)
    n = spec.cluster_size
    if name == "small":
        block = hardware.vm_host_block
        total = np.zeros_like(a)
        for x in range(n + 1):
            total = total + binomial_pmf_array(
                x, n, block
            ) * _roles_product_array(spec, plane, a, a_s, scenario, x, 1.0)
        return total * hardware.a_rack
    if name == "medium":
        if n < 2:
            raise ModelError("the Medium topology needs at least 2 nodes")
        a_h, a_r = hardware.a_host, hardware.a_rack

        def hosts_term(k: int) -> np.ndarray:
            total = np.zeros_like(a)
            for x in range(k + 1):
                total = total + binomial_pmf_array(
                    x, k, a_h
                ) * _roles_product_array(
                    spec, plane, a, a_s, scenario, x, hardware.a_vm
                )
            return total

        return (
            a_r * a_r * hosts_term(n)
            + a_r * (1.0 - a_r) * hosts_term(n - 1)
            + (1.0 - a_r) * a_r * hosts_term(1)
        )
    rho_base = hardware.vm_host_block
    total = np.zeros_like(a)
    for r in range(n + 1):
        total = total + binomial_pmf_array(
            r, n, hardware.a_rack
        ) * _roles_product_array(spec, plane, a, a_s, scenario, r, rho_base)
    return total


def local_dp_availability_array(
    spec: ControllerSpec,
    a: np.ndarray | float,
    a_s: np.ndarray | float,
    scenario: RestartScenario,
) -> np.ndarray:
    """Vectorized :func:`repro.models.dataplane.local_dp_availability`."""
    a, a_s = _broadcast(a, a_s)
    role = spec.host_role
    if role is None:
        return np.ones_like(a)
    value = np.ones_like(a)
    for quorum, alpha in _unit_alpha_arrays(role, Plane.DP, a, a_s):
        if quorum != 1:
            raise ModelError(
                f"per-host units must be '1 of 1', got quorum {quorum}"
            )
        value = value * alpha
    if scenario is RestartScenario.REQUIRED and role.supervisor is not None:
        value = value * a_s
    return value


def dp_availability_array(
    spec: ControllerSpec,
    topology_name: str,
    hardware: HardwareParams,
    a: np.ndarray | float,
    a_s: np.ndarray | float,
    scenario: RestartScenario,
) -> np.ndarray:
    """Vectorized ``A_DP = A_SDP · A_LDP``."""
    shared = plane_availability_array(
        spec, Plane.DP, topology_name, hardware, a, a_s, scenario
    )
    return shared * local_dp_availability_array(spec, a, a_s, scenario)


# -- figure series -------------------------------------------------------------


def sweep_vectorized(
    parameter: str,
    values: Sequence[float],
    evaluators: Mapping[str, Callable[[np.ndarray], np.ndarray]],
) -> SweepResult:
    """Vectorized counterpart of :func:`repro.analysis.sweep.sweep`.

    Each evaluator receives the whole grid as one array and must return an
    array of the same length.
    """
    if not evaluators:
        raise ParameterError("need at least one evaluator")
    grid_values = np.asarray(values, dtype=float)
    if grid_values.ndim != 1:
        raise ParameterError("sweep values must be one-dimensional")
    obs.note_solver("vectorized")
    recording = obs.enabled()
    series = {}
    with obs.span(
        "perf.sweep_vectorized",
        parameter=parameter,
        points=int(grid_values.size),
        series=len(evaluators),
    ):
        for label, fn in evaluators.items():
            evaluator_start = time.perf_counter() if recording else 0.0
            out = np.asarray(fn(grid_values), dtype=float)
            if recording:
                obs.observe(
                    "perf.sweep.evaluator_seconds",
                    time.perf_counter() - evaluator_start,
                )
                obs.count("perf.sweep.points", int(grid_values.size))
            if out.shape != grid_values.shape:
                raise ParameterError(
                    f"evaluator {label!r} returned shape {out.shape}, "
                    f"expected {grid_values.shape}"
                )
            series[label] = tuple(float(v) for v in out)
    return SweepResult(
        parameter=parameter,
        grid=tuple(float(v) for v in grid_values),
        series=series,
    )


def fig3_series_vectorized(
    hardware: HardwareParams,
    points: int = 41,
    role_range: tuple[float, float] = FIG3_ROLE_AVAILABILITY_RANGE,
) -> SweepResult:
    """Vectorized :func:`repro.analysis.figures.fig3_series`."""
    values = grid(role_range[0], role_range[1], points)

    def make(name: str):
        return lambda a_c: hw_availability_array(
            name, a_c, hardware.a_vm, hardware.a_host, hardware.a_rack
        )

    return sweep_vectorized(
        "A_C",
        values,
        {
            "Small": make("small"),
            "Medium": make("medium"),
            "Large": make("large"),
        },
    )


def _scaled_process_availabilities(
    software: SoftwareParams, orders: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """``(A(x), A_S(x))`` over the Figs. 4-5 x-axis, varied in lock-step."""
    a = 1.0 - (1.0 - software.a_process) * 10.0 ** (-orders)
    a_s = 1.0 - (1.0 - software.a_unsupervised) * 10.0 ** (-orders)
    if np.any(a <= 0.0) or np.any(a_s <= 0.0):
        raise ParameterError("scaling pushed availability to 0")
    return a, a_s


def _option_series_vectorized(
    spec: ControllerSpec,
    hardware: HardwareParams,
    software: SoftwareParams,
    points: int,
    orders_range: tuple[float, float],
    plane: str,
    options: tuple[str, ...],
) -> SweepResult:
    values = np.asarray(
        grid(orders_range[0], orders_range[1], points), dtype=float
    )
    a, a_s = _scaled_process_availabilities(software, values)
    obs.note_solver("vectorized")
    series = {}
    with obs.span(
        "perf.option_series",
        plane=plane,
        points=int(values.size),
        options=len(options),
    ):
        for option in options:
            scenario, topology = parse_option(option)
            if plane == "cp":
                out = plane_availability_array(
                    spec, Plane.CP, topology, hardware, a, a_s, scenario
                )
            else:
                out = dp_availability_array(
                    spec, topology, hardware, a, a_s, scenario
                )
            series[option] = tuple(float(v) for v in out)
    return SweepResult(
        parameter="orders_of_magnitude",
        grid=tuple(float(v) for v in values),
        series=series,
    )


def fig4_series_vectorized(
    spec: ControllerSpec,
    hardware: HardwareParams,
    software: SoftwareParams,
    points: int = 21,
    orders_range: tuple[float, float] = (-1.0, 1.0),
    options: tuple[str, ...] = PAPER_OPTIONS,
) -> SweepResult:
    """Vectorized :func:`repro.analysis.figures.fig4_series`."""
    return _option_series_vectorized(
        spec, hardware, software, points, orders_range, "cp", options
    )


def fig5_series_vectorized(
    spec: ControllerSpec,
    hardware: HardwareParams,
    software: SoftwareParams,
    points: int = 21,
    orders_range: tuple[float, float] = (-1.0, 1.0),
    options: tuple[str, ...] = PAPER_OPTIONS,
) -> SweepResult:
    """Vectorized :func:`repro.analysis.figures.fig5_series`."""
    return _option_series_vectorized(
        spec, hardware, software, points, orders_range, "dp", options
    )
