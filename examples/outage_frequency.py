"""Outage frequency vs duration — beyond the availability average.

The paper warns that identical availabilities hide different operational
realities: "A_R = 0.99999 could consist of a rack failure every 500 years,
lasting two days ... for a provider with 500 edge sites, a yearly outage
may be unacceptable."  This example decomposes each topology's control-
plane unavailability into outage *frequency* and *duration*, per site and
across a 500-site fleet, and estimates the wait until the first outage.

Run with::

    python examples/outage_frequency.py
"""

from repro import PAPER_HARDWARE, PAPER_SOFTWARE, RestartScenario, opencontrail_3x
from repro.controller.spec import Plane
from repro.markov.kofn_markov import kofn_chain
from repro.markov.transient import survival_probability
from repro.models.outage import fleet_outages_per_year, plane_outage_profile
from repro.topology.reference import large_topology, small_topology
from repro.units import HOURS_PER_YEAR


def main() -> None:
    spec = opencontrail_3x()
    print("Control-plane outage character (option 1*, paper defaults):\n")
    print(
        f"  {'topology':9} {'downtime':>10} {'outage every':>13} "
        f"{'mean length':>12} {'500-site fleet':>15}"
    )
    profiles = {}
    for name, topology in (
        ("Small", small_topology(spec)),
        ("Large", large_topology(spec)),
    ):
        profile = plane_outage_profile(
            spec, topology, PAPER_HARDWARE, PAPER_SOFTWARE,
            RestartScenario.NOT_REQUIRED, Plane.CP,
        )
        profiles[name] = profile
        print(
            f"  {name:9} {profile.downtime_minutes_per_year:>7.2f} m/y "
            f"{profile.mean_years_between_outages:>11.0f} y "
            f"{profile.mean_outage_hours:>10.2f} h "
            f"{fleet_outages_per_year(profile, 500):>13.1f} /y"
        )

    print(
        "\nSame ballpark frequency — but a Small-site outage averages "
        f"{profiles['Small'].mean_outage_hours / profiles['Large'].mean_outage_hours:.0f}x"
        " longer,\nbecause the single rack contributes 48-hour events."
        "\nAcross 500 sites, both designs see outages yearly; the Large"
        "\ntopology makes them minor instead of headline-grade."
    )

    # The rack's decade-scale quiet period (transient analysis).
    rack = kofn_chain(1, 1 / (500 * HOURS_PER_YEAR), 1 / 48.0)
    print("\nP(single rack survives without any outage):")
    for years in (1, 5, 10, 50):
        survival = survival_probability(
            rack, lambda failed: failed == 0, years * HOURS_PER_YEAR, start=0
        )
        print(f"  {years:>3} years: {survival:.4f}")
    print(
        "\nA 500-year-MTBF rack is quiet for decades — exactly the\n"
        "'no downtime for many years, then a highly-publicized extended\n"
        "outage' profile the paper warns about."
    )


if __name__ == "__main__":
    main()
