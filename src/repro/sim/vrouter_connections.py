"""vRouter-agent control-connection dynamics — section III fidelity.

The paper's section III describes behavior the steady-state models
deliberately abstract away ("we assume that the impact of simultaneous
*control* process failures on host DP availability is negligible"):

* each host's *vrouter-agent* is connected to **two** Control nodes,
  assigned round-robin, so each control pair serves about a third of the
  hosts;
* if one connected control fails, the agent rediscovers the unused control
  "typically within a minute" **without** dropping packets (it still has
  one live connection);
* if **both** connected controls fail simultaneously, that third of the
  agents drops packets until they reconnect to the remaining control;
* if **all** controls fail, every host DP goes down (BGP forwarding tables
  are flushed) until a control returns and agents reconnect.

This module models those dynamics exactly for an explicit timeline of
control-node up/down events, computing per-host packet-drop intervals —
which lets us *test* the negligibility assumption instead of assuming it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.errors import SimulationError


@dataclass(frozen=True)
class ControlEvent:
    """A control node going down or coming back at a point in time."""

    time: float
    control: str
    up: bool


@dataclass(frozen=True)
class DropInterval:
    """A maximal interval during which a host's DP dropped packets."""

    host: int
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


class VRouterConnectionModel:
    """Per-host agent connections with round-robin assignment and rediscovery.

    Args:
        controls: control node names (the paper's three).
        hosts: number of compute hosts.
        rediscovery_hours: time for an agent to (re)connect to an available
            control after losing all its connections (the paper's "typically
            within a minute" — default 1/60 h).
    """

    def __init__(
        self,
        controls: Sequence[str],
        hosts: int,
        rediscovery_hours: float = 1.0 / 60.0,
    ):
        if len(controls) < 2:
            raise SimulationError("need at least two control nodes")
        if len(set(controls)) != len(controls):
            raise SimulationError("control names must be distinct")
        if hosts < 1:
            raise SimulationError(f"hosts must be >= 1, got {hosts}")
        if rediscovery_hours <= 0:
            raise SimulationError("rediscovery time must be > 0")
        self._controls = tuple(controls)
        self._hosts = hosts
        self._rediscovery = rediscovery_hours

    def initial_connections(self, host: int) -> tuple[str, str]:
        """Round-robin pair assignment: host h -> (c_h, c_{h+1}) mod n."""
        if not 0 <= host < self._hosts:
            raise SimulationError(f"host index out of range: {host}")
        n = len(self._controls)
        return (
            self._controls[host % n],
            self._controls[(host + 1) % n],
        )

    def drop_intervals(
        self,
        events: Sequence[ControlEvent],
        horizon: float,
    ) -> list[DropInterval]:
        """Packet-drop intervals per host over an event timeline.

        An agent holds up to two connections.  A connection dies when its
        control goes down.  When the agent still has one connection it
        immediately (and hitlessly) picks up a replacement if any other
        control is up.  When it loses *both* — or when a replacement is
        wanted but no control is up — the host drops packets; service
        resumes ``rediscovery_hours`` after at least one control is
        continuously available (if a control is up the whole time, that is
        ``rediscovery_hours`` after the loss).
        """
        if horizon <= 0:
            raise SimulationError(f"horizon must be > 0, got {horizon}")
        ordered = sorted(events, key=lambda e: e.time)
        for event in ordered:
            if event.control not in self._controls:
                raise SimulationError(f"unknown control {event.control!r}")
            if not 0 <= event.time <= horizon:
                raise SimulationError("event outside [0, horizon]")
        intervals: list[DropInterval] = []
        for host in range(self._hosts):
            intervals.extend(self._host_intervals(host, ordered, horizon))
        return intervals

    def _host_intervals(
        self, host: int, events: Sequence[ControlEvent], horizon: float
    ) -> list[DropInterval]:
        up = {c: True for c in self._controls}
        connections = set(self.initial_connections(host))
        dropping_since: float | None = None
        reconnect_at: float | None = None  # pending dark-state rediscovery
        topup_at: float | None = None  # pending hitless replacement
        intervals: list[DropInterval] = []

        def available_controls() -> list[str]:
            return [c for c in self._controls if up[c]]

        def replacement_candidates() -> list[str]:
            return [c for c in available_controls() if c not in connections]

        def complete_pending(now: float) -> None:
            """Land any rediscovery/top-up whose delay elapsed before now."""
            nonlocal dropping_since, reconnect_at, topup_at, connections
            if reconnect_at is not None and reconnect_at <= now:
                intervals.append(
                    DropInterval(host, dropping_since, reconnect_at)
                )
                connections = set(available_controls()[:2])
                dropping_since = None
                reconnect_at = None
            if topup_at is not None and topup_at <= now:
                for control in replacement_candidates():
                    if len(connections) >= 2:
                        break
                    connections.add(control)
                topup_at = None

        for event in sorted(events, key=lambda e: e.time):
            complete_pending(event.time)
            up[event.control] = event.up
            if event.up:
                if dropping_since is not None:
                    if reconnect_at is None:
                        # A control returned while the agent was dark with
                        # no target; rediscovery starts now.
                        reconnect_at = event.time + self._rediscovery
                elif len(connections) < 2 and topup_at is None:
                    topup_at = event.time + self._rediscovery
            else:
                connections.discard(event.control)
                if dropping_since is not None:
                    if reconnect_at is not None and not available_controls():
                        reconnect_at = None  # rediscovery target vanished
                elif not connections:
                    # Both connections lost before a replacement landed:
                    # the paper's simultaneous-failure packet drop.
                    dropping_since = event.time
                    topup_at = None
                    reconnect_at = (
                        event.time + self._rediscovery
                        if available_controls()
                        else None
                    )
                elif replacement_candidates() and topup_at is None:
                    # One live connection remains: hitless replacement
                    # lands after the rediscovery delay.
                    topup_at = event.time + self._rediscovery
        complete_pending(horizon)
        if dropping_since is not None:
            end = (
                min(reconnect_at, horizon)
                if reconnect_at is not None
                else horizon
            )
            intervals.append(DropInterval(host, dropping_since, end))
        return intervals

    def impacted_fraction(
        self, events: Sequence[ControlEvent], horizon: float
    ) -> float:
        """Fraction of hosts that dropped any packets over the timeline."""
        impacted = {i.host for i in self.drop_intervals(events, horizon)}
        return len(impacted) / self._hosts

    def dp_unavailability(
        self, events: Sequence[ControlEvent], horizon: float
    ) -> float:
        """Mean per-host DP unavailability contributed by connection loss."""
        total = sum(
            i.duration for i in self.drop_intervals(events, horizon)
        )
        return total / (self._hosts * horizon)
