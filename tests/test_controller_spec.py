"""Tests for controller specifications and derived tables (repro.controller.spec)."""

import pytest

from repro.controller.process import ProcessSpec, RestartMode
from repro.controller.role import RoleKind, RoleSpec
from repro.controller.spec import ControllerSpec, Plane
from repro.errors import SpecError

AUTO = RestartMode.AUTO
MANUAL = RestartMode.MANUAL


class TestValidation:
    def test_duplicate_role_names_rejected(self):
        role = RoleSpec("R", (ProcessSpec("x", AUTO),))
        with pytest.raises(SpecError):
            ControllerSpec("C", (role, role))

    def test_quorum_exceeding_cluster_rejected(self):
        role = RoleSpec("R", (ProcessSpec("x", MANUAL, cp_quorum=4),))
        with pytest.raises(SpecError):
            ControllerSpec("C", (role,), cluster_size=3)

    def test_multiple_host_roles_rejected(self):
        host = RoleSpec(
            "H1", (ProcessSpec("a", AUTO, dp_quorum=1),), kind=RoleKind.HOST
        )
        host2 = RoleSpec(
            "H2", (ProcessSpec("b", AUTO, dp_quorum=1),), kind=RoleKind.HOST
        )
        with pytest.raises(SpecError):
            ControllerSpec("C", (host, host2))

    def test_host_role_quorum_above_one_rejected(self):
        host = RoleSpec(
            "H", (ProcessSpec("a", AUTO, dp_quorum=2),), kind=RoleKind.HOST
        )
        with pytest.raises(SpecError):
            ControllerSpec("C", (host,))

    def test_needs_a_role(self):
        with pytest.raises(SpecError):
            ControllerSpec("C", ())

    def test_role_lookup(self, spec):
        assert spec.role("Database").name == "Database"
        with pytest.raises(SpecError):
            spec.role("Ghost")


class TestOpenContrailDerivedTables:
    """The derived views must reproduce the paper's Tables II and III."""

    def test_table2(self, spec):
        table = spec.restart_mode_table()
        assert table == {
            "Config": (6, 0),
            "Control": (3, 0),
            "Analytics": (4, 1),
            "Database": (0, 4),
        }

    def test_table3_cp(self, spec):
        table = spec.quorum_table(Plane.CP)
        assert table == {
            "Config": (0, 6),
            "Control": (0, 1),
            "Analytics": (0, 5),
            "Database": (4, 0),
        }

    def test_table3_dp(self, spec):
        table = spec.quorum_table(Plane.DP)
        assert table == {
            "Config": (0, 1),
            "Control": (0, 1),
            "Analytics": (0, 0),
            "Database": (0, 0),
        }

    def test_table3_sums(self, spec):
        assert spec.quorum_sums(Plane.CP) == (4, 12)
        assert spec.quorum_sums(Plane.DP) == (0, 2)

    def test_twelve_supervisors(self, spec):
        # "3 nodes x 4 roles = 12 supervisor processes" (section VI.A).
        assert spec.supervisors_per_cluster == 12

    def test_table1_rows(self, spec):
        rows = spec.process_rows()
        lookup = {(role, name): (cp, dp) for role, name, cp, dp in rows}
        assert lookup[("Config", "discovery")] == ("1 of 3", "1 of 3")
        assert lookup[("Control", "dns")] == ("0 of 3", "1 of 3")
        assert lookup[("Database", "zookeeper")] == ("2 of 3", "0 of 3")
        assert lookup[("vRouter", "vrouter-agent")] == ("0 of 1", "1 of 1")
        # 20 regular processes total (Table I).
        assert len(rows) == 20

    def test_host_role(self, spec):
        assert spec.host_role is not None
        assert spec.host_role.name == "vRouter"

    def test_cluster_roles_exclude_host(self, spec):
        assert [r.name for r in spec.cluster_roles] == [
            "Config",
            "Control",
            "Analytics",
            "Database",
        ]


class TestAlternativeSpecs:
    def test_flat_consensus_tables(self, flat_spec):
        assert flat_spec.quorum_sums(Plane.CP) == (1, 3)
        assert flat_spec.host_role is not None

    def test_split_state_has_no_host_role(self, split_spec):
        assert split_spec.host_role is None

    def test_toy_spec(self, toy_spec):
        assert toy_spec.quorum_sums(Plane.CP) == (1, 1)
        assert toy_spec.quorum_sums(Plane.DP) == (0, 0)
