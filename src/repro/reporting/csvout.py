"""CSV output for figure series.

Each benchmark that regenerates a paper figure also writes the underlying
series to ``results/`` so the curves can be plotted externally.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Sequence

from repro.errors import ReproError


def write_csv(
    path: str | Path,
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
) -> Path:
    """Write rows to ``path`` (parent directories created), return the path."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    for row in rows:
        if len(row) != len(headers):
            raise ReproError(
                f"row {row!r} has {len(row)} cells, expected {len(headers)}"
            )
    with target.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(list(headers))
        for row in rows:
            writer.writerow(list(row))
    return target
