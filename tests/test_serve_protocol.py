"""HTTP framing: parsing, limits, and end-to-end status codes."""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.serve.app import ServeApp, ServeConfig
from repro.serve.protocol import (
    MAX_HEADER_COUNT,
    ProtocolError,
    Request,
    Response,
    read_request,
)


def run(coroutine):
    return asyncio.run(coroutine)


def parse(raw: bytes, **kwargs):
    async def scenario():
        reader = asyncio.StreamReader()
        reader.feed_data(raw)
        reader.feed_eof()
        return await read_request(reader, **kwargs)

    return run(scenario())


class TestRequestParsing:
    def test_get_with_query_string(self):
        request = parse(b"GET /v1/stats?verbose=1&x=%20y HTTP/1.1\r\n\r\n")
        assert request.method == "GET"
        assert request.path == "/v1/stats"
        assert request.query == {"verbose": "1", "x": " y"}
        assert request.body == b""
        assert request.keep_alive

    def test_post_with_body(self):
        body = json.dumps({"kind": "hw"}).encode()
        raw = (
            b"POST /v1/query HTTP/1.1\r\n"
            b"Content-Type: application/json\r\n"
            + f"Content-Length: {len(body)}\r\n\r\n".encode()
            + body
        )
        request = parse(raw)
        assert request.method == "POST"
        assert request.json() == {"kind": "hw"}

    def test_clean_eof_returns_none(self):
        assert parse(b"") is None

    def test_connection_close_header(self):
        request = parse(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n")
        assert not request.keep_alive

    def test_tenant_header_with_default(self):
        anonymous = parse(b"GET / HTTP/1.1\r\n\r\n")
        assert anonymous.tenant == "anonymous"
        named = parse(b"GET / HTTP/1.1\r\nX-Tenant: acme\r\n\r\n")
        assert named.tenant == "acme"

    def test_malformed_request_line(self):
        with pytest.raises(ProtocolError) as excinfo:
            parse(b"BROKEN\r\n\r\n")
        assert excinfo.value.status == 400

    def test_unsupported_protocol_version(self):
        with pytest.raises(ProtocolError):
            parse(b"GET / SPDY/3\r\n\r\n")

    def test_invalid_content_length(self):
        with pytest.raises(ProtocolError):
            parse(b"POST / HTTP/1.1\r\nContent-Length: nope\r\n\r\n")
        with pytest.raises(ProtocolError):
            parse(b"POST / HTTP/1.1\r\nContent-Length: -5\r\n\r\n")

    def test_body_over_limit_is_413(self):
        with pytest.raises(ProtocolError) as excinfo:
            parse(
                b"POST / HTTP/1.1\r\nContent-Length: 100\r\n\r\n" + b"x" * 100,
                max_body_bytes=10,
            )
        assert excinfo.value.status == 413

    def test_too_many_headers_is_413(self):
        headers = b"".join(
            b"H%d: v\r\n" % index for index in range(MAX_HEADER_COUNT + 1)
        )
        with pytest.raises(ProtocolError) as excinfo:
            parse(b"GET / HTTP/1.1\r\n" + headers + b"\r\n")
        assert excinfo.value.status == 413

    def test_chunked_encoding_rejected(self):
        with pytest.raises(ProtocolError):
            parse(b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n")

    def test_truncated_body_is_an_error(self):
        with pytest.raises(ProtocolError):
            parse(b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc")

    def test_json_object_rejects_non_objects(self):
        request = Request(
            method="POST",
            target="/",
            path="/",
            query={},
            headers={},
            body=b"[1, 2]",
        )
        assert request.json() == [1, 2]
        with pytest.raises(ProtocolError):
            request.json_object()

    def test_invalid_json_body(self):
        request = Request(
            method="POST",
            target="/",
            path="/",
            query={},
            headers={},
            body=b"{not json",
        )
        with pytest.raises(ProtocolError):
            request.json()


class TestResponseEncoding:
    def test_encode_shape(self):
        encoded = Response.json({"a": 1}).encode(keep_alive=True)
        head, _, body = encoded.partition(b"\r\n\r\n")
        assert head.startswith(b"HTTP/1.1 200 OK\r\n")
        assert b"Content-Type: application/json" in head
        assert f"Content-Length: {len(body)}".encode() in head
        assert b"Connection: keep-alive" in head
        assert json.loads(body) == {"a": 1}

    def test_error_helper(self):
        response = Response.error(429, "slow down", retry=True)
        assert response.status == 429
        assert json.loads(response.body) == {
            "error": "slow down",
            "retry": True,
        }

    def test_close_header(self):
        encoded = Response.json({}).encode(keep_alive=False)
        assert b"Connection: close" in encoded


async def _roundtrip(app: ServeApp, raw: bytes) -> tuple[int, bytes]:
    """One raw request against a running app; (status, body)."""
    reader, writer = await asyncio.open_connection("127.0.0.1", app.port)
    try:
        writer.write(raw)
        await writer.drain()
        status_line = await reader.readline()
        status = int(status_line.split()[1])
        length = 0
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode().partition(":")
            if name.lower() == "content-length":
                length = int(value.strip())
        body = await reader.readexactly(length)
        return status, body
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass


class TestEndToEnd:
    def _request(self, raw: bytes) -> tuple[int, bytes]:
        async def scenario():
            app = ServeApp(ServeConfig())
            await app.start()
            try:
                return await _roundtrip(app, raw)
            finally:
                await app.stop()

        return run(scenario())

    def test_healthz(self):
        status, body = self._request(b"GET /healthz HTTP/1.1\r\n\r\n")
        assert status == 200
        assert json.loads(body) == {"status": "ok"}

    def test_unknown_route_is_404(self):
        status, body = self._request(b"GET /nope HTTP/1.1\r\n\r\n")
        assert status == 404
        assert "no route" in json.loads(body)["error"]

    def test_wrong_method_is_405(self):
        status, _ = self._request(b"POST /healthz HTTP/1.1\r\n\r\n")
        assert status == 405

    def test_malformed_json_body_is_4xx(self):
        raw = (
            b"POST /v1/query HTTP/1.1\r\nContent-Length: 4\r\n\r\n{oop"
        )
        status, body = self._request(raw)
        assert status == 400
        assert "JSON" in json.loads(body)["error"]

    def test_unknown_query_kind_is_4xx(self):
        payload = json.dumps({"kind": "astrology"}).encode()
        raw = (
            b"POST /v1/query HTTP/1.1\r\n"
            + f"Content-Length: {len(payload)}\r\n\r\n".encode()
            + payload
        )
        status, body = self._request(raw)
        assert status == 400
        assert "unknown query kind" in json.loads(body)["error"]

    def test_malformed_framing_closes_with_400(self):
        status, body = self._request(b"TOTAL GARBAGE\r\n\r\n")
        assert status == 400

    def test_hw_query_defaults_to_paper_parameters(self):
        """Absent a_* fields fall back to the paper's values and share a
        cache entry with the fully-specified equivalent."""
        from repro.params.defaults import PAPER_HARDWARE

        def post(payload):
            body = json.dumps(payload).encode()
            return (
                b"POST /v1/query HTTP/1.1\r\n"
                + f"Content-Length: {len(body)}\r\n\r\n".encode()
                + body
            )

        async def scenario():
            app = ServeApp(ServeConfig())
            await app.start()
            try:
                first = await _roundtrip(app, post({"kind": "hw"}))
                explicit = await _roundtrip(
                    app,
                    post(
                        {
                            "kind": "hw",
                            "a_role": PAPER_HARDWARE.a_role,
                            "a_vm": PAPER_HARDWARE.a_vm,
                            "a_host": PAPER_HARDWARE.a_host,
                            "a_rack": PAPER_HARDWARE.a_rack,
                        }
                    ),
                )
                bad = await _roundtrip(
                    app, post({"kind": "hw", "a_role": "plenty"})
                )
                return first, explicit, bad
            finally:
                await app.stop()

        first, explicit, bad = run(scenario())
        assert first[0] == 200
        defaulted = json.loads(first[1])
        assert defaulted["cache"] == "miss"
        spelled_out = json.loads(explicit[1])
        # Same resolved params -> same cache key -> a hit, same number.
        assert spelled_out["cache"] == "hit"
        assert spelled_out["availability"] == defaulted["availability"]
        assert bad[0] == 400

    def test_metrics_exposition(self):
        async def scenario():
            app = ServeApp(ServeConfig())
            await app.start()
            try:
                await _roundtrip(app, b"GET /healthz HTTP/1.1\r\n\r\n")
                return await _roundtrip(app, b"GET /metrics HTTP/1.1\r\n\r\n")
            finally:
                await app.stop()

        status, body = run(scenario())
        text = body.decode()
        assert status == 200
        assert "# TYPE serve_cache_hits_total counter" in text
        assert "# TYPE serve_jobs_queue_depth gauge" in text
        assert "serve_responses_2xx_total" in text
        assert text.rstrip().endswith("# EOF")
