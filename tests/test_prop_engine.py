"""Property-based validation of the exact topology engine.

The oracle enumerates *every* infrastructure element (no shared/private
optimization) and convolves platform survivals per role — an independent,
simpler implementation of the same semantics.  The engine must match it on
random topologies and requirements.
"""

from __future__ import annotations

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.kofn import a_m_of_n
from repro.models.engine import (
    RoleRequirement,
    UnitRequirement,
    evaluate_topology,
)
from repro.topology.deployment import DeploymentTopology
from repro.topology.elements import Host, Rack, RoleInstance, Vm

probabilities = st.floats(min_value=0.05, max_value=1.0, allow_nan=False)


@st.composite
def random_deployments(draw):
    """Random small deployments with 1-2 racks, 1-3 hosts, 1-4 VMs."""
    n_racks = draw(st.integers(min_value=1, max_value=2))
    racks = tuple(Rack(f"R{i}") for i in range(1, n_racks + 1))
    n_hosts = draw(st.integers(min_value=1, max_value=3))
    hosts = tuple(
        Host(f"H{i}", f"R{draw(st.integers(min_value=1, max_value=n_racks))}")
        for i in range(1, n_hosts + 1)
    )
    n_vms = draw(st.integers(min_value=1, max_value=4))
    vms = tuple(
        Vm(f"V{i}", f"H{draw(st.integers(min_value=1, max_value=n_hosts))}")
        for i in range(1, n_vms + 1)
    )
    n_roles = draw(st.integers(min_value=1, max_value=2))
    instances = []
    requirements = []
    for r in range(n_roles):
        role = f"Role{r}"
        count = draw(st.integers(min_value=1, max_value=3))
        for i in range(1, count + 1):
            vm = f"V{draw(st.integers(min_value=1, max_value=n_vms))}"
            instances.append(RoleInstance(role, i, vm))
        n_units = draw(st.integers(min_value=1, max_value=2))
        units = tuple(
            UnitRequirement(
                f"{role}-u{u}",
                draw(st.integers(min_value=0, max_value=count + 1)),
                draw(probabilities),
            )
            for u in range(n_units)
        )
        requirements.append(
            RoleRequirement(role, units, draw(probabilities))
        )
    topology = DeploymentTopology(
        "Random", racks, hosts, vms, tuple(instances)
    )
    availability = {
        "rack": draw(probabilities),
        "host": draw(probabilities),
        "vm": draw(probabilities),
    }
    return topology, tuple(requirements), availability


def oracle(topology, requirements, availability):
    """Brute-force enumeration over every infrastructure element."""
    elements = (
        [("rack", r.name) for r in topology.racks]
        + [("host", h.name) for h in topology.hosts]
        + [("vm", v.name) for v in topology.vms]
    )
    total = 0.0
    for bits in itertools.product((True, False), repeat=len(elements)):
        state = {name: up for (_, name), up in zip(elements, bits)}
        weight = 1.0
        for (level, name), up in zip(elements, bits):
            p = availability[level]
            weight *= p if up else 1.0 - p
        if weight == 0.0:
            continue
        value = 1.0
        for requirement in requirements:
            counts = [1.0]
            for instance in topology.instances_of(requirement.role):
                rack, host, vm = topology.support_chain(instance)
                alive = state[rack] and state[host] and state[vm]
                p = requirement.extra_instance_availability if alive else 0.0
                nxt = [0.0] * (len(counts) + 1)
                for g, w in enumerate(counts):
                    nxt[g] += w * (1 - p)
                    nxt[g + 1] += w * p
                counts = nxt
            role_value = 0.0
            for g, w in enumerate(counts):
                if w == 0.0:
                    continue
                term = 1.0
                for unit in requirement.units:
                    term *= a_m_of_n(unit.quorum, g, unit.alpha)
                role_value += w * term
            value *= role_value
        total += weight * value
    return total


class TestEngineAgainstOracle:
    @given(case=random_deployments())
    @settings(max_examples=40, deadline=None)
    def test_matches_bruteforce(self, case):
        topology, requirements, availability = case
        engine_value = evaluate_topology(topology, requirements, availability)
        oracle_value = oracle(topology, requirements, availability)
        assert engine_value == pytest.approx(oracle_value, abs=1e-10)

    @given(case=random_deployments())
    @settings(max_examples=20, deadline=None)
    def test_monotone_in_infrastructure(self, case):
        topology, requirements, availability = case
        base = evaluate_topology(topology, requirements, availability)
        better = dict(availability)
        better["host"] = min(1.0, availability["host"] * 1.05)
        improved = evaluate_topology(topology, requirements, better)
        assert improved >= base - 1e-12
