"""Campaign reproducibility: worker counts, tracing, and serialization.

A campaign is a pure function of its spec: identical spec + seed must be
bit-identical across worker counts and with observability tracing on or
off, the spec must round-trip losslessly through JSON (with a stable
params hash), and traced runs must land the campaign's seed material in
the run manifest.  Mirrors the discipline of ``test_obs_determinism.py``
for the ``repro-avail faults`` path.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.errors import CampaignError
from repro.faults import (
    CampaignSpec,
    CommonCauseSpec,
    MaintenanceSpec,
    RackPowerSpec,
    RepairCrewsSpec,
    run_campaign,
)
from repro.obs import runtime as obs
from repro.obs.manifest import RunManifest

HAZARDS = (
    CommonCauseSpec("role:Control", 0.4),
    RackPowerSpec(mtbf_hours=3000.0),
    MaintenanceSpec(
        "host:H2", start_hours=100.0, period_hours=500.0, duration_hours=25.0,
    ),
)

SPEC = CampaignSpec(
    option="1S",
    horizon_hours=1500.0,
    replications=4,
    seed=21,
    hazards=HAZARDS,
    repair_crews=2,
)


@pytest.fixture(autouse=True)
def _no_leaked_session():
    obs.stop()
    yield
    obs.stop()


def _fingerprint(result):
    """Everything observable about a campaign, as comparable tuples."""
    return (
        tuple(
            (r.cp, r.shared_dp, r.local_dp, r.dp)
            for r in result.replications.results
        ),
        result.replications.seeds,
        result.stats,
    )


class TestSpecRoundTrip:
    def test_json_round_trip_is_lossless(self):
        restored = CampaignSpec.from_json(SPEC.to_json())
        assert restored == SPEC
        assert restored.params_hash() == SPEC.params_hash()

    def test_hash_distinguishes_specs(self):
        assert (
            SPEC.with_beta(0.5).params_hash() != SPEC.params_hash()
        )

    def test_unknown_field_rejected(self):
        record = SPEC.to_dict()
        record["warp_factor"] = 9
        with pytest.raises(CampaignError, match="unknown campaign field"):
            CampaignSpec.from_dict(record)

    def test_invalid_json_rejected(self):
        with pytest.raises(CampaignError, match="not valid JSON"):
            CampaignSpec.from_json("{nope")
        with pytest.raises(CampaignError, match="must be an object"):
            CampaignSpec.from_json("[1, 2]")

    def test_with_beta_replaces_existing_hazards(self):
        swept = SPEC.with_beta(0.9)
        common = [
            hazard for hazard in swept.hazards
            if isinstance(hazard, CommonCauseSpec)
        ]
        assert [hazard.beta for hazard in common] == [0.9]
        assert common[0].group == "role:Control"
        # Non-common-cause hazards ride along untouched.
        assert sum(
            isinstance(hazard, MaintenanceSpec) for hazard in swept.hazards
        ) == 1

    def test_with_beta_adds_hazard_when_absent(self):
        spec = CampaignSpec(option="1S").with_beta(0.3)
        assert spec.hazards == (CommonCauseSpec("kind:vm", 0.3),)

    def test_repair_crews_spec_serializes(self):
        spec = CampaignSpec(
            option="1S", hazards=(RepairCrewsSpec(3),)
        )
        assert CampaignSpec.from_json(spec.to_json()) == spec


class TestBitIdenticalCampaigns:
    @pytest.mark.slow
    def test_workers_do_not_change_results(self):
        baseline = run_campaign(SPEC, workers=1)
        pooled = run_campaign(SPEC, workers=4)
        assert _fingerprint(pooled) == _fingerprint(baseline)

    @pytest.mark.slow
    def test_tracing_does_not_change_results(self):
        baseline = run_campaign(SPEC)
        with obs.session("determinism") as session:
            traced = run_campaign(SPEC)
        assert _fingerprint(traced) == _fingerprint(baseline)
        assert "fault-campaign" in session.solver_path
        assert session.annotations["seed.campaign_root"] == SPEC.seed
        assert (
            session.annotations["seed.campaign_replications"]
            == SPEC.replications
        )
        assert (
            session.annotations["seed.campaign_hash"] == SPEC.params_hash()
        )
        counters = session.metrics.snapshot()["counters"]
        assert counters["faults.injections.common_cause"] > 0
        assert counters["faults.injections.maintenance"] > 0

    @pytest.mark.slow
    def test_manifest_round_trips_campaign_seed_material(self, tmp_path):
        with obs.session("faults-manifest") as session:
            run_campaign(SPEC)
        manifest = session.build_manifest(arguments={"option": SPEC.option})
        path = manifest.write(tmp_path / "campaign.json")
        restored = RunManifest.load(path)
        assert restored == manifest
        assert restored.seed["campaign_root"] == SPEC.seed
        assert restored.seed["campaign_replications"] == SPEC.replications
        assert restored.seed["campaign_hash"] == SPEC.params_hash()
        assert "fault-campaign" in restored.solver_path
        assert "simulation" in restored.solver_path


class TestCliFaults:
    @pytest.mark.slow
    def test_trace_writes_valid_manifest(self, capsys, tmp_path):
        """Acceptance: ``repro-avail faults --trace out.json`` -> manifest."""
        trace = tmp_path / "out.json"
        spec_path = tmp_path / "campaign.json"
        spec_path.write_text(SPEC.to_json(), encoding="utf-8")
        assert main([
            "faults", "--campaign", str(spec_path),
            "--replications", "2", "--horizon", "800",
            "--trace", str(trace),
        ]) == 0
        out = capsys.readouterr().out
        assert "Fault campaign vs analytic" in out
        assert "injections:" in out
        assert "wrote trace manifest" in out
        manifest = RunManifest.load(trace)
        assert manifest.command == "faults"
        assert manifest.seed["campaign_root"] == SPEC.seed
        assert manifest.seed["campaign_replications"] == 2
        assert "fault-campaign" in manifest.solver_path
        assert "simulation" in manifest.solver_path
        assert any(
            s["name"] == "faults.campaign" for s in manifest.spans
        )
        assert not obs.enabled()  # the CLI stopped its session

    @pytest.mark.slow
    def test_json_payload(self, capsys, tmp_path):
        payload_path = tmp_path / "campaign_out.json"
        assert main([
            "faults", "--option", "1S", "--horizon", "800",
            "--replications", "2", "--seed", "3",
            "--beta", "0.4", "--beta-group", "role:Control",
            "--json", str(payload_path),
        ]) == 0
        payload = json.loads(payload_path.read_text(encoding="utf-8"))
        assert payload["spec"]["option"] == "1S"
        assert payload["spec"]["hazards"] == [
            {"kind": "common_cause", "group": "role:Control", "beta": 0.4}
        ]
        assert set(payload["planes"]) == {"cp", "sdp", "ldp", "dp"}
        for plane in payload["planes"].values():
            assert set(plane) >= {"simulated", "analytic", "gap"}
        restored = CampaignSpec.from_dict(payload["spec"])
        assert restored.params_hash() == payload["spec_hash"]

    @pytest.mark.slow
    def test_beta_sweep_csv(self, capsys, tmp_path):
        csv_path = tmp_path / "sweep.csv"
        assert main([
            "faults", "--option", "1S", "--horizon", "600",
            "--replications", "2", "--seed", "3",
            "--sweep-beta", "0.0,0.5", "--beta-group", "role:Control",
            "--csv", str(csv_path),
        ]) == 0
        assert "Common-cause beta sweep" in capsys.readouterr().out
        lines = csv_path.read_text(encoding="utf-8").strip().splitlines()
        assert lines[0].startswith("beta,")
        assert len(lines) == 3  # header + one row per beta

    @pytest.mark.slow
    def test_crews_flag_reaches_campaign(self, capsys, tmp_path):
        payload_path = tmp_path / "crews.json"
        assert main([
            "faults", "--option", "1S", "--horizon", "800",
            "--replications", "2", "--seed", "3", "--crews", "1",
            "--json", str(payload_path),
        ]) == 0
        payload = json.loads(payload_path.read_text(encoding="utf-8"))
        assert payload["spec"]["repair_crews"] == 1
        assert payload["repair_queue"]["total_queued"] > 0
