"""P10 — serving-layer loadtest and the tracing-overhead gate.

Two measurements, appended as a ``serve_loadtest`` section to
``BENCH_perf.json`` (other sections are preserved):

* **Open-loop loadtest** — boots a real ``repro-avail serve`` subprocess
  on an ephemeral port and drives it with
  :func:`repro.serve.loadtest.run_loadtest`: a deterministic multi-tenant
  mix of hardware / option / network queries plus small campaign jobs,
  offered on a clock (open loop) rather than on completions.  The run
  must finish with **zero transport errors and zero 5xx**, and the
  latency-attribution segments (queue-wait / cache / batch-assembly /
  kernel-compute / other) must sum to the server's request-latency
  histogram total within ``COVERAGE_TOLERANCE`` — every request's
  segments tile its wall time by construction, so drift here means the
  attribution plumbing double-counted or dropped a segment.

* **Tracing-overhead gate** — runs the same Monte-Carlo campaign through
  the warm process pool twice, once bare and once inside an active
  :func:`repro.obs.trace.trace_scope` (which ships the trace context into
  every worker payload and rides worker spans back on the result
  channel).  The two results must be **bit-identical** (trace ids come
  from ``os.urandom``, never the seeded RNGs) and the traced run must
  cost less than ``OVERHEAD_CEILING`` extra wall time — best-of-repeats,
  gated on ``os.cpu_count()`` like the other smokes because single-core
  wall clocks are too noisy to gate on.

Runnable as a pytest benchmark *or* directly as a script —
``python benchmarks/bench_loadtest.py --requests 120 --check`` is the CI
smoke invocation.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import re
import signal
import subprocess
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if __name__ == "__main__":  # script mode: make src/ importable without install
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.reporting.tables import format_table

BENCH_SEED = 20190324
DEFAULT_OUT = REPO_ROOT / "BENCH_perf.json"

#: |attribution coverage - 1| must stay within this under the loadtest.
COVERAGE_TOLERANCE = 0.05

#: Traced wall time may exceed bare wall time by at most this fraction.
OVERHEAD_CEILING = 0.05

#: The campaign timed for the overhead gate.  ``batched="off"`` forces
#: the scalar engine through the warm pool, which is the path tracing
#: instruments (trace context into worker payloads, spans riding back).
GATE_SPEC = {
    "option": "2S",
    "horizon_hours": 2000.0,
    "replications": 16,
    "seed": BENCH_SEED,
}


class ServerProcess:
    """A ``repro-avail serve`` subprocess bound to an ephemeral port."""

    def __init__(self):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        self.process = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0"],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
        )
        line = self.process.stdout.readline()
        match = re.search(r"serving on http://([\d.]+):(\d+)", line)
        if not match:
            self.process.kill()
            raise RuntimeError(f"server did not start: {line!r}")
        self.host = match.group(1)
        self.port = int(match.group(2))

    def shutdown(self) -> str:
        """SIGINT, wait, and return the remaining stdout."""
        self.process.send_signal(signal.SIGINT)
        output = self.process.communicate(timeout=30)[0]
        if self.process.returncode != 0:
            raise RuntimeError(
                f"server exited {self.process.returncode}: {output}"
            )
        return output


def run_loadtest_bench(
    requests: int = 200, rate: float = 200.0, tenants: int = 3
) -> dict:
    """Drive a live server with the open-loop plan; return the record."""
    from repro.serve.loadtest import LoadtestConfig, run_loadtest

    server = ServerProcess()
    try:
        report = asyncio.run(
            run_loadtest(
                LoadtestConfig(
                    host=server.host,
                    port=server.port,
                    requests=requests,
                    rate=rate,
                    tenants=tenants,
                    seed=BENCH_SEED,
                )
            )
        )
    finally:
        shutdown_output = server.shutdown()
    summary = report.summary()
    summary["clean_shutdown"] = "server shutdown clean" in shutdown_output
    return summary


def _timed_campaign(spec, workers: int, traced: bool) -> tuple[dict, float]:
    """One campaign run (optionally inside a trace scope) and its wall."""
    from repro.faults.crossval import evaluate_campaign
    from repro.obs.trace import TraceContext, trace_scope
    from repro.reporting.faults import crossval_payload

    start = time.perf_counter()
    if traced:
        with trace_scope(TraceContext.new()):
            crossval = evaluate_campaign(spec, workers=workers, batched="off")
    else:
        crossval = evaluate_campaign(spec, workers=workers, batched="off")
    elapsed = time.perf_counter() - start
    # Round-trip through JSON so the comparison sees exactly what any
    # consumer (file, HTTP response) would see.
    return json.loads(json.dumps(crossval_payload(crossval))), elapsed


def run_tracing_gate(workers: int = 2, repeats: int = 3) -> dict:
    """Bare vs traced campaign: bit-identity plus relative overhead."""
    from repro.faults.campaign import CampaignSpec

    spec = CampaignSpec.from_dict(GATE_SPEC)
    # Warm the process pool so neither side pays worker start-up.
    _timed_campaign(spec, workers, traced=False)

    bare_payload, bare_best = None, float("inf")
    traced_payload, traced_best = None, float("inf")
    for _ in range(repeats):
        payload, elapsed = _timed_campaign(spec, workers, traced=False)
        bare_payload, bare_best = payload, min(bare_best, elapsed)
        payload, elapsed = _timed_campaign(spec, workers, traced=True)
        traced_payload, traced_best = payload, min(traced_best, elapsed)

    return {
        "spec": dict(GATE_SPEC),
        "workers": workers,
        "repeats": repeats,
        "bare_s": bare_best,
        "traced_s": traced_best,
        "overhead": traced_best / bare_best - 1.0,
        "bit_identical": bare_payload == traced_payload,
    }


def run_bench(
    requests: int = 200,
    rate: float = 200.0,
    tenants: int = 3,
    workers: int = 2,
    repeats: int = 3,
) -> dict:
    loadtest = run_loadtest_bench(
        requests=requests, rate=rate, tenants=tenants
    )
    gate = run_tracing_gate(workers=workers, repeats=repeats)
    return {
        "seed": BENCH_SEED,
        "cpus": os.cpu_count() or 1,
        "loadtest": loadtest,
        "tracing_overhead": gate,
    }


def _report(record: dict, out_path: Path) -> None:
    loadtest = record["loadtest"]
    gate = record["tracing_overhead"]
    rows = [
        (
            f"open-loop mix x{loadtest['requests']}",
            f"{loadtest['wall_seconds'] * 1e3:.1f}",
            f"{loadtest['throughput_rps']:.1f}/s",
        ),
        (
            "attribution coverage",
            f"{loadtest.get('attribution_coverage', 0.0):.4f}",
            f"target 1±{COVERAGE_TOLERANCE}",
        ),
        (
            f"campaign bare (workers={gate['workers']})",
            f"{gate['bare_s'] * 1e3:.1f}",
            "",
        ),
        (
            "campaign traced",
            f"{gate['traced_s'] * 1e3:.1f}",
            "== bare" if gate["bit_identical"] else "MISMATCH",
        ),
    ]
    print(
        "\n"
        + format_table(
            ("Workload", "Wall (ms)", "Note"),
            rows,
            title=(
                f"Serving loadtest + tracing gate "
                f"(p99 {loadtest['latency']['p99_seconds'] * 1e3:.1f}ms, "
                f"overhead {gate['overhead'] * 100:+.1f}%)"
            ),
        )
    )
    merged = {}
    if out_path.exists():
        merged = json.loads(out_path.read_text(encoding="utf-8"))
    merged["serve_loadtest"] = record
    out_path.write_text(
        json.dumps(merged, indent=2) + "\n", encoding="utf-8"
    )
    print(f"wrote {out_path}")


def _floors_ok(record: dict) -> bool:
    """Correctness floors always hold; wall-clock gates need >= 2 CPUs."""
    loadtest = record["loadtest"]
    gate = record["tracing_overhead"]
    if loadtest["transport_errors"] or loadtest["server_errors"]:
        return False
    if not loadtest.get("clean_shutdown"):
        return False
    coverage = loadtest.get("attribution_coverage")
    if coverage is None or abs(coverage - 1.0) > COVERAGE_TOLERANCE:
        return False
    if not gate["bit_identical"]:
        return False
    if record["cpus"] < 2:
        return True
    return gate["overhead"] < OVERHEAD_CEILING


def test_loadtest_bench():
    record = run_bench(requests=120, rate=240.0, repeats=2)
    _report(record, DEFAULT_OUT)
    assert _floors_ok(record), record


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--requests", type=int, default=200)
    parser.add_argument("--rate", type=float, default=200.0)
    parser.add_argument("--tenants", type=int, default=3)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT)
    parser.add_argument(
        "--check",
        action="store_true",
        help=(
            "fail on any transport error or 5xx, attribution coverage "
            f"outside 1±{COVERAGE_TOLERANCE}, non-bit-identical traced "
            f"results, or (>= 2 CPUs) tracing overhead >= "
            f"{OVERHEAD_CEILING:.0%}"
        ),
    )
    args = parser.parse_args(argv)
    record = run_bench(
        requests=args.requests,
        rate=args.rate,
        tenants=args.tenants,
        workers=args.workers,
        repeats=args.repeats,
    )
    _report(record, args.out)
    if args.check:
        assert _floors_ok(record), record
    return 0


if __name__ == "__main__":
    sys.exit(main())
