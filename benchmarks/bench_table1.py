"""E1 — regenerate Table I: node processes and failure modes.

Paper reference: Table I (section III).  The regenerated table must list
all 20 regular processes with the paper's CP/DP quorum entries.
"""

from repro.controller.tables import render_table1

EXPECTED_ROWS = {
    ("Config", "config-api"): ("1 of 3", "0 of 3"),
    ("Config", "discovery"): ("1 of 3", "1 of 3"),
    ("Control", "control"): ("1 of 3", "1 of 3"),
    ("Control", "dns"): ("0 of 3", "1 of 3"),
    ("Control", "named"): ("0 of 3", "1 of 3"),
    ("Analytics", "redis"): ("1 of 3", "0 of 3"),
    ("Database", "cassandra-config"): ("2 of 3", "0 of 3"),
    ("Database", "zookeeper"): ("2 of 3", "0 of 3"),
    ("vRouter", "vrouter-agent"): ("0 of 1", "1 of 1"),
    ("vRouter", "vrouter-dpdk"): ("0 of 1", "1 of 1"),
}


def test_table1(benchmark, spec):
    text = benchmark(render_table1, spec)
    print("\n" + text)
    rows = {
        (role, name): (cp, dp) for role, name, cp, dp in spec.process_rows()
    }
    assert len(rows) == 20
    for key, expected in EXPECTED_ROWS.items():
        assert rows[key] == expected, key
