"""Tests for outage frequency/duration analysis (repro.analysis.frequency)."""

import pytest

from repro.analysis.frequency import (
    ComponentDynamics,
    cut_set_frequency,
    paper_rack_dynamics,
    system_outage_profile,
)
from repro.errors import ParameterError
from repro.units import HOURS_PER_YEAR


class TestComponentDynamics:
    def test_frequency_is_q_over_d(self):
        component = ComponentDynamics(
            unavailability=1e-4, mean_downtime_hours=2.0
        )
        assert component.failure_frequency_per_hour == pytest.approx(5e-5)

    def test_from_mtbf_roundtrip(self):
        component = ComponentDynamics.from_mtbf(1000.0, 10.0)
        assert component.unavailability == pytest.approx(10.0 / 1010.0)
        assert component.mtbf_hours == pytest.approx(1000.0)

    def test_paper_rack_decomposition(self):
        # "A_R = 0.99999 could consist of a rack failure every 500 years,
        # lasting two days."
        rack = paper_rack_dynamics()
        assert 1 - rack.unavailability == pytest.approx(0.99999, abs=2e-6)
        assert rack.mean_downtime_hours == 48.0
        # One failure every ~500 years.
        years_between = 1.0 / (
            rack.failure_frequency_per_hour * HOURS_PER_YEAR
        )
        assert years_between == pytest.approx(500.0, rel=0.01)

    def test_validation(self):
        with pytest.raises(ParameterError):
            ComponentDynamics(unavailability=1.0, mean_downtime_hours=1.0)
        with pytest.raises(ParameterError):
            ComponentDynamics(unavailability=0.5, mean_downtime_hours=0.0)


class TestCutSetFrequency:
    DYNAMICS = {
        "a": ComponentDynamics(1e-3, 1.0),
        "b": ComponentDynamics(1e-2, 10.0),
    }

    def test_singleton_cut_is_component_frequency(self):
        assert cut_set_frequency(["a"], self.DYNAMICS) == pytest.approx(
            self.DYNAMICS["a"].failure_frequency_per_hour
        )

    def test_pair_cut_formula(self):
        # w = q_a q_b (mu_a + mu_b).
        expected = 1e-3 * 1e-2 * (1.0 + 0.1)
        assert cut_set_frequency(["a", "b"], self.DYNAMICS) == pytest.approx(
            expected
        )

    def test_empty_cut_rejected(self):
        with pytest.raises(ParameterError):
            cut_set_frequency([], self.DYNAMICS)

    def test_missing_component_rejected(self):
        with pytest.raises(ParameterError):
            cut_set_frequency(["ghost"], self.DYNAMICS)


class TestSystemProfile:
    DYNAMICS = {
        "rack": paper_rack_dynamics(),
        "p1": ComponentDynamics(2e-4, 1.0),
        "p2": ComponentDynamics(2e-4, 1.0),
    }

    def test_series_system(self):
        profile = system_outage_profile([["rack"]], self.DYNAMICS)
        assert profile.mean_outage_hours == pytest.approx(48.0)
        assert profile.mean_years_between_outages == pytest.approx(
            500.0, rel=0.01
        )

    def test_mixture_duration(self):
        # Rack (rare, 48h) + process pair (frequent-ish, ~0.5h): the mean
        # outage duration is the frequency-weighted mixture, between the
        # two pure durations.
        profile = system_outage_profile(
            [["rack"], ["p1", "p2"]], self.DYNAMICS
        )
        pair_duration = 1.0 / (1.0 + 1.0)
        assert pair_duration < profile.mean_outage_hours < 48.0

    def test_downtime_consistency(self):
        # U = frequency x duration (exactly, by construction).
        profile = system_outage_profile(
            [["rack"], ["p1", "p2"]], self.DYNAMICS
        )
        assert profile.unavailability == pytest.approx(
            profile.frequency_per_hour * profile.mean_outage_hours
        )

    def test_single_markov_consistency(self):
        # For a single component the cut-set frequency matches the CTMC
        # cycle frequency lam * pi_up.
        component = ComponentDynamics.from_mtbf(100.0, 1.0)
        profile = system_outage_profile([["c"]], {"c": component})
        lam = 1.0 / 100.0
        pi_up = 100.0 / 101.0
        assert profile.frequency_per_hour == pytest.approx(lam * pi_up)
