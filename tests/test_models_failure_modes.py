"""Tests for dominant failure-mode identification — the section VI-G claims."""

import pytest

from repro.controller.spec import Plane
from repro.models.failure_modes import (
    build_plane_structure,
    dominant_failure_modes,
)
from repro.params.software import RestartScenario

S1 = RestartScenario.NOT_REQUIRED
S2 = RestartScenario.REQUIRED


def process_modes(modes):
    """Keep only process/supervisor cut sets (drop infrastructure cuts)."""
    return [
        m
        for m in modes
        if all(c.startswith(("proc:", "sup:", "local:")) for c in m.components)
    ]


class TestStructureConsistency:
    def test_structure_availability_matches_closed_form(
        self, spec, hardware, software, large
    ):
        # The enumerated structure function and the closed-form model are
        # two routes to the same number.  Full enumeration over all ~45
        # components is infeasible, so check through cut sets instead: the
        # union bound on order<=2 cut sets must bracket the closed-form
        # unavailability from above within the order-3 correction.
        from repro.core.cutsets import minimal_cut_sets, rank_cut_sets, union_bound
        from repro.models.sw import cp_availability

        built = build_plane_structure(
            spec, large, hardware, software, S1, Plane.CP
        )
        cuts = minimal_cut_sets(built.structure, max_order=2)
        ranked = rank_cut_sets(cuts, built.unavailability)
        bound = union_bound(ranked)
        closed = 1 - cp_availability(spec, "large", hardware, software, S1)
        assert bound == pytest.approx(closed, rel=0.05)
        assert bound >= closed * 0.9

    def test_system_up_at_full_health(self, spec, hardware, software, small):
        built = build_plane_structure(
            spec, small, hardware, software, S2, Plane.CP
        )
        assert built.structure({name: True for name in built.structure.names})


class TestSectionVIGClaims:
    def test_1s_dominant_mode_is_database_process_pair(
        self, spec, hardware, software, large
    ):
        # "When supervisor is not required, the dominant failure mode is:
        # two failures of the same Database process in different nodes."
        modes = process_modes(
            dominant_failure_modes(
                spec, large, hardware, software, S1, Plane.CP, top=40
            )
        )
        top = modes[0]
        names = sorted(top.components)
        assert len(names) == 2
        assert all(name.startswith("proc:Database/") for name in names)
        process_names = {name.split("/")[1].rsplit("-", 1)[0] for name in names}
        assert len(process_names) == 1  # the same Database process

    def test_2s_dominant_mode_involves_database_supervisor(
        self, spec, hardware, software, large
    ):
        # "When supervisor is required, the dominant failure mode is: one
        # Database supervisor failure and any Database process failure in
        # another node."
        modes = process_modes(
            dominant_failure_modes(
                spec, large, hardware, software, S2, Plane.CP, top=60
            )
        )
        top = modes[0]
        kinds = {c.split(":")[0] for c in top.components}
        assert "sup" in kinds or all(
            c.startswith("proc:Database/") for c in top.components
        )
        # Supervisor+process pairs tie with process pairs at (1-A_S)^2;
        # verify a Database supervisor cut appears among the top modes.
        assert any(
            any(c.startswith("sup:Database-") for c in mode.components)
            for mode in modes[:20]
        )

    def test_dp_scenario2_dominant_mode_is_any_supervisor(
        self, spec, hardware, software, small
    ):
        # "When the supervisor process is required, the dominant failure
        # mode is failure of any supervisor" — the local vRouter supervisor
        # is an order-1 cut.
        modes = process_modes(
            dominant_failure_modes(
                spec, small, hardware, software, S2, Plane.DP, top=10
            )
        )
        assert modes[0].components == frozenset({"local:supervisor"})
        assert modes[0].order == 1

    def test_dp_scenario1_dominant_mode_is_vrouter_process(
        self, spec, hardware, software, small
    ):
        # "When the supervisor process is not required, the dominant
        # failure mode is failure of either vRouter process."
        modes = process_modes(
            dominant_failure_modes(
                spec, small, hardware, software, S1, Plane.DP, top=10
            )
        )
        assert modes[0].order == 1
        assert modes[0].components in (
            frozenset({"local:vrouter-agent"}),
            frozenset({"local:vrouter-dpdk"}),
        )

    def test_small_rack_is_order_one_cut(
        self, spec, hardware, software, small
    ):
        modes = dominant_failure_modes(
            spec, small, hardware, software, S1, Plane.CP, top=5
        )
        assert modes[0].components == frozenset({"rack:R1"})

    def test_large_has_no_order_one_infrastructure_cut(
        self, spec, hardware, software, large
    ):
        modes = dominant_failure_modes(
            spec, large, hardware, software, S1, Plane.CP, top=100
        )
        assert all(m.order >= 2 for m in modes)
