"""Regenerate the golden-file regression fixtures.

Run from the repository root::

    PYTHONPATH=src python -m tests.regen_golden

The goldens pin the paper's headline numbers — the Small/Medium/Large
HW-centric availabilities with downtime minutes per year (Fig. 3 anchors,
Eqs. 3, 6, 8) and the four SW-centric options' CP/SDP/LDP/DP values with
downtimes (Eqs. 9-15) — exactly as the current model code computes them.
``tests/test_golden.py`` diffs live results against these files at 1e-12
relative tolerance, so *any* numerical drift in a refactor of the model
stack fails loudly.

Regenerate (and commit the diff) only when a change is *supposed* to move
the numbers, and say why in the commit message.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.controller.opencontrail import opencontrail_3x
from repro.models.hw_closed import hw_large, hw_medium, hw_small
from repro.models.sw_options import PAPER_OPTIONS, evaluate_option
from repro.params.defaults import PAPER_HARDWARE, PAPER_SOFTWARE
from repro.units import downtime_minutes_per_year

GOLDEN_DIR = Path(__file__).resolve().parent / "golden"

HW_MODELS = {"small": hw_small, "medium": hw_medium, "large": hw_large}


def hw_reference_record() -> dict:
    """Section V headline numbers at the paper's hardware defaults."""
    topologies = {}
    for name, model in HW_MODELS.items():
        availability = model(PAPER_HARDWARE)
        topologies[name] = {
            "availability": availability,
            "downtime_minutes_per_year": downtime_minutes_per_year(
                availability
            ),
        }
    return {
        "description": (
            "HW-centric controller availabilities (Eqs. 3, 6, 8) at the "
            "paper's hardware defaults"
        ),
        "hardware": {
            "a_role": PAPER_HARDWARE.a_role,
            "a_vm": PAPER_HARDWARE.a_vm,
            "a_host": PAPER_HARDWARE.a_host,
            "a_rack": PAPER_HARDWARE.a_rack,
        },
        "topologies": topologies,
    }


def sw_options_record() -> dict:
    """Section VI per-option plane values (Eqs. 9-15) at the defaults."""
    spec = opencontrail_3x()
    options = {}
    for option in PAPER_OPTIONS:
        result = evaluate_option(spec, option, PAPER_HARDWARE, PAPER_SOFTWARE)
        options[option] = {
            "cp": result.cp,
            "shared_dp": result.shared_dp,
            "local_dp": result.local_dp,
            "dp": result.dp,
            "cp_downtime_minutes": result.cp_downtime_minutes,
            "dp_downtime_minutes": result.dp_downtime_minutes,
        }
    return {
        "description": (
            "SW-centric option results (Eqs. 9-15) for the OpenContrail "
            "3.x profile at the paper's defaults"
        ),
        "options": options,
    }


GOLDEN_RECORDS = {
    "hw_reference.json": hw_reference_record,
    "sw_options.json": sw_options_record,
}


def regenerate(directory: Path = GOLDEN_DIR) -> list[Path]:
    """Write every golden file; returns the paths written."""
    directory.mkdir(parents=True, exist_ok=True)
    written = []
    for filename, build in GOLDEN_RECORDS.items():
        target = directory / filename
        target.write_text(
            json.dumps(build(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        written.append(target)
    return written


def main(argv: list[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out",
        type=Path,
        default=GOLDEN_DIR,
        help="directory to write the goldens into (default: tests/golden)",
    )
    args = parser.parse_args(argv)
    for path in regenerate(args.out):
        print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
