"""Sum-of-disjoint-products kernel against brute-force ground truth.

The SDP expression must be *exactly* the system-up probability for any
monotone union of path sets, so the wall here is brute-force state
enumeration over random path-set collections (hypothesis), plus the
structural invariants the disjointing is supposed to guarantee: pairwise
disjoint terms, canonical shortest-first ordering, superset elimination,
memoized compiles, and the textbook bridge-network expansion.
"""

from __future__ import annotations

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.sdp import (
    SdpTerm,
    canonical_path_sets,
    compile_sdp,
    sdp_terms,
)
from repro.errors import ModelError

TOL = 1e-12

ELEMENTS = tuple(f"e{i}" for i in range(7))


@st.composite
def path_collections(draw):
    """1-6 random non-empty path sets over up to 7 named elements."""
    universe = draw(st.integers(min_value=2, max_value=len(ELEMENTS)))
    names = ELEMENTS[:universe]
    count = draw(st.integers(min_value=1, max_value=6))
    paths = [
        frozenset(
            draw(
                st.sets(
                    st.sampled_from(names), min_size=1, max_size=universe
                )
            )
        )
        for _ in range(count)
    ]
    probabilities = {
        name: draw(
            st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
        )
        for name in names
    }
    return names, paths, probabilities


def brute_force_availability(names, paths, probabilities) -> float:
    total = 0.0
    for bits in itertools.product((False, True), repeat=len(names)):
        state = dict(zip(names, bits))
        if not any(all(state[e] for e in path) for path in paths):
            continue
        weight = 1.0
        for name in names:
            weight *= probabilities[name] if state[name] else (
                1.0 - probabilities[name]
            )
        total += weight
    return total


class TestAgainstBruteForce:
    @given(collection=path_collections())
    @settings(max_examples=150, deadline=None)
    def test_availability_matches_state_enumeration(self, collection):
        names, paths, probabilities = collection
        expression = compile_sdp(paths)
        expected = brute_force_availability(names, paths, probabilities)
        assert expression.availability(probabilities) == pytest.approx(
            expected, abs=TOL
        )

    @given(collection=path_collections())
    @settings(max_examples=80, deadline=None)
    def test_terms_are_pairwise_disjoint(self, collection):
        _, paths, _ = collection
        expression = compile_sdp(paths)
        for a, b in itertools.combinations(expression.terms, 2):
            # Two terms are disjoint iff one requires up what the other
            # requires down.
            assert (a.up & b.down) or (b.up & a.down), (a, b)

    @given(collection=path_collections())
    @settings(max_examples=50, deadline=None)
    def test_unavailability_is_complement(self, collection):
        _, paths, probabilities = collection
        expression = compile_sdp(paths)
        assert expression.unavailability(probabilities) == pytest.approx(
            1.0 - expression.availability(probabilities), abs=TOL
        )


class TestBridgeNetwork:
    """The classic 5-element bridge: the standard SDP worked example."""

    PATHS = (
        frozenset({"L1", "L4"}),
        frozenset({"L2", "L5"}),
        frozenset({"L1", "L3", "L5"}),
        frozenset({"L2", "L3", "L4"}),
    )

    def test_reliability_at_uniform_point_nine(self):
        expression = compile_sdp(self.PATHS)
        probabilities = {f"L{i}": 0.9 for i in range(1, 6)}
        assert expression.availability(probabilities) == pytest.approx(
            0.97848, abs=1e-12
        )

    def test_abraham_expansion_has_five_terms(self):
        assert compile_sdp(self.PATHS).term_count == 5


class TestCanonicalization:
    def test_supersets_and_duplicates_dropped(self):
        paths = canonical_path_sets(
            [
                {"a", "b"},
                {"a", "b"},
                {"a", "b", "c"},
                {"c", "d"},
            ]
        )
        assert paths == (frozenset({"a", "b"}), frozenset({"c", "d"}))

    def test_shortest_first_with_lexicographic_ties(self):
        paths = canonical_path_sets([{"z"}, {"b", "c"}, {"a"}])
        assert paths == (
            frozenset({"a"}),
            frozenset({"z"}),
            frozenset({"b", "c"}),
        )

    def test_compile_is_memoized_on_canonical_paths(self):
        first = compile_sdp([{"x", "y"}, {"y", "z"}])
        second = compile_sdp([{"y", "z"}, {"x", "y"}])
        assert first.terms is second.terms
        assert sdp_terms.cache_info().hits >= 1


class TestDegenerateInputs:
    def test_no_paths_is_always_down(self):
        expression = compile_sdp([])
        assert expression.term_count == 0
        assert expression.availability({}) == 0.0
        assert expression.unavailability({}) == 1.0

    def test_empty_path_set_rejected(self):
        with pytest.raises(ModelError, match="empty path set"):
            compile_sdp([frozenset()])

    def test_missing_probability_rejected(self):
        expression = compile_sdp([{"a", "b"}])
        with pytest.raises(ModelError, match="missing probability"):
            expression.availability({"a": 0.9})

    def test_single_path_is_plain_product(self):
        expression = compile_sdp([{"a", "b"}])
        assert expression.terms == (
            SdpTerm(up=frozenset({"a", "b"}), down=frozenset()),
        )
        assert expression.availability({"a": 0.5, "b": 0.5}) == (
            pytest.approx(0.25, abs=TOL)
        )
