"""Tests for deployment topologies (repro.topology.deployment)."""

import pytest

from repro.errors import TopologyError
from repro.topology.deployment import DeploymentTopology
from repro.topology.elements import Host, Rack, RoleInstance, Vm


def tiny():
    return DeploymentTopology(
        "Tiny",
        racks=(Rack("R1"),),
        hosts=(Host("H1", "R1"), Host("H2", "R1")),
        vms=(Vm("V1", "H1"), Vm("V2", "H2")),
        instances=(
            RoleInstance("A", 1, "V1"),
            RoleInstance("A", 2, "V2"),
            RoleInstance("B", 1, "V1"),
        ),
    )


class TestValidation:
    def test_unknown_rack_rejected(self):
        with pytest.raises(TopologyError):
            DeploymentTopology(
                "X", (Rack("R1"),), (Host("H1", "R9"),), (), ()
            )

    def test_unknown_host_rejected(self):
        with pytest.raises(TopologyError):
            DeploymentTopology(
                "X", (Rack("R1"),), (Host("H1", "R1"),), (Vm("V1", "H9"),), ()
            )

    def test_unknown_vm_rejected(self):
        with pytest.raises(TopologyError):
            DeploymentTopology(
                "X",
                (Rack("R1"),),
                (Host("H1", "R1"),),
                (Vm("V1", "H1"),),
                (RoleInstance("A", 1, "V9"),),
            )

    def test_duplicate_placement_rejected(self):
        with pytest.raises(TopologyError):
            DeploymentTopology(
                "X",
                (Rack("R1"),),
                (Host("H1", "R1"),),
                (Vm("V1", "H1"),),
                (RoleInstance("A", 1, "V1"), RoleInstance("A", 1, "V1")),
            )

    def test_name_reuse_across_levels_rejected(self):
        with pytest.raises(TopologyError):
            DeploymentTopology(
                "X",
                (Rack("R1"),),
                (Host("R1", "R1"),),
                (),
                (),
            )


class TestQueries:
    def test_support_chain(self):
        topo = tiny()
        chain = topo.support_chain(topo.instances_of("B")[0])
        assert chain == ("R1", "H1", "V1")

    def test_role_names_in_order(self):
        assert tiny().role_names() == ("A", "B")

    def test_instances_sorted_by_index(self):
        instances = tiny().instances_of("A")
        assert [i.index for i in instances] == [1, 2]

    def test_unplaced_role_rejected(self):
        with pytest.raises(TopologyError):
            tiny().instances_of("Z")

    def test_replica_count(self):
        assert tiny().replica_count("A") == 2
        assert tiny().replica_count("B") == 1

    def test_parent_and_level(self):
        topo = tiny()
        assert topo.parent_of("V1") == "H1"
        assert topo.parent_of("H1") == "R1"
        assert topo.parent_of("R1") is None
        assert topo.level_of("V1") == "vm"
        with pytest.raises(TopologyError):
            topo.parent_of("nope")


class TestSharing:
    def test_shared_elements(self):
        topo = tiny()
        shared = topo.shared_elements()
        # R1 supports 3 instances; H1/V1 support 2 (A-1 and B-1); H2/V2
        # support only A-2 and are private.
        assert "R1" in shared
        assert "H1" in shared and "V1" in shared
        assert "H2" not in shared and "V2" not in shared

    def test_shared_is_hierarchy_ordered(self):
        shared = tiny().shared_elements()
        assert shared.index("R1") < shared.index("H1") < shared.index("V1")

    def test_sharing_is_upward_closed(self, small, medium, large):
        for topo in (small, medium, large):
            shared = set(topo.shared_elements())
            for element in shared:
                parent = topo.parent_of(element)
                if parent is not None:
                    assert parent in shared

    def test_summary_mentions_counts(self):
        text = tiny().summary()
        assert "1 rack(s)" in text and "2 host(s)" in text
