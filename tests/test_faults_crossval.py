"""Campaign-versus-analytic cross-validation (:mod:`repro.faults.crossval`).

The load-bearing invariant of the fault subsystem: a *degenerate* campaign
(beta = 0, no maintenance, unlimited crews) is exactly the independent
model, so its measured availabilities must reproduce the analytic
prediction within Monte-Carlo error — asserted here for options 1S and 2L.
On top of that, hazards must move availability the right way: beta > 0
strictly lowers CP, one repair crew never beats unlimited crews, and
deterministic maintenance windows are predicted exactly by the engine
mixture.

Statistical notes baked into the parameters below: at 4-6 replications the
across-replication 95% CI is optimistic for heavy-tailed CP outages, so
acceptance uses ``widen=1.5``; the chosen (option, horizon, replications,
seed) combinations were verified to agree with margin, and a 24-replication
run confirms there is no systematic sim-vs-analytic bias.  The beta
contrast uses common cause over the Control *and* Database roles — process
repairs are slow (manual restart), so the effect (~0.03-0.06 in A_CP)
dwarfs replication noise for every seed.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CampaignError, ModelError
from repro.faults import (
    CampaignSpec,
    CommonCauseSpec,
    MaintenanceSpec,
    analytic_for_campaign,
    evaluate_campaign,
    run_campaign,
)
from repro.models.engine import (
    evaluate_topology,
    evaluate_topology_weighted,
)
from repro.models.sw import plane_requirements
from repro.controller.spec import Plane
from repro.params.software import RestartScenario

PLANES = ("cp", "sdp", "ldp", "dp")


def _control_database_ccf(beta: float) -> tuple[CommonCauseSpec, ...]:
    """Common cause over the roles with the slowest (manual) repairs."""
    return (
        CommonCauseSpec("role:Control", beta),
        CommonCauseSpec("role:Database", beta),
    )


class TestDegenerateInvariant:
    """beta=0 + unlimited crews + no maintenance == the independent model."""

    @pytest.mark.slow
    def test_option_1s(self):
        spec = CampaignSpec(
            option="1S", horizon_hours=6000.0, replications=5, seed=3,
        )
        crossval = evaluate_campaign(spec)
        for plane in PLANES:
            assert crossval.within_interval(plane, widen=1.5), (
                plane, crossval.simulated(plane), crossval.analytic[plane],
            )
        # Degenerate: nothing was ever injected.
        assert crossval.result.total_injections() == 0
        assert crossval.result.total_queued == 0

    @pytest.mark.slow
    def test_option_2l(self):
        spec = CampaignSpec(
            option="2L", horizon_hours=4000.0, replications=4, seed=7,
        )
        crossval = evaluate_campaign(spec)
        for plane in PLANES:
            assert crossval.within_interval(plane, widen=1.5), (
                plane, crossval.simulated(plane), crossval.analytic[plane],
            )

    @pytest.mark.slow
    def test_explicit_beta_zero_hazard_matches_too(self):
        """A written-out beta=0 hazard is the same degenerate campaign."""
        base = CampaignSpec(
            option="1S", horizon_hours=2500.0, replications=3, seed=3,
        )
        plain = run_campaign(base)
        zeroed = run_campaign(
            base.with_beta(0.0, "role:Control")
        )
        for plane in PLANES:
            assert zeroed.availability(plane) == plain.availability(plane)


class TestHazardDirections:
    @pytest.mark.slow
    def test_beta_strictly_lowers_cp(self):
        base = CampaignSpec(
            option="1S", horizon_hours=2500.0, replications=3, seed=1,
        )
        hazarded = evaluate_campaign(
            CampaignSpec(
                option="1S", horizon_hours=2500.0, replications=3, seed=1,
                hazards=_control_database_ccf(0.5),
            )
        )
        baseline = run_campaign(base)
        assert hazarded.simulated("cp") < baseline.availability("cp")
        # The analytic side deliberately ignores correlation, so the gap
        # is negative: correlated failures hurt more than independence says.
        assert hazarded.gap("cp") < 0.0
        assert hazarded.result.total_injections("common_cause") > 0

    @pytest.mark.slow
    @settings(deadline=None, derandomize=True, max_examples=5)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        beta=st.floats(min_value=0.35, max_value=0.8),
    )
    def test_beta_monotonicity_over_seeds(self, seed, beta):
        """For any seed, common cause on slow-repair roles lowers A_CP."""
        base = CampaignSpec(
            option="1S", horizon_hours=2500.0, replications=3, seed=seed,
        )
        baseline = run_campaign(base)
        hazarded = run_campaign(
            CampaignSpec(
                option="1S", horizon_hours=2500.0, replications=3, seed=seed,
                hazards=_control_database_ccf(beta),
            )
        )
        assert hazarded.availability("cp") < baseline.availability("cp")

    @pytest.mark.slow
    def test_single_crew_never_beats_unlimited(self):
        for seed in (1, 2, 3):
            base = CampaignSpec(
                option="1S", horizon_hours=2000.0, replications=2, seed=seed,
            )
            unlimited = run_campaign(base)
            starved = run_campaign(
                CampaignSpec(
                    option="1S", horizon_hours=2000.0, replications=2,
                    seed=seed, repair_crews=1,
                )
            )
            for plane in PLANES:
                assert (
                    starved.availability(plane)
                    <= unlimited.availability(plane)
                ), (seed, plane)
            assert starved.total_queued > 0
            assert starved.max_queue_depth > 0
            assert unlimited.total_queued == 0


class TestMaintenanceAnalytic:
    MAINTENANCE = MaintenanceSpec(
        "host:H2", start_hours=100.0, period_hours=500.0, duration_hours=25.0,
    )

    def test_analytic_accounts_for_duty_cycle(self):
        plain = analytic_for_campaign(CampaignSpec(option="1S"))
        maintained = analytic_for_campaign(
            CampaignSpec(option="1S", hazards=(self.MAINTENANCE,))
        )
        assert maintained["cp"] < plain["cp"]
        assert maintained["sdp"] < plain["sdp"]
        # Local DP rides on the off-rack compute node: untouched.
        assert maintained["ldp"] == plain["ldp"]
        assert maintained["dp"] == pytest.approx(
            maintained["sdp"] * maintained["ldp"]
        )

    def test_stochastic_hazards_have_no_analytic_counterpart(self):
        plain = analytic_for_campaign(CampaignSpec(option="1S"))
        hazarded = analytic_for_campaign(
            CampaignSpec(option="1S", hazards=_control_database_ccf(0.5))
        )
        assert hazarded == plain

    def test_non_infrastructure_target_rejected(self):
        spec = CampaignSpec(
            option="1S",
            hazards=(
                MaintenanceSpec(
                    "role:Config", start_hours=100.0,
                    period_hours=500.0, duration_hours=25.0,
                ),
            ),
        )
        with pytest.raises(CampaignError, match="infrastructure"):
            analytic_for_campaign(spec)

    @pytest.mark.slow
    def test_simulated_maintenance_matches_engine_mixture(self):
        spec = CampaignSpec(
            option="1S", horizon_hours=6000.0, replications=5, seed=3,
            hazards=(self.MAINTENANCE,),
        )
        crossval = evaluate_campaign(spec)
        assert crossval.result.total_injections("maintenance") > 0
        for plane in PLANES:
            assert crossval.within_interval(plane, widen=1.5), (
                plane, crossval.simulated(plane), crossval.analytic[plane],
            )


class TestWeightedEngine:
    def _requirements(self, spec, software):
        return plane_requirements(
            spec, Plane.CP, software, RestartScenario.REQUIRED
        )

    def test_mixture_equals_manual_combination(self, spec, small, software):
        requirements = self._requirements(spec, software)
        up = {"rack": 0.999, "host": 0.998, "vm": 0.998}
        down = dict(up, H2=0.0)
        weighted = evaluate_topology_weighted(
            small, requirements, [(0.95, up), (0.05, down)]
        )
        manual = (
            0.95 * evaluate_topology(small, requirements, up)
            + 0.05 * evaluate_topology(small, requirements, down)
        )
        assert weighted == pytest.approx(manual, abs=1e-12)

    def test_single_regime_is_plain_evaluation(self, spec, small, software):
        requirements = self._requirements(spec, software)
        availability = {"rack": 0.999, "host": 0.998, "vm": 0.998}
        assert evaluate_topology_weighted(
            small, requirements, [(1.0, availability)]
        ) == evaluate_topology(small, requirements, availability)

    def test_weights_must_sum_to_one(self, spec, small, software):
        requirements = self._requirements(spec, software)
        availability = {"rack": 0.999, "host": 0.998, "vm": 0.998}
        with pytest.raises(ModelError):
            evaluate_topology_weighted(
                small, requirements, [(0.5, availability)]
            )

    def test_negative_weight_rejected(self, spec, small, software):
        requirements = self._requirements(spec, software)
        availability = {"rack": 0.999, "host": 0.998, "vm": 0.998}
        with pytest.raises(ModelError):
            evaluate_topology_weighted(
                small,
                requirements,
                [(1.5, availability), (-0.5, availability)],
            )


class TestCrossValidationAccessors:
    @pytest.mark.slow
    def test_gap_and_ratio_are_consistent(self):
        crossval = evaluate_campaign(
            CampaignSpec(
                option="1S", horizon_hours=1500.0, replications=2, seed=5,
            )
        )
        for plane in PLANES:
            simulated = crossval.simulated(plane)
            analytic = crossval.analytic[plane]
            assert crossval.gap(plane) == pytest.approx(simulated - analytic)
            assert crossval.unavailability_ratio(plane) == pytest.approx(
                (1.0 - simulated) / (1.0 - analytic)
            )

    @pytest.mark.slow
    def test_reuses_precomputed_result(self):
        spec = CampaignSpec(
            option="1S", horizon_hours=1000.0, replications=2, seed=5,
        )
        result = run_campaign(spec)
        crossval = evaluate_campaign(spec, result=result)
        assert crossval.result is result
