"""Tests for software parameters and the section VI.A analysis."""

import pytest

from repro.controller.process import RestartMode
from repro.errors import ParameterError
from repro.params.software import RestartScenario, SoftwareParams


class TestDerivedAvailabilities:
    def test_paper_values(self, software):
        # "A = 0.99998 (based on F = 5000 hours and R = 0.1 hour) and
        #  A_S = 0.99980 (based on R_S = 1 hour)".
        assert software.a_process == pytest.approx(0.99998, abs=1e-6)
        assert software.a_unsupervised == pytest.approx(0.9998, abs=1e-5)

    def test_availability_by_restart_mode(self, software):
        assert software.availability(RestartMode.AUTO) == software.a_process
        assert (
            software.availability(RestartMode.MANUAL)
            == software.a_unsupervised
        )

    def test_availability_map(self, software):
        amap = software.availability_map()
        assert amap[RestartMode.AUTO] == software.a_process
        assert amap[RestartMode.MANUAL] == software.a_unsupervised

    def test_validation(self):
        with pytest.raises(ParameterError):
            SoftwareParams(mtbf_hours=0)
        with pytest.raises(ParameterError):
            SoftwareParams(auto_restart_hours=-1)


class TestSectionVIA:
    """The paper's scenario walkthrough numbers."""

    def test_scenario1_restart_time(self, software):
        # R* = e^{-10/F} R + (1 - e^{-10/F}) R_S = 0.102 hours.
        r_star = software.effective_restart_hours(
            RestartScenario.NOT_REQUIRED
        )
        assert r_star == pytest.approx(0.102, abs=0.001)

    def test_scenario1_availability_unchanged(self, software):
        # "A* = F/(F+R*) ~= 0.99998 ... not measurably impacted".
        a_star = software.effective_availability(RestartScenario.NOT_REQUIRED)
        assert a_star == pytest.approx(0.99998, abs=1e-6)

    def test_scenario2_halves_mtbf(self, software):
        # F* = F/2 = 2500 hours.
        assert software.effective_mtbf_hours(
            RestartScenario.REQUIRED
        ) == pytest.approx(2500.0)

    def test_scenario2_restart_time(self, software):
        # R* = (R_S + R)/2 = 0.55 hours.
        assert software.effective_restart_hours(
            RestartScenario.REQUIRED
        ) == pytest.approx(0.55)

    def test_scenario2_inherits_supervisor_availability(self, software):
        # "A* = F*/(F*+R*) ~= 0.9998".
        a_star = software.effective_availability(RestartScenario.REQUIRED)
        assert a_star == pytest.approx(0.9998, abs=3e-5)

    def test_scenario1_mtbf_unchanged(self, software):
        assert (
            software.effective_mtbf_hours(RestartScenario.NOT_REQUIRED)
            == software.mtbf_hours
        )


class TestScaling:
    def test_lock_step_scaling(self, software):
        scaled = software.scaled(-1.0)
        # "x = -1 corresponds to A = 0.9998 and A_S = 0.998".
        assert scaled.a_process == pytest.approx(0.9998)
        assert scaled.a_unsupervised == pytest.approx(0.998)

    def test_positive_scaling(self, software):
        scaled = software.scaled(1.0)
        assert scaled.a_process == pytest.approx(0.999998)
        assert scaled.a_unsupervised == pytest.approx(0.99998)

    def test_zero_scaling_is_identity(self, software):
        scaled = software.scaled(0.0)
        assert scaled.a_process == pytest.approx(software.a_process)
        assert scaled.a_unsupervised == pytest.approx(
            software.a_unsupervised
        )

    def test_mtbf_preserved(self, software):
        assert software.scaled(-0.5).mtbf_hours == software.mtbf_hours


class TestFromAvailabilities:
    def test_roundtrip(self):
        params = SoftwareParams.from_availabilities(0.995, 0.95, 100.0)
        assert params.a_process == pytest.approx(0.995)
        assert params.a_unsupervised == pytest.approx(0.95)

    def test_rejects_extremes(self):
        with pytest.raises(ParameterError):
            SoftwareParams.from_availabilities(1.0, 0.9)
        with pytest.raises(ParameterError):
            SoftwareParams.from_availabilities(0.9, 0.0)
