"""Live telemetry fan-out for the server-sent-events endpoints.

:class:`TelemetryHub` is a telemetry *sink* (attached to the active
:class:`~repro.obs.telemetry.TelemetryBus` with ``add_sink``) that fans
events out to in-process subscribers — one per open SSE connection.  The
bus emits from whatever thread the instrumented code runs on (the event
loop, job threads, warm-pool result merging), so the hub hops every event
onto the serving loop with ``call_soon_threadsafe`` before touching any
subscriber queue; subscribers are plain ``asyncio.Queue`` consumers that
never need locks.

Two delivery guarantees matter for the endpoints built on top:

* **Ordering** — events reach every subscriber in bus order: ``emit`` is
  called under the bus lock (one thread at a time) and
  ``call_soon_threadsafe`` preserves call order, so the ``(run, seq)``
  sequence a subscriber observes is exactly the JSONL sink's line order.
* **Replay** — the hub keeps a bounded ring of recent events; subscribing
  atomically snapshots the matching buffered history *and* registers for
  live delivery under one lock, so a client that connects after a job
  started sees every buffered event exactly once, with no gap and no
  duplicate at the splice point.

A slow client does not stall the bus: each subscription's queue is
bounded, and on overflow the oldest queued event is dropped and counted
(``Subscription.dropped``) — backpressure turns into measured loss, never
into blocking the emitting thread.

:func:`encode_sse_event` renders one event as a ``text/event-stream``
frame whose ``data:`` line is byte-identical to the event's
:class:`~repro.obs.telemetry.JsonlSink` line (same ``json.dumps``
canonicalization), which is what lets the tests assert SSE streams and
JSONL files carry the very same bytes.
"""

from __future__ import annotations

import asyncio
import json
import threading
from collections import deque
from typing import Any, Callable, Mapping

__all__ = [
    "DEFAULT_BUFFER_EVENTS",
    "DEFAULT_QUEUE_EVENTS",
    "STREAM_CLOSED",
    "Subscription",
    "TelemetryHub",
    "encode_sse_event",
]

#: Default replay-ring capacity (recent events kept for late subscribers).
DEFAULT_BUFFER_EVENTS = 4096

#: Default per-subscription queue bound (events pending delivery to one
#: SSE connection before the oldest is dropped).
DEFAULT_QUEUE_EVENTS = 1024

#: Sentinel pushed to every subscriber when the hub closes — ends live
#: streams at server shutdown.
STREAM_CLOSED = object()


def encode_sse_event(event: Mapping[str, Any]) -> bytes:
    """One telemetry event as a ``text/event-stream`` frame.

    The ``data:`` line uses the exact canonical JSON encoding of
    :class:`~repro.obs.telemetry.JsonlSink`, so an SSE stream is
    byte-equivalent (modulo framing) to the JSONL record of the same run;
    ``id:`` carries the ``(run, seq)`` total order and ``event:`` the
    kind, for standard ``EventSource`` consumers.
    """
    data = json.dumps(event, sort_keys=True, separators=(",", ":"))
    frame = (
        f"id: {event.get('run', 0)}-{event.get('seq', 0)}\n"
        f"event: {event.get('kind', 'message')}\n"
        f"data: {data}\n\n"
    )
    return frame.encode("utf-8")


class Subscription:
    """One subscriber's view of the hub: replayed history + a live queue."""

    def __init__(
        self,
        hub: "TelemetryHub",
        predicate: Callable[[Mapping[str, Any]], bool] | None,
        replayed: list[dict[str, Any]],
        max_queue: int,
    ):
        self._hub = hub
        self._predicate = predicate
        #: Buffered events that matched at subscribe time, oldest first.
        self.replayed = replayed
        self._queue: asyncio.Queue[Any] = asyncio.Queue()
        self._max_queue = max_queue
        self.dropped = 0
        self.closed = False

    def _offer(self, event: Any) -> None:
        """Enqueue one event (loop thread only; called by the hub)."""
        if self.closed:
            return
        if event is not STREAM_CLOSED and self._predicate is not None:
            if not self._predicate(event):
                return
        while self._queue.qsize() >= self._max_queue:
            try:
                stale = self._queue.get_nowait()
            except asyncio.QueueEmpty:  # pragma: no cover - size just checked
                break
            if stale is STREAM_CLOSED:
                self._queue.put_nowait(stale)  # never drop the sentinel
                break
            self.dropped += 1
        self._queue.put_nowait(event)

    async def get(self, timeout: float | None = None) -> Any:
        """Next live event, :data:`STREAM_CLOSED`, or ``None`` on timeout."""
        if timeout is None:
            return await self._queue.get()
        try:
            return await asyncio.wait_for(self._queue.get(), timeout)
        except asyncio.TimeoutError:
            return None

    def unsubscribe(self) -> None:
        """Detach from the hub (idempotent)."""
        self.closed = True
        self._hub._remove(self)


class TelemetryHub:
    """Bus sink fanning telemetry events out to SSE subscribers."""

    def __init__(
        self,
        loop: asyncio.AbstractEventLoop | None = None,
        buffer_events: int = DEFAULT_BUFFER_EVENTS,
        max_queue_events: int = DEFAULT_QUEUE_EVENTS,
    ):
        self._loop = loop or asyncio.get_event_loop()
        self._lock = threading.Lock()
        self._buffer: deque[dict[str, Any]] = deque(maxlen=buffer_events)
        self._subscriptions: list[Subscription] = []
        self._max_queue_events = max_queue_events
        self._closed = False
        self.events_seen = 0

    # -- bus sink protocol ---------------------------------------------------

    def emit(self, event: Mapping[str, Any]) -> None:
        """Record and fan out one event (any thread; bus sink protocol)."""
        record = dict(event)
        with self._lock:
            if self._closed:
                return
            self._buffer.append(record)
            self.events_seen += 1
            targets = tuple(self._subscriptions)
        if targets:
            self._loop.call_soon_threadsafe(self._fan_out, record, targets)

    def close(self) -> None:
        """End every live stream (bus sink protocol / server shutdown)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            targets = tuple(self._subscriptions)
            self._subscriptions.clear()
        for subscription in targets:
            self._loop.call_soon_threadsafe(
                subscription._offer, STREAM_CLOSED
            )

    # -- subscriptions -------------------------------------------------------

    def subscribe(
        self,
        predicate: Callable[[Mapping[str, Any]], bool] | None = None,
        replay: bool = True,
        max_queue_events: int | None = None,
    ) -> Subscription:
        """Register a subscriber; atomically splices replay and live flow.

        The returned subscription's :attr:`~Subscription.replayed` list
        holds the buffered events matching ``predicate`` (oldest first);
        every event emitted after this call arrives on the live queue.
        """
        with self._lock:
            replayed = [
                dict(event)
                for event in self._buffer
                if replay and (predicate is None or predicate(event))
            ]
            subscription = Subscription(
                hub=self,
                predicate=predicate,
                replayed=replayed,
                max_queue=max_queue_events or self._max_queue_events,
            )
            if self._closed:
                subscription.closed = True
            else:
                self._subscriptions.append(subscription)
        return subscription

    def _remove(self, subscription: Subscription) -> None:
        with self._lock:
            try:
                self._subscriptions.remove(subscription)
            except ValueError:
                pass

    def _fan_out(
        self, event: dict[str, Any], targets: tuple[Subscription, ...]
    ) -> None:
        for subscription in targets:
            subscription._offer(event)

    @property
    def subscriber_count(self) -> int:
        with self._lock:
            return len(self._subscriptions)

    def buffered(self) -> list[dict[str, Any]]:
        """A copy of the replay ring (tests and diagnostics)."""
        with self._lock:
            return [dict(event) for event in self._buffer]
