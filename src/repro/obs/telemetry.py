"""Streaming telemetry: a bounded-overhead event bus with pluggable sinks.

PR 2's observability layer speaks only *after* a run finishes (manifests,
span profiles).  This module makes long campaigns observable *in flight*:
instrumented layers call :func:`emit` with a structured event, and an
active :class:`TelemetryBus` fans it out to whatever sinks were attached —

* :class:`JsonlSink` — append-only JSON Lines file with size-based
  rotation (``repro-avail obs tail <file>`` renders/filters it);
* :class:`AggregatorSink` — in-process counts and last-event-by-kind, for
  tests and embedding callers;
* :class:`PrometheusSink` — rewrites an OpenMetrics/Prometheus text
  exposition snapshot whenever a ``metrics`` event carries a registry
  snapshot (point ``node_exporter``-style scrapers at the file).

Every event carries ``schema`` (:data:`TELEMETRY_SCHEMA_VERSION`), a
monotonic per-bus ``seq``, a per-bus ``run`` id (derived from the file
tail when appending, so restarted runs stay ordered), a wall-clock ``t``,
and its ``kind``; the rest of the fields are event-specific (see
``docs/OBSERVABILITY.md``).

The zero-cost-when-disabled discipline of :mod:`repro.obs.runtime` holds
here too: with no bus active — the default — :func:`emit` is a single
``None`` check, worker processes always start with telemetry disabled,
and nothing in this module reads or perturbs random state, so runs are
bit-identical with telemetry on or off (``tests/test_obs_determinism.py``
enforces this).  Progress events from parallel dispatch are emitted by
the *parent* out of worker-side data riding the existing
``perf.parallel.map_chunked`` result channel — workers never write files.
"""

from __future__ import annotations

import contextlib
import json
import os
import threading
import time
from contextvars import ContextVar
from pathlib import Path
from typing import Any, Callable, Iterable, Iterator, Mapping
from urllib.parse import urlsplit

from repro.errors import ObservabilityError
from repro.obs.metrics import HISTOGRAM_BUCKET_BOUNDS

__all__ = [
    "TELEMETRY_SCHEMA_VERSION",
    "NullSink",
    "JsonlSink",
    "AggregatorSink",
    "PrometheusSink",
    "TelemetryBus",
    "ProgressTracker",
    "render_openmetrics",
    "read_events",
    "follow_events",
    "follow_sse",
    "render_event",
    "scope",
    "scope_fields",
    "start",
    "stop",
    "active",
    "enabled",
    "emit",
]

#: Version stamped into every event's ``schema`` field.  Bump when an
#: existing field changes meaning; adding fields is not a bump.
TELEMETRY_SCHEMA_VERSION = 1


class NullSink:
    """Shared no-op sink (the disabled-mode placeholder)."""

    __slots__ = ()

    def emit(self, event: Mapping[str, Any]) -> None:
        return None

    def close(self) -> None:
        return None


NULL_SINK = NullSink()


def _read_last_run(path: Path) -> int | None:
    """The ``run`` id of the last parseable event in ``path``'s tail.

    Reads at most the final 64 KiB.  Returns ``None`` when the file does
    not exist or holds no parseable event; events without a ``run`` field
    (pre-``run`` streams) count as run ``0`` so appenders continue after
    them.
    """
    try:
        with open(path, "rb") as handle:
            handle.seek(0, os.SEEK_END)
            size = handle.tell()
            handle.seek(max(0, size - 65536))
            tail = handle.read().decode("utf-8", errors="replace")
    except OSError:
        return None
    last: int | None = None
    for raw in tail.splitlines():
        raw = raw.strip()
        if not raw:
            continue
        try:
            event = json.loads(raw)
        except json.JSONDecodeError:
            continue
        if not isinstance(event, dict):
            continue
        try:
            last = int(event.get("run", 0))
        except (TypeError, ValueError):
            last = 0
    return last


class JsonlSink:
    """Append-only JSON Lines sink with size-based rotation.

    When appending a line would push the current file past ``max_bytes``,
    the file is rotated shift-style (``file`` -> ``file.1`` -> ``file.2``
    ... up to ``max_backups``, oldest dropped) and a fresh file started,
    so a heartbeat-emitting overnight campaign cannot fill the disk.
    ``max_bytes=None`` (the default) never rotates.

    An event larger than ``max_bytes`` on its own is never dropped and
    never causes rotation churn: it is appended to the current file and
    the file is rotated exactly once afterwards, leaving the live file
    empty (within budget) for subsequent events.

    ``last_run`` exposes the ``run`` id of the last event already in the
    file (``None`` for a fresh file); :class:`TelemetryBus` uses it to
    pick the next run id when appending to an existing stream.

    Writes are flushed every ``flush_every`` events (default every event)
    so live followers — ``repro-avail obs tail --follow`` — see events as
    they happen rather than when the stream closes; the event rate is
    bounded by heartbeat/snapshot rate limiting, so per-line flushing is
    not a hot path.  Raise ``flush_every`` for write-heavy custom streams.
    """

    def __init__(
        self,
        path: str | Path,
        max_bytes: int | None = None,
        max_backups: int = 3,
        flush_every: int = 1,
    ):
        if max_bytes is not None and max_bytes <= 0:
            raise ObservabilityError(
                f"JsonlSink max_bytes must be positive (got {max_bytes})"
            )
        if flush_every < 1:
            raise ObservabilityError(
                f"JsonlSink flush_every must be >= 1 (got {flush_every})"
            )
        self.flush_every = int(flush_every)
        self.path = Path(path)
        self.max_bytes = max_bytes
        self.max_backups = max(1, int(max_backups))
        self.rotations = 0
        self.events_written = 0
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.last_run = _read_last_run(self.path)
        self._bytes = self.path.stat().st_size if self.path.exists() else 0
        self._handle = open(self.path, "a", encoding="utf-8")

    def _rotate(self) -> None:
        self._handle.close()
        oldest = self.path.with_name(f"{self.path.name}.{self.max_backups}")
        if oldest.exists():
            oldest.unlink()
        for index in range(self.max_backups - 1, 0, -1):
            backup = self.path.with_name(f"{self.path.name}.{index}")
            if backup.exists():
                os.replace(backup, self.path.with_name(
                    f"{self.path.name}.{index + 1}"
                ))
        os.replace(self.path, self.path.with_name(f"{self.path.name}.1"))
        self._handle = open(self.path, "a", encoding="utf-8")
        self._bytes = 0
        self.rotations += 1

    def emit(self, event: Mapping[str, Any]) -> None:
        line = json.dumps(event, sort_keys=True, separators=(",", ":"))
        size = len(line.encode("utf-8")) + 1
        oversized = self.max_bytes is not None and size > self.max_bytes
        if (
            self.max_bytes is not None
            and not oversized
            and self._bytes
            and self._bytes + size > self.max_bytes
        ):
            self._rotate()
        self._handle.write(line + "\n")
        self._bytes += size
        self.events_written += 1
        if self.events_written % self.flush_every == 0:
            self._handle.flush()
        if oversized:
            # The event alone busts the budget: it was written above (never
            # dropped) and one rotation retires it to a backup so the live
            # file returns within budget.  Exactly one rotation per
            # oversized event — no pre+post double rotation, no per-emit
            # churn on the events that follow.
            self._rotate()

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.flush()
            self._handle.close()


class AggregatorSink:
    """In-process aggregation: event counts and last event per kind."""

    def __init__(self) -> None:
        self.counts: dict[str, int] = {}
        self.last: dict[str, dict[str, Any]] = {}
        self.total = 0

    def emit(self, event: Mapping[str, Any]) -> None:
        kind = str(event.get("kind", ""))
        self.counts[kind] = self.counts.get(kind, 0) + 1
        self.last[kind] = dict(event)
        self.total += 1

    def close(self) -> None:
        return None


def _metric_name(name: str) -> str:
    """Sanitize a dotted metric name for Prometheus exposition."""
    cleaned = [
        ch if ch.isalnum() or ch == "_" else "_" for ch in name
    ]
    text = "".join(cleaned) or "_"
    return text if not text[0].isdigit() else "_" + text


def _format_value(value: float) -> str:
    return repr(float(value))


def render_openmetrics(snapshot: Mapping[str, Any]) -> str:
    """Render a :meth:`MetricsRegistry.snapshot` as Prometheus text.

    Counters become ``counter`` families with a ``_total`` suffix, gauges
    become ``gauge`` families, and timing histograms become ``histogram``
    families with cumulative ``_bucket{le="..."}`` series (bounds from
    :data:`HISTOGRAM_BUCKET_BOUNDS` plus ``+Inf``), ``_sum`` and
    ``_count`` — the standard exposition shape scrapers expect.
    """
    lines: list[str] = []
    for name in sorted(snapshot.get("counters", {})):
        metric = _metric_name(name) + "_total"
        lines.append(f"# TYPE {metric} counter")
        lines.append(
            f"{metric} {_format_value(snapshot['counters'][name])}"
        )
    for name in sorted(snapshot.get("gauges", {})):
        value = snapshot["gauges"][name]
        if value is None:
            continue
        metric = _metric_name(name)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_format_value(value)}")
    for name in sorted(snapshot.get("histograms", {})):
        summary = snapshot["histograms"][name]
        metric = _metric_name(name) + "_seconds"
        lines.append(f"# TYPE {metric} histogram")
        count = int(summary.get("count", 0))
        bins = summary.get("bins") or [0] * (
            len(HISTOGRAM_BUCKET_BOUNDS) + 1
        )
        cumulative = 0
        for bound, bucket in zip(HISTOGRAM_BUCKET_BOUNDS, bins):
            cumulative += int(bucket)
            lines.append(
                f'{metric}_bucket{{le="{bound:g}"}} {cumulative}'
            )
        lines.append(f'{metric}_bucket{{le="+Inf"}} {count}')
        lines.append(
            f"{metric}_sum {_format_value(summary.get('total', 0.0))}"
        )
        lines.append(f"{metric}_count {count}")
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


class PrometheusSink:
    """Maintains an OpenMetrics text snapshot file of the latest metrics.

    Listens for ``metrics`` events (emitted by instrumented layers with a
    full registry ``snapshot`` field) and atomically rewrites ``path``
    with the exposition text — the file-based pattern scrape agents poll.
    All other event kinds are ignored.
    """

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.writes = 0

    def emit(self, event: Mapping[str, Any]) -> None:
        if event.get("kind") != "metrics":
            return
        snapshot = event.get("snapshot")
        if not isinstance(snapshot, Mapping):
            return
        text = render_openmetrics(snapshot)
        tmp = self.path.with_name(self.path.name + ".tmp")
        tmp.write_text(text, encoding="utf-8")
        os.replace(tmp, self.path)
        self.writes += 1

    def close(self) -> None:
        return None


#: Ambient fields merged into every event emitted within a
#: :func:`scope` — how the serving layer stamps ``trace_id``/``job_id``
#: onto events emitted deep inside campaign code without threading the ids
#: through every call signature.  A :class:`~contextvars.ContextVar`, so
#: scopes follow ``await`` chains and ``asyncio.to_thread`` hops.
_SCOPE_FIELDS: ContextVar[tuple[tuple[str, Any], ...]] = ContextVar(
    "telemetry_scope_fields", default=()
)


@contextlib.contextmanager
def scope(**fields: Any) -> Iterator[None]:
    """Merge ``fields`` into every event emitted within the body.

    Scopes nest (inner values win on key collision) and explicit
    ``emit(...)`` fields win over scoped ones.  The scope is ambient
    context-local state: it costs one ContextVar set/reset regardless of
    whether a bus is active, and nothing while no event is emitted.
    """
    token = _SCOPE_FIELDS.set(_SCOPE_FIELDS.get() + tuple(fields.items()))
    try:
        yield
    finally:
        _SCOPE_FIELDS.reset(token)


def scope_fields() -> dict[str, Any]:
    """The ambient fields the current :func:`scope` stack would stamp."""
    return dict(_SCOPE_FIELDS.get())


class TelemetryBus:
    """Fan-out of structured events to the attached sinks.

    Each bus stamps a ``run`` id into every event alongside the per-bus
    monotonic ``seq``.  When ``run`` is not given it is derived from the
    attached sinks: one past the highest ``last_run`` any file-backed sink
    already holds (``0`` for fresh sinks).  Two start/stop cycles
    appending to the same JSONL file therefore produce distinct run ids,
    and ``(run, seq)`` totally orders the combined stream even though each
    bus restarts ``seq`` at 0 — the contract :func:`read_events` sorts by.
    """

    def __init__(self, sinks: Iterable[Any] = (), run: int | None = None):
        self.sinks: tuple[Any, ...] = tuple(sinks)
        if run is None:
            previous = [
                sink.last_run
                for sink in self.sinks
                if getattr(sink, "last_run", None) is not None
            ]
            run = max(previous) + 1 if previous else 0
        self.run = int(run)
        self._seq = 0
        # Campaign jobs executed on a server's worker threads emit through
        # the same bus as the serving loop; the lock keeps ``seq`` unique
        # and sink writes whole.  Uncontended cost is negligible next to
        # the JSON encode each emit already pays.
        self._lock = threading.Lock()

    def emit(self, kind: str, **fields: Any) -> dict[str, Any]:
        scoped = _SCOPE_FIELDS.get()
        with self._lock:
            event = {
                "schema": TELEMETRY_SCHEMA_VERSION,
                "seq": self._seq,
                "run": self.run,
                "t": time.time(),
                "kind": kind,
            }
            for key, value in scoped:
                event[key] = value
            event.update(fields)
            self._seq += 1
            for sink in self.sinks:
                sink.emit(event)
        return event

    def add_sink(self, sink: Any) -> None:
        """Attach ``sink`` to a live bus (e.g. an SSE fan-out hub)."""
        with self._lock:
            if sink not in self.sinks:
                self.sinks = self.sinks + (sink,)

    def remove_sink(self, sink: Any) -> None:
        """Detach ``sink`` without closing it (no-op when absent)."""
        with self._lock:
            self.sinks = tuple(s for s in self.sinks if s is not sink)

    def close(self) -> None:
        for sink in self.sinks:
            sink.close()


class ProgressTracker:
    """Derives progress/heartbeat fields (rate, ETA) for ``progress`` events.

    Parent-side only: dispatchers call :meth:`update` as each job/chunk
    result arrives (with worker-side event counts riding the result
    channel) and emit the returned fields.  ETA is a simple linear
    extrapolation of the completion rate so far.
    """

    def __init__(self, total: int, unit: str = "replications"):
        self.total = int(total)
        self.unit = unit
        self.completed = 0
        self.events = 0
        self._started = time.perf_counter()

    def update(self, completed: int = 1, events: int = 0) -> dict[str, Any]:
        self.completed += int(completed)
        self.events += int(events)
        elapsed = time.perf_counter() - self._started
        fields: dict[str, Any] = {
            "unit": self.unit,
            "completed": self.completed,
            "total": self.total,
            "elapsed_s": elapsed,
        }
        if self.events:
            fields["events"] = self.events
            if elapsed > 0:
                fields["events_per_second"] = self.events / elapsed
        if self.completed and elapsed > 0:
            rate = self.completed / elapsed
            fields["rate_per_second"] = rate
            remaining = max(self.total - self.completed, 0)
            fields["eta_s"] = remaining / rate
        return fields


# -- JSONL reading (the `obs tail` side) ---------------------------------------


def _event_order(event: Mapping[str, Any]) -> tuple[int, int]:
    """``(run, seq)`` sort key; malformed/absent fields order as 0."""

    def as_int(value: Any) -> int:
        try:
            return int(value)
        except (TypeError, ValueError):
            return 0

    return as_int(event.get("run", 0)), as_int(event.get("seq", 0))


def read_events(
    path: str | Path,
    kinds: Iterable[str] | None = None,
) -> Iterator[dict[str, Any]]:
    """Yield events from a telemetry JSONL file, optionally by kind.

    Events are ordered by ``(run, seq)`` (a stable sort over file order),
    so a file holding several appended start/stop cycles — each of which
    restarts ``seq`` at 0 under its own ``run`` id — reads back in a
    single unambiguous sequence.  Unparseable lines (e.g. a partial line
    at a rotation boundary or a live writer's tail) are skipped, not
    fatal.
    """
    wanted = set(kinds) if kinds is not None else None
    events: list[dict[str, Any]] = []
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError:
                continue
            if not isinstance(event, dict):
                continue
            if wanted is not None and event.get("kind") not in wanted:
                continue
            events.append(event)
    events.sort(key=_event_order)
    return iter(events)


def follow_events(
    path: str | Path,
    kinds: Iterable[str] | None = None,
    poll_seconds: float = 0.2,
    idle_timeout: float | None = None,
    max_poll_seconds: float = 2.0,
    backoff: float = 2.0,
    _sleep: Callable[[float], None] = time.sleep,
) -> Iterator[dict[str, Any]]:
    """Yield events from a *live* telemetry JSONL file as they are written.

    The ``tail -F`` counterpart of :func:`read_events`: existing events are
    yielded first (in file order — a live stream cannot be re-sorted, but
    each event's ``(run, seq)`` stamp still totally orders the combined
    stream for consumers, the same contract appended start/stop cycles
    rely on), then the follower polls for appended lines.
    :class:`JsonlSink` shift-rotation is survived: when the path's
    inode changes (or the file shrinks), the old handle is drained to its
    end first — nothing written just before the rename is lost — and the
    follower reopens at the start of the fresh file, whose bus continues
    the rotated stream's run-id sequence.

    Polling backs off exponentially while the file is quiet:
    ``poll_seconds`` is the floor (the first idle wait, and the interval
    restored the moment an event or a rotation is seen), each further idle
    wait multiplies by ``backoff`` up to ``max_poll_seconds`` — a dormant
    overnight stream costs a stat every couple of seconds instead of five
    per second, while an active stream is still tailed at the floor
    latency.  ``backoff=1.0`` restores fixed-interval polling.

    ``idle_timeout`` bounds how long to wait with no new data before
    returning (``None`` follows forever, until the consumer stops
    iterating); a file that does not exist yet is waited for under the
    same timeout.  Partial trailing lines (a writer mid-append) are
    buffered, never dropped or mis-parsed.
    """
    if poll_seconds <= 0:
        raise ObservabilityError(
            f"poll_seconds must be > 0, got {poll_seconds}"
        )
    if max_poll_seconds < poll_seconds:
        raise ObservabilityError(
            f"max_poll_seconds ({max_poll_seconds}) must be >= "
            f"poll_seconds ({poll_seconds})"
        )
    if backoff < 1.0:
        raise ObservabilityError(f"backoff must be >= 1.0, got {backoff}")
    wanted = set(kinds) if kinds is not None else None
    target = Path(path)
    handle = None
    buffer = b""
    idle = 0.0
    delay = poll_seconds
    try:
        while True:
            if handle is None:
                try:
                    handle = open(target, "rb")
                except OSError:
                    handle = None
            rotated = False
            if handle is not None:
                chunk = handle.read()
                if chunk:
                    buffer += chunk
                try:
                    stat = os.stat(target)
                    current = os.fstat(handle.fileno())
                    rotated = (
                        stat.st_ino != current.st_ino
                        or stat.st_size < handle.tell()
                    )
                except OSError:
                    rotated = True
                if rotated:
                    # The old file is fully drained (read() above hit its
                    # EOF); reopen the fresh file from the top next pass.
                    handle.close()
                    handle = None
            progressed = False
            lines = buffer.split(b"\n")
            buffer = lines.pop()
            for raw in lines:
                text = raw.decode("utf-8", errors="replace").strip()
                if not text:
                    continue
                try:
                    event = json.loads(text)
                except json.JSONDecodeError:
                    continue
                if not isinstance(event, dict):
                    continue
                progressed = True
                if wanted is not None and event.get("kind") not in wanted:
                    continue
                yield event
            if progressed or rotated:
                idle = 0.0
                delay = poll_seconds
                continue
            if idle_timeout is not None and idle >= idle_timeout:
                return
            _sleep(delay)
            idle += delay
            delay = min(delay * backoff, max_poll_seconds)
    finally:
        if handle is not None:
            handle.close()


def follow_sse(
    url: str,
    kinds: Iterable[str] | None = None,
    idle_timeout: float | None = None,
) -> Iterator[dict[str, Any]]:
    """Yield telemetry events from a live server-sent-events stream.

    The HTTP counterpart of :func:`follow_events`: point it at a running
    service's ``/v1/events`` firehose (or a ``/v1/jobs/<id>/events`` job
    stream) and it yields the same schema-versioned event dicts a
    :class:`JsonlSink` would record — each SSE frame's ``data:`` payload
    *is* the JSONL line.  Comment frames (``: keepalive`` heartbeats) are
    skipped.  Stdlib only (``http.client`` dechunks the stream).

    ``idle_timeout`` bounds how long to block with no bytes from the
    server before returning (the server's heartbeat interval counts as
    activity); ``None`` follows until the server closes the stream.
    """
    import http.client

    split = urlsplit(url)
    if split.scheme not in ("http", "https"):
        raise ObservabilityError(
            f"follow_sse needs an http(s):// URL, got {url!r}"
        )
    if not split.hostname:
        raise ObservabilityError(f"URL {url!r} has no host")
    connection_type = (
        http.client.HTTPSConnection
        if split.scheme == "https"
        else http.client.HTTPConnection
    )
    connection = connection_type(
        split.hostname,
        split.port or (443 if split.scheme == "https" else 80),
        timeout=idle_timeout,
    )
    wanted = set(kinds) if kinds is not None else None
    target = split.path or "/"
    if split.query:
        target += f"?{split.query}"
    try:
        connection.request(
            "GET", target, headers={"Accept": "text/event-stream"}
        )
        response = connection.getresponse()
        if response.status != 200:
            body = response.read(4096).decode("utf-8", errors="replace")
            raise ObservabilityError(
                f"SSE stream {url!r} answered {response.status}: "
                f"{body[:200]}"
            )
        data_lines: list[str] = []
        while True:
            try:
                raw = response.readline()
            except TimeoutError:
                return
            if not raw:
                return  # server closed the stream
            line = raw.decode("utf-8", errors="replace").rstrip("\r\n")
            if not line:  # blank line terminates one SSE frame
                if data_lines:
                    text, data_lines = "\n".join(data_lines), []
                    try:
                        event = json.loads(text)
                    except json.JSONDecodeError:
                        continue
                    if not isinstance(event, dict):
                        continue
                    if wanted is not None and event.get("kind") not in wanted:
                        continue
                    yield event
                continue
            if line.startswith(":"):
                continue  # heartbeat/comment
            name, _, value = line.partition(":")
            if value.startswith(" "):
                value = value[1:]
            if name == "data":
                data_lines.append(value)
    finally:
        connection.close()


def render_event(event: Mapping[str, Any]) -> str:
    """One human-readable line per event (the ``obs tail`` format)."""
    seq = event.get("seq", "-")
    kind = event.get("kind", "?")
    skip = {"schema", "seq", "t", "kind", "snapshot"}
    parts = [
        f"{key}={_render_field(event[key])}"
        for key in sorted(event)
        if key not in skip
    ]
    if "snapshot" in event:
        parts.append("snapshot=<metrics>")
    body = " ".join(parts)
    return f"[{seq:>6}] {kind:<12} {body}".rstrip()


def _render_field(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.6g}"
    if isinstance(value, (dict, list)):
        return json.dumps(value, sort_keys=True, separators=(",", ":"))
    return str(value)


# -- the global bus (zero-cost when disabled) ----------------------------------

_bus: TelemetryBus | None = None


def start(sinks: Iterable[Any]) -> TelemetryBus:
    """Activate a bus over ``sinks``; raises if one is already active."""
    global _bus
    if _bus is not None:
        raise ObservabilityError(
            "a telemetry bus is already active; stop() it first"
        )
    _bus = TelemetryBus(sinks)
    return _bus


def stop() -> TelemetryBus | None:
    """Deactivate, close sinks, return the bus (``None`` if inactive)."""
    global _bus
    finished, _bus = _bus, None
    if finished is not None:
        finished.close()
    return finished


def active() -> TelemetryBus | None:
    """The current bus, or ``None``."""
    return _bus


def enabled() -> bool:
    """True while a bus is active (events are flowing)."""
    return _bus is not None


def emit(kind: str, **fields: Any) -> None:
    """Emit onto the active bus (single ``None`` check while disabled)."""
    current = _bus
    if current is not None:
        current.emit(kind, **fields)
