"""JSON/CSV serialization of network evaluate/place results.

Table/CSV row builders plus lossless JSON payloads for per-switch
control-path analyses (:class:`~repro.network.paths.ControlPathAnalysis`)
and placement searches (:class:`~repro.network.placement.PlacementResult`),
consumed by the ``repro-avail network`` CLI subcommand.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Sequence

__all__ = [
    "evaluate_rows",
    "evaluate_payload",
    "placement_rows",
    "placement_payload",
    "write_network_json",
]


def _fmt_optional(value: float | None) -> str:
    return f"{value:.3e}" if value is not None else "-"


def evaluate_rows(analyses: Sequence) -> tuple[tuple[str, ...], list[tuple]]:
    """(headers, rows) for per-switch control-path analyses."""
    headers = (
        "Switch",
        "A_CP",
        "Unavail (exact)",
        "Union bound",
        "Path LB",
        "Cut sets",
        "Min order",
    )
    rows = []
    for analysis in analyses:
        rows.append(
            (
                analysis.switch,
                f"{analysis.availability:.6f}",
                f"{analysis.unavailability:.3e}",
                f"{analysis.union_bound:.3e}",
                _fmt_optional(analysis.path_lower_bound),
                str(len(analysis.cut_sets)),
                str(analysis.min_cut_order),
            )
        )
    return headers, rows


def evaluate_payload(graph, analyses: Sequence) -> dict[str, Any]:
    """A JSON-serializable record of a whole-graph evaluation."""
    return {
        "graph": graph.to_dict(),
        "graph_hash": graph.graph_hash(),
        "switches": [analysis.to_dict() for analysis in analyses],
    }


def placement_rows(result) -> tuple[tuple[str, ...], list[tuple]]:
    """(headers, rows) for one placement search: per-switch A_CP."""
    headers = ("Switch", "A_CP", "Unavailability")
    rows = [
        (switch, f"{value:.6f}", f"{1.0 - value:.3e}")
        for switch, value in result.per_switch
    ]
    return headers, rows


def placement_payload(graph, result) -> dict[str, Any]:
    """A JSON-serializable record of one placement search."""
    return {
        "graph": graph.to_dict(),
        "graph_hash": graph.graph_hash(),
        "placement": result.to_dict(),
    }


def write_network_json(path: str | Path, payload: dict[str, Any]) -> Path:
    """Write a network payload as JSON (parent directories created)."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )
    return target
