"""Weighted state enumeration — the paper's conditioning engine.

Every model in the paper follows the same pattern: *condition* on how many
copies of some infrastructure layer are up (hosts in Eq. 2, racks in Eqs. 4
and 7, supervisor instances in Eqs. 12-14), weight each case by its binomial
probability, and multiply by the conditional availability of the layer
below.  This module provides that pattern once, exactly:

* :func:`enumerate_up_down` — all up/down assignments of a set of named
  elements with independent up-probabilities, with their joint probability.
* :func:`weighted_condition` — expectation of a conditional-availability
  function over the binomial count of identical elements.
* :func:`weighted_condition_multi` — expectation over a *vector* of counts
  (one per role), the exact form of the paper's Eqs. (12)-(14).
"""

from __future__ import annotations

import itertools
from typing import Callable, Iterator, Mapping, Sequence

from repro.core.kofn import binomial_pmf
from repro.units import check_probability


def enumerate_up_down(
    probabilities: Mapping[str, float],
) -> Iterator[tuple[dict[str, bool], float]]:
    """Yield every up/down state of the named elements with its probability.

    Elements are independent; ``probabilities[name]`` is the probability that
    ``name`` is up.  The 2**n states are yielded in a deterministic order and
    their probabilities sum to 1.  Intended for exact (small-n) enumeration —
    the reference topologies have at most a dozen conditioning elements.
    """
    names = list(probabilities)
    for name in names:
        check_probability(probabilities[name], name)
    for assignment in itertools.product((True, False), repeat=len(names)):
        state = dict(zip(names, assignment))
        weight = 1.0
        for name, up in state.items():
            p = probabilities[name]
            weight *= p if up else (1.0 - p)
        if weight > 0.0:
            yield state, weight


def weighted_condition(
    n: int,
    p: float,
    conditional: Callable[[int], float],
) -> float:
    """Expectation of ``conditional(x)`` where ``x ~ Binomial(n, p)``.

    This is the paper's single-layer conditioning step, e.g. Eq. (7)::

        A = sum_x P(x racks up) * (A | x racks up)
    """
    check_probability(p, "p")
    total = 0.0
    for x in range(n + 1):
        weight = binomial_pmf(x, n, p)
        if weight > 0.0:
            total += weight * conditional(x)
    return total


def weighted_condition_multi(
    counts: Sequence[int],
    p: float,
    conditional: Callable[[tuple[int, ...]], float],
) -> float:
    """Expectation of ``conditional((x_1, ..., x_k))`` over independent binomials.

    Each ``x_i ~ Binomial(counts[i], p)`` independently.  This is exactly the
    paper's Eqs. (12)+(14): the availability conditioned on ``(g, c, a, d)``
    supervisor instances (or {VM+host} blocks) up, weighted by the product of
    binomial probabilities.

    The summation ranges over *all* counts ``0..n_i`` rather than the paper's
    printed ``1..x`` lower limit; terms where the conditional availability is
    zero contribute nothing, so including the zero-count cases is both exact
    and more general (a "0 of n" process block stays available when every
    instance is down).
    """
    check_probability(p, "p")
    ranges = [range(n + 1) for n in counts]
    total = 0.0
    for combo in itertools.product(*ranges):
        weight = 1.0
        for x, n in zip(combo, counts):
            weight *= binomial_pmf(x, n, p)
            if weight == 0.0:
                break
        if weight > 0.0:
            total += weight * conditional(tuple(combo))
    return total
