"""Public API surface checks."""

import importlib

import pytest

import repro


class TestPublicApi:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_star_import_is_clean(self):
        namespace = {}
        exec("from repro import *", namespace)
        for name in repro.__all__:
            if name != "__version__":
                assert name in namespace, name

    @pytest.mark.parametrize(
        "module",
        [
            "repro.core",
            "repro.controller",
            "repro.topology",
            "repro.params",
            "repro.models",
            "repro.markov",
            "repro.sim",
            "repro.sim.batched",
            "repro.perf.batching",
            "repro.analysis",
            "repro.reporting",
            "repro.faults",
            "repro.core.sdp",
            "repro.network",
            "repro.network.graph",
            "repro.network.paths",
            "repro.network.batch",
            "repro.network.placement",
            "repro.network.campaign",
            "repro.topology.network_reference",
            "repro.obs",
            "repro.obs.telemetry",
            "repro.obs.forensics",
            "repro.serve",
            "repro.serve.protocol",
            "repro.serve.cache",
            "repro.serve.batching",
            "repro.serve.admission",
            "repro.serve.jobs",
            "repro.serve.app",
            "repro.cli",
        ],
    )
    def test_subpackages_import(self, module):
        imported = importlib.import_module(module)
        assert imported is not None

    @pytest.mark.parametrize(
        "module",
        [
            "repro.core",
            "repro.controller",
            "repro.markov",
            "repro.sim",
            "repro.sim.batched",
            "repro.analysis",
            "repro.faults",
            "repro.core.sdp",
            "repro.network",
            "repro.network.batch",
            "repro.obs",
            "repro.obs.telemetry",
            "repro.obs.forensics",
            "repro.serve",
            "repro.serve.protocol",
            "repro.serve.cache",
            "repro.serve.batching",
            "repro.serve.admission",
            "repro.serve.jobs",
        ],
    )
    def test_subpackage_all_resolves(self, module):
        imported = importlib.import_module(module)
        for name in getattr(imported, "__all__", ()):
            assert hasattr(imported, name), f"{module}.{name}"

    def test_quickstart_snippet(self):
        # The README / module docstring snippet must keep working.
        from repro import (
            PAPER_HARDWARE,
            PAPER_SOFTWARE,
            evaluate_option,
            opencontrail_3x,
        )

        spec = opencontrail_3x()
        result = evaluate_option(spec, "2L", PAPER_HARDWARE, PAPER_SOFTWARE)
        assert result.cp == pytest.approx(0.9999974, abs=1e-6)

    def test_cli_outage_command(self, capsys):
        from repro.cli import main

        assert main(["outage", "--plane", "dp", "--sites", "100"]) == 0
        out = capsys.readouterr().out
        assert "Outage profile" in out
        assert "small" in out and "large" in out
