"""Quickstart: evaluate OpenContrail 3.x availability with paper defaults.

Run with::

    python examples/quickstart.py

Walks the full public API surface: the controller specification (Tables
I-III), the HW-centric topology models (Fig. 3 anchors), and the
SW-centric options 1S/2S/1L/2L with control-plane and data-plane downtime
(the numbers behind Figs. 4-5).
"""

from repro import (
    PAPER_HARDWARE,
    PAPER_SOFTWARE,
    evaluate_option,
    hw_large,
    hw_medium,
    hw_small,
    opencontrail_3x,
)
from repro.controller.tables import render_table1, render_table2, render_table3
from repro.units import downtime_minutes_per_year


def main() -> None:
    spec = opencontrail_3x()
    print(f"Controller: {spec.name} ({spec.cluster_size}-node cluster)\n")

    # The encapsulation tables: everything the models need to know about
    # the software.
    print(render_table1(spec), end="\n\n")
    print(render_table2(spec), end="\n\n")
    print(render_table3(spec), end="\n\n")

    # HW-centric view (section V): nodes as atomic elements.
    print("HW-centric controller availability (A_C = 0.9995):")
    for label, model in (
        ("Small ", hw_small),
        ("Medium", hw_medium),
        ("Large ", hw_large),
    ):
        availability = model(PAPER_HARDWARE)
        minutes = downtime_minutes_per_year(availability)
        print(f"  {label}: {availability:.8f}  ({minutes:5.2f} min/yr)")
    print()

    # SW-centric view (section VI): process-level quorums and supervisor
    # restart scenarios.
    print("SW-centric results (A = 0.99998, A_S = 0.9998):")
    print("  option   A_CP        CP m/y   A_DP       DP m/y")
    for option in ("1S", "2S", "1L", "2L"):
        result = evaluate_option(spec, option, PAPER_HARDWARE, PAPER_SOFTWARE)
        print(
            f"  {option}       {result.cp:.7f}  {result.cp_downtime_minutes:5.2f}"
            f"    {result.dp:.6f}  {result.dp_downtime_minutes:6.1f}"
        )
    print()
    print(
        "Reading: the distributed control plane reaches ~six nines on three\n"
        "racks, while the per-host data plane is capped around 0.9998 by the\n"
        "vRouter single points of failure — the paper's headline conclusion."
    )


if __name__ == "__main__":
    main()
