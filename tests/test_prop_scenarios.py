"""Property-based tests for the scenario runner and connection model.

These two components are hand-written state machines — exactly the kind of
code that hides edge-case bugs.  The properties below must hold for *any*
event timeline.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.controller.library import toy_controller
from repro.params.defaults import PAPER_HARDWARE, PAPER_SOFTWARE
from repro.params.software import RestartScenario
from repro.sim.scenario import Injection, ScenarioRunner
from repro.sim.vrouter_connections import ControlEvent, VRouterConnectionModel
from repro.topology.reference import small_topology

CONTROLS = ("c1", "c2", "c3")
HORIZON = 100.0


@st.composite
def control_timelines(draw):
    """Random up/down timelines that alternate correctly per control."""
    events = []
    for control in CONTROLS:
        times = sorted(
            draw(
                st.lists(
                    st.floats(min_value=0.0, max_value=HORIZON),
                    max_size=6,
                    unique=True,
                )
            )
        )
        up = True
        for time in times:
            up = not up
            events.append(ControlEvent(time, control, up))
    events.sort(key=lambda e: e.time)
    return events


class TestConnectionModelProperties:
    @given(events=control_timelines())
    @settings(max_examples=80, deadline=None)
    def test_intervals_well_formed(self, events):
        model = VRouterConnectionModel(CONTROLS, hosts=3)
        intervals = model.drop_intervals(events, horizon=HORIZON)
        per_host: dict[int, list] = {}
        for interval in intervals:
            assert 0.0 <= interval.start <= interval.end <= HORIZON
            per_host.setdefault(interval.host, []).append(interval)
        for host_intervals in per_host.values():
            ordered = sorted(host_intervals, key=lambda i: i.start)
            for a, b in zip(ordered, ordered[1:]):
                assert a.end <= b.start + 1e-12  # no overlap

    @given(events=control_timelines())
    @settings(max_examples=80, deadline=None)
    def test_unavailability_bounded(self, events):
        model = VRouterConnectionModel(CONTROLS, hosts=3)
        unavailability = model.dp_unavailability(events, horizon=HORIZON)
        assert 0.0 <= unavailability <= 1.0

    @given(
        down_time=st.floats(min_value=1.0, max_value=50.0),
        control=st.sampled_from(CONTROLS),
    )
    @settings(max_examples=30)
    def test_single_control_outage_always_hitless(self, down_time, control):
        # Any single control going down (and optionally returning) never
        # interrupts any host.
        model = VRouterConnectionModel(CONTROLS, hosts=6)
        events = [
            ControlEvent(down_time, control, False),
            ControlEvent(min(HORIZON, down_time + 10.0), control, True),
        ]
        assert model.drop_intervals(events, horizon=HORIZON) == []


@st.composite
def injection_schedules(draw):
    components = [
        "proc:Core/api-1",
        "proc:Core/api-2",
        "proc:Core/store-1",
        "proc:Core/store-3",
        "host:H1",
        "rack:R1",
    ]
    count = draw(st.integers(min_value=0, max_value=8))
    injections = []
    for _ in range(count):
        injections.append(
            Injection(
                draw(st.floats(min_value=0.0, max_value=HORIZON)),
                draw(st.sampled_from(components)),
                draw(st.sampled_from(["fail", "repair"])),
            )
        )
    return injections


class TestScenarioRunnerProperties:
    @given(injections=injection_schedules())
    @settings(max_examples=40, deadline=None)
    def test_trace_consistency(self, injections):
        spec = toy_controller()
        runner = ScenarioRunner.for_controller(
            spec,
            small_topology(spec),
            scenario=RestartScenario.NOT_REQUIRED,
            hardware=PAPER_HARDWARE,
            software=PAPER_SOFTWARE,
        )
        trace = runner.run(injections, horizon=HORIZON)
        for name in ("cp", "sdp", "ldp", "dp"):
            downtime = trace.downtime(name)
            assert 0.0 <= downtime <= HORIZON
            history = trace.transitions[name]
            # Transitions strictly alternate and are time-ordered.
            for (t0, s0), (t1, s1) in zip(history, history[1:]):
                assert t0 <= t1
                assert s0 != s1
            # Final recorded state matches the simulator's live state.
            assert trace.state_at(name, HORIZON) == runner.simulator.signal(
                name
            ).state

    @given(injections=injection_schedules())
    @settings(max_examples=40, deadline=None)
    def test_repair_everything_restores_cp(self, injections):
        spec = toy_controller()
        runner = ScenarioRunner.for_controller(
            spec,
            small_topology(spec),
            scenario=RestartScenario.NOT_REQUIRED,
            hardware=PAPER_HARDWARE,
            software=PAPER_SOFTWARE,
        )
        # Cap injection times so the final repairs fit inside the horizon.
        capped = [
            Injection(min(i.time, HORIZON / 2), i.component, i.kind)
            for i in injections
        ]
        closing = [
            Injection(HORIZON * 0.9, component, "repair")
            for component in sorted(
                {i.component for i in capped}
            )
        ]
        trace = runner.run(capped + closing, horizon=HORIZON)
        assert trace.state_at("cp", HORIZON)
