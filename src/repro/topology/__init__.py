"""Hardware deployment topologies.

Section IV of the paper defines three reference layouts of controller role
instances onto VMs, hosts, and racks — Small, Medium, and Large.  This
package provides:

* :mod:`repro.topology.elements` — racks, hosts, VMs, role instances,
* :mod:`repro.topology.deployment` — the :class:`DeploymentTopology`
  placement model with validation and shared/private element analysis,
* :mod:`repro.topology.reference` — builders for the Small/Medium/Large
  reference topologies (and their 2N+1 generalizations).
"""

from repro.topology.elements import Host, Rack, RoleInstance, Vm
from repro.topology.deployment import DeploymentTopology
from repro.topology.reference import (
    large_topology,
    medium_topology,
    small_topology,
)

__all__ = [
    "Rack",
    "Host",
    "Vm",
    "RoleInstance",
    "DeploymentTopology",
    "small_topology",
    "medium_topology",
    "large_topology",
]
