"""A1 — ablation: rack count 1/2/3 and the conclusion approximations.

The paper's capstone guidance: "one rack or three racks, but not two", and
the closed rules of thumb ``A ~= alpha^2 (3 - 2 alpha) A_R`` (1-2 racks,
alpha = A_C A_V A_H) and ``A ~= alpha^2 (3 - 2 alpha)`` (3 racks,
alpha = A_C A_V A_H A_R).  This bench sweeps rack availability to show the
crossover structure is robust, not a coincidence of the defaults.
"""

import numpy as np
import pytest

from repro.models.hw_approx import hw_approx_large, hw_approx_small
from repro.models.hw_closed import hw_large, hw_medium, hw_small
from repro.params.hardware import HardwareParams
from repro.reporting.tables import format_table


def rack_sweep(hardware, points=9):
    rows = []
    for a_rack in np.linspace(0.999, 0.999999, points):
        params = HardwareParams(
            a_role=hardware.a_role,
            a_vm=hardware.a_vm,
            a_host=hardware.a_host,
            a_rack=float(a_rack),
        )
        rows.append(
            (
                float(a_rack),
                hw_small(params),
                hw_medium(params),
                hw_large(params),
            )
        )
    return rows


def test_rack_ablation(benchmark, hardware):
    rows = benchmark(rack_sweep, hardware)
    print(
        "\n"
        + format_table(
            ("A_R", "Small (1 rack)", "Medium (2 racks)", "Large (3 racks)"),
            [tuple(f"{v:.8f}" for v in row) for row in rows],
            title="Ablation A1: rack count vs rack availability",
        )
    )
    for _, s, m, l in rows:
        # "One rack or three, not two" at every rack availability.
        assert m <= s <= l

    # The conclusion's closed approximations track the exact models.
    approx_small = hw_approx_small(hardware)
    approx_large = hw_approx_large(hardware)
    assert 1 - approx_small == pytest.approx(1 - hw_small(hardware), rel=0.02)
    assert 1 - approx_large == pytest.approx(1 - hw_large(hardware), rel=0.05)

    # The Large advantage shrinks as racks approach perfection.
    first_gap = rows[0][3] - rows[0][1]
    last_gap = rows[-1][3] - rows[-1][1]
    assert last_gap < first_gap
