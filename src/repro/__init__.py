"""repro — failure-mode and availability analysis of distributed SDN controllers.

A reproduction of *"Distributed Software Defined Networking Controller
Failure Mode and Availability Analysis"* (ISPASS 2019): parametric
HW-centric and SW-centric availability models for distributed SDN
controllers, with OpenContrail 3.x as the reference implementation, plus a
Monte-Carlo simulation substrate, CTMC cross-validation, and a benchmark
harness regenerating every table and figure in the paper.

Quickstart::

    from repro import (
        opencontrail_3x, PAPER_HARDWARE, PAPER_SOFTWARE, evaluate_option
    )

    spec = opencontrail_3x()
    result = evaluate_option(spec, "2L", PAPER_HARDWARE, PAPER_SOFTWARE)
    print(result.cp, result.cp_downtime_minutes)
"""

from repro.controller import (
    ControllerSpec,
    Plane,
    ProcessKind,
    ProcessSpec,
    RestartMode,
    RoleKind,
    RoleSpec,
    opencontrail_3x,
)
from repro.models import (
    OptionResult,
    cp_availability,
    dp_availability,
    evaluate_option,
    hw_availability,
    hw_availability_exact,
    hw_approximation,
    hw_large,
    hw_medium,
    hw_small,
    local_dp_availability,
    shared_dp_availability,
)
from repro.params import (
    PAPER_HARDWARE,
    PAPER_SOFTWARE,
    HardwareParams,
    MaintenanceLevel,
    RestartScenario,
    SoftwareParams,
)
from repro.topology import (
    DeploymentTopology,
    large_topology,
    medium_topology,
    small_topology,
)
from repro.analysis.report import generate_report, render_report
from repro.models.design import (
    CostModel,
    cheapest_meeting,
    enumerate_designs,
    pareto_frontier,
)
from repro.network import (
    NetworkGraph,
    NetworkLink,
    NetworkNode,
    SharedRiskGroup,
    analyze_switch,
    optimize_placement,
    per_switch_availability,
)
from repro.units import (
    availability_from_mtbf,
    downtime_minutes_per_year,
    nines,
    scale_downtime,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # controller
    "ControllerSpec",
    "Plane",
    "ProcessKind",
    "ProcessSpec",
    "RestartMode",
    "RoleKind",
    "RoleSpec",
    "opencontrail_3x",
    # params
    "HardwareParams",
    "MaintenanceLevel",
    "SoftwareParams",
    "RestartScenario",
    "PAPER_HARDWARE",
    "PAPER_SOFTWARE",
    # topology
    "DeploymentTopology",
    "small_topology",
    "medium_topology",
    "large_topology",
    # models
    "hw_small",
    "hw_medium",
    "hw_large",
    "hw_availability",
    "hw_availability_exact",
    "hw_approximation",
    "cp_availability",
    "shared_dp_availability",
    "local_dp_availability",
    "dp_availability",
    "OptionResult",
    "evaluate_option",
    # analysis & design
    "generate_report",
    "render_report",
    "CostModel",
    "enumerate_designs",
    "pareto_frontier",
    "cheapest_meeting",
    # network
    "NetworkGraph",
    "NetworkNode",
    "NetworkLink",
    "SharedRiskGroup",
    "analyze_switch",
    "per_switch_availability",
    "optimize_placement",
    # units
    "availability_from_mtbf",
    "downtime_minutes_per_year",
    "nines",
    "scale_downtime",
]
