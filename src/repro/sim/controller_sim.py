"""Full controller availability simulation.

Builds the component system for a :class:`ControllerSpec` deployed on a
:class:`DeploymentTopology` — racks, hosts, VMs, supervisors, and every
regular process — wires the supervisor semantics of the selected restart
scenario, and measures the four paper quantities (``A_CP``, ``A_SDP``,
``A_LDP``, ``A_DP``) as time-weighted signals.

Failure-rate parameterization: process dynamics come straight from
:class:`SoftwareParams` (F, R, R_S); infrastructure elements get an MTBF
per level from :class:`SimulationConfig` and the MTTR implied by the
:class:`HardwareParams` availabilities, so the simulated steady state
matches the analytic models' inputs exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.controller.process import RestartMode
from repro.controller.spec import ControllerSpec
from repro.errors import SimulationError
from repro.obs import runtime as obs
from repro.params.hardware import HardwareParams
from repro.params.software import RestartScenario, SoftwareParams
from repro.sim.engine import AvailabilitySimulator
from repro.sim.entities import Component, ComponentKind, ComponentState
from repro.sim.measures import (
    ConfidenceInterval,
    SignalAttribution,
    batch_means_interval,
)
from repro.topology.deployment import DeploymentTopology
from repro.units import mttr_from_availability


@dataclass(frozen=True)
class SimulationConfig:
    """Run-length and infrastructure-dynamics settings.

    Attributes:
        seed: root RNG seed (runs are reproducible per seed).
        horizon_hours: simulated time.
        batches: batch count for batch-means confidence intervals.
        rack_mtbf_hours / host_mtbf_hours / vm_mtbf_hours: infrastructure
            failure intervals; the matching repair times are derived from
            the hardware availabilities so steady-state availabilities match
            the analytic inputs.
    """

    seed: int = 1
    horizon_hours: float = 500_000.0
    batches: int = 10
    rack_mtbf_hours: float = 100_000.0
    host_mtbf_hours: float = 40_000.0
    vm_mtbf_hours: float = 20_000.0


@dataclass(frozen=True)
class OutageStatistics:
    """Observed outage episodes for one plane signal."""

    count: int
    frequency_per_hour: float
    mean_duration_hours: float


@dataclass(frozen=True)
class SimulationResult:
    """Measured availabilities with confidence intervals."""

    cp: float
    shared_dp: float
    local_dp: float
    dp: float
    intervals: dict[str, ConfidenceInterval] = field(default_factory=dict)
    outages: dict[str, OutageStatistics] = field(default_factory=dict)
    horizon_hours: float = 0.0
    #: Per-signal downtime attribution ledgers (component/hazard -> episode
    #: durations); empty for results predating attribution.
    attribution: dict[str, SignalAttribution] = field(default_factory=dict)

    def interval(self, name: str) -> ConfidenceInterval:
        try:
            return self.intervals[name]
        except KeyError:
            raise SimulationError(f"no interval for signal {name!r}") from None

    def outage_statistics(self, name: str) -> OutageStatistics:
        try:
            return self.outages[name]
        except KeyError:
            raise SimulationError(
                f"no outage statistics for signal {name!r}"
            ) from None

    def signal_attribution(self, name: str) -> SignalAttribution:
        try:
            return self.attribution[name]
        except KeyError:
            raise SimulationError(
                f"no attribution ledger for signal {name!r}"
            ) from None


def _infrastructure_components(
    topology: DeploymentTopology,
    hardware: HardwareParams,
    config: SimulationConfig,
) -> list[Component]:
    components: list[Component] = []
    levels = (
        (topology.racks, ComponentKind.RACK, "rack", hardware.a_rack,
         config.rack_mtbf_hours, lambda e: ()),
        (topology.hosts, ComponentKind.HOST, "host", hardware.a_host,
         config.host_mtbf_hours, lambda e: (f"rack:{e.rack}",)),
        (topology.vms, ComponentKind.VM, "vm", hardware.a_vm,
         config.vm_mtbf_hours, lambda e: (f"host:{e.host}",)),
    )
    for elements, kind, prefix, availability, mtbf, deps in levels:
        if availability >= 1.0:
            rate, mttr = 0.0, 1.0
        else:
            rate = 1.0 / mtbf
            mttr = mttr_from_availability(availability, mtbf)
        for element in elements:
            components.append(
                Component(
                    key=f"{prefix}:{element.name}",
                    kind=kind,
                    failure_rate=rate,
                    repair_mean=mttr,
                    dependencies=deps(element),
                )
            )
    return components


def build_simulator(
    spec: ControllerSpec,
    topology: DeploymentTopology,
    hardware: HardwareParams,
    software: SoftwareParams,
    scenario: RestartScenario,
    config: SimulationConfig,
) -> AvailabilitySimulator:
    """Construct the ready-to-run simulator (exposed for tests/inspection)."""
    components = _infrastructure_components(topology, hardware, config)
    process_rate = 1.0 / software.mtbf_hours
    supervised_by: dict[str, list[str]] = {}

    for role in spec.cluster_roles:
        instances = topology.instances_of(role.name)
        for instance in instances:
            vm_key = f"vm:{instance.vm}"
            sup_key = None
            if role.supervisor is not None:
                sup_key = f"sup:{role.name}-{instance.index}"
                components.append(
                    Component(
                        key=sup_key,
                        kind=ComponentKind.SUPERVISOR,
                        failure_rate=process_rate,
                        repair_mean=(
                            software.manual_restart_hours
                            if scenario is RestartScenario.REQUIRED
                            else software.maintenance_window_hours
                        ),
                        dependencies=(vm_key,),
                    )
                )
                supervised_by[sup_key] = []
            for process in role.regular_processes:
                deps = (vm_key,)
                if scenario is RestartScenario.REQUIRED and sup_key:
                    deps = (vm_key, sup_key)
                key = f"proc:{role.name}/{process.name}-{instance.index}"
                components.append(
                    Component(
                        key=key,
                        kind=ComponentKind.PROCESS,
                        failure_rate=process_rate,
                        repair_mean=software.manual_restart_hours,
                        dependencies=deps,
                        auto_restart=process.restart is RestartMode.AUTO,
                        supervisor_key=sup_key,
                    )
                )
                if sup_key:
                    supervised_by[sup_key].append(key)

    host_role = spec.host_role
    if host_role is not None:
        local_sup = None
        if host_role.supervisor is not None:
            local_sup = "local:supervisor"
            components.append(
                Component(
                    key=local_sup,
                    kind=ComponentKind.SUPERVISOR,
                    failure_rate=process_rate,
                    repair_mean=(
                        software.manual_restart_hours
                        if scenario is RestartScenario.REQUIRED
                        else software.maintenance_window_hours
                    ),
                )
            )
            supervised_by[local_sup] = []
        for process in host_role.regular_processes:
            deps: tuple[str, ...] = ()
            if scenario is RestartScenario.REQUIRED and local_sup:
                deps = (local_sup,)
            key = f"local:{process.name}"
            components.append(
                Component(
                    key=key,
                    kind=ComponentKind.PROCESS,
                    failure_rate=process_rate,
                    repair_mean=software.manual_restart_hours,
                    dependencies=deps,
                    auto_restart=process.restart is RestartMode.AUTO,
                    supervisor_key=local_sup,
                )
            )
            if local_sup:
                supervised_by[local_sup].append(key)

    def repair_policy(component: Component) -> float:
        """AUTO processes restart in R while supervised, R_S otherwise."""
        if component.kind is ComponentKind.PROCESS and component.auto_restart:
            sup = component.supervisor_key
            if sup is None or simulator.effectively_up(sup):
                return software.auto_restart_hours
            return software.manual_restart_hours
        return component.repair_mean

    def on_repair(sim: AvailabilitySimulator, component: Component) -> None:
        """A restarted supervisor restores its node-role's processes."""
        if (
            scenario is RestartScenario.REQUIRED
            and component.kind is ComponentKind.SUPERVISOR
        ):
            for key in supervised_by.get(component.key, ()):
                if sim.components[key].state is ComponentState.REPAIRING:
                    sim.restore_component(key)

    simulator = AvailabilitySimulator(
        components,
        seed=config.seed,
        repair_policy=repair_policy,
        on_repair=on_repair,
    )
    _attach_signals(simulator, spec, topology)
    return simulator


def signal_plan(
    spec: ControllerSpec, topology: DeploymentTopology
) -> dict[str, object]:
    """Declarative structure behind the four plane signals.

    Returns ``{"plane_units": {...}, "local_keys": [...]}`` where
    ``plane_units`` maps ``"cp"``/``"dp"`` to ``(quorum, per_instance_key
    lists)`` tuples and ``local_keys`` is the host-role AND-chain of the
    LDP signal.  Shared by the scalar :func:`_attach_signals` and the
    batched kernel's model builder (:mod:`repro.sim.batched`), so both
    engines evaluate definitionally identical predicates.
    """
    plane_units: dict[str, list[tuple[int, list[list[str]]]]] = {
        "cp": [],
        "dp": [],
    }
    for plane_name in ("cp", "dp"):
        for role in spec.cluster_roles:
            for unit in role.quorum_units(plane_name):
                per_instance = [
                    [
                        f"proc:{role.name}/{member.name}-{instance.index}"
                        for member in unit.members
                    ]
                    for instance in topology.instances_of(role.name)
                ]
                plane_units[plane_name].append((unit.quorum, per_instance))

    local_keys: list[str] = []
    host_role = spec.host_role
    if host_role is not None:
        for unit in host_role.quorum_units("dp"):
            local_keys.extend(f"local:{m.name}" for m in unit.members)

    return {"plane_units": plane_units, "local_keys": local_keys}


def plane_signal_keys(plan: dict[str, object], plane_name: str) -> list[str]:
    """Flat component-key list one plane's quorum units read."""
    plane_units = plan["plane_units"]
    return [
        key
        for _, per_instance in plane_units[plane_name]  # type: ignore[index]
        for member_keys in per_instance
        for key in member_keys
    ]


def _attach_signals(
    simulator: AvailabilitySimulator,
    spec: ControllerSpec,
    topology: DeploymentTopology,
) -> None:
    plan = signal_plan(spec, topology)
    plane_units = plan["plane_units"]

    def plane_keys(plane_name: str) -> list[str]:
        return plane_signal_keys(plan, plane_name)

    def plane_up(plane_name: str):
        units = plane_units[plane_name]

        # Hot path: runs after every quorum-relevant event.  Plain loops
        # (no genexpr/``all`` frames) over the memoized effective states.
        def predicate(sim: AvailabilitySimulator) -> bool:
            effectively_up = sim.effectively_up
            for quorum, per_instance in units:
                satisfied = 0
                for member_keys in per_instance:
                    for key in member_keys:
                        if not effectively_up(key):
                            break
                    else:
                        satisfied += 1
                        if satisfied >= quorum:
                            break
                if satisfied < quorum:
                    return False
            return True

        return predicate

    local_keys = plan["local_keys"]

    def ldp_up(sim: AvailabilitySimulator) -> bool:
        effectively_up = sim.effectively_up
        for key in local_keys:
            if not effectively_up(key):
                return False
        return True

    cp_predicate = plane_up("cp")
    sdp_predicate = plane_up("dp")
    sdp_keys = plane_keys("dp")
    simulator.add_signal("cp", cp_predicate, depends_on=plane_keys("cp"))
    simulator.add_signal("sdp", sdp_predicate, depends_on=sdp_keys)
    simulator.add_signal("ldp", ldp_up, depends_on=local_keys)
    # DP = SDP AND LDP.  Registered last and declared over the union of
    # their keys, so both input signals are already refreshed (or known
    # unchanged) whenever this predicate runs — reading their states skips
    # a full re-scan of the shared plane's quorum units.
    sdp_signal = simulator.signal("sdp")
    ldp_signal = simulator.signal("ldp")
    simulator.add_signal(
        "dp",
        lambda sim: sdp_signal.state and ldp_signal.state,
        depends_on=sdp_keys + local_keys,
    )


def collect_result(
    simulator: AvailabilitySimulator, horizon_hours: float
) -> SimulationResult:
    """Package a finished run's signals as a :class:`SimulationResult`.

    Shared by :func:`simulate_controller` and the fault-campaign runner
    (:mod:`repro.faults.campaign`), which builds the same simulator but
    attaches hazard processes before running it.
    """
    intervals = {}
    outages = {}
    attribution = {}
    for name in ("cp", "sdp", "ldp", "dp"):
        batch_values = simulator.batch_availabilities(name)
        if len(batch_values) >= 2:
            intervals[name] = batch_means_interval(batch_values)
        signal = simulator.signal(name)
        durations = signal.outage_durations
        outages[name] = OutageStatistics(
            count=signal.outage_count,
            frequency_per_hour=signal.outage_frequency(),
            mean_duration_hours=(
                sum(durations) / len(durations) if durations else 0.0
            ),
        )
        attribution[name] = signal.attribution()
    return SimulationResult(
        cp=simulator.availability("cp"),
        shared_dp=simulator.availability("sdp"),
        local_dp=simulator.availability("ldp"),
        dp=simulator.availability("dp"),
        intervals=intervals,
        outages=outages,
        horizon_hours=horizon_hours,
        attribution=attribution,
    )


def simulate_controller(
    spec: ControllerSpec,
    topology: DeploymentTopology,
    hardware: HardwareParams,
    software: SoftwareParams,
    scenario: RestartScenario,
    config: SimulationConfig | None = None,
) -> SimulationResult:
    """Run the controller simulation and return measured availabilities."""
    config = config or SimulationConfig()
    obs.annotate("topology", topology.name)
    obs.annotate("seed.sim_seed", config.seed)
    simulator = build_simulator(
        spec, topology, hardware, software, scenario, config
    )
    simulator.run(config.horizon_hours, batches=config.batches)
    return collect_result(simulator, config.horizon_hours)
