"""Declarative fault-injection campaigns over the controller simulator.

A :class:`CampaignSpec` is a frozen, JSON-serializable description of one
stochastic experiment: which reference option to simulate (topology +
restart scenario), at which stressed parameters, under which hazards
(:mod:`repro.faults.hazards`), for how long, and with how many independent
replications.  :func:`run_campaign` executes it with the same determinism
discipline as :func:`repro.sim.replicate.run_replications`: replication
seeds come from :func:`~repro.sim.rng.derive_seeds`, results are merged in
index order, and the outcome is bit-identical for any worker count (and
with tracing on or off).

Default parameters are the repo's *stressed* validation set (see
``repro-avail simulate``): availabilities low enough that failures actually
occur within a tractable horizon.  Both the simulation and the analytic
cross-validation (:mod:`repro.faults.crossval`) see the same parameters,
so agreement still validates model structure.
"""

from __future__ import annotations

import json
from concurrent.futures import Executor
from dataclasses import dataclass, field, fields, replace
from typing import Any, Mapping

from repro.controller.opencontrail import opencontrail_3x
from repro.errors import CampaignError, SimulationError
from repro.models.sw_options import parse_option
from repro.obs import runtime as obs
from repro.obs import telemetry
from repro.obs.manifest import params_hash
from repro.params.hardware import HardwareParams
from repro.params.software import SoftwareParams
from repro.sim.controller_sim import (
    SimulationConfig,
    SimulationResult,
    build_simulator,
    collect_result,
)
from repro.perf.parallel import broadcast_value, map_chunked
from repro.sim.batched import (
    inexpressible_reason,
    plan_batched,
    run_batched,
    validate_batched_mode,
)
from repro.sim.measures import SignalAttribution
from repro.sim.replicate import ReplicationSet, map_jobs
from repro.sim.rng import derive_seeds
from repro.topology.reference import reference_topology
from repro.faults.hazards import (
    CommonCauseSpec,
    HazardSpec,
    attach_hazards,
    hazard_from_dict,
    hazard_to_dict,
)

__all__ = ["CampaignSpec", "CampaignResult", "run_campaign"]


@dataclass(frozen=True)
class CampaignSpec:
    """One fault-injection experiment, fully determined by its fields.

    Attributes:
        option: paper option — scenario + topology (``"1S"``, ``"2L"``, ...).
        horizon_hours: simulated time per replication.
        replications: independent replications (seeds derived from ``seed``).
        seed: campaign root seed.
        batches: batch count per replication (within-run CIs).
        hazards: hazard models to attach (see :mod:`repro.faults.hazards`).
        repair_crews: concurrent-repair limit; ``None`` means unlimited.
        a_process..vm_mtbf_hours: the stressed software/hardware parameter
            set (identical to the ``repro-avail simulate`` defaults) shared
            by the simulation and the analytic cross-validation.
    """

    option: str = "1S"
    horizon_hours: float = 20_000.0
    replications: int = 4
    seed: int = 1
    batches: int = 4
    hazards: tuple[HazardSpec, ...] = ()
    repair_crews: int | None = None
    a_process: float = 0.995
    a_unsupervised: float = 0.95
    process_mtbf_hours: float = 100.0
    a_vm: float = 0.998
    a_host: float = 0.998
    a_rack: float = 0.999
    rack_mtbf_hours: float = 2_000.0
    host_mtbf_hours: float = 1_000.0
    vm_mtbf_hours: float = 500.0

    def __post_init__(self) -> None:
        object.__setattr__(self, "hazards", tuple(self.hazards))
        parse_option(self.option)  # raises ModelError on bad options
        if self.horizon_hours <= 0:
            raise CampaignError(
                f"horizon_hours must be > 0, got {self.horizon_hours}"
            )
        if self.replications < 1:
            raise CampaignError(
                f"replications must be >= 1, got {self.replications}"
            )
        if self.batches < 1:
            raise CampaignError(f"batches must be >= 1, got {self.batches}")
        if self.repair_crews is not None and self.repair_crews < 1:
            raise CampaignError(
                f"repair_crews must be >= 1 or None, got {self.repair_crews}"
            )

    # -- serialization ---------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        record: dict[str, Any] = {}
        for spec_field in fields(self):
            value = getattr(self, spec_field.name)
            if spec_field.name == "hazards":
                value = [hazard_to_dict(hazard) for hazard in value]
            record[spec_field.name] = value
        return record

    @classmethod
    def from_dict(cls, record: Mapping[str, Any]) -> "CampaignSpec":
        data = dict(record)
        names = {spec_field.name for spec_field in fields(cls)}
        unknown = set(data) - names
        if unknown:
            raise CampaignError(
                f"unknown campaign field(s): {sorted(unknown)}"
            )
        hazards = tuple(
            hazard_from_dict(hazard) for hazard in data.pop("hazards", ())
        )
        return cls(hazards=hazards, **data)

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "CampaignSpec":
        try:
            record = json.loads(text)
        except json.JSONDecodeError as error:
            raise CampaignError(
                f"campaign spec is not valid JSON: {error}"
            ) from None
        if not isinstance(record, dict):
            raise CampaignError("campaign spec JSON must be an object")
        return cls.from_dict(record)

    def params_hash(self) -> str:
        """Canonical SHA-256 of the spec (identical specs hash equal)."""
        return params_hash(self.to_dict())

    # -- derivation ------------------------------------------------------------

    def with_beta(
        self, beta: float, group: str | None = None
    ) -> "CampaignSpec":
        """This campaign with its common-cause beta replaced (for sweeps).

        Existing common-cause hazards get the new ``beta`` (and ``group``
        when given); a campaign without one gains a single hazard over
        ``group`` (default ``"kind:vm"``).
        """
        others = tuple(
            hazard
            for hazard in self.hazards
            if not isinstance(hazard, CommonCauseSpec)
        )
        existing = [
            hazard
            for hazard in self.hazards
            if isinstance(hazard, CommonCauseSpec)
        ]
        if not existing:
            common = (CommonCauseSpec(group=group or "kind:vm", beta=beta),)
        else:
            common = tuple(
                replace(hazard, beta=beta, group=group or hazard.group)
                for hazard in existing
            )
        return replace(self, hazards=others + common)


def materialize(spec: CampaignSpec):
    """Resolve a spec to concrete model inputs.

    Returns ``(controller, topology, hardware, software, scenario)`` — the
    exact objects both the simulation and the analytic side evaluate.
    """
    controller = opencontrail_3x()
    scenario, topology_name = parse_option(spec.option)
    topology = reference_topology(topology_name, controller)
    hardware = HardwareParams(
        a_role=1.0,
        a_vm=spec.a_vm,
        a_host=spec.a_host,
        a_rack=spec.a_rack,
    )
    software = SoftwareParams.from_availabilities(
        spec.a_process,
        spec.a_unsupervised,
        mtbf_hours=spec.process_mtbf_hours,
    )
    return controller, topology, hardware, software, scenario


def _run_campaign_replication(job: tuple) -> tuple[SimulationResult, dict]:
    """One campaign replication (module-level so it pickles into workers)."""
    spec, seed = job
    return _run_one_replication(spec, seed)


def _campaign_replication_from_broadcast(
    seed: int,
) -> tuple[SimulationResult, dict]:
    """One replication reading the spec from the warm pool's broadcast.

    On the warm-pool path the frozen :class:`CampaignSpec` is shipped once
    per worker process (pool initializer) and each job carries its seed
    only.
    """
    return _run_one_replication(broadcast_value(), seed)


def _run_one_replication(
    spec: CampaignSpec, seed: int
) -> tuple[SimulationResult, dict]:
    controller, topology, hardware, software, scenario = materialize(spec)
    config = SimulationConfig(
        seed=seed,
        horizon_hours=spec.horizon_hours,
        batches=spec.batches,
        rack_mtbf_hours=spec.rack_mtbf_hours,
        host_mtbf_hours=spec.host_mtbf_hours,
        vm_mtbf_hours=spec.vm_mtbf_hours,
    )
    simulator = build_simulator(
        controller, topology, hardware, software, scenario, config
    )
    hazard_set = attach_hazards(
        simulator, spec.hazards, crews=spec.repair_crews
    )
    simulator.run(spec.horizon_hours, batches=spec.batches)
    result = collect_result(simulator, spec.horizon_hours)
    stats = hazard_set.stats()
    stats["events"] = simulator.events_processed
    stats["events_purged"] = simulator.events_purged
    stats["queue_compactions"] = simulator.queue_compactions
    return result, stats


@dataclass(frozen=True)
class CampaignResult:
    """A finished campaign: merged replications plus injection statistics."""

    spec: CampaignSpec
    replications: ReplicationSet
    stats: tuple[dict, ...] = field(default_factory=tuple)

    def availability(self, name: str) -> float:
        return self.replications.availability(name)

    def interval(self, name: str):
        return self.replications.interval(name)

    def total_injections(self, kind: str | None = None) -> int:
        """Hazard injections across all replications (optionally one kind)."""
        total = 0
        for stat in self.stats:
            injections = stat.get("injections", {})
            if kind is None:
                total += sum(injections.values())
            else:
                total += injections.get(kind, 0)
        return total

    @property
    def max_queue_depth(self) -> int:
        """Peak repair-queue depth over all replications."""
        return max(
            (stat.get("repair_max_queue_depth", 0) for stat in self.stats),
            default=0,
        )

    @property
    def total_queued(self) -> int:
        """Repair requests that waited for a crew, across replications."""
        return sum(stat.get("repair_total_queued", 0) for stat in self.stats)

    def attribution(self, name: str) -> SignalAttribution:
        """The signal's downtime attribution ledger, merged (concatenated)
        across every replication — exactness of the per-cause sums is
        preserved because merging never pre-sums episode durations.
        """
        return SignalAttribution.merge(
            (
                result.signal_attribution(name)
                for result in self.replications.results
            ),
            name=name,
        )


def run_campaign(
    spec: CampaignSpec,
    workers: int = 1,
    executor: Executor | None = None,
    batched: str = "auto",
) -> CampaignResult:
    """Execute a campaign; bit-identical for any ``workers`` count.

    Each replication builds the option's simulator at the spec's stressed
    parameters, attaches the hazards, runs to the horizon, and returns its
    measured availabilities plus hazard statistics; results merge in index
    order.  Under an observability session the campaign annotates its seed
    material and spec hash (they land in the run manifest) and aggregates
    per-hazard injection counters and the peak repair-queue depth.

    ``batched="auto"`` (default) routes hazard-free, crew-unlimited
    scenario-1 campaigns through the struct-of-arrays lockstep kernel
    (:mod:`repro.sim.batched`) when no explicit ``executor`` is given —
    same numbers, one vectorized process instead of one event loop per
    replication.  ``"on"`` requires the kernel and raises
    :class:`~repro.errors.SimulationError` when the campaign needs scalar
    features; ``"off"`` always uses the scalar engine.
    """
    validate_batched_mode(batched)
    controller, topology, hardware, software, scenario = materialize(spec)
    model = None
    if batched != "off":
        reason = inexpressible_reason(
            scenario, spec.hazards, spec.repair_crews
        )
        if reason is None and executor is not None:
            reason = "an explicit executor was supplied"
        if reason is None:
            model, reason = plan_batched(
                controller, topology, hardware, software, scenario,
                SimulationConfig(
                    seed=spec.seed,
                    horizon_hours=spec.horizon_hours,
                    batches=spec.batches,
                    rack_mtbf_hours=spec.rack_mtbf_hours,
                    host_mtbf_hours=spec.host_mtbf_hours,
                    vm_mtbf_hours=spec.vm_mtbf_hours,
                ),
            )
        if batched == "on" and model is None:
            raise SimulationError(
                f"batched='on' but the campaign cannot run on the "
                f"batched kernel: {reason}"
            )
    seeds = derive_seeds(spec.seed, spec.replications)
    obs.note_solver("fault-campaign")
    obs.annotate("topology", topology.name)
    obs.annotate("seed.campaign_root", spec.seed)
    obs.annotate("seed.campaign_replications", spec.replications)
    obs.annotate("seed.campaign_hash", spec.params_hash())
    telemetry.emit(
        "campaign.start",
        option=spec.option,
        topology=topology.name,
        replications=spec.replications,
        hazards=len(spec.hazards),
        workers=workers,
        horizon_hours=spec.horizon_hours,
        spec_hash=spec.params_hash(),
    )
    with obs.span(
        "faults.campaign",
        option=spec.option,
        replications=spec.replications,
        hazards=len(spec.hazards),
        workers=workers,
    ):
        if model is not None:
            # Lockstep kernel path: no hazards run, so per-replication
            # stats reduce to the live event count (the other counters
            # are structurally zero without hazards or crew limits).
            outcomes = [
                (
                    result,
                    {
                        "injections": {},
                        "repair_max_queue_depth": 0,
                        "repair_total_queued": 0,
                        "events": count,
                        "events_purged": 0,
                        "queue_compactions": 0,
                    },
                )
                for result, count in run_batched(
                    model, list(seeds), spec.horizon_hours, spec.batches
                )
            ]
        elif executor is None and workers > 1 and spec.replications > 1:
            # Warm-pool path: the frozen spec broadcasts once per worker
            # via the pool initializer; jobs carry only their seed and are
            # chunked per worker.
            outcomes = map_chunked(
                _campaign_replication_from_broadcast,
                list(seeds),
                workers,
                spec,
            )
        else:
            outcomes = map_jobs(
                _run_campaign_replication,
                [(spec, seed) for seed in seeds],
                workers=workers,
                executor=executor,
                span_name="faults.replication",
            )
    results = tuple(result for result, _ in outcomes)
    stats = tuple(stat for _, stat in outcomes)
    if obs.enabled():
        kinds: dict[str, int] = {}
        for stat in stats:
            for kind, count in stat.get("injections", {}).items():
                kinds[kind] = kinds.get(kind, 0) + count
        for kind, count in sorted(kinds.items()):
            obs.count(f"faults.injections.{kind}", count)
        obs.gauge(
            "faults.repair_queue.max_depth",
            max(
                (stat.get("repair_max_queue_depth", 0) for stat in stats),
                default=0,
            ),
        )
    campaign = CampaignResult(
        spec=spec,
        replications=ReplicationSet(results=results, seeds=seeds),
        stats=stats,
    )
    if telemetry.enabled():
        telemetry.emit(
            "campaign.end",
            option=spec.option,
            replications=spec.replications,
            availability={
                name: campaign.availability(name)
                for name in ("cp", "sdp", "ldp", "dp")
            },
            injections=campaign.total_injections(),
            events=sum(stat.get("events", 0) for stat in stats),
        )
    return campaign
