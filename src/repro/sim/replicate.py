"""Independent-replication runs of the controller simulation.

One long simulation run gives one batch-means confidence interval; the
standard alternative for tighter, cleaner intervals is **independent
replications**: ``R`` runs of :func:`repro.sim.controller_sim.
simulate_controller` that differ only in their RNG seed, merged into one
estimate per signal.  Replication seeds are spawned from the root seed with
:func:`repro.sim.rng.derive_seeds` (``SeedSequence.spawn``), so replication
``i`` is a pure function of ``(root seed, i)`` and the merged results are
**bit-identical for any worker count** — replications are merely dispatched
to a :class:`concurrent.futures.ProcessPoolExecutor` and re-assembled in
index order.
"""

from __future__ import annotations

from concurrent.futures import Executor
from dataclasses import dataclass, replace
from typing import Sequence

from repro.controller.spec import ControllerSpec
from repro.errors import SimulationError
from repro.obs import runtime as obs
from repro.obs import telemetry
from repro.params.hardware import HardwareParams
from repro.perf.parallel import (
    broadcast_value,
    dispatch_chunks,
    get_warm_pool,
    map_chunked,
)
from repro.params.software import RestartScenario, SoftwareParams
from repro.sim.batched import plan_batched, run_batched, validate_batched_mode
from repro.sim.controller_sim import (
    OutageStatistics,
    SimulationConfig,
    SimulationResult,
    simulate_controller,
)
from repro.sim.measures import ConfidenceInterval, batch_means_interval
from repro.sim.rng import derive_seeds
from repro.topology.deployment import DeploymentTopology

__all__ = ["ReplicationSet", "map_jobs", "run_replications"]

_SIGNAL_ATTRS = {
    "cp": "cp",
    "sdp": "shared_dp",
    "ldp": "local_dp",
    "dp": "dp",
}


@dataclass(frozen=True)
class ReplicationSet:
    """Merged view over independent replications of one configuration."""

    results: tuple[SimulationResult, ...]
    seeds: tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.results:
            raise SimulationError("a ReplicationSet needs >= 1 replication")
        if len(self.results) != len(self.seeds):
            raise SimulationError("one seed per replication required")

    @property
    def replications(self) -> int:
        return len(self.results)

    def _values(self, name: str) -> list[float]:
        try:
            attribute = _SIGNAL_ATTRS[name]
        except KeyError:
            raise SimulationError(f"unknown signal {name!r}") from None
        return [getattr(result, attribute) for result in self.results]

    def availability(self, name: str) -> float:
        """Merged availability — the mean over equal-horizon replications."""
        values = self._values(name)
        return sum(values) / len(values)

    def interval(self, name: str) -> ConfidenceInterval:
        """Across-replication confidence interval.

        Each replication's time-weighted availability is one i.i.d.
        observation — the batch-means formula applies with replications as
        the batches.  Needs >= 2 replications.
        """
        return batch_means_interval(self._values(name))

    def outage_statistics(self, name: str) -> OutageStatistics:
        """Pooled outage episodes across replications."""
        stats = [result.outage_statistics(name) for result in self.results]
        count = sum(s.count for s in stats)
        hours = sum(result.horizon_hours for result in self.results)
        weighted_duration = sum(s.mean_duration_hours * s.count for s in stats)
        return OutageStatistics(
            count=count,
            frequency_per_hour=count / hours if hours > 0 else 0.0,
            mean_duration_hours=weighted_duration / count if count else 0.0,
        )


def map_jobs(
    worker,
    jobs: Sequence,
    workers: int = 1,
    executor: Executor | None = None,
    span_name: str = "sim.replication",
) -> tuple:
    """Run ``worker`` over ``jobs`` and return results in index order.

    The shared dispatch core of :func:`run_replications` and the fault
    campaign runner (:mod:`repro.faults.campaign`): a supplied ``executor``
    wins, ``workers <= 1`` (or a single job) runs inline with a per-job
    ``obs`` span, anything else fans out to a **warm** process pool
    (:func:`repro.perf.parallel.get_warm_pool`) as contiguous per-worker
    chunks — repeated dispatches reuse live worker processes instead of
    paying pool start-up per call.  Results are always re-assembled in job
    order, so the output is independent of scheduling — what keeps seeded
    runs bit-identical across worker counts.  ``worker`` must be
    module-level (picklable) for the pool path.
    """
    if workers < 1:
        raise SimulationError(f"workers must be >= 1, got {workers}")
    jobs = list(jobs)
    if executor is not None:
        return tuple(executor.map(worker, jobs))
    if workers == 1 or len(jobs) <= 1:
        tracker = (
            telemetry.ProgressTracker(len(jobs))
            if telemetry.enabled()
            else None
        )
        collected = []
        for index, job in enumerate(jobs):
            with obs.span(span_name, index=index):
                collected.append(worker(job))
            if tracker is not None:
                telemetry.emit("progress", job=index, **tracker.update())
        return tuple(collected)
    pool = get_warm_pool(workers)
    return dispatch_chunks(pool, worker, jobs, workers)


def _run_replication(job: tuple) -> SimulationResult:
    """One replication (module-level so it pickles into worker processes)."""
    spec, topology, hardware, software, scenario, config, seed = job
    return simulate_controller(
        spec, topology, hardware, software, scenario,
        replace(config, seed=seed),
    )


def _replication_from_broadcast(seed: int) -> SimulationResult:
    """One replication whose constant inputs arrive via the pool broadcast.

    The warm-pool path ships ``(spec, topology, hardware, software,
    scenario, config)`` once per worker process (pool initializer) instead
    of once per replication; only the seed travels with the job.
    """
    spec, topology, hardware, software, scenario, config = broadcast_value()
    return simulate_controller(
        spec, topology, hardware, software, scenario,
        replace(config, seed=seed),
    )


def run_replications(
    spec: ControllerSpec,
    topology: DeploymentTopology,
    hardware: HardwareParams,
    software: SoftwareParams,
    scenario: RestartScenario,
    config: SimulationConfig | None = None,
    replications: int = 4,
    workers: int = 1,
    executor: Executor | None = None,
    batched: str = "auto",
) -> ReplicationSet:
    """Run ``replications`` seeded copies of the controller simulation.

    ``config.horizon_hours`` applies to *each* replication; the merged
    estimate therefore observes ``replications * horizon_hours`` of
    simulated time.  ``workers <= 1`` runs inline; otherwise replications
    are dispatched to a process pool (or the supplied ``executor``) and
    merged in index order, so the result is independent of scheduling.

    ``batched`` selects the engine: ``"auto"`` (default) routes through the
    struct-of-arrays lockstep kernel (:mod:`repro.sim.batched`) whenever
    the workload is expressible and no explicit ``executor`` was supplied
    — results are bit-identical to the scalar engine, so the knob never
    changes numbers, only speed.  ``"on"`` requires the kernel (raises
    :class:`~repro.errors.SimulationError` if the workload cannot run on
    it), ``"off"`` forces the scalar per-replication engine.  The kernel
    advances all replications in one process, so ``workers`` is ignored
    while it is engaged.
    """
    validate_batched_mode(batched)
    if replications < 1:
        raise SimulationError(
            f"replications must be >= 1, got {replications}"
        )
    config = config or SimulationConfig()
    model = None
    if batched != "off":
        if executor is not None:
            reason = "an explicit executor was supplied"
        else:
            model, reason = plan_batched(
                spec, topology, hardware, software, scenario, config
            )
        if batched == "on" and model is None:
            raise SimulationError(
                f"batched='on' but the workload cannot run on the "
                f"batched kernel: {reason}"
            )
    seeds = derive_seeds(config.seed, replications)
    obs.note_solver("simulation")
    obs.annotate("topology", topology.name)
    obs.annotate("seed.sim_root", config.seed)
    obs.annotate("seed.sim_replications", replications)
    telemetry.emit(
        "replications.start",
        topology=topology.name,
        replications=replications,
        workers=workers,
        horizon_hours=config.horizon_hours,
        seed=config.seed,
    )
    with obs.span(
        "sim.replicate",
        replications=replications,
        workers=workers,
        horizon_hours=config.horizon_hours,
    ):
        if model is not None:
            # Lockstep struct-of-arrays kernel: every replication advances
            # in one process; per-replication results are bit-identical to
            # the scalar engine with the same derived seeds.
            results = tuple(
                result
                for result, _ in run_batched(
                    model, list(seeds), config.horizon_hours, config.batches
                )
            )
        elif executor is None and workers > 1 and replications > 1:
            # Warm-pool path: broadcast the constant inputs once per
            # worker, send one seed per job, chunk jobs per worker.
            results = map_chunked(
                _replication_from_broadcast,
                list(seeds),
                workers,
                (spec, topology, hardware, software, scenario, config),
            )
        else:
            jobs = [
                (spec, topology, hardware, software, scenario, config, seed)
                for seed in seeds
            ]
            results = map_jobs(
                _run_replication, jobs, workers=workers, executor=executor
            )
    obs.count("sim.replications", replications)
    merged = ReplicationSet(results=results, seeds=seeds)
    telemetry.emit(
        "replications.end",
        replications=replications,
        availability={
            name: merged.availability(name) for name in _SIGNAL_ATTRS
        },
    )
    return merged
