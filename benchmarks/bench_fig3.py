"""E4 — regenerate Fig. 3: HW-centric cluster availability vs A_C.

Paper reference: Fig. 3 (section V-D).  Series for the Small, Medium, and
Large topologies over A_C in [0.999, 1.0] with A_V = 0.99995,
A_H = 0.99990, A_R = 0.99999.

Shape assertions (paper-vs-measured detail in EXPERIMENTS.md):
* Large dominates Small dominates Medium at every grid point;
* at A_C = 0.9995 the values are ~0.999989 (S, M) and ~0.999999 (L);
* all three curves are monotone non-decreasing in A_C.
"""

import pytest

from repro.analysis.figures import fig3_series
from repro.reporting.csvout import write_csv
from repro.reporting.tables import format_table


def test_fig3(benchmark, hardware, results_dir):
    result = benchmark(fig3_series, hardware, 41)

    headers = ("A_C", *result.labels)
    rows = result.rows()
    print(
        "\n"
        + format_table(
            headers,
            [tuple(f"{v:.8f}" for v in row) for row in rows],
            title="Figure 3: OpenContrail cluster availability (HW-centric)",
        )
    )
    write_csv(results_dir / "fig3.csv", headers, rows)

    small = result.series["Small"]
    medium = result.series["Medium"]
    large = result.series["Large"]
    for s, m, l in zip(small, medium, large):
        assert l > s >= m
    for series in (small, medium, large):
        assert all(a <= b + 1e-15 for a, b in zip(series, series[1:]))
    center = result.grid.index(
        min(result.grid, key=lambda x: abs(x - 0.9995))
    )
    assert small[center] == pytest.approx(0.999989, abs=2e-6)
    assert large[center] == pytest.approx(0.999999, abs=5e-7)
