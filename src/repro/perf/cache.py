"""Transparent memoization of model evaluations.

Every parameter object in this codebase is a frozen (hashable) dataclass —
:class:`~repro.params.hardware.HardwareParams`,
:class:`~repro.params.software.SoftwareParams`, controller specs,
topologies — so any closed-form model is memoizable by its argument tuple.
:func:`memoize_model` wraps one with an ``lru_cache`` and keeps the
wrapper's ``cache_info``/``cache_clear`` introspection; the exact-engine
entry point gets the same treatment in
:func:`repro.models.engine.evaluate_topology_cached` (re-exported here),
where the availability *mapping* additionally has to be frozen to a sorted
tuple.

Typical use — a design search or uncertainty study that revisits parameter
corners::

    from repro.perf import memoize_model
    from repro.models.hw_closed import hw_large

    hw_large_cached = memoize_model(hw_large)
    hw_large_cached(params)            # computed
    hw_large_cached(params)            # memo hit
    hw_large_cached.cache_info()
"""

from __future__ import annotations

import functools
from typing import Callable, TypeVar

from repro.models.engine import (
    clear_engine_cache,
    engine_cache_info,
    evaluate_topology_cached,
    freeze_availability,
)

__all__ = [
    "memoize_model",
    "evaluate_topology_cached",
    "engine_cache_info",
    "clear_engine_cache",
    "freeze_availability",
]

F = TypeVar("F", bound=Callable)


def memoize_model(fn: F, maxsize: int | None = 4096) -> F:
    """Memoize a model over its (hashable) frozen-dataclass arguments.

    A thin, explicit ``functools.lru_cache`` wrapper: the returned callable
    exposes ``cache_info()`` and ``cache_clear()``.  Arguments must all be
    hashable — which the parameter dataclasses, enums, and strings used by
    the models already are; passing a dict or list raises ``TypeError``
    (deliberately: silent key coercion would make stale results possible).
    """
    cached = functools.lru_cache(maxsize=maxsize)(fn)
    return functools.wraps(fn)(cached)
