"""P8 — availability service: cold vs cached query throughput, job parity.

Starts a real ``repro-avail serve`` subprocess on an ephemeral port and
drives it over keep-alive HTTP, appending a ``serve`` section to
``BENCH_perf.json`` (other sections are preserved):

* ``cold``: control-network path-analysis queries (fat-tree pod,
  ~20 ms of cut-set enumeration each) made unique via a ``probe`` salt in
  the payload, so every request misses the single-flight cache and pays
  the full analysis;
* ``cached``: the same query repeated, served from the LRU — throughput is
  bounded by HTTP framing, not analysis;
* server-side p50/p99 latencies from the service's own
  ``TimingHistogram`` quantiles (``GET /v1/stats``), split by cache
  outcome;
* ``job``: one small fault campaign submitted through ``POST /v1/jobs``
  and polled to completion, with the result checked ``==``-identical to
  the in-process CLI path (:func:`repro.reporting.faults.crossval_payload`
  over :func:`repro.faults.crossval.evaluate_campaign`);
* clean shutdown: SIGINT must exit 0 and print the shutdown line.

The cached path must beat the cold path by >= ``CACHED_SPEEDUP_FLOOR``
in QPS — the point of serving results out of a cache at all.  Runnable as
a pytest benchmark *or* directly as a script —
``python benchmarks/bench_serve.py --cold 8 --cached 100 --check`` is the
CI smoke invocation.
"""

from __future__ import annotations

import argparse
import http.client
import json
import os
import re
import signal
import subprocess
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if __name__ == "__main__":  # script mode: make src/ importable without install
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.reporting.tables import format_table

BENCH_SEED = 20190324
DEFAULT_OUT = REPO_ROOT / "BENCH_perf.json"

#: Cached QPS must exceed cold QPS by at least this factor.
CACHED_SPEEDUP_FLOOR = 10.0

#: The campaign submitted through the job queue (small enough for CI).
JOB_SPEC = {
    "option": "1S",
    "horizon_hours": 300.0,
    "replications": 2,
    "seed": BENCH_SEED,
}

COLD_QUERY = {
    "kind": "network",
    "graph": "fat_tree",
    "switch": "E1",
}


class ServerProcess:
    """A ``repro-avail serve`` subprocess bound to an ephemeral port."""

    def __init__(self):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        self.process = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0"],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
        )
        line = self.process.stdout.readline()
        match = re.search(r"serving on http://([\d.]+):(\d+)", line)
        if not match:
            self.process.kill()
            raise RuntimeError(f"server did not start: {line!r}")
        self.host = match.group(1)
        self.port = int(match.group(2))

    def shutdown(self) -> str:
        """SIGINT, wait, and return the remaining stdout."""
        self.process.send_signal(signal.SIGINT)
        output = self.process.communicate(timeout=30)[0]
        if self.process.returncode != 0:
            raise RuntimeError(
                f"server exited {self.process.returncode}: {output}"
            )
        return output


class Client:
    """A keep-alive HTTP client pinned to one connection."""

    def __init__(self, host: str, port: int):
        self.connection = http.client.HTTPConnection(host, port, timeout=60)

    def request(self, method: str, path: str, payload=None) -> tuple[int, dict]:
        body = json.dumps(payload) if payload is not None else None
        self.connection.request(
            method, path, body=body,
            headers={"Content-Type": "application/json"} if body else {},
        )
        response = self.connection.getresponse()
        return response.status, json.loads(response.read())

    def close(self) -> None:
        self.connection.close()


def _run_queries(client: Client, payloads) -> float:
    start = time.perf_counter()
    for payload in payloads:
        status, record = client.request("POST", "/v1/query", payload)
        assert status == 200, record
    return time.perf_counter() - start


def _run_job(client: Client) -> tuple[dict, float]:
    start = time.perf_counter()
    status, record = client.request(
        "POST", "/v1/jobs", {"kind": "campaign", "spec": JOB_SPEC}
    )
    assert status == 202, record
    job_id = record["id"]
    deadline = time.monotonic() + 300
    while time.monotonic() < deadline:
        status, record = client.request("GET", f"/v1/jobs/{job_id}")
        assert status == 200, record
        if record["state"] in ("done", "failed"):
            break
        time.sleep(0.05)
    assert record["state"] == "done", record.get("error")
    return record, time.perf_counter() - start


def _cli_reference_payload() -> dict:
    """The exact payload ``repro-avail faults --json`` would write."""
    from repro.faults.campaign import CampaignSpec
    from repro.faults.crossval import evaluate_campaign
    from repro.reporting.faults import crossval_payload

    spec = CampaignSpec.from_dict(JOB_SPEC)
    payload = crossval_payload(evaluate_campaign(spec, workers=1))
    return json.loads(json.dumps(payload))


def run_serve_bench(cold: int = 30, cached: int = 300) -> dict:
    """Drive a live server and return the BENCH_perf.json section."""
    server = ServerProcess()
    try:
        client = Client(server.host, server.port)

        # Cold: every payload unique (the 'probe' salt lands in the cache
        # key), so each request pays the full cut-set analysis.
        cold_s = _run_queries(
            client,
            [{**COLD_QUERY, "probe": index} for index in range(cold)],
        )

        # Cached: one warm-up miss, then pure LRU hits.
        warm = {**COLD_QUERY, "probe": "warm"}
        _run_queries(client, [warm])
        cached_s = _run_queries(client, [warm] * cached)

        job_record, job_s = _run_job(client)
        status, stats = client.request("GET", "/v1/stats")
        assert status == 200

        client.close()
        job_matches = job_record["result"] == _cli_reference_payload()
    finally:
        shutdown_output = server.shutdown()

    clean = "server shutdown clean" in shutdown_output
    return {
        "seed": BENCH_SEED,
        "cpus": os.cpu_count() or 1,
        "cold_queries": cold,
        "cold_s": cold_s,
        "cold_qps": cold / cold_s,
        "cached_queries": cached,
        "cached_s": cached_s,
        "cached_qps": cached / cached_s,
        "cached_speedup": (cached / cached_s) / (cold / cold_s),
        "query_miss_p50_s": stats["latency"]["query_miss"].get(
            "p50_seconds"
        ),
        "query_miss_p99_s": stats["latency"]["query_miss"].get(
            "p99_seconds"
        ),
        "cached_query_p50_s": stats["latency"]["query_hit"].get(
            "p50_seconds"
        ),
        "cached_query_p99_s": stats["latency"]["query_hit"].get(
            "p99_seconds"
        ),
        "cache": stats["cache"],
        "job_s": job_s,
        "job_matches_cli": job_matches,
        "clean_shutdown": clean,
    }


def _report(record: dict, out_path: Path) -> None:
    rows = [
        (
            f"cold network analysis x{record['cold_queries']}",
            f"{record['cold_s'] * 1e3:.1f}",
            f"{record['cold_qps']:.1f}/s",
        ),
        (
            f"cached (LRU hit) x{record['cached_queries']}",
            f"{record['cached_s'] * 1e3:.1f}",
            f"{record['cached_qps']:.1f}/s",
        ),
        (
            "campaign job (submit+poll)",
            f"{record['job_s'] * 1e3:.1f}",
            "== CLI" if record["job_matches_cli"] else "MISMATCH",
        ),
    ]
    print(
        "\n"
        + format_table(
            ("Workload", "Wall (ms)", "Throughput"),
            rows,
            title=(
                f"Availability service "
                f"(cached speedup {record['cached_speedup']:.1f}x, "
                f"hit p50 "
                f"{(record['cached_query_p50_s'] or 0) * 1e6:.0f}us)"
            ),
        )
    )
    merged = {}
    if out_path.exists():
        merged = json.loads(out_path.read_text(encoding="utf-8"))
    merged["serve"] = record
    out_path.write_text(
        json.dumps(merged, indent=2) + "\n", encoding="utf-8"
    )
    print(f"wrote {out_path}")


def _floors_ok(record: dict) -> bool:
    """Correctness floors always hold; the QPS ratio is waived on 1 CPU."""
    if not (record["job_matches_cli"] and record["clean_shutdown"]):
        return False
    if record["cpus"] < 2:
        return True
    return record["cached_speedup"] >= CACHED_SPEEDUP_FLOOR


def test_serve_bench():
    record = run_serve_bench()
    _report(record, DEFAULT_OUT)
    assert record["job_matches_cli"]
    assert record["clean_shutdown"]
    assert record["cached_query_p50_s"] is not None
    assert _floors_ok(record)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--cold", type=int, default=30)
    parser.add_argument("--cached", type=int, default=300)
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT)
    parser.add_argument(
        "--check",
        action="store_true",
        help=(
            "fail unless the job matches the CLI path, shutdown is clean, "
            f"and cached QPS >= {CACHED_SPEEDUP_FLOOR:.0f}x cold QPS"
        ),
    )
    args = parser.parse_args(argv)
    record = run_serve_bench(cold=args.cold, cached=args.cached)
    _report(record, args.out)
    if args.check:
        assert _floors_ok(record), record
    return 0


if __name__ == "__main__":
    sys.exit(main())
