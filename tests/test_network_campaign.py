"""Network campaigns versus the analytic evaluators, plus hazard behavior.

The load-bearing invariant mirrors :mod:`tests.test_faults_crossval`: a
*hazard-free* network campaign simulates exactly the independent on/off
model the factored evaluator integrates, so each switch's measured
availability must reproduce :func:`repro.network.campaign.analytic_per_switch`
within Monte-Carlo error (``widen=1.5`` on the across-replication CI, same
small-sample allowance as the controller suite).  On top of that, the two
network hazard kinds must move availability the right way — link flaps and
SRG failures strictly lower it — and their specs must round-trip through
JSON and compose with the existing controller :class:`CampaignSpec`.
"""

from __future__ import annotations

import pytest

from repro.errors import CampaignError, NetworkError
from repro.faults import (
    CampaignSpec,
    LinkFlapSpec,
    SrgFailureSpec,
    hazard_from_dict,
    run_campaign,
)
from repro.faults.hazards import hazard_to_dict
from repro.network import (
    NetworkCampaignSpec,
    NetworkGraph,
    NetworkLink,
    NetworkNode,
    SharedRiskGroup,
    analytic_per_switch,
    build_network_simulator,
    run_network_campaign,
)
from repro.topology.network_reference import fat_tree_pod, ring_network


def stressed_graph() -> NetworkGraph:
    """Small mesh with poor availabilities: plenty of events per hour."""
    return NetworkGraph(
        name="stressed",
        nodes=(
            NetworkNode("CTRL", kind="site", availability=0.995),
            NetworkNode("R1", kind="router", availability=0.99),
            NetworkNode("S1", availability=0.99),
            NetworkNode("S2", availability=0.985),
        ),
        links=(
            NetworkLink("LC", "CTRL", "R1", availability=0.98),
            NetworkLink("L1", "R1", "S1", availability=0.975, srg="G1"),
            NetworkLink("L2", "R1", "S2", availability=0.975, srg="G1"),
            NetworkLink("L3", "S1", "S2", availability=0.97),
        ),
        srgs=(SharedRiskGroup("G1", availability=0.995),),
    )


class TestDegenerateInvariant:
    """No hazards == the independent analytic model, within CI."""

    @pytest.mark.slow
    def test_stressed_mesh_matches_analytic(self):
        spec = NetworkCampaignSpec(
            graph=stressed_graph(),
            horizon_hours=4_000.0,
            replications=5,
            seed=17,
            node_mtbf_hours=300.0,
            link_mtbf_hours=200.0,
            srg_mtbf_hours=600.0,
        )
        campaign = run_network_campaign(spec)
        assert campaign.total_injections() == 0
        analytic = analytic_per_switch(spec)
        for switch, predicted in analytic.items():
            interval = campaign.interval(switch)
            widened = interval.half_width * 1.5
            assert abs(interval.mean - predicted) <= widened, (
                switch, interval.mean, predicted, widened,
            )

    @pytest.mark.slow
    def test_reference_ring_matches_analytic(self):
        spec = NetworkCampaignSpec(
            graph=ring_network(),
            horizon_hours=3_000.0,
            replications=4,
            seed=29,
            node_mtbf_hours=200.0,
            link_mtbf_hours=150.0,
        )
        campaign = run_network_campaign(spec)
        analytic = analytic_per_switch(spec)
        for switch, predicted in analytic.items():
            interval = campaign.interval(switch)
            # Reference availabilities are high, so events are rare;
            # accept the analytic value inside the widened interval.
            assert abs(interval.mean - predicted) <= max(
                interval.half_width * 1.5, 5e-4
            )


class TestHazardEffects:
    HORIZON = 3_000.0

    def _spec(self, hazards=()):
        return NetworkCampaignSpec(
            graph=fat_tree_pod(),
            horizon_hours=self.HORIZON,
            replications=3,
            seed=41,
            hazards=tuple(hazards),
        )

    @pytest.mark.slow
    def test_link_flaps_strictly_lower_availability(self):
        baseline = run_network_campaign(self._spec())
        flapped = run_network_campaign(
            self._spec([LinkFlapSpec("kind:link", mtbf_hours=200.0,
                                     down_hours=1.0)])
        )
        assert flapped.total_injections("link_flap") > 0
        for switch in fat_tree_pod().switches:
            assert flapped.availability(switch) < (
                baseline.availability(switch)
            )

    @pytest.mark.slow
    def test_srg_failure_takes_down_grouped_links_together(self):
        hit = run_network_campaign(
            self._spec([SrgFailureSpec("SRG-UPLINK/*", mtbf_hours=500.0)])
        )
        baseline = run_network_campaign(self._spec())
        assert hit.total_injections("srg_failure") > 0
        # Both uplinks share the SRG, so every switch loses its control
        # path during each SRG outage: fleet availability must drop.
        assert hit.fleet_availability() < baseline.fleet_availability()
        assert hit.all_switches_availability() < (
            baseline.all_switches_availability()
        )

    @pytest.mark.slow
    def test_hazard_campaign_is_deterministic(self):
        spec = self._spec([
            LinkFlapSpec("kind:link", mtbf_hours=250.0, down_hours=0.5),
            SrgFailureSpec("SRG-UPLINK", mtbf_hours=700.0),
        ])
        first = run_network_campaign(spec)
        second = run_network_campaign(
            NetworkCampaignSpec.from_json(spec.to_json())
        )
        assert first.results == second.results
        assert first.stats == second.stats


class TestHazardSpecs:
    def test_round_trip_through_dict_and_json(self):
        for spec in (
            LinkFlapSpec("kind:link", mtbf_hours=300.0, down_hours=0.25),
            SrgFailureSpec("G1", mtbf_hours=1_000.0),
        ):
            record = hazard_to_dict(spec)
            assert hazard_from_dict(record) == spec

    def test_validation(self):
        with pytest.raises(CampaignError):
            LinkFlapSpec("", mtbf_hours=100.0)
        with pytest.raises(CampaignError):
            LinkFlapSpec("kind:link", mtbf_hours=0.0)
        with pytest.raises(CampaignError):
            LinkFlapSpec("kind:link", mtbf_hours=100.0, down_hours=0.0)
        with pytest.raises(CampaignError):
            SrgFailureSpec("G1", mtbf_hours=-1.0)

    def test_duty_fraction(self):
        spec = LinkFlapSpec("kind:link", mtbf_hours=99.9, down_hours=0.1)
        assert spec.duty_fraction == pytest.approx(0.001)

    @pytest.mark.slow
    def test_link_flap_composes_with_controller_campaign(self):
        """The new hazards are general: usable against any component group."""
        spec = CampaignSpec(
            option="1S",
            horizon_hours=800.0,
            replications=2,
            seed=5,
            hazards=(LinkFlapSpec("kind:vm", mtbf_hours=100.0,
                                  down_hours=1.0),),
        )
        assert CampaignSpec.from_json(spec.to_json()) == spec
        result = run_campaign(spec)
        assert result.total_injections("link_flap") > 0


class TestSpecValidation:
    def test_bad_parameters_rejected(self):
        graph = stressed_graph()
        with pytest.raises(NetworkError, match="horizon_hours"):
            NetworkCampaignSpec(graph=graph, horizon_hours=0.0)
        with pytest.raises(NetworkError, match="replications"):
            NetworkCampaignSpec(graph=graph, replications=0)
        with pytest.raises(NetworkError, match="link_mtbf_hours"):
            NetworkCampaignSpec(graph=graph, link_mtbf_hours=-5.0)
        with pytest.raises(NetworkError, match="is not a node"):
            NetworkCampaignSpec(graph=graph, sites=("ghost",))

    def test_graph_without_sites_rejected(self):
        graph = NetworkGraph(
            name="no-sites",
            nodes=(NetworkNode("S1"), NetworkNode("S2")),
            links=(NetworkLink("L0", "S1", "S2"),),
        )
        with pytest.raises(NetworkError, match="no controller sites"):
            NetworkCampaignSpec(graph=graph)

    def test_unknown_field_rejected(self):
        record = NetworkCampaignSpec(graph=stressed_graph()).to_dict()
        record["warp_factor"] = 9
        with pytest.raises(NetworkError, match="unknown network-campaign"):
            NetworkCampaignSpec.from_dict(record)

    def test_simulator_exposes_per_switch_signals(self):
        spec = NetworkCampaignSpec(graph=stressed_graph())
        simulator = build_network_simulator(spec, seed=1)
        simulator.run(100.0)
        for switch in spec.graph.switches:
            value = simulator.availability(f"cp:{switch}")
            assert 0.0 <= value <= 1.0
        assert 0.0 <= simulator.availability("cp:all") <= 1.0
