"""Vectorized evaluation paths agree with the scalar seed paths (repro.perf)."""

import numpy as np
import pytest

from repro.analysis.figures import fig3_series, fig4_series, fig5_series
from repro.core.kofn import binomial_pmf, binomial_pmf_array
from repro.errors import ParameterError
from repro.models.hw_closed import hw_large, hw_medium, hw_small
from repro.params.hardware import HardwareParams
from repro.perf import (
    fig3_series_vectorized,
    fig4_series_vectorized,
    fig5_series_vectorized,
    hw_availability_array,
    sweep_vectorized,
)

TOLERANCE = 1e-12

SCALAR_MODELS = {"small": hw_small, "medium": hw_medium, "large": hw_large}


def max_series_difference(a, b):
    assert a.parameter == b.parameter
    assert a.grid == pytest.approx(b.grid, abs=0.0)
    assert a.labels == b.labels
    return max(
        abs(x - y)
        for label in a.labels
        for x, y in zip(a.series[label], b.series[label])
    )


class TestBinomialPmfArray:
    def test_matches_scalar(self):
        grid = np.linspace(0.0, 1.0, 21)
        for n in (0, 1, 3, 5):
            for k in range(n + 1):
                expected = [binomial_pmf(k, n, float(p)) for p in grid]
                # numpy's pow may differ from python's by ~1 ulp
                np.testing.assert_allclose(
                    binomial_pmf_array(k, n, grid), expected, rtol=1e-14
                )

    def test_out_of_range_k_is_zero(self):
        grid = np.linspace(0.1, 0.9, 5)
        assert np.all(binomial_pmf_array(4, 3, grid) == 0.0)

    def test_invalid_probability_raises(self):
        with pytest.raises(ParameterError):
            binomial_pmf_array(1, 3, np.array([0.5, 1.5]))


class TestHwArrayModels:
    @pytest.mark.parametrize("name", sorted(SCALAR_MODELS))
    def test_matches_scalar_over_grid(self, name):
        grid = np.linspace(0.9, 1.0, 101)
        vectorized = hw_availability_array(
            name, grid, 0.99995, 0.9999, 0.99999
        )
        for value, a_c in zip(vectorized, grid):
            params = HardwareParams(
                a_role=float(a_c), a_vm=0.99995, a_host=0.9999, a_rack=0.99999
            )
            assert value == pytest.approx(
                SCALAR_MODELS[name](params), abs=TOLERANCE
            )

    def test_broadcasts_mixed_scalars_and_arrays(self):
        grid = np.linspace(0.99, 1.0, 7)
        out = hw_availability_array("large", 0.9999, grid, 0.9999, 0.99999)
        assert out.shape == grid.shape

    def test_unknown_topology_raises(self):
        from repro.errors import ModelError

        with pytest.raises(ModelError):
            hw_availability_array("ring", 0.999, 0.999, 0.999, 0.999)


class TestFigureSeries:
    def test_fig3_matches_scalar_path(self, hardware):
        scalar = fig3_series(hardware, points=41)
        vector = fig3_series_vectorized(hardware, points=41)
        assert max_series_difference(scalar, vector) < TOLERANCE

    def test_fig4_matches_scalar_path(self, spec, hardware, software):
        scalar = fig4_series(spec, hardware, software, points=21)
        vector = fig4_series_vectorized(spec, hardware, software, points=21)
        assert max_series_difference(scalar, vector) < TOLERANCE

    def test_fig5_matches_scalar_path(self, spec, hardware, software):
        scalar = fig5_series(spec, hardware, software, points=21)
        vector = fig5_series_vectorized(spec, hardware, software, points=21)
        assert max_series_difference(scalar, vector) < TOLERANCE

    def test_descending_grid_supported(self, hardware):
        result = fig3_series_vectorized(
            hardware, points=11, role_range=(1.0, 0.999)
        )
        assert result.grid[0] == 1.0 and result.grid[-1] == 0.999
        small = result.series["Small"]
        assert all(a >= b - 1e-15 for a, b in zip(small, small[1:]))


class TestSweepVectorized:
    def test_evaluates_whole_grid(self):
        result = sweep_vectorized("x", [1.0, 2.0, 3.0], {"sq": lambda x: x**2})
        assert result.series["sq"] == (1.0, 4.0, 9.0)

    def test_needs_evaluators(self):
        with pytest.raises(ParameterError):
            sweep_vectorized("x", [1.0, 2.0], {})

    def test_rejects_wrong_shape(self):
        with pytest.raises(ParameterError):
            sweep_vectorized("x", [1.0, 2.0], {"bad": lambda x: x[:1]})
