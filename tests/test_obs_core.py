"""Unit tests for the observability layer (repro.obs) and its writers."""

from __future__ import annotations

import csv
import json
import math

import pytest

from repro.errors import ObservabilityError
from repro.obs import runtime as obs
from repro.obs.export import render_manifest, summarize_spans
from repro.obs.manifest import (
    SCHEMA_VERSION,
    PhaseTiming,
    RunManifest,
    package_version,
    params_hash,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    MetricsRegistry,
    TimingHistogram,
)
from repro.obs.trace import Span, Tracer
from repro.reporting import (
    write_manifest_csv,
    write_manifest_json,
    write_spans_csv,
)


@pytest.fixture(autouse=True)
def _no_leaked_session():
    """Every test starts and ends with the runtime disabled."""
    obs.stop()
    yield
    obs.stop()


class FakeClock:
    """Deterministic monotonic clock for exact span-timing assertions."""

    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestTracer:
    def test_span_timing_and_nesting(self):
        clock = FakeClock()
        tracer = Tracer(clock=clock)
        with tracer.span("outer", size=3):
            clock.advance(1.0)
            with tracer.span("inner"):
                clock.advance(0.25)
            clock.advance(0.5)
        # children complete (and record) before parents
        inner, outer = tracer.spans
        assert (inner.name, inner.depth, inner.parent) == ("inner", 1, "outer")
        assert inner.start == 1.0 and inner.duration == 0.25
        assert (outer.name, outer.depth, outer.parent) == ("outer", 0, None)
        assert outer.duration == 1.75
        assert outer.attrs == {"size": 3}

    def test_depth_tracks_open_spans(self):
        tracer = Tracer(clock=FakeClock())
        assert tracer.depth == 0
        with tracer.span("a"):
            assert tracer.depth == 1
            with tracer.span("b"):
                assert tracer.depth == 2
        assert tracer.depth == 0

    def test_span_recorded_when_body_raises(self):
        tracer = Tracer(clock=FakeClock())
        with pytest.raises(ValueError):
            with tracer.span("failing"):
                raise ValueError("boom")
        assert [s.name for s in tracer.spans] == ["failing"]
        assert tracer.depth == 0

    def test_wrap_decorator_times_each_call(self):
        clock = FakeClock()
        tracer = Tracer(clock=clock)

        @tracer.wrap("work")
        def work(x):
            clock.advance(2.0)
            return x * 2

        assert work(3) == 6
        assert work(4) == 8
        assert tracer.total("work") == 4.0
        assert work.__name__ == "work"

    def test_roots_in_start_order(self):
        clock = FakeClock()
        tracer = Tracer(clock=clock)
        with tracer.span("first"):
            clock.advance(1.0)
        with tracer.span("second"):
            clock.advance(1.0)
            with tracer.span("child"):
                pass
        assert [s.name for s in tracer.roots()] == ["first", "second"]

    def test_span_round_trips_through_dict(self):
        span = Span(
            name="x", start=0.5, duration=0.1, depth=1, parent="p",
            attrs={"k": 2},
        )
        assert Span.from_dict(span.to_dict()) == span


class TestMetrics:
    def test_counter_accumulates_and_rejects_negative(self):
        counter = Counter("events")
        counter.increment()
        counter.increment(4)
        assert counter.value == 5.0
        with pytest.raises(ValueError):
            counter.increment(-1)

    def test_gauge_last_value_wins(self):
        gauge = Gauge("utilization")
        assert gauge.value is None
        gauge.set(0.5)
        gauge.set(0.75)
        assert gauge.value == 0.75

    def test_histogram_streaming_summary(self):
        histogram = TimingHistogram("chunk")
        # Zero-sample histograms render as absent stats, never NaN.
        assert histogram.summary() == {"count": 0}
        for value in (0.2, 0.1, 0.4):
            histogram.observe(value)
        summary = histogram.summary()
        assert summary["count"] == 3
        assert summary["total"] == pytest.approx(0.7)
        assert summary["mean"] == pytest.approx(0.7 / 3)
        assert summary["min"] == 0.1 and summary["max"] == 0.4
        assert sum(summary["bins"]) == 3

    def test_registry_create_on_demand_and_snapshot(self):
        registry = MetricsRegistry()
        assert registry.counter("b") is registry.counter("b")
        registry.counter("b").increment(2)
        registry.counter("a").increment()
        registry.gauge("g").set(1.5)
        registry.histogram("h").observe(0.5)
        snapshot = registry.snapshot()
        assert list(snapshot["counters"]) == ["a", "b"]
        assert snapshot["counters"]["b"] == 2.0
        assert snapshot["gauges"] == {"g": 1.5}
        assert snapshot["histograms"]["h"]["count"] == 1
        json.dumps(snapshot)  # must be JSON-serializable
        registry.clear()
        assert registry.snapshot() == {
            "counters": {}, "gauges": {}, "histograms": {},
        }


class TestParamsHash:
    def test_equal_configurations_hash_equal(self):
        assert params_hash({"a": 1, "b": (1, 2)}) == params_hash(
            {"b": [1, 2], "a": 1}
        )

    def test_different_configurations_hash_differently(self):
        assert params_hash({"a": 1}) != params_hash({"a": 2})

    def test_sets_are_order_insensitive(self):
        assert params_hash({"s": {3, 1, 2}}) == params_hash({"s": {1, 2, 3}})


class TestManifest:
    def _manifest(self) -> RunManifest:
        return RunManifest.build(
            command="perf",
            arguments={"samples": 10_000, "workers": 4, "pi": math.pi},
            topology="small",
            seed={"mc_root": 7, "mc_chunk_size": 256},
            solver_path=("monte-carlo", "vectorized"),
            phases=(PhaseTiming("cli.perf", 1.25),),
            metrics={
                "counters": {"perf.mc.samples": 10000.0},
                "gauges": {"perf.mc.worker_utilization": 0.875},
                "histograms": {},
            },
            spans=(
                {
                    "name": "perf.monte_carlo", "start": 0.0,
                    "duration": 1.25, "depth": 0, "parent": None,
                    "attrs": {"samples": 10000},
                },
            ),
        )

    def test_build_derives_hash_and_version(self):
        manifest = self._manifest()
        assert manifest.params_hash == params_hash(manifest.arguments)
        assert manifest.package_version == package_version()
        assert manifest.schema_version == SCHEMA_VERSION

    def test_json_round_trip_is_lossless(self):
        manifest = self._manifest()
        assert RunManifest.from_json(manifest.to_json()) == manifest
        # floats survive exactly, not approximately
        restored = RunManifest.from_json(manifest.to_json())
        assert restored.arguments["pi"] == math.pi

    def test_write_and_load(self, tmp_path):
        manifest = self._manifest()
        path = manifest.write(tmp_path / "nested" / "trace.json")
        assert RunManifest.load(path) == manifest

    def test_malformed_records_raise(self):
        with pytest.raises(ObservabilityError):
            RunManifest.from_json("not json {")
        with pytest.raises(ObservabilityError):
            RunManifest.from_json("[1, 2]")
        record = self._manifest().to_dict()
        del record["solver_path"]
        with pytest.raises(ObservabilityError):
            RunManifest.from_dict(record)

    def test_phase_seconds_sums_by_name(self):
        manifest = RunManifest.build(
            command="x",
            phases=(
                PhaseTiming("a", 1.0),
                PhaseTiming("b", 0.5),
                PhaseTiming("a", 0.25),
            ),
        )
        assert manifest.phase_seconds() == {"a": 1.25, "b": 0.5}


class TestRuntime:
    def test_disabled_helpers_are_no_ops(self):
        assert not obs.enabled()
        assert obs.active() is None
        with obs.span("ignored", size=1):
            pass
        obs.count("ignored")
        obs.gauge("ignored", 1.0)
        obs.observe("ignored", 0.1)
        obs.note_solver("ignored")
        obs.annotate("ignored", "x")
        assert obs.stop() is None

    def test_null_span_is_shared(self):
        assert obs.span("a") is obs.span("b")

    def test_session_records_through_helpers(self):
        with obs.session("study") as session:
            assert obs.enabled() and obs.active() is session
            with obs.span("phase", size=2):
                obs.count("events", 3)
                obs.observe("latency", 0.5)
            obs.gauge("load", 0.9)
            obs.note_solver("markov")
            obs.note_solver("markov")  # deduplicated
            obs.annotate("topology", "small")
            obs.annotate("seed.root", 7)
        assert not obs.enabled()
        assert session.solver_path == ["markov"]
        assert [s.name for s in session.tracer.spans] == ["phase"]
        assert session.metrics.counter("events").value == 3.0

    def test_nested_start_raises(self):
        obs.start("outer")
        try:
            with pytest.raises(ObservabilityError):
                obs.start("inner")
        finally:
            obs.stop()

    def test_traced_decorator_records_only_when_enabled(self):
        @obs.traced("timed.work")
        def work():
            return 42

        assert work() == 42  # disabled: plain call
        with obs.session("t") as session:
            assert work() == 42
        assert [s.name for s in session.tracer.spans] == ["timed.work"]

    def test_build_manifest_uses_annotations(self):
        with obs.session("study") as session:
            obs.annotate("topology", "medium")
            obs.annotate("seed.mc_root", 11)
            with obs.span("phase.one"):
                pass
        manifest = session.build_manifest(arguments={"samples": 5})
        assert manifest.command == "study"
        assert manifest.topology == "medium"
        assert manifest.seed == {"mc_root": 11}
        assert [p.name for p in manifest.phases] == ["phase.one"]
        # explicit values override the annotations
        override = session.build_manifest(
            topology="large", seed={"mc_root": 99}
        )
        assert override.topology == "large"
        assert override.seed == {"mc_root": 99}


class TestExport:
    def test_summarize_spans_aggregates_by_name(self):
        spans = [
            {"name": "a", "duration": 1.0},
            {"name": "b", "duration": 5.0},
            {"name": "a", "duration": 3.0},
        ]
        assert summarize_spans(spans) == [
            ("b", 1, 5.0, 5.0),
            ("a", 2, 4.0, 2.0),
        ]

    def test_render_manifest_sections(self):
        with obs.session("demo") as session:
            obs.annotate("topology", "small")
            obs.annotate("seed.root", 3)
            with obs.span("demo.phase"):
                obs.count("demo.events", 2)
                obs.observe("demo.seconds", 0.5)
            obs.gauge("demo.load", 0.25)
            obs.note_solver("closed-form")
        manifest = session.build_manifest(arguments={"points": 41})
        text = render_manifest(manifest)
        for fragment in (
            "Run manifest", "closed-form", "seed.root", "Arguments",
            "points", "Phases", "demo.phase", "Metrics", "demo.events",
            "Span profile",
        ):
            assert fragment in text


class TestReportingWriters:
    def _manifest(self) -> RunManifest:
        with obs.session("writers") as session:
            obs.annotate("seed.root", 5)
            with obs.span("phase", kind="demo"):
                obs.count("events", 7)
                obs.observe("seconds", 0.25)
        return session.build_manifest(arguments={"samples": 12})

    def test_write_manifest_json(self, tmp_path):
        manifest = self._manifest()
        path = write_manifest_json(tmp_path / "trace.json", manifest)
        assert RunManifest.load(path) == manifest

    def test_write_manifest_csv(self, tmp_path):
        manifest = self._manifest()
        path = write_manifest_csv(tmp_path / "trace.csv", manifest)
        with open(path, newline="", encoding="utf-8") as handle:
            rows = list(csv.reader(handle))
        assert rows[0] == ["section", "name", "value"]
        sections = {row[0] for row in rows[1:]}
        assert {"run", "argument", "seed", "phase", "counter"} <= sections
        by_key = {(row[0], row[1]): row[2] for row in rows[1:]}
        assert by_key[("argument", "samples")] == "12"
        assert by_key[("histogram", "seconds.count")] == "1"

    def test_write_spans_csv(self, tmp_path):
        manifest = self._manifest()
        path = write_spans_csv(tmp_path / "spans.csv", manifest)
        with open(path, newline="", encoding="utf-8") as handle:
            rows = list(csv.reader(handle))
        assert rows[0] == ["name", "start_s", "duration_s", "depth", "parent"]
        assert rows[1][0] == "phase"
