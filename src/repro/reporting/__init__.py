"""Plain-text and CSV rendering used by the benchmark harness and examples."""

from repro.reporting.tables import format_table
from repro.reporting.csvout import write_csv

__all__ = ["format_table", "write_csv"]
