"""Repair-time distribution samplers.

The analytic models only use *mean* restart times; by the alternating
renewal theorem, steady-state availability depends on repair times only
through their mean, not their shape.  The simulator defaults to
exponential repairs, but accepts any sampler from this module so that the
distribution-insensitivity can be *demonstrated* rather than assumed
(ablation: deterministic and heavy-tailed lognormal repairs yield the same
steady-state availability; outage-duration percentiles of course differ).

A sampler is a callable ``(rng, stream_name, mean) -> delay`` drawing one
repair time with the requested mean.
"""

from __future__ import annotations

import math
from typing import Callable

from repro.errors import SimulationError
from repro.sim.rng import RngStreams

RepairSampler = Callable[[RngStreams, str, float], float]


def exponential_repairs(rng: RngStreams, name: str, mean: float) -> float:
    """Memoryless repairs — the default, matching the CTMC models."""
    return rng.exponential(name, mean)


def deterministic_repairs(rng: RngStreams, name: str, mean: float) -> float:
    """Fixed-duration repairs (e.g. a scripted restart procedure)."""
    if mean <= 0:
        raise SimulationError(f"repair mean must be > 0, got {mean}")
    return mean


def lognormal_repairs(cv: float = 1.5) -> RepairSampler:
    """Heavy-tailed repairs with coefficient of variation ``cv``.

    Models human-driven restorations where most repairs are quick but a
    few take far longer; parameterized so the *mean* equals the requested
    mean exactly.
    """
    if cv <= 0:
        raise SimulationError(f"cv must be > 0, got {cv}")
    sigma2 = math.log(1.0 + cv * cv)
    sigma = math.sqrt(sigma2)

    def sample(rng: RngStreams, name: str, mean: float) -> float:
        if mean <= 0:
            raise SimulationError(f"repair mean must be > 0, got {mean}")
        mu = math.log(mean) - sigma2 / 2.0
        return float(rng.stream(name).lognormal(mu, sigma))

    return sample


def uniform_repairs(spread: float = 0.5) -> RepairSampler:
    """Repairs uniform on ``mean * [1 - spread, 1 + spread]``."""
    if not 0.0 <= spread < 1.0:
        raise SimulationError(f"spread must be in [0, 1), got {spread}")

    def sample(rng: RngStreams, name: str, mean: float) -> float:
        if mean <= 0:
            raise SimulationError(f"repair mean must be > 0, got {mean}")
        return float(
            rng.stream(name).uniform(mean * (1 - spread), mean * (1 + spread))
        )

    return sample
