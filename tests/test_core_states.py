"""Tests for the conditioning engine (repro.core.states)."""

import pytest

from repro.core.kofn import a_m_of_n, binomial_pmf
from repro.core.states import (
    enumerate_up_down,
    weighted_condition,
    weighted_condition_multi,
)
from repro.errors import ParameterError


class TestEnumerateUpDown:
    def test_weights_sum_to_one(self):
        states = list(enumerate_up_down({"a": 0.9, "b": 0.5, "c": 0.3}))
        assert sum(w for _, w in states) == pytest.approx(1.0)

    def test_state_count(self):
        states = list(enumerate_up_down({"a": 0.5, "b": 0.5}))
        assert len(states) == 4

    def test_zero_probability_states_skipped(self):
        states = list(enumerate_up_down({"a": 1.0, "b": 0.5}))
        assert all(state["a"] for state, _ in states)
        assert len(states) == 2

    def test_single_element(self):
        states = dict(
            (state["x"], w) for state, w in enumerate_up_down({"x": 0.7})
        )
        assert states[True] == pytest.approx(0.7)
        assert states[False] == pytest.approx(0.3)

    def test_rejects_bad_probability(self):
        with pytest.raises(ParameterError):
            list(enumerate_up_down({"a": 1.5}))


class TestWeightedCondition:
    def test_reproduces_eq1(self):
        # Conditioning 'at least m survivors' through the binomial count is
        # exactly Eq. (1).
        alpha = 0.95
        result = weighted_condition(
            3, alpha, lambda x: 1.0 if x >= 2 else 0.0
        )
        assert result == pytest.approx(a_m_of_n(2, 3, alpha))

    def test_constant_conditional(self):
        assert weighted_condition(5, 0.3, lambda x: 0.42) == pytest.approx(0.42)

    def test_identity_expectation(self):
        # E[X] = n p.
        assert weighted_condition(4, 0.25, float) == pytest.approx(1.0)


class TestWeightedConditionMulti:
    def test_factorizes_over_roles(self):
        # With a product-form conditional, the multi sum equals the product
        # of single sums — the structure of Eqs. (12)-(14).
        p = 0.9

        def single(m, n):
            return weighted_condition(n, p, lambda x: a_m_of_n(m, x, 0.99))

        multi = weighted_condition_multi(
            (3, 3),
            p,
            lambda counts: a_m_of_n(1, counts[0], 0.99)
            * a_m_of_n(2, counts[1], 0.99),
        )
        assert multi == pytest.approx(single(1, 3) * single(2, 3))

    def test_weights_are_binomial_products(self):
        collected = {}

        def conditional(counts):
            collected[counts] = collected.get(counts, 0)
            return 1.0

        result = weighted_condition_multi((2, 1), 0.5, conditional)
        assert result == pytest.approx(1.0)
        assert (2, 1) in collected
        assert (0, 0) in collected

    def test_includes_zero_counts(self):
        # The paper's printed sums start at 1; the exact sum includes 0
        # (where a 0-of-n block is still up).
        seen = []
        weighted_condition_multi((1,), 0.5, lambda c: seen.append(c) or 1.0)
        assert (0,) in seen

    def test_paper_eq14_weight(self):
        # P(g, c, a, d | x) is the product of four binomial pmfs.
        rho = 0.9998
        x = 3
        weight = (
            binomial_pmf(3, x, rho)
            * binomial_pmf(1, x, rho)
            * binomial_pmf(2, x, rho)
            * binomial_pmf(3, x, rho)
        )
        total = weighted_condition_multi(
            (x, x, x, x),
            rho,
            lambda counts: 1.0 if counts == (3, 1, 2, 3) else 0.0,
        )
        assert total == pytest.approx(weight)
