"""Process weak-link identification.

The paper's conclusion: "Identifying these process weak links allows
service provider operations to develop automation to reduce downtime and
improve vRouter availability, and provides the Open Source community with
focus areas for code improvements."

This module ranks individual processes (and supervisors, and
infrastructure elements) by their contribution to plane downtime, using
the cut-set calculus:

* **Fussell-Vesely share** — the fraction of plane unavailability whose
  cut sets involve the component;
* **automation benefit** — downtime removed if the component's restart
  were perfect (its unavailability driven to the auto-restart level), the
  quantitative version of "develop automation to reduce downtime".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.controller.spec import ControllerSpec, Plane
from repro.core.cutsets import minimal_cut_sets
from repro.core.importance import fussell_vesely
from repro.models.failure_modes import build_plane_structure
from repro.params.hardware import HardwareParams
from repro.params.software import RestartScenario, SoftwareParams
from repro.topology.deployment import DeploymentTopology
from repro.units import MINUTES_PER_YEAR


@dataclass(frozen=True)
class WeakLink:
    """One component's contribution to plane downtime."""

    component: str
    fussell_vesely: float
    automation_benefit_minutes: float


def _grouped(name: str) -> str:
    """Collapse per-instance components to their class.

    ``proc:Database/kafka-2`` -> ``proc:Database/kafka``;
    ``sup:Database-1`` -> ``sup:Database``; infrastructure keeps its name.
    """
    if name.startswith(("proc:", "sup:")):
        return name.rsplit("-", 1)[0]
    return name


def rank_weak_links(
    spec: ControllerSpec,
    topology: DeploymentTopology,
    hardware: HardwareParams,
    software: SoftwareParams,
    scenario: RestartScenario,
    plane: Plane,
    max_order: int = 2,
    top: int = 10,
) -> list[WeakLink]:
    """Rank component classes by Fussell-Vesely share of plane downtime.

    Per-instance components are grouped by class (``kafka-1..3`` count as
    one ``kafka`` weak link), since automation fixes the process, not one
    replica.  The automation benefit replaces the class's unavailability
    with the auto-restarted process unavailability ``1 - A`` (for
    infrastructure, zero) and reports the union-bound downtime delta.
    """
    built = build_plane_structure(
        spec, topology, hardware, software, scenario, plane
    )
    cuts = minimal_cut_sets(built.structure, max_order=max_order)
    if not cuts:
        return []
    shares = fussell_vesely(cuts, built.unavailability)

    def union_bound(unavailability: dict[str, float]) -> float:
        total = 0.0
        for cut in cuts:
            probability = 1.0
            for name in cut:
                probability *= unavailability[name]
            total += probability
        return total

    base = union_bound(built.unavailability)
    auto_u = 1.0 - software.a_process

    grouped_shares: dict[str, float] = {}
    members: dict[str, list[str]] = {}
    for name, share in shares.items():
        key = _grouped(name)
        grouped_shares[key] = grouped_shares.get(key, 0.0) + share
        members.setdefault(key, []).append(name)

    links = []
    for key, share in grouped_shares.items():
        improved = dict(built.unavailability)
        for name in members[key]:
            if name.startswith(("proc:", "sup:", "local:")):
                improved[name] = min(improved[name], auto_u)
            else:
                improved[name] = 0.0
        benefit = (base - union_bound(improved)) * MINUTES_PER_YEAR
        links.append(
            WeakLink(
                component=key,
                fussell_vesely=share,
                automation_benefit_minutes=max(0.0, benefit),
            )
        )
    links.sort(key=lambda link: (-link.fussell_vesely, link.component))
    return links[:top]
