"""Rolling-window SLO tracking: availability, latency, error-budget burn.

The serving layer's reliability is judged the way the paper judges
controller deployments — against explicit objectives, not vibes.  An
:class:`SLOTracker` holds two objectives over one sliding window:

* **availability** — the fraction of requests answered without a server
  error (5xx) must be at least ``availability_target``;
* **latency** — at least ``latency_quantile_target`` of requests must
  finish within ``latency_target_seconds`` (a percentile objective in the
  Sakic & Kellerer sense: response time is a first-class reliability
  measure next to uptime).

Each objective's **error budget** for the window is ``1 - target``: the
fraction of requests *allowed* to be bad.  The **burn rate** is the
observed bad fraction divided by that budget — burn rate 1.0 consumes the
budget exactly as fast as it accrues, 2.0 exhausts it in half a window,
and anything sustained above 1.0 means the objective will be violated.
``budget_remaining`` is ``1 - burn_rate`` (negative once the objective is
already out of compliance over the window).

The window is a ring of ``buckets`` fixed-width time buckets advanced
lazily against an injectable monotonic clock, so recording is O(1), a
snapshot is O(buckets), and the tests can drive hand-computed windows
with a fake clock.  Totals cover at most ``window_seconds`` of history
and at least ``window_seconds - window_seconds/buckets`` (the oldest
bucket retires whole).

:class:`repro.serve.app.ServeApp` records every request, exports the
snapshot as gauges in ``/metrics`` and a ``slo`` section in ``/v1/stats``,
and emits ``serve.slo.snapshot`` / ``serve.slo.breach`` /
``serve.slo.recovered`` telemetry events.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable

from repro.errors import ParameterError

__all__ = [
    "DEFAULT_BUCKETS",
    "DEFAULT_WINDOW_SECONDS",
    "SLOConfig",
    "SLOTracker",
]

#: Default sliding-window width (one hour of traffic).
DEFAULT_WINDOW_SECONDS = 3600.0

#: Default ring granularity: 60 buckets -> one-minute resolution.
DEFAULT_BUCKETS = 60


@dataclass(frozen=True)
class SLOConfig:
    """The objectives one :class:`SLOTracker` enforces."""

    name: str = "serve"
    window_seconds: float = DEFAULT_WINDOW_SECONDS
    buckets: int = DEFAULT_BUCKETS
    availability_target: float = 0.999
    latency_target_seconds: float = 0.25
    latency_quantile_target: float = 0.99

    def __post_init__(self) -> None:
        if self.window_seconds <= 0:
            raise ParameterError(
                f"window_seconds must be > 0, got {self.window_seconds}"
            )
        if self.buckets < 1:
            raise ParameterError(
                f"buckets must be >= 1, got {self.buckets}"
            )
        for field_name in ("availability_target", "latency_quantile_target"):
            value = getattr(self, field_name)
            if not 0.0 < value < 1.0:
                raise ParameterError(
                    f"{field_name} must be in (0, 1), got {value}"
                )
        if self.latency_target_seconds <= 0:
            raise ParameterError(
                "latency_target_seconds must be > 0, got "
                f"{self.latency_target_seconds}"
            )


class _RollingCounts:
    """Good/bad counts over a ring of fixed-width time buckets."""

    __slots__ = ("bucket_seconds", "_good", "_bad", "_position", "_count")

    def __init__(self, window_seconds: float, buckets: int):
        self.bucket_seconds = window_seconds / buckets
        self._good = [0] * buckets
        self._bad = [0] * buckets
        # Absolute bucket index (now // bucket_seconds) the ring head is
        # aligned to; advancing zeroes the buckets rotated past.
        self._position: int | None = None
        self._count = buckets

    def _advance(self, now: float) -> int:
        position = int(now // self.bucket_seconds)
        if self._position is None:
            self._position = position
        elif position > self._position:
            steps = min(position - self._position, self._count)
            for step in range(1, steps + 1):
                slot = (self._position + step) % self._count
                self._good[slot] = 0
                self._bad[slot] = 0
            self._position = position
        return self._position % self._count

    def record(self, good: bool, now: float) -> None:
        slot = self._advance(now)
        if good:
            self._good[slot] += 1
        else:
            self._bad[slot] += 1

    def totals(self, now: float) -> tuple[int, int]:
        self._advance(now)
        return sum(self._good), sum(self._bad)


class SLOTracker:
    """Two rolling objectives (availability, latency) over one window."""

    def __init__(
        self,
        config: SLOConfig | None = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.config = config or SLOConfig()
        self._clock = clock
        self._availability = _RollingCounts(
            self.config.window_seconds, self.config.buckets
        )
        self._latency = _RollingCounts(
            self.config.window_seconds, self.config.buckets
        )
        self.recorded = 0

    def record(self, ok: bool, latency_seconds: float) -> None:
        """Record one finished request.

        ``ok`` is the availability verdict (no server error); the latency
        verdict is derived from ``latency_seconds`` against the target.
        """
        now = self._clock()
        self._availability.record(bool(ok), now)
        self._latency.record(
            latency_seconds <= self.config.latency_target_seconds, now
        )
        self.recorded += 1

    @staticmethod
    def _objective(
        good: int, bad: int, target: float
    ) -> dict[str, Any]:
        total = good + bad
        ratio = good / total if total else 1.0
        budget = 1.0 - target
        bad_fraction = bad / total if total else 0.0
        burn_rate = bad_fraction / budget
        return {
            "target": target,
            "good": good,
            "bad": bad,
            "ratio": ratio,
            "burn_rate": burn_rate,
            "budget_remaining": 1.0 - burn_rate,
            "compliant": ratio >= target,
        }

    def snapshot(self) -> dict[str, Any]:
        """The JSON-serializable state of both objectives right now."""
        now = self._clock()
        availability = self._objective(
            *self._availability.totals(now),
            self.config.availability_target,
        )
        latency = self._objective(
            *self._latency.totals(now),
            self.config.latency_quantile_target,
        )
        latency["target_seconds"] = self.config.latency_target_seconds
        return {
            "name": self.config.name,
            "window_seconds": self.config.window_seconds,
            "recorded": self.recorded,
            "availability": availability,
            "latency": latency,
        }

    def compliance(self) -> dict[str, bool]:
        """``{"availability": bool, "latency": bool}`` for the window."""
        now = self._clock()
        good_a, bad_a = self._availability.totals(now)
        good_l, bad_l = self._latency.totals(now)

        def ok(good: int, bad: int, target: float) -> bool:
            total = good + bad
            return total == 0 or good / total >= target

        return {
            "availability": ok(
                good_a, bad_a, self.config.availability_target
            ),
            "latency": ok(
                good_l, bad_l, self.config.latency_quantile_target
            ),
        }

    def gauges(self, prefix: str = "serve.slo") -> dict[str, float]:
        """Snapshot flattened to gauge values for a metrics registry."""
        snapshot = self.snapshot()
        values: dict[str, float] = {}
        for objective in ("availability", "latency"):
            record = snapshot[objective]
            values[f"{prefix}.{objective}.ratio"] = record["ratio"]
            values[f"{prefix}.{objective}.burn_rate"] = record["burn_rate"]
            values[f"{prefix}.{objective}.budget_remaining"] = record[
                "budget_remaining"
            ]
            values[f"{prefix}.{objective}.compliant"] = float(
                record["compliant"]
            )
        return values
