"""Live SSE streaming: hub fan-out, framing, and the serve endpoints.

Covers :mod:`repro.serve.stream` in isolation (replay splice, ordering,
bounded-queue loss accounting, byte-level frame encoding) and the
endpoints built on it — ``GET /v1/events`` and ``GET /v1/jobs/<id>/events``
— including the acceptance bar: the SSE ``data:`` payload of a job's
stream is byte-equivalent to the JSONL sink's record of the same events,
in the same ``(run, seq)`` order.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.obs import telemetry
from repro.obs.telemetry import JsonlSink
from repro.serve.app import ServeApp, ServeConfig
from repro.serve.protocol import encode_chunk, LAST_CHUNK
from repro.serve.stream import (
    STREAM_CLOSED,
    TelemetryHub,
    encode_sse_event,
)

CAMPAIGN_SPEC = {
    "option": "1S",
    "horizon_hours": 300.0,
    "replications": 2,
    "seed": 7,
}


@pytest.fixture(autouse=True)
def _no_leaked_bus():
    telemetry.stop()
    yield
    telemetry.stop()


def run(coroutine):
    return asyncio.run(coroutine)


class TestSseEncoding:
    def test_frame_layout(self):
        frame = encode_sse_event(
            {"schema": 1, "seq": 4, "run": 2, "kind": "progress", "t": 0.5}
        ).decode("utf-8")
        lines = frame.split("\n")
        assert lines[0] == "id: 2-4"
        assert lines[1] == "event: progress"
        assert lines[2].startswith("data: ")
        assert frame.endswith("\n\n")

    def test_data_line_is_byte_equivalent_to_jsonl_sink(self, tmp_path):
        """The SSE payload and the JSONL record are the same bytes."""
        event = {
            "schema": 1,
            "seq": 0,
            "run": 1,
            "t": 1.25,
            "kind": "serve.job.end",
            "job_id": "j-1",
            "unicode": "säge",
        }
        path = tmp_path / "events.jsonl"
        sink = JsonlSink(path)
        sink.emit(event)
        sink.close()
        jsonl_line = path.read_bytes().splitlines()[0]
        frame = encode_sse_event(event)
        data_lines = [
            line
            for line in frame.split(b"\n")
            if line.startswith(b"data: ")
        ]
        assert data_lines == [b"data: " + jsonl_line]

    def test_missing_fields_fall_back(self):
        frame = encode_sse_event({}).decode("utf-8")
        assert frame.startswith("id: 0-0\nevent: message\n")


class TestTelemetryHub:
    def test_replay_splice_has_no_gap_and_no_duplicate(self):
        async def scenario():
            hub = TelemetryHub(loop=asyncio.get_running_loop())
            for seq in range(3):
                hub.emit({"seq": seq, "kind": "early"})
            subscription = hub.subscribe()
            for seq in range(3, 6):
                hub.emit({"seq": seq, "kind": "late"})
            seen = [event["seq"] for event in subscription.replayed]
            while len(seen) < 6:
                event = await subscription.get(timeout=1.0)
                assert event is not None, "live event never arrived"
                seen.append(event["seq"])
            return seen

        assert run(scenario()) == [0, 1, 2, 3, 4, 5]

    def test_predicate_filters_replay_and_live(self):
        async def scenario():
            hub = TelemetryHub(loop=asyncio.get_running_loop())
            hub.emit({"seq": 0, "kind": "keep"})
            hub.emit({"seq": 1, "kind": "drop"})
            subscription = hub.subscribe(
                predicate=lambda event: event["kind"] == "keep"
            )
            hub.emit({"seq": 2, "kind": "drop"})
            hub.emit({"seq": 3, "kind": "keep"})
            assert [e["seq"] for e in subscription.replayed] == [0]
            event = await subscription.get(timeout=1.0)
            return event["seq"]

        assert run(scenario()) == 3

    def test_replay_false_starts_live_only(self):
        async def scenario():
            hub = TelemetryHub(loop=asyncio.get_running_loop())
            hub.emit({"seq": 0})
            subscription = hub.subscribe(replay=False)
            return subscription.replayed

        assert run(scenario()) == []

    def test_slow_subscriber_drops_oldest_not_the_sentinel(self):
        async def scenario():
            hub = TelemetryHub(
                loop=asyncio.get_running_loop(), max_queue_events=3
            )
            subscription = hub.subscribe()
            for seq in range(6):
                hub.emit({"seq": seq})
            hub.close()
            # Let the call_soon_threadsafe callbacks run.
            await asyncio.sleep(0)
            received = []
            while True:
                item = await subscription.get(timeout=1.0)
                if item is STREAM_CLOSED:
                    break
                received.append(item["seq"])
            return received, subscription.dropped

        received, dropped = run(scenario())
        # Bounded queue of 3: the oldest live events were dropped (and
        # counted), the newest survived, and the close sentinel arrived.
        assert dropped == 4
        assert received == [4, 5]

    def test_unsubscribe_detaches(self):
        async def scenario():
            hub = TelemetryHub(loop=asyncio.get_running_loop())
            subscription = hub.subscribe()
            assert hub.subscriber_count == 1
            subscription.unsubscribe()
            subscription.unsubscribe()  # idempotent
            return hub.subscriber_count

        assert run(scenario()) == 0

    def test_emit_from_foreign_thread_preserves_order(self):
        async def scenario():
            hub = TelemetryHub(loop=asyncio.get_running_loop())
            subscription = hub.subscribe()

            def blast():
                for seq in range(50):
                    hub.emit({"seq": seq})

            await asyncio.to_thread(blast)
            seen = []
            while len(seen) < 50:
                event = await subscription.get(timeout=1.0)
                assert event is not None
                seen.append(event["seq"])
            return seen

        assert run(scenario()) == list(range(50))


async def _read_headers(reader) -> tuple[int, dict[str, str]]:
    status_line = await reader.readline()
    status = int(status_line.split()[1])
    headers: dict[str, str] = {}
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    return status, headers


async def _read_chunked(reader) -> bytes:
    """Dechunk a Transfer-Encoding: chunked body until the last chunk."""
    body = b""
    while True:
        size_line = await reader.readline()
        size = int(size_line.strip(), 16)
        if size == 0:
            await reader.readline()  # trailing CRLF
            return body
        body += await reader.readexactly(size)
        await reader.readexactly(2)  # chunk CRLF


def _parse_frames(body: bytes) -> list[dict]:
    """SSE frames -> [{"id": ..., "event": ..., "data": bytes}]."""
    frames = []
    for block in body.split(b"\n\n"):
        if not block.strip() or block.startswith(b":"):
            continue  # keepalive comment
        frame: dict = {}
        for line in block.split(b"\n"):
            name, _, value = line.partition(b": ")
            frame[name.decode("ascii")] = value
        frames.append(frame)
    return frames


class TestChunkedFraming:
    def test_encode_chunk_roundtrip(self):
        async def scenario():
            reader = asyncio.StreamReader()
            reader.feed_data(encode_chunk(b"hello"))
            reader.feed_data(encode_chunk(b" " * 300))  # multi-hex-digit size
            reader.feed_data(LAST_CHUNK)
            return await _read_chunked(reader)

        assert run(scenario()) == b"hello" + b" " * 300


class TestJobEventStream:
    """`GET /v1/jobs/<id>/events` — the acceptance path end to end."""

    def _submit_and_stream(self, tmp_path) -> tuple[bytes, list[str]]:
        """Run a job, stream its events, return (SSE body, JSONL lines)."""
        stream_path = tmp_path / "telemetry.jsonl"

        async def scenario():
            app = ServeApp(ServeConfig())
            await app.start()
            try:
                payload = json.dumps(
                    {"kind": "campaign", "spec": CAMPAIGN_SPEC}
                ).encode()
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", app.port
                )
                writer.write(
                    b"POST /v1/jobs HTTP/1.1\r\n"
                    + f"Content-Length: {len(payload)}\r\n".encode()
                    + b"Connection: close\r\n\r\n"
                    + payload
                )
                await writer.drain()
                raw = await reader.read()
                writer.close()
                status = int(raw.split(b" ", 2)[1])
                assert status == 202, raw
                job_id = json.loads(raw.partition(b"\r\n\r\n")[2])["id"]

                # Stream while the job runs: replayed events splice into
                # live ones and the stream ends itself at serve.job.end.
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", app.port
                )
                writer.write(
                    f"GET /v1/jobs/{job_id}/events HTTP/1.1\r\n\r\n".encode()
                )
                await writer.drain()
                status, headers = await _read_headers(reader)
                assert status == 200
                assert headers["content-type"] == "text/event-stream"
                assert headers["transfer-encoding"] == "chunked"
                body = await asyncio.wait_for(_read_chunked(reader), 120)
                writer.close()
                return job_id, body
            finally:
                await app.stop()

        telemetry.start([JsonlSink(stream_path)])
        try:
            job_id, body = run(scenario())
        finally:
            telemetry.stop()
        lines = [
            line
            for line in stream_path.read_bytes().splitlines()
            if json.loads(line).get("job_id") == job_id
        ]
        return body, lines

    def test_stream_is_byte_equivalent_to_jsonl_and_ordered(self, tmp_path):
        body, jsonl_lines = self._submit_and_stream(tmp_path)
        frames = _parse_frames(body)
        assert frames, "stream carried no events"

        # Every frame's data: payload is byte-identical to the JSONL
        # sink's line for the same event, in the same order.
        assert [frame["data"] for frame in frames] == jsonl_lines

        # The (run, seq) ids are strictly increasing and the stream ends
        # with the job's end event.
        events = [json.loads(frame["data"]) for frame in frames]
        seqs = [event["seq"] for event in events]
        assert seqs == sorted(seqs)
        assert len(set(seqs)) == len(seqs)
        kinds = [event["kind"] for event in events]
        assert kinds[0] == "serve.job.start"
        assert kinds[-1] == "serve.job.end"
        assert "serve.job.running" in kinds
        assert all(event["job_id"] for event in events)
        # id: header carries the (run, seq) order for EventSource clients.
        assert frames[-1]["id"].decode() == (
            f"{events[-1]['run']}-{events[-1]['seq']}"
        )

    def test_unknown_job_id_is_404(self):
        async def scenario():
            app = ServeApp(ServeConfig())
            await app.start()
            try:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", app.port
                )
                writer.write(
                    b"GET /v1/jobs/nope/events HTTP/1.1\r\n"
                    b"Connection: close\r\n\r\n"
                )
                await writer.drain()
                raw = await reader.read()
                writer.close()
                return int(raw.split(b" ", 2)[1])
            finally:
                await app.stop()

        telemetry.start([])
        try:
            assert run(scenario()) == 404
        finally:
            telemetry.stop()


class TestFirehose:
    def test_streaming_without_a_bus_is_503(self):
        async def scenario():
            app = ServeApp(ServeConfig())
            await app.start()
            try:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", app.port
                )
                writer.write(
                    b"GET /v1/events HTTP/1.1\r\nConnection: close\r\n\r\n"
                )
                await writer.drain()
                raw = await reader.read()
                writer.close()
                return int(raw.split(b" ", 2)[1])
            finally:
                await app.stop()

        assert run(scenario()) == 503

    def test_kind_filter_and_replay(self):
        """?kinds= filters; ?replay=1 prepends buffered history."""

        async def scenario():
            app = ServeApp(
                ServeConfig(stream_heartbeat_seconds=0.05)
            )
            await app.start()
            try:
                telemetry.emit("serve.slo.breach", objective="availability")
                telemetry.emit("progress", completed=1)
                telemetry.emit("serve.slo.recovered", objective="availability")
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", app.port
                )
                writer.write(
                    b"GET /v1/events?kinds=serve.slo.breach,"
                    b"serve.slo.recovered&replay=1 HTTP/1.1\r\n\r\n"
                )
                await writer.drain()
                status, headers = await _read_headers(reader)
                assert status == 200
                # The firehose never terminates on its own: read chunks
                # until both replayed frames arrived, then disconnect.
                body = b""
                while body.count(b"\ndata: ") < 2:
                    size_line = await asyncio.wait_for(
                        reader.readline(), 10
                    )
                    size = int(size_line.strip(), 16)
                    body += await reader.readexactly(size)
                    await reader.readexactly(2)
                writer.close()
                # The server notices the disconnect and unsubscribes.
                for _ in range(100):
                    if app._hub.subscriber_count == 0:
                        break
                    await asyncio.sleep(0.02)
                return body, app._hub.subscriber_count
            finally:
                await app.stop()

        telemetry.start([])
        try:
            body, subscribers = run(scenario())
        finally:
            telemetry.stop()
        kinds = [
            json.loads(frame["data"])["kind"]
            for frame in _parse_frames(body)
        ]
        assert kinds == ["serve.slo.breach", "serve.slo.recovered"]
        assert subscribers == 0

    def test_idle_stream_sends_keepalives(self):
        async def scenario():
            app = ServeApp(ServeConfig(stream_heartbeat_seconds=0.05))
            await app.start()
            try:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", app.port
                )
                writer.write(b"GET /v1/events HTTP/1.1\r\n\r\n")
                await writer.drain()
                await _read_headers(reader)
                size_line = await asyncio.wait_for(reader.readline(), 10)
                size = int(size_line.strip(), 16)
                chunk = await reader.readexactly(size)
                writer.close()
                return chunk
            finally:
                await app.stop()

        telemetry.start([])
        try:
            chunk = run(scenario())
        finally:
            telemetry.stop()
        assert chunk == b": keepalive\n\n"
