"""Mega-batch struct-of-arrays replication kernel.

Advances **all replications of a campaign simultaneously**: instead of one
Python event loop per replication, every per-component failure/repair clock
lives in one ``replications x clocks`` numpy matrix, the next event of every
replication is selected with a single vectorized ``argmin`` per round, and
state flips, repair draws, subtree reschedules, signal integration, and
batch-means accounting all happen as masked array updates.

**Exact-equivalence contract.**  For every spec the kernel accepts
(:func:`plan_batched` returns a model), the per-replication results are
*bit-identical* to the scalar engine run with the same seeds:

* Each replication ``r`` owns ``SeedSequence(seed_r)``; failure generators
  are spawned up front for every positive-rate component in registration
  order — exactly the spawn order the scalar engine's first-use stream
  creation produces during initial clock scheduling — and repair generators
  are spawned lazily at each component's first repair draw, which the
  lockstep loop replays in the same chronological order.
* Standard-exponential variates are buffered in fixed blocks and scaled by
  the mean at consumption time; numpy block draws consume the bit stream
  exactly like repeated scalar draws (see :mod:`repro.sim.rng`), so the
  per-stream variate sequences match the scalar engine element for element.
* Event times, signal integrals, batch values, outage durations, and
  attribution ledgers are computed with the same IEEE-754 operations in the
  same order as the scalar engine, so availabilities, episode counts, and
  attribution totals match with ``==``, not ``approx``.

The scalar engine additionally pops *stale* events (cancelled clocks whose
epoch moved on); those pops never change state, draw randomness, or alter
recorded values, so the kernel simply never materializes them.  Event
*counts* therefore differ between the engines (the kernel counts live
transitions only) — every measured quantity is unaffected.

**Expressibility.**  The kernel handles the pure exponential fail/repair
dynamics of :func:`repro.sim.controller_sim.build_simulator` under restart
scenario 1 (supervisor NOT required): k-of-n quorum signals and
dependency-closure masking over single-parent dependency chains.  Anything
richer — scenario-2 supervisor restore hooks, hazard processes
(maintenance windows, correlated bursts), limited repair crews, multi-parent
dependencies — falls back to the scalar engine (see
:func:`inexpressible_reason`).
"""

from __future__ import annotations

import numpy as np

from repro.controller.spec import ControllerSpec
from repro.errors import SimulationError
from repro.obs import runtime as obs
from repro.obs import telemetry
from repro.params.hardware import HardwareParams
from repro.params.software import RestartScenario, SoftwareParams
from repro.perf.batching import replication_batch_size
from repro.sim.controller_sim import (
    OutageStatistics,
    SimulationConfig,
    SimulationResult,
    build_simulator,
    plane_signal_keys,
    signal_plan,
)
from repro.sim.entities import ComponentKind
from repro.sim.measures import batch_means_interval, build_attribution
from repro.topology.deployment import DeploymentTopology

__all__ = [
    "BLOCK",
    "SIGNALS",
    "BatchedModel",
    "inexpressible_reason",
    "plan_batched",
    "run_batched",
    "validate_batched_mode",
]

#: Buffered standard-exponential block per (replication, component) stream.
#: Block size never changes variate values (numpy block draws consume the
#: bit stream like repeated scalar draws), so a fixed size is safe even
#: though the scalar engine's buffers grow geometrically.
BLOCK = 64

#: Signal evaluation order — matches the scalar engine's registration order.
SIGNALS = ("cp", "sdp", "ldp", "dp")

_BATCHED_MODES = ("auto", "on", "off")


def validate_batched_mode(batched: str) -> str:
    """Check a ``batched=`` knob value, returning it for chaining."""
    if batched not in _BATCHED_MODES:
        raise SimulationError(
            f"batched must be one of {_BATCHED_MODES}, got {batched!r}"
        )
    return batched


def inexpressible_reason(
    scenario: RestartScenario,
    hazards: tuple = (),
    repair_crews=None,
) -> str | None:
    """Why a workload cannot run on the batched kernel (``None`` if it can).

    These are the *static* checks; :func:`plan_batched` additionally
    verifies the dependency graph is a forest of single-parent chains.
    """
    if scenario is not RestartScenario.NOT_REQUIRED:
        return (
            "restart scenario 2 (supervisor required) uses on_repair "
            "restore hooks the kernel does not model"
        )
    if hazards:
        return f"{len(hazards)} hazard spec(s) attached (scheduled actions)"
    if repair_crews is not None:
        return "limited repair crews (FIFO capacity queueing)"
    return None


class BatchedModel:
    """Frozen struct-of-arrays description of one expressible workload.

    Built once per campaign from the same :func:`build_simulator` output the
    scalar engine runs, then shared by every replication chunk.  All arrays
    are indexed by the scalar engine's component *registration order*, which
    is what fixes the RNG spawn order.
    """

    __slots__ = (
        "keys",
        "n_components",
        "fail_rate",
        "rate_pos",
        "rate_pos_pad",
        "fail_scale",
        "repair_mean",
        "is_auto",
        "sup_idx",
        "auto_mean",
        "anc_pad",
        "cand_idx",
        "closure_fail_idx",
        "local_idx",
        "depth_sc",
        # Flattened signal-evaluation layout: one gather over
        # ``sig_flat`` + two reduceats evaluate every quorum unit of both
        # planes (and the LDP AND-chain, encoded as a 1-instance unit with
        # quorum 1) in a handful of vector ops per round.
        "sig_flat",
        "sig_inst_starts",
        "sig_unit_starts",
        "sig_quorums",
        "sig_cp_count",
        "sig_dp_count",
        "sig_has_local",
        "sig_cp_false",
        "sig_dp_false",
    )


def plan_batched(
    spec: ControllerSpec,
    topology: DeploymentTopology,
    hardware: HardwareParams,
    software: SoftwareParams,
    scenario: RestartScenario,
    config: SimulationConfig,
) -> tuple[BatchedModel | None, str | None]:
    """``(model, None)`` when the workload is expressible, else ``(None, why)``.

    Builds a probe simulator through the same constructor the scalar path
    uses (cheap — no events run), so component registration order, rates,
    repair means, and dependency closures are definitionally identical
    between the two engines.
    """
    reason = inexpressible_reason(scenario)
    if reason is not None:
        return None, reason
    probe = build_simulator(
        spec, topology, hardware, software, scenario, config
    )
    components = list(probe.components.values())
    for component in components:
        if len(component.dependencies) > 1:
            return None, (
                f"component {component.key!r} has "
                f"{len(component.dependencies)} dependencies "
                f"(kernel masking assumes single-parent chains)"
            )

    model = BatchedModel()
    keys = [component.key for component in components]
    index = {key: i for i, key in enumerate(keys)}
    n = len(keys)
    model.keys = tuple(keys)
    model.n_components = n
    model.fail_rate = np.array(
        [component.failure_rate for component in components]
    )
    model.rate_pos = model.fail_rate > 0.0
    model.rate_pos_pad = np.concatenate([model.rate_pos, [False]])
    # Scaled exactly as the scalar engine's 1.0 / failure_rate mean.
    model.fail_scale = np.where(
        model.rate_pos, 1.0 / np.where(model.rate_pos, model.fail_rate, 1.0),
        0.0,
    )
    model.repair_mean = np.array(
        [component.repair_mean for component in components]
    )
    model.is_auto = np.array(
        [
            component.kind is ComponentKind.PROCESS and component.auto_restart
            for component in components
        ]
    )
    model.sup_idx = np.array(
        [
            index[component.supervisor_key]
            if component.supervisor_key is not None
            else -1
            for component in components
        ]
    )
    model.auto_mean = software.auto_restart_hours

    # Ancestor chains (self first): a component is effectively up iff every
    # entry of its chain is intrinsically up.  Padded with the virtual
    # always-up column ``n``; row ``n`` itself is all-pad, so one gather
    # yields effective states with a trailing don't-care column that every
    # consumer masks out anyway.
    chains: list[list[int]] = []
    for component in components:
        chain = [index[component.key]]
        current = component
        while current.dependencies:
            parent = index[current.dependencies[0]]
            chain.append(parent)
            current = components[parent]
        chains.append(chain)
    depth_max = max(len(chain) for chain in chains)
    model.anc_pad = np.full((n + 1, depth_max), n, dtype=np.intp)
    for i, chain in enumerate(chains):
        model.anc_pad[i, : len(chain)] = chain

    # Dependents closures in the engine's canonical order; ``cand_idx`` is
    # [self] + closure (the failure-clock candidates after a repair of the
    # row component), ``closure_fail_idx`` targets the fail columns to
    # blanket-cancel on a failure (padded to the permanent-inf column 2n).
    closures = [
        [index[key] for key in probe._closure[component.key]]
        for component in components
    ]
    k_max = max((len(c) for c in closures), default=0)
    model.cand_idx = np.full((n, k_max + 1), n, dtype=np.intp)
    model.closure_fail_idx = np.full((n, max(k_max, 1)), 2 * n, dtype=np.intp)
    for i, closure in enumerate(closures):
        model.cand_idx[i, 0] = i
        if closure:
            model.cand_idx[i, 1 : 1 + len(closure)] = closure
            model.closure_fail_idx[i, : len(closure)] = closure

    # Signal structure from the shared declarative plan, flattened for
    # reduceat evaluation: members grouped unit -> instance -> member.
    # ``sig_inst_starts`` delimits each instance's AND-segment inside the
    # flat member gather; ``sig_unit_starts`` delimits each unit's run of
    # instances for the satisfied-count sum.  The LDP AND-chain rides
    # along as a trailing 1-instance unit with quorum 1.
    plan = signal_plan(spec, topology)
    plane_units = plan["plane_units"]
    model.local_idx = np.array(
        [index[key] for key in plan["local_keys"]], dtype=np.intp
    )
    flat: list[int] = []
    inst_starts: list[int] = []
    unit_starts: list[int] = []
    quorums: list[int] = []
    model.sig_cp_false = False
    model.sig_dp_false = False
    for plane_name, false_attr in (("cp", "sig_cp_false"), ("dp", "sig_dp_false")):
        count = 0
        for quorum, per_instance in plane_units[plane_name]:
            if not per_instance:
                # A unit with zero instances can never satisfy a positive
                # quorum — the whole plane is constantly down.
                setattr(model, false_attr, quorum > 0)
                continue
            unit_starts.append(len(inst_starts))
            quorums.append(quorum)
            for member_keys in per_instance:
                inst_starts.append(len(flat))
                flat.extend(index[key] for key in member_keys)
            count += 1
        if plane_name == "cp":
            model.sig_cp_count = count
        else:
            model.sig_dp_count = count
    model.sig_has_local = model.local_idx.size > 0
    if model.sig_has_local:
        unit_starts.append(len(inst_starts))
        quorums.append(1)
        inst_starts.append(len(flat))
        flat.extend(int(i) for i in model.local_idx)
    model.sig_flat = np.array(flat, dtype=np.intp)
    model.sig_inst_starts = np.array(inst_starts, dtype=np.intp)
    model.sig_unit_starts = np.array(unit_starts, dtype=np.intp)
    model.sig_quorums = np.array(quorums, dtype=np.int64)

    # Attribution depths: depth_sc[s, c] is the shortest dependents-closure
    # distance from component c to signal s's declared dependency set (the
    # scalar engine's `_depth_map` + `_stamp_outage_cause` rule), or -1
    # when unreachable (the scalar fallback stamps the edge with depth -1).
    dependents = [
        [index[key] for key in component.dependents]
        for component in components
    ]
    sdp_keys = plane_signal_keys(plan, "dp")
    declared = (
        [index[key] for key in plane_signal_keys(plan, "cp")],
        [index[key] for key in sdp_keys],
        list(model.local_idx),
        [index[key] for key in sdp_keys] + list(model.local_idx),
    )
    model.depth_sc = np.full((len(SIGNALS), n), -1, dtype=np.int64)
    for origin in range(n):
        depths = {origin: 0}
        frontier = [origin]
        depth = 0
        while frontier:
            depth += 1
            next_frontier = []
            for node in frontier:
                for dependent in dependents[node]:
                    if dependent not in depths:
                        depths[dependent] = depth
                        next_frontier.append(dependent)
            frontier = next_frontier
        for s, decl in enumerate(declared):
            best = -1
            for key_idx in decl:
                d = depths.get(key_idx)
                if d is not None and (best < 0 or d < best):
                    best = d
            model.depth_sc[s, origin] = best

    return model, None


def _signal_states(
    model: BatchedModel, eff: np.ndarray, sel: np.ndarray | None = None
) -> np.ndarray:
    """Evaluate the four plane signals for each row of ``eff``.

    Mirrors the scalar predicates exactly: CP/SDP are AND-of-quorum-units
    over per-instance member AND-chains, LDP is the host-role AND-chain,
    DP = SDP AND LDP.  One flat gather plus two reduceats evaluates every
    unit of both planes (and LDP) at once — the per-round hot path.  When
    ``sel`` is given only those rows of ``eff`` are evaluated (a single
    fused 2-D gather instead of a row copy followed by a column gather).
    """
    rows = eff.shape[0] if sel is None else sel.shape[0]
    out = np.empty((rows, len(SIGNALS)), dtype=bool)
    cp_count = model.sig_cp_count
    dp_count = model.sig_dp_count
    if model.sig_flat.size:
        if sel is None:
            values = eff[:, model.sig_flat]
        else:
            values = eff[sel[:, None], model.sig_flat]
        instance_up = np.logical_and.reduceat(
            values, model.sig_inst_starts, axis=1
        )
        satisfied = np.add.reduceat(
            instance_up, model.sig_unit_starts, axis=1, dtype=np.int64
        )
        unit_ok = satisfied >= model.sig_quorums
    else:  # no quorum units at all
        unit_ok = np.ones((rows, 0), dtype=bool)
    cp = unit_ok[:, :cp_count].all(axis=1)
    sdp = unit_ok[:, cp_count : cp_count + dp_count].all(axis=1)
    if model.sig_cp_false:
        cp = np.zeros(rows, dtype=bool)
    if model.sig_dp_false:
        sdp = np.zeros(rows, dtype=bool)
    if model.sig_has_local:
        ldp = unit_ok[:, -1]
    else:
        ldp = np.ones(rows, dtype=bool)
    out[:, 0] = cp
    out[:, 1] = sdp
    out[:, 2] = ldp
    out[:, 3] = sdp & ldp
    return out


def _run_chunk(
    model: BatchedModel,
    seeds: list[int],
    horizon: float,
    batches: int,
) -> list[tuple[SimulationResult, int]]:
    """Advance one chunk of replications in lockstep to the horizon."""
    n_rep = len(seeds)
    n = model.n_components
    n_sig = len(SIGNALS)
    boundaries = [horizon * (i + 1) / batches for i in range(batches)]

    # Clock matrix: columns [0, n) failure clocks, [n, 2n) repair clocks,
    # column 2n permanently +inf (the blanket-cancel pad target).
    times = np.full((n_rep, 2 * n + 1), np.inf)
    # Intrinsic state; column n is a virtual always-up pad for ancestor
    # gathers of chain-end components.
    intr = np.ones((n_rep, n + 1), dtype=bool)

    roots = [np.random.SeedSequence(int(seed)) for seed in seeds]
    pos_idx = np.flatnonzero(model.rate_pos)
    fail_gens: list[list] = [[None] * n for _ in range(n_rep)]
    repair_gens: list[list] = [[None] * n for _ in range(n_rep)]
    fail_buf = np.empty((n_rep, n, BLOCK))
    repair_buf = np.empty((n_rep, n, BLOCK))
    fail_pos = np.full((n_rep, n), BLOCK, dtype=np.int64)
    repair_pos = np.full((n_rep, n), BLOCK, dtype=np.int64)

    # Failure generators spawn up front in registration order — the scalar
    # engine's initial-scheduling stream-creation order.
    for r, root in enumerate(roots):
        children = root.spawn(len(pos_idx))
        for j, c in enumerate(pos_idx):
            generator = np.random.default_rng(children[j])
            fail_gens[r][c] = generator
            fail_buf[r, c] = generator.standard_exponential(BLOCK)
    fail_pos[:, pos_idx] = 1
    times[:, pos_idx] = fail_buf[:, pos_idx, 0] * model.fail_scale[pos_idx]

    fail_buf_flat = fail_buf.reshape(-1)
    repair_buf_flat = repair_buf.reshape(-1)
    fail_pos_flat = fail_pos.reshape(-1)
    repair_pos_flat = repair_pos.reshape(-1)

    def draw(rows, comps, buf_flat, pos_flat, gens, lazy: bool) -> np.ndarray:
        """Pop one standard exponential per (row, component) pair.

        Flat linear indexing into the ``(reps, comps, BLOCK)`` buffers —
        one gather and one scatter per call instead of multi-axis fancy
        indexing on the hot path.
        """
        linear = rows * n + comps
        cursor = pos_flat[linear]
        need = cursor >= BLOCK
        if need.any():
            for i in np.flatnonzero(need):
                r = int(rows[i])
                c = int(comps[i])
                generator = gens[r][c]
                if generator is None:
                    if not lazy:  # pragma: no cover - defensive
                        raise SimulationError(
                            f"missing fail stream for component {c}"
                        )
                    generator = np.random.default_rng(roots[r].spawn(1)[0])
                    gens[r][c] = generator
                block_start = (r * n + c) * BLOCK
                buf_flat[block_start : block_start + BLOCK] = (
                    generator.standard_exponential(BLOCK)
                )
                pos_flat[r * n + c] = 0
            cursor = pos_flat[linear]
        values = buf_flat[linear * BLOCK + cursor]
        pos_flat[linear] = cursor + 1
        return values

    # Integration state.
    last = np.zeros(n_rep)
    total = np.zeros(n_rep)
    up = np.zeros((n_rep, n_sig))
    prev_up = np.zeros((n_rep, n_sig))
    prev_total = np.zeros(n_rep)
    bidx = np.zeros(n_rep, dtype=np.int64)
    next_boundary = np.full(n_rep, boundaries[0])
    done = np.zeros(n_rep, dtype=bool)
    events = np.zeros(n_rep, dtype=np.int64)

    # Effective (intrinsic AND ancestors) state, maintained incrementally:
    # an event on component ``c`` can only change the effective state of
    # ``c`` and its dependents closure, so each round rewrites just those
    # entries instead of re-gathering every ancestor chain.  Column ``n``
    # is the all-pad don't-care column and stays True forever.
    eff = np.ones((n_rep, n + 1), dtype=bool)
    # Components with no dependents (the overwhelming majority: processes
    # and scenario-1 supervisors) only ever update their own entry.
    lone_mask = (model.cand_idx != n).sum(axis=1) == 1
    sig_state = _signal_states(model, eff)
    outage_start = np.full((n_rep, n_sig), np.nan)
    outage_start[~sig_state] = 0.0  # a signal that starts down opens at t=0
    open_cause: list[list] = [[None] * n_sig for _ in range(n_rep)]
    durations: list[list[list[float]]] = [
        [[] for _ in range(n_sig)] for _ in range(n_rep)
    ]
    causes: list[list[list]] = [
        [[] for _ in range(n_sig)] for _ in range(n_rep)
    ]
    batch_vals: list[list[list[float]]] = [
        [[] for _ in range(n_sig)] for _ in range(n_rep)
    ]

    def record_batch(r: int, boundary: float) -> None:
        """The scalar engine's `_record_batch` for one replication."""
        elapsed = boundary - last[r]
        total[r] += elapsed
        for s in range(n_sig):
            if sig_state[r, s]:
                up[r, s] += elapsed
        last[r] = boundary
        batch_total = total[r] - prev_total[r]
        for s in range(n_sig):
            if batch_total > 0:
                batch_vals[r][s].append(
                    float((up[r, s] - prev_up[r, s]) / batch_total)
                )
            prev_up[r, s] = up[r, s]
        prev_total[r] = total[r]

    sup_idx = model.sup_idx
    depth_sc = model.depth_sc
    keys = model.keys
    anc_pad = model.anc_pad
    row_range = np.arange(n_rep)
    active = np.flatnonzero(~done)
    while active.size:
        all_live = active.size == n_rep
        sub = times if all_live else times[active]
        local_idx = sub.argmin(axis=1)
        t = sub[row_range[: active.size], local_idx]

        # Boundary crossings and horizon stops are rare per row — handle
        # them in exact scalar order, per replication.
        crossing = (t >= next_boundary[active]) | (t >= horizon)
        crossing_any = bool(crossing.any())
        if crossing_any:
            for i in np.flatnonzero(crossing):
                r = int(active[i])
                time_r = float(t[i])
                b = int(bidx[r])
                while b < batches and time_r >= boundaries[b]:
                    record_batch(r, boundaries[b])
                    b += 1
                if time_r >= horizon:
                    # The scalar loop breaks before executing this event
                    # and records every remaining boundary.
                    while b < batches:
                        record_batch(r, boundaries[b])
                        b += 1
                    done[r] = True
                bidx[r] = b
                next_boundary[r] = (
                    boundaries[b] if b < batches else np.inf
                )
            exec_mask = ~done[active]
            er = active[exec_mask]
            eidx = local_idx[exec_mask]
            et = t[exec_mask]
        else:
            er = active
            eidx = local_idx
            et = t

        if er.size:
            full = all_live and not crossing_any
            is_fail = eidx < n
            comp = np.where(is_fail, eidx, eidx - n)

            # Expire the fired clocks and flip intrinsic state.
            times[er, eidx] = np.inf
            fail_sel = np.flatnonzero(is_fail)
            repair_sel = np.flatnonzero(~is_fail)
            fail_rows = er[fail_sel]
            fail_comp = comp[fail_sel]
            repair_rows = er[repair_sel]
            repair_comp = comp[repair_sel]
            intr[fail_rows, fail_comp] = False
            intr[repair_rows, repair_comp] = True
            if fail_rows.size:
                # Blanket-cancel every failure clock in the dependents
                # closure: while the component is down no closure member
                # can hold one (the scalar engine's subtree reschedule).
                times[
                    fail_rows[:, None], model.closure_fail_idx[fail_comp]
                ] = np.inf

            # Incremental effective-state update: an event on ``c`` only
            # touches ``c`` and its dependents closure.  Components with
            # no dependents (almost every event) rewrite one entry from
            # their own ancestor chain; the rare infra events rewrite the
            # whole padded candidate block (pad writes land on the
            # always-True column ``n``).
            lone = lone_mask[comp]
            lone_sel = np.flatnonzero(lone)
            if lone_sel.size:
                lrows = er[lone_sel]
                lcomp = comp[lone_sel]
                eff[lrows, lcomp] = intr[
                    lrows[:, None], anc_pad[lcomp]
                ].all(axis=1)
            wide_sel = np.flatnonzero(~lone)
            if wide_sel.size:
                wrows = er[wide_sel]
                cols = model.cand_idx[comp[wide_sel]]
                eff[wrows[:, None], cols] = intr[
                    wrows[:, None, None], anc_pad[cols]
                ].all(axis=2)

            # Repair draws for the rows that just failed: AUTO processes
            # restart in R while their supervisor is effectively up, R_S
            # otherwise; everything else uses its stored repair mean.
            if fail_rows.size:
                sup = sup_idx[fail_comp]
                sup_col = np.where(sup < 0, n, sup)
                sup_ok = (sup < 0) | eff[fail_rows, sup_col]
                mean = np.where(
                    model.is_auto[fail_comp] & sup_ok,
                    model.auto_mean,
                    model.repair_mean[fail_comp],
                )
                values = draw(
                    fail_rows, fail_comp, repair_buf_flat, repair_pos_flat,
                    repair_gens, lazy=True,
                )
                times[fail_rows, n + fail_comp] = (
                    et[fail_sel] + values * mean
                )

            # Fresh failure clocks after a repair: the repaired component
            # plus every transitive dependent that is now effectively up
            # (and can fail at all) redraws its clock — memorylessness
            # makes the resample exact.
            if repair_rows.size:
                cand = model.cand_idx[repair_comp]
                eligible = (
                    eff[repair_rows[:, None], cand]
                    & model.rate_pos_pad[cand]
                )
                pair_row, pair_col = np.nonzero(eligible)
                if pair_row.size:
                    draw_rows = repair_rows[pair_row]
                    draw_comp = cand[pair_row, pair_col]
                    values = draw(
                        draw_rows, draw_comp, fail_buf_flat, fail_pos_flat,
                        fail_gens, lazy=False,
                    )
                    times[draw_rows, draw_comp] = (
                        et[repair_sel][pair_row]
                        + values * model.fail_scale[draw_comp]
                    )

            # Signal integration (the scalar `_refresh_signals`).  On the
            # no-crossing all-live fast path every row executes, so the
            # integration arrays update in place without fancy indexing
            # and the previous state array is read without a copy.
            new_sig = (
                _signal_states(model, eff)
                if full
                else _signal_states(model, eff, er)
            )
            old_sig = sig_state if full else sig_state[er]
            elapsed = et - last if full else et - last[er]
            changed = old_sig != new_sig
            if changed.any():
                for i, s in zip(*np.nonzero(changed)):
                    r = int(er[i])
                    s = int(s)
                    if old_sig[i, s]:
                        # Up -> down: open an episode, charged to the
                        # failing component at its closure depth.
                        outage_start[r, s] = et[i]
                        if is_fail[i]:
                            c = int(comp[i])
                            open_cause[r][s] = (
                                keys[c], "stochastic", int(depth_sc[s, c])
                            )
                        else:  # pragma: no cover - repairs cannot mask
                            open_cause[r][s] = None
                    else:
                        # Down -> up: close the episode.
                        if not np.isnan(outage_start[r, s]):
                            durations[r][s].append(
                                float(et[i] - outage_start[r, s])
                            )
                            causes[r][s].append(open_cause[r][s])
                        outage_start[r, s] = np.nan
                        open_cause[r][s] = None
            if full:
                total += elapsed
                up += np.where(old_sig, elapsed[:, None], 0.0)
                last[:] = et
                sig_state = new_sig
                events += 1
            else:
                total[er] += elapsed
                up[er] += np.where(old_sig, elapsed[:, None], 0.0)
                last[er] = et
                sig_state[er] = new_sig
                events[er] += 1

            # Rows whose final boundary was crossed by this event exit
            # after executing it, like the scalar loop condition;  ``bidx``
            # only moves inside the crossing handler, so there is nothing
            # to check on rounds without one.
            if crossing_any:
                final = bidx[er] >= batches
                if final.any():
                    done[er[final]] = True

        if crossing_any:
            active = np.flatnonzero(~done)

    # -- result assembly (the scalar `collect_result`) --------------------
    out: list[tuple[SimulationResult, int]] = []
    for r in range(n_rep):
        intervals = {}
        outages = {}
        attribution = {}
        availability = {}
        total_r = float(total[r])
        for s, name in enumerate(SIGNALS):
            values = batch_vals[r][s]
            if len(values) >= 2:
                intervals[name] = batch_means_interval(values)
            episode_durations = durations[r][s]
            count = len(episode_durations)
            outages[name] = OutageStatistics(
                count=count,
                frequency_per_hour=count / total_r,
                mean_duration_hours=(
                    sum(episode_durations) / count if count else 0.0
                ),
            )
            open_duration = None
            if not np.isnan(outage_start[r, s]):
                open_duration = float(last[r] - outage_start[r, s])
            attribution[name] = build_attribution(
                name,
                episode_durations,
                causes[r][s],
                open_cause=open_cause[r][s],
                open_duration=open_duration,
            )
            availability[name] = float(up[r, s] / total[r])
        out.append(
            (
                SimulationResult(
                    cp=availability["cp"],
                    shared_dp=availability["sdp"],
                    local_dp=availability["ldp"],
                    dp=availability["dp"],
                    intervals=intervals,
                    outages=outages,
                    horizon_hours=horizon,
                    attribution=attribution,
                ),
                int(events[r]),
            )
        )
    return out


def run_batched(
    model: BatchedModel,
    seeds: list[int],
    horizon: float,
    batches: int,
) -> list[tuple[SimulationResult, int]]:
    """Run one replication per seed on the batched kernel.

    Returns ``(result, live_event_count)`` pairs in seed order.  Large seed
    lists are split into memory-bounded chunks
    (:func:`repro.perf.batching.replication_batch_size`); one ``progress``
    telemetry event is emitted per chunk, mirroring the scalar dispatcher.
    """
    if horizon <= 0:
        raise SimulationError(f"horizon must be > 0, got {horizon}")
    if batches < 1:
        raise SimulationError(f"batches must be >= 1, got {batches}")
    if not seeds:
        return []
    chunk_rows = replication_batch_size(len(seeds), model.n_components)
    tracker = (
        telemetry.ProgressTracker(len(seeds))
        if telemetry.enabled()
        else None
    )
    results: list[tuple[SimulationResult, int]] = []
    for chunk_no, start in enumerate(range(0, len(seeds), chunk_rows)):
        block = list(seeds[start : start + chunk_rows])
        with obs.span(
            "sim.batched.chunk",
            replications=len(block),
            components=model.n_components,
            horizon=horizon,
        ):
            part = _run_chunk(model, block, horizon, batches)
        results.extend(part)
        if tracker is not None:
            chunk_events = sum(count for _, count in part)
            telemetry.emit(
                "progress",
                chunk=chunk_no,
                **tracker.update(
                    completed=len(block), events=int(chunk_events)
                ),
            )
    if obs.enabled():
        obs.count(
            "sim.events", int(sum(count for _, count in results))
        )
    return results
