"""E5 — regenerate Fig. 4: SW-centric SDN CP availability A_CP.

Paper reference: Fig. 4 (section VI-G).  Four curves (1S, 2S, 1L, 2L) over
process availability swept +/-1 order of magnitude of downtime around
A = 0.99998 (A_S in lock-step).

Shape assertions:
* curve ordering at the center: 1L > 2L > 1S > 2S;
* the quoted downtimes at x = 0 (5.9 / 6.6 / 0.7 / 1.4 min/yr);
* Small and Large converge (relatively) on the left, supervisor impact
  vanishes on the right.
"""

import pytest

from repro.analysis.figures import fig4_series
from repro.reporting.csvout import write_csv
from repro.reporting.tables import format_table
from repro.units import downtime_minutes_per_year


def test_fig4(benchmark, spec, hardware, software, results_dir):
    result = benchmark(fig4_series, spec, hardware, software, 21)

    headers = ("orders", *result.labels)
    rows = result.rows()
    print(
        "\n"
        + format_table(
            headers,
            [tuple(f"{v:.8f}" for v in row) for row in rows],
            title="Figure 4: OpenContrail SDN CP availability A_CP (SW-centric)",
        )
    )
    write_csv(results_dir / "fig4.csv", headers, rows)

    center = result.grid.index(min(result.grid, key=abs))
    values = {label: result.series[label][center] for label in result.labels}
    assert values["1L"] > values["2L"] > values["1S"] > values["2S"]
    assert downtime_minutes_per_year(values["1S"]) == pytest.approx(5.9, abs=0.15)
    assert downtime_minutes_per_year(values["2S"]) == pytest.approx(6.6, abs=0.15)
    assert downtime_minutes_per_year(values["1L"]) == pytest.approx(0.7, abs=0.1)
    assert downtime_minutes_per_year(values["2L"]) == pytest.approx(1.4, abs=0.1)

    # Left edge: topologies converge relative to total unavailability.
    left = {label: result.series[label][0] for label in result.labels}
    assert (left["1L"] - left["1S"]) / (1 - left["1S"]) < 0.2
    # Right edge: supervisor requirement becomes irrelevant.
    right = {label: result.series[label][-1] for label in result.labels}
    assert (right["1S"] - right["2S"]) < 0.1 * (1 - right["2S"])
