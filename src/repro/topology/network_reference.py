"""Reference control-network graphs.

Four canonical graphs for the :mod:`repro.network` analyses, spanning the
shapes the literature reasons about: a no-redundancy *line*, a
single-redundant *ring*, a *fat-tree pod* whose controller uplinks share a
conduit (a shared-risk group), and a Nencioni-style *backbone* mesh with
two controller sites and SRG-correlated long-haul links.  Default element
availabilities follow the :mod:`repro.params.defaults` convention
(steady-state probabilities), at values typical for carrier-grade gear:
switches 0.9999, routers/sites 0.99995, links 0.9995, conduits 0.9999.

Builders are registered in :data:`NETWORK_REFERENCE_BUILDERS` and looked
up by :func:`reference_network` — the CLI's ``--graph`` names.
"""

from __future__ import annotations

from repro.errors import TopologyError
from repro.network.graph import (
    NetworkGraph,
    NetworkLink,
    NetworkNode,
    SharedRiskGroup,
)

__all__ = [
    "line_network",
    "ring_network",
    "fat_tree_pod",
    "backbone_network",
    "two_tier_network",
    "NETWORK_REFERENCE_BUILDERS",
    "reference_network",
]

SWITCH_AVAILABILITY = 0.9999
ROUTER_AVAILABILITY = 0.99995
SITE_AVAILABILITY = 0.99995
LINK_AVAILABILITY = 0.9995
SRG_AVAILABILITY = 0.9999


def _switch(name: str, availability: float = SWITCH_AVAILABILITY) -> NetworkNode:
    return NetworkNode(name, kind="switch", availability=availability)


def _router(name: str, availability: float = ROUTER_AVAILABILITY) -> NetworkNode:
    return NetworkNode(name, kind="router", availability=availability)


def _site(name: str, availability: float = SITE_AVAILABILITY) -> NetworkNode:
    return NetworkNode(name, kind="site", availability=availability)


def _link(
    name: str,
    a: str,
    b: str,
    availability: float = LINK_AVAILABILITY,
    srg: str | None = None,
) -> NetworkLink:
    return NetworkLink(name, a, b, availability=availability, srg=srg)


def line_network(switches: int = 4) -> NetworkGraph:
    """A daisy chain: CTRL - S1 - S2 - ... - Sn.

    No redundancy anywhere — every element on the chain is an order-1 cut
    for the switches behind it, so per-switch availability degrades with
    distance from the controller.  The smallest useful worst case.
    """
    if switches < 1:
        raise TopologyError(f"line needs >= 1 switch, got {switches}")
    nodes = [_site("CTRL")]
    links = []
    previous = "CTRL"
    for i in range(1, switches + 1):
        name = f"S{i}"
        nodes.append(_switch(name))
        links.append(_link(f"L{i}", previous, name))
        previous = name
    return NetworkGraph(
        name=f"line-{switches}", nodes=tuple(nodes), links=tuple(links)
    )


def ring_network(switches: int = 6) -> NetworkGraph:
    """A switch ring with the controller site dual-homed into it.

    ``S1..Sn`` form a ring; CTRL attaches to S1 and S2.  Every switch has
    two disjoint paths to the site, so all minimal cut sets have order >= 1
    only through CTRL itself or double failures — the canonical
    single-redundant metro topology.
    """
    if switches < 3:
        raise TopologyError(f"ring needs >= 3 switches, got {switches}")
    nodes = [_site("CTRL")] + [_switch(f"S{i}") for i in range(1, switches + 1)]
    links = [
        _link(f"L{i}", f"S{i}", f"S{i % switches + 1}")
        for i in range(1, switches + 1)
    ]
    links.append(_link("LC1", "CTRL", "S1"))
    links.append(_link("LC2", "CTRL", "S2"))
    return NetworkGraph(
        name=f"ring-{switches}", nodes=tuple(nodes), links=tuple(links)
    )


def fat_tree_pod() -> NetworkGraph:
    """One fat-tree pod: edge switches, aggregation routers, one site.

    Edge switches E1/E2 dual-home into aggregation routers A1/A2; the
    controller site uplinks to both aggregations, but both uplinks run
    through one conduit (``SRG-UPLINK``) — the classic hidden correlated
    failure: the pod looks dual-homed yet one backhoe cut severs control.
    """
    nodes = (
        _site("CTRL"),
        _router("A1"),
        _router("A2"),
        _switch("E1"),
        _switch("E2"),
    )
    srgs = (SharedRiskGroup("SRG-UPLINK", availability=SRG_AVAILABILITY),)
    links = (
        _link("LE11", "E1", "A1"),
        _link("LE12", "E1", "A2"),
        _link("LE21", "E2", "A1"),
        _link("LE22", "E2", "A2"),
        _link("LU1", "A1", "CTRL", srg="SRG-UPLINK"),
        _link("LU2", "A2", "CTRL", srg="SRG-UPLINK"),
    )
    return NetworkGraph(
        name="fat-tree-pod", nodes=nodes, links=links, srgs=srgs
    )


def backbone_network() -> NetworkGraph:
    """A Nencioni-style national backbone with two controller sites.

    Five backbone routers in a ring with one chord, three access switches
    hanging off distinct routers, and controller sites at R1 and R4 (the
    dual-controller deployment of the Nencioni availability study).  The
    two long-haul links ``LB2``/``LB5`` share a conduit (``SRG-HAUL``),
    modeling the real-world duct sharing that motivated their
    correlated-failure extension.
    """
    nodes = (
        _site("CTRL1"),
        _site("CTRL2"),
        _router("R1"),
        _router("R2"),
        _router("R3"),
        _router("R4"),
        _router("R5"),
        _switch("SW1"),
        _switch("SW2"),
        _switch("SW3"),
    )
    srgs = (SharedRiskGroup("SRG-HAUL", availability=SRG_AVAILABILITY),)
    links = (
        _link("LB1", "R1", "R2"),
        _link("LB2", "R2", "R3", srg="SRG-HAUL"),
        _link("LB3", "R3", "R4"),
        _link("LB4", "R4", "R5"),
        _link("LB5", "R5", "R1", srg="SRG-HAUL"),
        _link("LB6", "R2", "R4"),
        _link("LA1", "SW1", "R2"),
        _link("LA2", "SW2", "R3"),
        _link("LA3", "SW3", "R5"),
        _link("LC1", "CTRL1", "R1"),
        _link("LC2", "CTRL2", "R4"),
    )
    return NetworkGraph(
        name="backbone-mesh", nodes=nodes, links=links, srgs=srgs
    )


def two_tier_network(
    regions: int = 6, switches_per_region: int = 1
) -> NetworkGraph:
    """A two-tier national topology: six-core ring + regional agg pairs.

    Core routers ``C1..C6`` form a ring; controller sites ``CTRL-A`` /
    ``CTRL-B`` attach to the diagonally-opposite cores ``C1`` / ``C4``.
    Region ``r`` spans ring edge ``r``: its aggregation pair ``A{r}a`` /
    ``A{r}b`` dual-homes into the edge's two core routers, and every
    access switch dual-homes into the pair — so each region's switches are
    also a *bypass* of that ring edge for everyone else's control paths.
    Correlated failures ride two SRG kinds: the east and west halves of
    the core ring each share a long-haul conduit, and each region's two
    uplinks share a regional duct — the looks-redundant-but-isn't
    structure of :func:`fat_tree_pod`, at backbone scale.

    The default (6 regions x 1 switch) is the **~60-element reference
    graph**: 26 nodes + 32 links + 8 SRGs = 66 elements.  Complete cut-set
    enumeration (and path enumeration via the dual) is infeasible here —
    the subset search is exponential in the ~50 elements that survive
    pruning — and so is the Shannon-factored evaluator; the
    sum-of-disjoint-products evaluator
    (:func:`repro.network.paths.control_path_sdp`) is the intended exact
    path.  The smallest instance (``regions=1``, 26 elements) stays inside
    the factored evaluator's reach and pins SDP == factored in the test
    wall.
    """
    if regions < 1:
        raise TopologyError(f"two-tier needs >= 1 region, got {regions}")
    if switches_per_region < 1:
        raise TopologyError(
            f"two-tier needs >= 1 switch per region, got {switches_per_region}"
        )
    cores = 6
    nodes = [_site("CTRL-A"), _site("CTRL-B")]
    nodes += [_router(f"C{i}") for i in range(1, cores + 1)]
    srgs = [
        SharedRiskGroup("SRG-EAST", availability=SRG_AVAILABILITY),
        SharedRiskGroup("SRG-WEST", availability=SRG_AVAILABILITY),
    ]
    links = []
    for i in range(1, cores + 1):
        conduit = "SRG-EAST" if i <= cores // 2 else "SRG-WEST"
        links.append(
            _link(f"LB{i}", f"C{i}", f"C{i % cores + 1}", srg=conduit)
        )
    links.append(_link("LS1", "CTRL-A", "C1"))
    links.append(_link("LS2", "CTRL-B", "C4"))
    for r in range(1, regions + 1):
        agg_a, agg_b = f"A{r}a", f"A{r}b"
        core_a = f"C{(r - 1) % cores + 1}"
        core_b = f"C{r % cores + 1}"
        nodes.append(_router(agg_a))
        nodes.append(_router(agg_b))
        srgs.append(SharedRiskGroup(f"SRG-R{r}", availability=SRG_AVAILABILITY))
        links.append(_link(f"LU{r}a", agg_a, core_a, srg=f"SRG-R{r}"))
        links.append(_link(f"LU{r}b", agg_b, core_b, srg=f"SRG-R{r}"))
        for i in range(1, switches_per_region + 1):
            switch = f"S{r}{i}"
            nodes.append(_switch(switch))
            links.append(_link(f"LA{r}{i}a", switch, agg_a))
            links.append(_link(f"LA{r}{i}b", switch, agg_b))
    return NetworkGraph(
        name=f"two-tier-{regions}x{switches_per_region}",
        nodes=tuple(nodes),
        links=tuple(links),
        srgs=tuple(srgs),
    )


NETWORK_REFERENCE_BUILDERS = {
    "line": line_network,
    "ring": ring_network,
    "fat_tree": fat_tree_pod,
    "backbone": backbone_network,
    "two_tier": two_tier_network,
}


def reference_network(name: str, **kwargs) -> NetworkGraph:
    """Build a reference network graph by registry name."""
    try:
        builder = NETWORK_REFERENCE_BUILDERS[name]
    except KeyError:
        raise TopologyError(
            f"unknown reference network {name!r}; expected one of "
            f"{sorted(NETWORK_REFERENCE_BUILDERS)}"
        ) from None
    return builder(**kwargs)
