"""Bit-exact determinism of the simulation engine across dispatch modes.

The hot-path overhaul (batched RNG, cached effective state, slotted
tuple-entry event queue, stale-event compaction, warm-pool dispatch)
claims the *exact* event streams and float accumulations of the engine it
replaced.  ``tests/golden/sim_engine_fixtures.json`` pins every
per-replication float of one hazard campaign and one plain replication
run, generated from the pre-overhaul engine; this suite requires ``==``
equality — no tolerances — against those fixtures:

* inline (workers=1),
* warm-pool (workers=4), cold and reused-warm,
* a caller-supplied cold ``ProcessPoolExecutor``,
* with an observability session tracing the run.

If an engine change is *supposed* to alter the event stream, regenerate
with ``PYTHONPATH=src python -m tests.regen_sim_fixtures`` and justify the
diff in the commit message.
"""

from __future__ import annotations

import json
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path

import pytest

from repro.obs import runtime as obs
from repro.perf.parallel import shutdown_warm_pools, warm_pool_count
from tests.regen_sim_fixtures import (
    FIXTURE_NAME,
    GOLDEN_DIR,
    build_fixture,
    result_record,
    run_fixture_campaign,
    run_fixture_replications,
)

FIXTURE_PATH = GOLDEN_DIR / FIXTURE_NAME


@pytest.fixture(scope="module")
def pinned() -> dict:
    if not FIXTURE_PATH.exists():
        pytest.fail(
            f"{FIXTURE_PATH} missing; run "
            f"`PYTHONPATH=src python -m tests.regen_sim_fixtures`"
        )
    return json.loads(FIXTURE_PATH.read_text(encoding="utf-8"))


@pytest.fixture(autouse=True)
def _clean_pools():
    yield
    shutdown_warm_pools()


def _campaign_records(result) -> list[dict]:
    return [result_record(r) for r in result.replications.results]


def _replication_records(result) -> list[dict]:
    return [result_record(r) for r in result.results]


class TestInline:
    def test_full_fixture_reproduced(self, pinned):
        """The whole pinned document — specs, seeds, every float."""
        assert build_fixture() == pinned


class TestWorkerCounts:
    def test_campaign_workers_4_matches_pinned(self, pinned):
        result = run_fixture_campaign(workers=4)
        assert _campaign_records(result) == pinned["campaign"]["results"]
        assert list(result.replications.seeds) == pinned["campaign"]["seeds"]

    def test_replications_workers_4_matches_pinned(self, pinned):
        result = run_fixture_replications(workers=4)
        assert _replication_records(result) == pinned["replications"]["results"]
        assert list(result.seeds) == pinned["replications"]["seeds"]


class TestPoolWarmth:
    def test_cold_then_warm_pool_identical(self, pinned):
        shutdown_warm_pools()
        cold = run_fixture_campaign(workers=2)  # creates the pool
        assert warm_pool_count() >= 1
        warm = run_fixture_campaign(workers=2)  # reuses it
        expected = pinned["campaign"]["results"]
        assert _campaign_records(cold) == expected
        assert _campaign_records(warm) == expected

    def test_external_cold_executor_identical(self, pinned):
        with ProcessPoolExecutor(max_workers=2) as executor:
            campaign = run_fixture_campaign(executor=executor)
            replications = run_fixture_replications(executor=executor)
        assert _campaign_records(campaign) == pinned["campaign"]["results"]
        assert (
            _replication_records(replications)
            == pinned["replications"]["results"]
        )


class TestTracing:
    def test_traced_runs_identical(self, pinned):
        """An active observability session must be purely observational."""
        with obs.session("determinism-suite"):
            inline = run_fixture_campaign(workers=1)
            pooled = run_fixture_campaign(workers=4)
            replications = run_fixture_replications(workers=1)
        expected = pinned["campaign"]["results"]
        assert _campaign_records(inline) == expected
        assert _campaign_records(pooled) == expected
        assert (
            _replication_records(replications)
            == pinned["replications"]["results"]
        )
