"""Tests for hardware parameters (repro.params.hardware)."""

import pytest

from repro.errors import ParameterError
from repro.params.defaults import PAPER_HARDWARE, PAPER_HARDWARE_SD
from repro.params.hardware import HardwareParams, MaintenanceLevel


class TestHardwareParams:
    def test_paper_defaults(self, hardware):
        assert hardware.a_role == 0.9995
        assert hardware.a_vm == 0.99995
        assert hardware.a_host == 0.99990
        assert hardware.a_rack == 0.99999

    def test_sd_variant(self):
        assert PAPER_HARDWARE_SD.a_host == 0.99999

    def test_validation(self):
        with pytest.raises(ParameterError):
            HardwareParams(a_role=1.2, a_vm=1, a_host=1, a_rack=1)

    def test_with_role_availability(self, hardware):
        swept = hardware.with_role_availability(0.999)
        assert swept.a_role == 0.999
        assert swept.a_vm == hardware.a_vm
        assert hardware.a_role == 0.9995  # original untouched

    def test_blocks(self, hardware):
        assert hardware.node_block == pytest.approx(
            0.9995 * 0.99995 * 0.9999
        )
        assert hardware.vm_block == pytest.approx(0.9995 * 0.99995)
        assert hardware.vm_host_block == pytest.approx(0.99995 * 0.9999)


class TestMaintenanceLevels:
    """Section V-D: A_H from 0.9990 (NBD) to 0.9995 (ND) to 0.9999 (SD)."""

    @pytest.mark.parametrize(
        "level, expected",
        [
            (MaintenanceLevel.SAME_DAY, 0.9999),
            (MaintenanceLevel.NEXT_DAY, 0.9995),
            (MaintenanceLevel.NEXT_BUSINESS_DAY, 0.9990),
        ],
    )
    def test_paper_host_availabilities(self, level, expected):
        # 5-year MTBF with the contract's MTTR; the paper quotes rounded
        # rules of thumb, so compare to ~1.5 significant downtime digits.
        params = PAPER_HARDWARE.with_maintenance(level, mtbf_years=5.0)
        assert params.a_host == pytest.approx(expected, abs=1.5e-4)
        assert 1 - params.a_host == pytest.approx(1 - expected, rel=0.15)

    def test_mttr_hours(self):
        assert MaintenanceLevel.SAME_DAY.mttr_hours == 4.0
        assert MaintenanceLevel.NEXT_BUSINESS_DAY.mttr_hours == 48.0

    def test_rejects_bad_mtbf(self):
        with pytest.raises(ParameterError):
            PAPER_HARDWARE.with_maintenance(MaintenanceLevel.SAME_DAY, 0.0)
