"""Regression tests for every numeric claim quoted in the paper body.

Each test cites the paper passage it encodes.  Tolerances reflect the
paper's printed precision (typically two significant downtime digits); any
deliberate deviation is documented in EXPERIMENTS.md.
"""

import pytest

from repro.models.hw_closed import hw_large, hw_medium, hw_small
from repro.models.sw_options import evaluate_option
from repro.units import downtime_minutes_per_year


def cp_minutes(spec, option, hardware, software):
    return evaluate_option(spec, option, hardware, software).cp_downtime_minutes


def dp_minutes(spec, option, hardware, software):
    return evaluate_option(spec, option, hardware, software).dp_downtime_minutes


class TestSectionVD:
    """Fig. 3 / section V-D quoted values."""

    def test_small_medium_availability(self, hardware):
        # "with role availability A_C = 0.9995, Controller availability is
        # 0.999989 for the Small and Medium topologies"
        assert hw_small(hardware) == pytest.approx(0.999989, abs=1e-6)
        assert hw_medium(hardware) == pytest.approx(0.999989, abs=1e-6)

    def test_large_availability(self, hardware):
        # "... and 0.999999 for the Large topology" (0.9999990 in V-D).
        assert hw_large(hardware) == pytest.approx(0.999999, abs=4e-7)

    def test_five_minutes_per_year_saving(self, hardware):
        # "availability increases from 0.999989 to 0.9999990 (a savings of
        # 5 minutes/year in downtime)"
        saving = downtime_minutes_per_year(
            hw_small(hardware)
        ) - downtime_minutes_per_year(hw_large(hardware))
        assert saving == pytest.approx(5.2, abs=0.5)


class TestFig4CpDowntime:
    """Section VI-G: 'Requiring the supervisor increases downtime from 5.9
    to 6.6 minutes/year (m/y) in the Small topology and from 0.7 to 1.4 m/y
    in the Large topology.'"""

    def test_1s(self, spec, hardware, software):
        assert cp_minutes(spec, "1S", hardware, software) == pytest.approx(
            5.9, abs=0.15
        )

    def test_2s(self, spec, hardware, software):
        assert cp_minutes(spec, "2S", hardware, software) == pytest.approx(
            6.6, abs=0.15
        )

    def test_1l(self, spec, hardware, software):
        assert cp_minutes(spec, "1L", hardware, software) == pytest.approx(
            0.7, abs=0.1
        )

    def test_2l(self, spec, hardware, software):
        assert cp_minutes(spec, "2L", hardware, software) == pytest.approx(
            1.4, abs=0.1
        )

    def test_acp_exceeds_quoted_floors(self, spec, hardware, software):
        # "A_CP exceeds 0.999987 for the Small topology and 0.999997 for
        # the Large topology."
        assert evaluate_option(spec, "2S", hardware, software).cp > 0.999987
        assert evaluate_option(spec, "2L", hardware, software).cp > 0.999997

    def test_third_rack_saves_five_cp_minutes(self, spec, hardware, software):
        # "The addition of two racks to create the Large topology saves
        # 5 m/y of CP DT."
        saving = cp_minutes(spec, "1S", hardware, software) - cp_minutes(
            spec, "1L", hardware, software
        )
        assert saving == pytest.approx(5.2, abs=0.4)


class TestFig5DpDowntime:
    """Section VI-G: 'Requiring the supervisor increases downtime by 5x
    from 26 to 131 m/y in the Small topology and by 6x from 21 to 126 m/y
    in the Large topology.'"""

    def test_1s(self, spec, hardware, software):
        assert dp_minutes(spec, "1S", hardware, software) == pytest.approx(
            26.0, abs=1.0
        )

    def test_2s(self, spec, hardware, software):
        assert dp_minutes(spec, "2S", hardware, software) == pytest.approx(
            131.0, abs=1.5
        )

    def test_1l(self, spec, hardware, software):
        assert dp_minutes(spec, "1L", hardware, software) == pytest.approx(
            21.0, abs=1.0
        )

    def test_2l(self, spec, hardware, software):
        assert dp_minutes(spec, "2L", hardware, software) == pytest.approx(
            126.0, abs=1.5
        )

    def test_adp_floors(self, spec, hardware, software):
        # "A_DP = 0.99975+ for both Small and Large topologies when vRouter
        # supervisor is required, and 0.99995+ when ... not required."
        assert evaluate_option(spec, "2S", hardware, software).dp > 0.99975
        assert evaluate_option(spec, "2L", hardware, software).dp > 0.99975
        assert evaluate_option(spec, "1S", hardware, software).dp > 0.99995
        assert evaluate_option(spec, "1L", hardware, software).dp > 0.99995

    def test_supervisor_multiplier(self, spec, hardware, software):
        # Downtime increases "by 5x" (Small) and "by 6x" (Large).
        small_ratio = dp_minutes(spec, "2S", hardware, software) / dp_minutes(
            spec, "1S", hardware, software
        )
        large_ratio = dp_minutes(spec, "2L", hardware, software) / dp_minutes(
            spec, "1L", hardware, software
        )
        assert small_ratio == pytest.approx(5.0, abs=0.5)
        assert large_ratio == pytest.approx(6.0, abs=0.5)


class TestSweepExtremes:
    """Section VI-G convergence statements at x = -1 and x = +1."""

    def test_cp_curves_converge_at_low_availability(
        self, spec, hardware, software
    ):
        # "the impact of rack separation becomes less relevant (Small and
        # Large topologies begin to converge)".
        degraded = software.scaled(-1.0)
        gap_default = evaluate_option(
            spec, "1L", hardware, software
        ).cp - evaluate_option(spec, "1S", hardware, software).cp
        cp_1s = evaluate_option(spec, "1S", hardware, degraded).cp
        cp_1l = evaluate_option(spec, "1L", hardware, degraded).cp
        # The rack-separation gap shrinks as a fraction of total
        # unavailability: ~88% of Small's downtime at the defaults, under
        # 20% at 10x the process downtime.
        ratio_default = gap_default / (
            1 - evaluate_option(spec, "1S", hardware, software).cp
        )
        ratio_degraded = (cp_1l - cp_1s) / (1 - cp_1s)
        assert ratio_degraded < 0.2
        assert ratio_default > 0.4
        assert ratio_degraded < 0.5 * ratio_default

    def test_supervisor_impact_grows_at_low_availability(
        self, spec, hardware, software
    ):
        # "impact of the supervisor process becomes more pronounced".
        degraded = software.scaled(-1.0)

        def supervisor_penalty(sw):
            return (
                evaluate_option(spec, "1S", hardware, sw).cp
                - evaluate_option(spec, "2S", hardware, sw).cp
            )

        assert supervisor_penalty(degraded) > 10 * supervisor_penalty(software)

    def test_dp_convergence_at_low_availability(self, spec, hardware, software):
        # "Small and Large availabilities converge to 0.9976 (supervisor
        # required) or to 0.9996 (supervisor not required)."
        degraded = software.scaled(-1.0)
        dp_2s = evaluate_option(spec, "2S", hardware, degraded).dp
        dp_2l = evaluate_option(spec, "2L", hardware, degraded).dp
        assert dp_2s == pytest.approx(0.9976, abs=3e-4)
        assert dp_2l == pytest.approx(0.9976, abs=3e-4)
        dp_1s = evaluate_option(spec, "1S", hardware, degraded).dp
        assert dp_1s == pytest.approx(0.9996, abs=1e-4)

    def test_dp_convergence_at_high_availability(
        self, spec, hardware, software
    ):
        # "Small and Large DP availabilities converge to 0.999976
        # (supervisor required) or to 0.999996 (supervisor not required)."
        # The quoted values match the Large topology exactly; the Small
        # variants sit one rack-unavailability (1e-5) lower — "the
        # difference is due to rack separation in the SDP contribution".
        improved = software.scaled(1.0)
        assert evaluate_option(
            spec, "2L", hardware, improved
        ).dp == pytest.approx(0.999976, abs=3e-6)
        assert evaluate_option(
            spec, "1L", hardware, improved
        ).dp == pytest.approx(0.999996, abs=3e-6)
        assert evaluate_option(
            spec, "2S", hardware, improved
        ).dp == pytest.approx(0.999976 - 1e-5, abs=3e-6)

    def test_cp_supervisor_irrelevant_at_high_availability(
        self, spec, hardware, software
    ):
        # "the impact of the supervisor process becomes irrelevant, and ...
        # rack separation ... becomes the key differentiator."
        improved = software.scaled(1.0)
        small_gap = (
            evaluate_option(spec, "1S", hardware, improved).cp
            - evaluate_option(spec, "2S", hardware, improved).cp
        )
        rack_gap = (
            evaluate_option(spec, "1L", hardware, improved).cp
            - evaluate_option(spec, "1S", hardware, improved).cp
        )
        assert rack_gap > 5 * small_gap


class TestConclusionApproximations:
    """Section VII: A ~= alpha^2 (3 - 2 alpha) [A_R] rules of thumb."""

    def test_one_or_two_rack_rule(self, hardware):
        alpha = hardware.a_role * hardware.a_vm * hardware.a_host
        approx = alpha**2 * (3 - 2 * alpha) * hardware.a_rack
        assert (1 - approx) == pytest.approx(1 - hw_small(hardware), rel=0.02)
        assert (1 - approx) == pytest.approx(1 - hw_medium(hardware), rel=0.02)

    def test_three_rack_rule(self, hardware):
        alpha = (
            hardware.a_role
            * hardware.a_vm
            * hardware.a_host
            * hardware.a_rack
        )
        approx = alpha**2 * (3 - 2 * alpha)
        assert (1 - approx) == pytest.approx(1 - hw_large(hardware), rel=0.05)
