"""The discrete-event simulation core.

:class:`AvailabilitySimulator` runs a set of :class:`Component` instances
with exponential failure/repair dynamics under hierarchical masking, and
integrates caller-supplied binary system signals (CP up, DP up, ...) over
simulated time with per-batch accounting.

Correctness notes (these are tested):

* Failure clocks only run while a component is effectively up.  Because
  failures are exponential, *resampling* a fresh failure time whenever the
  effective state is re-evaluated is distributionally equivalent to pausing
  the clock (memorylessness), so every effective-state change simply bumps
  the component's epoch and reschedules.
* Repairs continue while a component is masked (a replaced server does not
  un-replace because its rack lost power).
* Scenario-2 supervisor semantics are injected through ``on_repair`` hooks:
  when a supervisor completes its manual restart it restores all of its
  supervised processes (the paper's "the supervisor can then auto-restart
  those processes under its oversight").

Hot-path design (the campaign benchmark drives these — see
``benchmarks/bench_sim_engine.py``):

* **Cached effective state.**  ``effectively_up`` used to re-walk the
  dependency chain on every call, and the signal predicates call it for
  every quorum member after every event — the single largest cost in the
  seed profile.  It is now memoized per component; the *only* two sites
  that flip intrinsic state (:meth:`_apply_down` / :meth:`_apply_up`)
  invalidate exactly the flipped component plus its precomputed
  transitive-dependents closure.  Each invalidation also accumulates a
  dirty-signal bitmask (signals declare the component keys they read), so
  :meth:`_refresh_signals` re-evaluates only the predicates a transition
  could actually have changed (integration still advances on every
  refresh, keeping float accumulation bit-identical to the seed engine).
  Signal predicates must therefore be pure functions of component
  effective states — which every predicate in this repository is.
* **Build-time indexes.**  The dependents closure, the ``role:``/``kind:``
  selector indexes, per-component RNG stream names, and the signal-by-name
  map are all computed once at construction, so :meth:`resolve_group`,
  :meth:`_reschedule_subtree`, :meth:`signal`, and the schedulers never
  re-scan the component dict during a run.
* **Stale-event accounting.**  Every epoch bump reports its newly-orphaned
  scheduled events to the queue, which lazily compacts itself when corpses
  dominate (:mod:`repro.sim.events`); the dispatched event stream is
  bit-identical either way.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.errors import SimulationError
from repro.obs import runtime as obs
from repro.sim.entities import Component, ComponentKind, ComponentState
from repro.sim.events import Event, EventQueue
from repro.sim.measures import BinarySignal
from repro.sim.rng import RngStreams

RepairPolicy = Callable[[Component], float]
SignalPredicate = Callable[["AvailabilitySimulator"], bool]
RepairHook = Callable[["AvailabilitySimulator", Component], None]


class RepairController:
    """Repair-capacity policy consulted on every downward transition.

    The default grants every request immediately (unlimited repair
    capacity), which reproduces the seed behavior exactly.  A limited
    policy (:class:`repro.faults.hazards.RepairCrews`) may answer ``False``
    from :meth:`request` to queue the repair; it then owns the obligation
    to call :meth:`AvailabilitySimulator.begin_repair` later, when capacity
    frees up.  :meth:`release` is invoked from the single upward-transition
    site for *every* component that comes up (and for holds that cancel a
    pending repair), so the policy can retire active work, drop queued
    entries, and start the next queued repair.
    """

    def request(
        self, simulator: "AvailabilitySimulator", component: Component
    ) -> bool:
        """Whether the repair may start now (``True``) or is queued."""
        return True

    def release(
        self, simulator: "AvailabilitySimulator", component: Component
    ) -> None:
        """The component no longer needs (or holds) repair capacity."""


class AvailabilitySimulator:
    """Generic failure/repair simulator over a component dependency DAG."""

    def __init__(
        self,
        components: Sequence[Component],
        seed: int,
        repair_policy: RepairPolicy | None = None,
        on_repair: RepairHook | None = None,
        repair_sampler=None,
        repair_controller: RepairController | None = None,
    ):
        self.components: dict[str, Component] = {}
        for component in components:
            if component.key in self.components:
                raise SimulationError(f"duplicate component {component.key!r}")
            self.components[component.key] = component
        for component in components:
            for dependency in component.dependencies:
                if dependency not in self.components:
                    raise SimulationError(
                        f"{component.key!r} depends on unknown "
                        f"{dependency!r}"
                    )
                self.components[dependency].dependents.append(component.key)
        self._queue = EventQueue(stale=self._event_is_stale)
        self._rng = RngStreams(seed)
        self._repair_policy = repair_policy or (lambda c: c.repair_mean)
        self._on_repair = on_repair
        if repair_sampler is None:
            from repro.sim.distributions import exponential_repairs

            repair_sampler = exponential_repairs
        self._repair_sampler = repair_sampler
        self._repair_controller = repair_controller
        self._signals: list[tuple[BinarySignal, SignalPredicate]] = []
        self._signals_by_name: dict[str, BinarySignal] = {}
        self._batch_records: dict[str, list[float]] = {}
        #: Events executed across every :meth:`run` of this simulator.
        self.events_processed = 0
        # -- build-time indexes (the component set is frozen from here on) --
        self._closure: dict[str, tuple[str, ...]] = {
            key: self._walk_dependents(key) for key in self.components
        }
        self._role_index: dict[str, tuple[str, ...]] = {}
        self._kind_index: dict[ComponentKind, tuple[str, ...]] = {}
        self._build_selector_indexes()
        self._fail_streams = {
            key: f"fail:{key}" for key in self.components
        }
        self._repair_streams = {
            key: f"repair:{key}" for key in self.components
        }
        # -- effective-state cache + scheduled-event accounting --
        self._eff_cache: dict[str, bool] = {}
        self._pending: dict[str, int] = {}
        # -- signal dirty-tracking --
        # Bit i marks signal i; a component key maps to the signals whose
        # declared dependency set contains it.  Signals registered without
        # a dependency declaration are conservatively dirty on every
        # effective-state change.
        self._key_signal_mask: dict[str, int] = {}
        self._always_dirty_mask = 0
        self._dirty_signals = 0
        # -- outage attribution --
        # Intrinsic down-flips since the last signal refresh, in transition
        # order: (component key, hazard source).  When a refresh takes a
        # signal up->down, the first edge that can reach the signal's
        # declared dependency set is stamped as the episode's cause.
        self._down_edges: list[tuple[str, str]] = []
        self._signal_deps: list[frozenset[str] | None] = []
        self._depth_cache: dict[str, dict[str, int]] = {}

    def _walk_dependents(self, key: str) -> tuple[str, ...]:
        """Transitive dependents in the engine's canonical DFS order.

        The order feeds group expansion and clock rescheduling, which in
        turn fixes RNG stream creation order — it is part of the
        bit-reproducibility contract and must not change.
        """
        seen: list[str] = []
        stack = list(self.components[key].dependents)
        while stack:
            dependent = stack.pop()
            if dependent not in seen:
                seen.append(dependent)
                stack.extend(self.components[dependent].dependents)
        return tuple(seen)

    def _build_selector_indexes(self) -> None:
        """Index ``role:``/``kind:`` selector matches once, at build time.

        A key matches ``role:<Name>`` when it starts with ``sup:<Name>-``
        or ``proc:<Name>/``, so each key is indexed under every dash-
        (respectively slash-) delimited prefix of its role segment —
        exactly the names the seed implementation's per-query scan would
        have matched.  Insertion order is preserved, so expanded groups
        list components in registration order, as before.
        """
        roles: dict[str, list[str]] = {}
        kinds: dict[ComponentKind, list[str]] = {}
        for key, component in self.components.items():
            kinds.setdefault(component.kind, []).append(key)
            if key.startswith("sup:"):
                rest = key[4:]
                for i, ch in enumerate(rest):
                    if ch == "-" and i:
                        roles.setdefault(rest[:i], []).append(key)
            elif key.startswith("proc:"):
                rest = key[5:]
                for i, ch in enumerate(rest):
                    if ch == "/" and i:
                        roles.setdefault(rest[:i], []).append(key)
        self._role_index = {
            name: tuple(keys) for name, keys in roles.items()
        }
        self._kind_index = {
            kind: tuple(keys) for kind, keys in kinds.items()
        }

    def _event_is_stale(self, event: Event) -> bool:
        """Queue-compaction predicate: the event's epoch has moved on."""
        key = event.component
        return key is not None and self.components[key].epoch != event.epoch

    # -- state queries -----------------------------------------------------------

    @property
    def now(self) -> float:
        return self._queue.now

    @property
    def repair_controller(self) -> RepairController | None:
        return self._repair_controller

    def set_repair_controller(
        self, controller: RepairController | None
    ) -> None:
        """Install a repair-capacity policy (before any failures occur)."""
        self._repair_controller = controller

    def intrinsically_up(self, key: str) -> bool:
        return self.components[key].state is ComponentState.UP

    def effectively_up(self, key: str) -> bool:
        """Intrinsically up and every dependency effectively up.

        Memoized: transitions invalidate exactly the flipped component and
        its dependents closure, so repeated queries between events are
        dictionary hits.
        """
        cache = self._eff_cache
        value = cache.get(key)
        if value is not None:
            return value
        component = self.components[key]
        if component.state is ComponentState.UP:
            value = True
            for dependency in component.dependencies:
                if not self.effectively_up(dependency):
                    value = False
                    break
        else:
            value = False
        cache[key] = value
        return value

    def _invalidate_effective(self, key: str) -> None:
        """Drop cached effective states affected by ``key``'s transition.

        Also accumulates the dirty-signal mask: a signal needs predicate
        re-evaluation only if some key it declared a dependency on just had
        its cached effective state invalidated.
        """
        cache = self._eff_cache
        masks = self._key_signal_mask
        dirty = self._always_dirty_mask | masks.get(key, 0)
        cache.pop(key, None)
        for dependent in self._closure[key]:
            cache.pop(dependent, None)
            dirty |= masks.get(dependent, 0)
        self._dirty_signals |= dirty

    # -- signals ------------------------------------------------------------------

    def add_signal(
        self,
        name: str,
        predicate: SignalPredicate,
        depends_on: Sequence[str] | None = None,
    ) -> None:
        """Register a binary signal integrated over simulated time.

        ``predicate`` must be a pure function of component *effective
        states*: predicate re-evaluation is skipped while no effective
        state has changed, so a predicate reading anything else would be
        sampled at the wrong times.

        ``depends_on`` optionally declares every component key the
        predicate reads (a predicate reading *other signals' states* must
        declare the union of those signals' keys and be registered after
        them).  Declared signals re-evaluate only when a declared key's
        effective state may have changed; undeclared signals conservatively
        re-evaluate on every change.
        """
        if name in self._signals_by_name:
            raise SimulationError(f"duplicate signal {name!r}")
        bit = 1 << len(self._signals)
        if depends_on is None:
            self._always_dirty_mask |= bit
        else:
            masks = self._key_signal_mask
            for key in depends_on:
                if key not in self.components:
                    raise SimulationError(
                        f"signal {name!r} declares unknown dependency {key!r}"
                    )
                masks[key] = masks.get(key, 0) | bit
        signal = BinarySignal(name, predicate(self), start_time=self.now)
        self._signals.append((signal, predicate))
        self._signal_deps.append(
            frozenset(depends_on) if depends_on is not None else None
        )
        self._signals_by_name[name] = signal
        self._batch_records[name] = []

    def _refresh_signals(self) -> None:
        # Integration always advances (the accumulation order is part of
        # the bit-reproducibility contract), but each predicate only
        # re-evaluates when a transition touched its declared dependencies
        # — an unchanged signal re-asserts its current value.
        now = self._queue.now
        dirty = self._dirty_signals
        if not dirty:
            for signal, _ in self._signals:
                signal.update(now, signal.state)
            if self._down_edges:
                self._down_edges.clear()
            return
        self._dirty_signals = 0
        edges = self._down_edges
        bit = 1
        for index, (signal, predicate) in enumerate(self._signals):
            if dirty & bit:
                was_up = signal.state
                state = predicate(self)
                signal.update(now, state)
                if was_up and not state and edges:
                    self._stamp_outage_cause(index, signal)
            else:
                signal.update(now, signal.state)
            bit <<= 1
        if edges:
            edges.clear()

    def _depth_map(self, origin: str) -> dict[str, int]:
        """BFS depths of ``origin``'s dependents closure (origin itself 0).

        Cached per key; only consulted when a signal outage opens, so the
        cost is per-episode, not per-event.
        """
        depths = self._depth_cache.get(origin)
        if depths is None:
            depths = {origin: 0}
            frontier = [origin]
            depth = 0
            components = self.components
            while frontier:
                depth += 1
                next_frontier: list[str] = []
                for key in frontier:
                    for dependent in components[key].dependents:
                        if dependent not in depths:
                            depths[dependent] = depth
                            next_frontier.append(dependent)
                frontier = next_frontier
            self._depth_cache[origin] = depths
        return depths

    def _stamp_outage_cause(self, index: int, signal: BinarySignal) -> None:
        """Charge the episode that just opened to its triggering transition.

        Scans the down-flips of the current transition (in order) for the
        first whose dependents closure reaches the signal's declared
        dependency set; the recorded depth is the shortest closure distance
        from the flipped component to a declared key (0 = the signal reads
        the flipped component itself).  Falls back to the first flip when
        nothing is declared or reachable — better a coarse cause than none.
        """
        deps = self._signal_deps[index]
        for key, source in self._down_edges:
            if deps is None:
                signal.attribute_open_outage(key, source, -1)
                return
            depths = self._depth_map(key)
            best = -1
            for declared in deps:
                depth = depths.get(declared)
                if depth is not None and (best < 0 or depth < best):
                    best = depth
            if best >= 0:
                signal.attribute_open_outage(key, source, best)
                return
        key, source = self._down_edges[0]
        signal.attribute_open_outage(key, source, -1)

    # -- scheduling ----------------------------------------------------------------

    def _schedule_failure(self, component: Component) -> None:
        if component.failure_rate <= 0.0:
            return
        key = component.key
        delay = self._rng.exponential(
            self._fail_streams[key], 1.0 / component.failure_rate
        )
        epoch = component.epoch
        self._queue.schedule(
            Event(
                time=self._queue.now + delay,
                action=lambda: self._fail(key, epoch),
                component=key,
                epoch=epoch,
            )
        )
        self._pending[key] = self._pending.get(key, 0) + 1

    def _schedule_repair(self, component: Component) -> None:
        mean = self._repair_policy(component)
        key = component.key
        delay = self._repair_sampler(
            self._rng, self._repair_streams[key], mean
        )
        epoch = component.epoch
        self._queue.schedule(
            Event(
                time=self._queue.now + delay,
                action=lambda: self._repair(key, epoch),
                component=key,
                epoch=epoch,
            )
        )
        self._pending[key] = self._pending.get(key, 0) + 1

    def schedule_action(self, time: float, action: Callable[[], None]) -> None:
        """Schedule a non-component callback (hazard processes, maintenance).

        The event carries no staleness token, so it always fires (unless the
        run ends first); same-time events keep FIFO scheduling order.
        """
        self._queue.schedule(Event(time=time, action=action))

    def draw_exponential(self, stream: str, mean: float) -> float:
        """One exponential variate from a named stream of this run's RNG.

        Hazard processes draw their inter-event times here so they share
        the simulator's seed discipline: a run is a pure function of the
        root seed and the (deterministic) stream-creation order.
        """
        return self._rng.exponential(stream, mean)

    def _bump(self, component: Component) -> None:
        """Bump a component's epoch and report its orphaned events.

        The single engine-side invalidation wrapper: pending scheduled
        events for the component become stale (the queue may compact them
        away), and the pending count resets for the new epoch.
        """
        component.bump()
        count = self._pending.pop(component.key, None)
        if count:
            self._queue.note_stale(count)

    def _transitive_dependents(self, key: str) -> list[str]:
        return list(self._closure[key])

    def _reschedule_subtree(self, key: str) -> None:
        """Re-evaluate failure clocks for ``key``'s dependents.

        Every transitive dependent gets its pending *failure* clock
        invalidated; those now effectively up get a fresh one (valid by
        memorylessness), those masked get none.  Pending repairs are left
        alone — repairs proceed regardless of masking.
        """
        components = self.components
        for dependent_key in self._closure[key]:
            dependent = components[dependent_key]
            if dependent.state is ComponentState.UP:
                self._bump(dependent)
                if self.effectively_up(dependent_key):
                    self._schedule_failure(dependent)

    # -- transitions -----------------------------------------------------------------
    #
    # Every transition — stochastic clocks, scenario injections, hazard
    # engines, supervisor restores — funnels through _apply_down/_apply_up,
    # the ONLY sites that flip component state, bump epochs, and invalidate
    # the effective-state cache.  Stale-event dropping therefore behaves
    # identically no matter which layer caused the transition.

    def _apply_down(
        self,
        component: Component,
        *,
        want_repair: bool,
        hold: bool,
        source: str = "stochastic",
    ) -> bool:
        """The single downward-transition (and epoch-bump) site.

        ``want_repair`` schedules the component's repair through the
        capacity policy; ``False`` leaves it down until an explicit repair
        (scenario/maintenance semantics).  ``hold`` additionally cancels a
        pending or queued repair when the component is *already* down, so a
        maintenance window can pin a stochastically-failed component down
        for its full duration.  ``source`` labels what caused the
        transition (``"stochastic"``, ``"scenario"``, or a hazard name) for
        the outage-attribution ledger.  Returns whether the intrinsic state
        changed.
        """
        if component.state is ComponentState.REPAIRING:
            if hold:
                self._bump(component)  # cancels the pending repair event
                if self._repair_controller is not None:
                    self._repair_controller.release(self, component)
            return False
        component.state = ComponentState.REPAIRING
        self._bump(component)
        self._invalidate_effective(component.key)
        self._down_edges.append((component.key, source))
        if want_repair and (
            self._repair_controller is None
            or self._repair_controller.request(self, component)
        ):
            self._schedule_repair(component)
        self._reschedule_subtree(component.key)
        return True

    def _apply_up(self, component: Component, *, run_hook: bool) -> bool:
        """The single upward-transition (and epoch-bump) site.

        Cancels any pending repair event via the epoch bump, releases the
        component's repair-capacity claim, optionally runs the ``on_repair``
        hook (supervisor semantics), and restarts the failure clock when the
        component comes back effectively up.
        """
        if component.state is ComponentState.UP:
            return False
        component.state = ComponentState.UP
        self._bump(component)
        self._invalidate_effective(component.key)
        if self._repair_controller is not None:
            self._repair_controller.release(self, component)
        if run_hook and self._on_repair is not None:
            self._on_repair(self, component)
        if self.effectively_up(component.key):
            self._schedule_failure(component)
        self._reschedule_subtree(component.key)
        return True

    def _fail(self, key: str, epoch: int) -> None:
        component = self.components[key]
        if component.epoch != epoch or component.state is not ComponentState.UP:
            return  # stale clock
        pending = self._pending.get(key)
        if pending:
            self._pending[key] = pending - 1
        self._apply_down(component, want_repair=True, hold=False)
        self._refresh_signals()

    def _repair(self, key: str, epoch: int) -> None:
        component = self.components[key]
        if (
            component.epoch != epoch
            or component.state is not ComponentState.REPAIRING
        ):
            return  # cancelled (e.g. supervisor restored the process)
        pending = self._pending.get(key)
        if pending:
            self._pending[key] = pending - 1
        self._apply_up(component, run_hook=True)
        self._refresh_signals()

    def begin_repair(self, key: str) -> None:
        """Start the repair of a down component now (crew became available).

        Called by limited-capacity repair policies when a queued component
        reaches the head of the line; the repair time is sampled at *start*
        time, so queueing delay adds to — never overlaps — repair time.
        """
        component = self.components[key]
        if component.state is not ComponentState.REPAIRING:
            raise SimulationError(
                f"cannot begin repair of {key!r}: component is up"
            )
        self._schedule_repair(component)

    def advance_time(self, time: float) -> None:
        """Move the clock forward with no intervening events (scenario use)."""
        self._queue.advance_to(time)
        self._refresh_signals()

    def force_fail(
        self,
        key: str,
        *,
        repair: bool = False,
        hold: bool = False,
        source: str = "scenario",
    ) -> bool:
        """Fail a component immediately.

        By default (scenario semantics) no repair is scheduled — the
        component stays down until :meth:`force_repair`.  Hazard engines
        pass ``repair=True`` to route the outage through the normal repair
        machinery (including any capacity policy), and ``hold=True`` to
        also pin already-down components (cancelling their pending repair)
        until an explicit :meth:`force_repair`.  ``source`` labels the
        cause in the outage-attribution ledger.
        """
        changed = self._apply_down(
            self.components[key], want_repair=repair, hold=hold, source=source
        )
        self._refresh_signals()
        return changed

    def force_repair(self, key: str) -> bool:
        """Repair a component immediately (scenario counterpart of force_fail).

        Applies the same supervisor hook as a stochastic repair, so a
        scenario-restarted supervisor restores its processes.
        """
        changed = self._apply_up(self.components[key], run_hook=True)
        self._refresh_signals()
        return changed

    def fail_group(
        self,
        keys: Sequence[str],
        *,
        repair: bool = False,
        hold: bool = False,
        source: str = "scenario",
    ) -> int:
        """Fail several components at one instant (correlated events).

        Signals refresh once, after the whole group transitioned, so a
        simultaneous multi-component event is observed as a single outage
        edge (attributed, via ``source``, to the first group member that
        reaches the signal).  Returns how many components changed state.
        """
        changed = 0
        for key in keys:
            if self._apply_down(
                self.components[key], want_repair=repair, hold=hold,
                source=source,
            ):
                changed += 1
        self._refresh_signals()
        return changed

    def repair_group(self, keys: Sequence[str]) -> int:
        """Repair several components at one instant (maintenance-window end)."""
        changed = 0
        for key in keys:
            if self._apply_up(self.components[key], run_hook=True):
                changed += 1
        self._refresh_signals()
        return changed

    def restore_component(self, key: str) -> None:
        """Force a component up immediately (used by supervisor hooks).

        Cancels its pending repair, marks it up, and schedules a fresh
        failure clock if it is effectively up.  Unlike :meth:`force_repair`
        this does not re-run the ``on_repair`` hook (the caller *is* the
        hook) and leaves signal refreshing to the enclosing transition.
        """
        self._apply_up(self.components[key], run_hook=False)

    # -- group selectors ---------------------------------------------------------------

    def resolve_group(self, selector: str) -> tuple[str, ...]:
        """Expand a component/group selector to concrete component keys.

        Grammar (used by scenario injections and hazard specs):

        * an exact component key (``"host:H2"``) — itself;
        * ``"<key>/*"`` — the element plus every transitive dependent
          (``"rack:R1/*"`` is the rack and all hosts/VMs/processes on it);
        * ``"role:<Name>"`` — every supervisor and process of the role
          across all its instances (``"role:Database"``);
        * ``"kind:<kind>"`` — every component of one
          :class:`~repro.sim.entities.ComponentKind` (``"kind:host"``).

        All lookups hit build-time indexes — no per-query component scans.
        A *well-formed* selector that matches nothing (a role with no
        components, a valid kind with no instances) raises a "matched no
        components" error; a selector the grammar cannot interpret at all
        raises "cannot resolve".
        """
        if selector in self.components:
            return (selector,)
        if selector.endswith("/*"):
            root = selector[:-2]
            if root in self.components:
                return (root, *self._closure[root])
        prefix, _, name = selector.partition(":")
        if prefix == "role" and name:
            keys = self._role_index.get(name)
            if keys:
                return keys
            raise SimulationError(
                f"selector {selector!r} matched no components: no supervisor "
                f"or process of role {name!r} is registered"
            )
        if prefix == "kind" and name:
            try:
                kind = ComponentKind(name)
            except ValueError:
                raise SimulationError(
                    f"cannot resolve component or group {selector!r}: "
                    f"{name!r} is not a component kind (expected one of "
                    f"{sorted(k.value for k in ComponentKind)})"
                ) from None
            keys = self._kind_index.get(kind)
            if keys:
                return keys
            raise SimulationError(
                f"selector {selector!r} matched no components: no "
                f"{name!r} components are registered"
            )
        raise SimulationError(
            f"cannot resolve component or group {selector!r}"
        )

    # -- run loop ---------------------------------------------------------------------

    def run(self, horizon: float, batches: int = 10) -> None:
        """Simulate to ``horizon`` time units with ``batches`` batch windows."""
        if horizon <= 0:
            raise SimulationError(f"horizon must be > 0, got {horizon}")
        if batches < 1:
            raise SimulationError(f"batches must be >= 1, got {batches}")
        obs.note_solver("simulation")
        with obs.span(
            "sim.run",
            horizon=horizon,
            batches=batches,
            components=len(self.components),
        ):
            events_before = self.events_processed
            for component in self.components.values():
                if component.state is ComponentState.UP and self.effectively_up(
                    component.key
                ):
                    self._schedule_failure(component)
            boundaries = [horizon * (i + 1) / batches for i in range(batches)]
            previous: dict[str, tuple[float, float]] = {
                signal.name: (0.0, 0.0) for signal, _ in self._signals
            }
            boundary_index = 0
            queue = self._queue
            events = 0
            while queue and boundary_index < batches:
                event = queue.pop()
                time = event.time
                while (
                    boundary_index < batches
                    and time >= boundaries[boundary_index]
                ):
                    self._record_batch(boundaries[boundary_index], previous)
                    boundary_index += 1
                if time >= horizon:
                    break
                event.action()
                events += 1
            self.events_processed += events
            while boundary_index < batches:
                self._record_batch(boundaries[boundary_index], previous)
                boundary_index += 1
        if obs.enabled():
            obs.count("sim.events", self.events_processed - events_before)
            obs.gauge("sim.queue.stale_pending", self._queue.stale_hint)
            obs.gauge("sim.queue.compactions", self._queue.compactions)
            for signal, _ in self._signals:
                obs.count(
                    f"sim.outage_episodes.{signal.name}", signal.outage_count
                )

    def _record_batch(
        self, boundary: float, previous: dict[str, tuple[float, float]]
    ) -> None:
        for signal, predicate in self._signals:
            signal.update(boundary, predicate(self))
            up, total = signal.cumulative()
            prev_up, prev_total = previous[signal.name]
            batch_total = total - prev_total
            if batch_total > 0:
                self._batch_records[signal.name].append(
                    (up - prev_up) / batch_total
                )
            previous[signal.name] = (up, total)

    # -- results -------------------------------------------------------------------------

    @property
    def events_purged(self) -> int:
        """Stale events removed by queue compaction instead of dispatch.

        Purged events never fire (their component's epoch moved on), so a
        rising counter means masking/hazard churn is cancelling scheduled
        clocks in bulk — work the engine now skips entirely.  Also exported
        as the ``sim.queue.stale_purged_total`` gauge.
        """
        return self._queue.purged

    @property
    def queue_compactions(self) -> int:
        """How many lazy heap compactions the event queue has run."""
        return self._queue.compactions

    def availability(self, name: str) -> float:
        return self.signal(name).availability()

    def signal(self, name: str) -> BinarySignal:
        """Access a signal's full record (outage episodes, integrals)."""
        try:
            return self._signals_by_name[name]
        except KeyError:
            raise SimulationError(f"unknown signal {name!r}") from None

    def batch_availabilities(self, name: str) -> list[float]:
        if name not in self._batch_records:
            raise SimulationError(f"unknown signal {name!r}")
        return list(self._batch_records[name])
