"""Tests for topology elements (repro.topology.elements)."""

import pytest

from repro.errors import TopologyError
from repro.topology.elements import Host, Rack, RoleInstance, Vm


class TestElements:
    def test_rack_name_required(self):
        with pytest.raises(TopologyError):
            Rack("")

    def test_host_references_rack(self):
        host = Host("H1", "R1")
        assert host.rack == "R1"

    def test_host_requires_rack(self):
        with pytest.raises(TopologyError):
            Host("H1", "")

    def test_vm_references_host(self):
        vm = Vm("G1", "H1")
        assert vm.host == "H1"

    def test_role_instance_label(self):
        instance = RoleInstance("Config", 2, "G2")
        assert instance.label == "Config-2"

    def test_role_instance_index_positive(self):
        with pytest.raises(TopologyError):
            RoleInstance("Config", 0, "G1")

    def test_elements_are_hashable_and_ordered(self):
        racks = sorted([Rack("R2"), Rack("R1")])
        assert [r.name for r in racks] == ["R1", "R2"]
        assert len({Host("H1", "R1"), Host("H1", "R1")}) == 1
