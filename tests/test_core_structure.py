"""Tests for structure functions (repro.core.structure)."""

import pytest

from repro.core.blocks import Basic, KOfN
from repro.core.structure import StructureFunction
from repro.errors import ModelError


def two_of_three():
    return StructureFunction(
        ("a", "b", "c"),
        lambda s: sum(s.get(k, True) for k in "abc") >= 2,
    )


class TestStructureFunction:
    def test_evaluation(self):
        f = two_of_three()
        assert f({"a": True, "b": True, "c": False})
        assert not f({"a": True, "b": False, "c": False})

    def test_duplicate_names_rejected(self):
        with pytest.raises(ModelError):
            StructureFunction(("a", "a"), lambda s: True)

    def test_from_block(self):
        block = KOfN(2, (Basic("a", 0.9), Basic("b", 0.9), Basic("c", 0.9)))
        f = StructureFunction.from_block(block)
        assert f.names == ("a", "b", "c")
        assert f({"a": True, "b": True, "c": False})

    def test_availability_matches_block(self):
        block = KOfN(2, (Basic("a", 0.9), Basic("b", 0.8), Basic("c", 0.7)))
        f = StructureFunction.from_block(block)
        probabilities = {"a": 0.9, "b": 0.8, "c": 0.7}
        assert f.availability(probabilities) == pytest.approx(
            block.availability()
        )

    def test_availability_requires_all_probabilities(self):
        with pytest.raises(ModelError):
            two_of_three().availability({"a": 0.9, "b": 0.9})


class TestCoherence:
    def test_kofn_is_coherent(self):
        assert two_of_three().is_coherent()

    def test_non_monotone_rejected(self):
        # "Exactly one up" is non-monotone: repairing can break it.
        parity = StructureFunction(
            ("a", "b"),
            lambda s: (s.get("a", True) + s.get("b", True)) == 1,
        )
        assert not parity.is_coherent()

    def test_irrelevant_component_rejected(self):
        f = StructureFunction(("a", "b"), lambda s: s.get("a", True))
        assert not f.is_coherent()
