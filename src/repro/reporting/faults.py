"""JSON/CSV serialization of fault-campaign cross-validation results.

Table/CSV row builders plus a lossless JSON payload for one
:class:`~repro.faults.crossval.CrossValidation` (or a beta sweep of them),
consumed by the ``repro-avail faults`` CLI subcommand.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Sequence

__all__ = [
    "crossval_rows",
    "crossval_payload",
    "attribution_rows",
    "attribution_payload",
    "sweep_rows",
    "sweep_payload",
    "write_campaign_json",
]

_PLANES = ("cp", "sdp", "ldp", "dp")


def attribution_rows(
    campaign, signal: str = "cp", top: int | None = None
) -> tuple[tuple[str, ...], list[tuple]]:
    """(headers, rows) for a signal's downtime attribution ledger.

    One row per charged component, ordered by attributed downtime (ties by
    name); ``top`` keeps only the heaviest ``top`` rows.  Shares are of the
    signal's total outage time, which the ledger conserves exactly.  The
    ledger's unit is the simulation clock's — hours for the controller
    simulator.
    """
    ledger = campaign.attribution(signal)
    headers = ("Component", "Downtime (h)", "Share", "Episodes")
    seconds = ledger.component_seconds()
    total = ledger.total_seconds()
    ordered = sorted(seconds.items(), key=lambda item: (-item[1], item[0]))
    if top is not None:
        ordered = ordered[:top]
    rows = []
    for component, downtime in ordered:
        rows.append(
            (
                component,
                f"{downtime:.1f}",
                f"{downtime / total:.1%}" if total > 0 else "0.0%",
                str(len(ledger.components[component])),
            )
        )
    return headers, rows


def attribution_payload(campaign) -> dict[str, Any]:
    """JSON-serializable per-plane downtime attribution ledgers."""
    payload: dict[str, Any] = {}
    for plane in _PLANES:
        ledger = campaign.attribution(plane)
        payload[plane] = {
            "episodes": ledger.episode_count,
            "open_episodes": ledger.open_episodes,
            "total_seconds": ledger.total_seconds(),
            "components": ledger.component_seconds(),
            "sources": ledger.source_seconds(),
            "depths": {
                str(depth): count
                for depth, count in sorted(ledger.depths.items())
            },
        }
    return payload


def crossval_rows(crossval) -> tuple[tuple[str, ...], list[tuple]]:
    """Per-plane (headers, rows) for one campaign cross-validation."""
    headers = (
        "Plane", "Simulated", "Analytic", "Gap", "Unavail ratio", "In 95% CI"
    )
    rows = []
    for plane in _PLANES:
        rows.append(
            (
                plane.upper(),
                f"{crossval.simulated(plane):.6f}",
                f"{crossval.analytic[plane]:.6f}",
                f"{crossval.gap(plane):+.6f}",
                f"{crossval.unavailability_ratio(plane):.3f}",
                "yes" if crossval.within_interval(plane) else "no",
            )
        )
    return headers, rows


def crossval_payload(crossval) -> dict[str, Any]:
    """A JSON-serializable record of one campaign cross-validation."""
    result = crossval.result
    return {
        "spec": crossval.spec.to_dict(),
        "spec_hash": crossval.spec.params_hash(),
        "seeds": list(result.replications.seeds),
        "planes": {
            plane: {
                "simulated": crossval.simulated(plane),
                "analytic": crossval.analytic[plane],
                "gap": crossval.gap(plane),
                "unavailability_ratio": crossval.unavailability_ratio(plane),
                "within_interval": crossval.within_interval(plane),
            }
            for plane in _PLANES
        },
        "injections": {
            "total": result.total_injections(),
            "common_cause": result.total_injections("common_cause"),
            "rack_power": result.total_injections("rack_power"),
            "maintenance": result.total_injections("maintenance"),
        },
        "repair_queue": {
            "max_depth": result.max_queue_depth,
            "total_queued": result.total_queued,
        },
        "attribution": attribution_payload(result),
    }


def sweep_rows(
    crossvals: Sequence, betas: Sequence[float]
) -> tuple[tuple[str, ...], list[tuple]]:
    """(headers, rows) for a beta sweep — one row per beta value."""
    headers = (
        "beta", "A_CP sim", "A_CP analytic", "CP gap",
        "Injections", "Max queue",
    )
    rows = []
    for beta, crossval in zip(betas, crossvals):
        rows.append(
            (
                f"{beta:.4f}",
                f"{crossval.simulated('cp'):.6f}",
                f"{crossval.analytic['cp']:.6f}",
                f"{crossval.gap('cp'):+.6f}",
                str(crossval.result.total_injections()),
                str(crossval.result.max_queue_depth),
            )
        )
    return headers, rows


def sweep_payload(
    crossvals: Sequence, betas: Sequence[float]
) -> dict[str, Any]:
    """A JSON-serializable record of a whole beta sweep."""
    return {
        "sweep": "beta",
        "points": [
            {"beta": beta, **crossval_payload(crossval)}
            for beta, crossval in zip(betas, crossvals)
        ],
    }


def write_campaign_json(path: str | Path, payload: dict[str, Any]) -> Path:
    """Write a campaign payload as JSON (parent directories created)."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )
    return target
