"""Hardware deployment topologies.

Section IV of the paper defines three reference layouts of controller role
instances onto VMs, hosts, and racks — Small, Medium, and Large.  This
package provides:

* :mod:`repro.topology.elements` — racks, hosts, VMs, role instances,
* :mod:`repro.topology.deployment` — the :class:`DeploymentTopology`
  placement model with validation and shared/private element analysis,
* :mod:`repro.topology.reference` — builders for the Small/Medium/Large
  reference topologies (and their 2N+1 generalizations),
* :mod:`repro.topology.network_reference` — reference control-network
  graphs (line, ring, fat-tree pod, backbone mesh) for
  :mod:`repro.network`.
"""

from repro.topology.elements import Host, Rack, RoleInstance, Vm
from repro.topology.deployment import DeploymentTopology
from repro.topology.reference import (
    large_topology,
    medium_topology,
    small_topology,
)

_NETWORK_REFERENCE_NAMES = (
    "line_network",
    "ring_network",
    "fat_tree_pod",
    "backbone_network",
    "NETWORK_REFERENCE_BUILDERS",
    "reference_network",
)


def __getattr__(name: str):
    # Lazy re-export: repro.topology.network_reference depends on
    # repro.network (for the graph types), which in turn reaches models and
    # faults — importing it eagerly here would close an import cycle
    # through models.engine.  PEP 562 defers the import to first use.
    if name in _NETWORK_REFERENCE_NAMES:
        from repro.topology import network_reference

        return getattr(network_reference, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "Rack",
    "Host",
    "Vm",
    "RoleInstance",
    "DeploymentTopology",
    "small_topology",
    "medium_topology",
    "large_topology",
    *_NETWORK_REFERENCE_NAMES,
]
