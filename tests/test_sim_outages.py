"""Outage-episode statistics: simulator vs the cut-set frequency calculus."""

import pytest

from repro.controller.spec import Plane
from repro.errors import SimulationError
from repro.models.outage import DowntimeAssumptions, plane_outage_profile
from repro.params.software import RestartScenario
from repro.sim.controller_sim import SimulationConfig, simulate_controller
from repro.sim.measures import BinarySignal


class TestSignalEpisodes:
    def test_episode_accounting(self):
        signal = BinarySignal("s", True)
        signal.update(2.0, False)
        signal.update(3.0, True)  # outage of 1.0
        signal.update(7.0, False)
        signal.update(10.0, True)  # outage of 3.0
        assert signal.outage_count == 2
        assert signal.outage_durations == (1.0, 3.0)
        assert signal.mean_outage_duration() == pytest.approx(2.0)

    def test_open_outage_not_counted(self):
        signal = BinarySignal("s", True)
        signal.update(1.0, False)
        signal.finalize(5.0)
        assert signal.outage_count == 0

    def test_initially_down_episode(self):
        signal = BinarySignal("s", False)
        signal.update(2.0, True)
        assert signal.outage_durations == (2.0,)

    def test_frequency(self):
        signal = BinarySignal("s", True)
        signal.update(5.0, False)
        signal.update(6.0, True)
        signal.finalize(10.0)
        assert signal.outage_frequency() == pytest.approx(0.1)

    def test_no_outages_raises_on_mean(self):
        signal = BinarySignal("s", True)
        signal.finalize(10.0)
        with pytest.raises(SimulationError):
            signal.mean_outage_duration()


@pytest.mark.slow
class TestSimulatedOutageProfile:
    def test_ldp_frequency_matches_prediction(
        self, spec, small, stressed_hardware, stressed_software
    ):
        """Simulated LDP outage frequency ~ 2 processes x rate q/R.

        The local DP goes down whenever either vRouter process fails; with
        A = 0.995 and R = F(1-A)/A, the per-process cycle frequency is
        q/R, and episodes approximately sum (rare overlap).
        """
        config = SimulationConfig(
            seed=41,
            horizon_hours=60_000.0,
            batches=6,
            rack_mtbf_hours=2000.0,
            host_mtbf_hours=1000.0,
            vm_mtbf_hours=500.0,
        )
        result = simulate_controller(
            spec, small, stressed_hardware, stressed_software,
            RestartScenario.NOT_REQUIRED, config,
        )
        stats = result.outage_statistics("ldp")
        q = 1 - stressed_software.a_process
        predicted = 2 * q / stressed_software.auto_restart_hours
        assert stats.count > 100  # enough samples to compare
        assert stats.frequency_per_hour == pytest.approx(predicted, rel=0.25)

    def test_cp_outage_profile_matches_cutset_calculus(
        self, spec, small, stressed_hardware, stressed_software
    ):
        """Simulated CP outage frequency/duration vs the analytic profile.

        Both sides use identical parameters; the cut-set calculus is a
        rare-event approximation, so agreement within ~35% at these
        stressed parameters validates the structure.
        """
        config = SimulationConfig(
            seed=43,
            horizon_hours=60_000.0,
            batches=6,
            rack_mtbf_hours=2000.0,
            host_mtbf_hours=1000.0,
            vm_mtbf_hours=500.0,
        )
        result = simulate_controller(
            spec, small, stressed_hardware, stressed_software,
            RestartScenario.REQUIRED, config,
        )
        assumptions = DowntimeAssumptions(
            rack_mttr_hours=2000.0
            * (1 - stressed_hardware.a_rack)
            / stressed_hardware.a_rack,
            host_mttr_hours=1000.0
            * (1 - stressed_hardware.a_host)
            / stressed_hardware.a_host,
            vm_mttr_hours=500.0
            * (1 - stressed_hardware.a_vm)
            / stressed_hardware.a_vm,
        )
        predicted = plane_outage_profile(
            spec, small, stressed_hardware, stressed_software,
            RestartScenario.REQUIRED, Plane.CP, assumptions=assumptions,
        )
        stats = result.outage_statistics("cp")
        assert stats.count > 50
        assert stats.frequency_per_hour == pytest.approx(
            predicted.frequency_per_hour, rel=0.35
        )

    def test_outage_statistics_exposed_for_all_planes(
        self, spec, small, stressed_hardware, stressed_software
    ):
        config = SimulationConfig(seed=5, horizon_hours=3_000.0, batches=3)
        result = simulate_controller(
            spec, small, stressed_hardware, stressed_software,
            RestartScenario.REQUIRED, config,
        )
        for plane in ("cp", "sdp", "ldp", "dp"):
            stats = result.outage_statistics(plane)
            assert stats.count >= 0
        with pytest.raises(SimulationError):
            result.outage_statistics("ghost")
