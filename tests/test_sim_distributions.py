"""Repair-distribution sensitivity: steady-state availability is shape-free.

The alternating-renewal theorem says steady-state availability depends on
the repair-time distribution only through its mean; the analytic models
therefore hold for arbitrary repair distributions.  These tests demonstrate
it on the simulator with deterministic, uniform, and heavy-tailed
lognormal repairs — and show what DOES change (outage-duration spread).
"""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.sim.distributions import (
    deterministic_repairs,
    exponential_repairs,
    lognormal_repairs,
    uniform_repairs,
)
from repro.sim.engine import AvailabilitySimulator
from repro.sim.entities import Component, ComponentKind
from repro.sim.rng import RngStreams


def run_single(sampler, seed=31, lam=0.05, mttr=1.0, horizon=120_000.0):
    component = Component(
        key="x",
        kind=ComponentKind.PROCESS,
        failure_rate=lam,
        repair_mean=mttr,
    )
    sim = AvailabilitySimulator(
        [component], seed=seed, repair_sampler=sampler
    )
    sim.add_signal("x", lambda s: s.effectively_up("x"))
    sim.run(horizon=horizon, batches=5)
    return sim


class TestSamplers:
    def test_deterministic(self):
        rng = RngStreams(1)
        assert deterministic_repairs(rng, "r", 2.5) == 2.5

    def test_lognormal_mean_calibrated(self):
        rng = RngStreams(2)
        sampler = lognormal_repairs(cv=1.5)
        draws = [sampler(rng, "r", 3.0) for _ in range(20_000)]
        assert np.mean(draws) == pytest.approx(3.0, rel=0.05)

    def test_uniform_bounds(self):
        rng = RngStreams(3)
        sampler = uniform_repairs(spread=0.5)
        draws = [sampler(rng, "r", 2.0) for _ in range(1000)]
        assert min(draws) >= 1.0 and max(draws) <= 3.0
        assert np.mean(draws) == pytest.approx(2.0, rel=0.05)

    def test_validation(self):
        rng = RngStreams(4)
        with pytest.raises(SimulationError):
            deterministic_repairs(rng, "r", 0.0)
        with pytest.raises(SimulationError):
            lognormal_repairs(cv=0.0)
        with pytest.raises(SimulationError):
            uniform_repairs(spread=1.0)


class TestDistributionInsensitivity:
    EXPECTED = (1 / 0.05) / (1 / 0.05 + 1.0)  # MTBF/(MTBF+MTTR) = 20/21

    @pytest.mark.parametrize(
        "sampler",
        [
            exponential_repairs,
            deterministic_repairs,
            lognormal_repairs(cv=1.5),
            uniform_repairs(spread=0.5),
        ],
        ids=["exponential", "deterministic", "lognormal", "uniform"],
    )
    def test_steady_state_availability_matches(self, sampler):
        sim = run_single(sampler)
        assert sim.availability("x") == pytest.approx(
            self.EXPECTED, abs=0.005
        )

    def test_outage_duration_spread_differs(self):
        # The availability is shape-free, the outage experience is not:
        # deterministic repairs have zero duration variance, lognormal
        # repairs a large one.
        deterministic = run_single(deterministic_repairs, seed=7)
        heavy = run_single(lognormal_repairs(cv=1.5), seed=7)
        det_durations = deterministic.signal("x").outage_durations
        heavy_durations = heavy.signal("x").outage_durations
        assert np.std(det_durations) == pytest.approx(0.0, abs=1e-9)
        assert np.std(heavy_durations) > 0.5
        # Means agree (both calibrated to the same MTTR).
        assert np.mean(det_durations) == pytest.approx(
            np.mean(heavy_durations), rel=0.1
        )
