"""Controller-placement optimization over a network graph.

Choose ``k`` controller sites maximizing fleet-wide control-path
availability (the mean exact per-switch A_CP).  Small candidate pools are
searched exhaustively; larger pools use the classic greedy ascent, and
pools where greedy's one-site-at-a-time myopia is a concern get
``method="local"`` — swap-based hill climbing with seeded random restarts,
evaluating each whole swap neighborhood as **one** batched array sweep
(:mod:`repro.network.batch`) instead of one compile per subset.  Restart
starting points derive from :func:`repro.sim.rng.derive_seeds`, so a fixed
``seed`` reproduces the search bit-identically regardless of restart
count or platform.

Greedy and local search both carry a *bound report*: because adding a
site can only add control paths, the objective is monotone in the site
set, so the value with **every** candidate active is a certified upper
bound on the best achievable with any ``k`` — the gap between the chosen
value and that bound tells the caller how much could possibly be left on
the table (the submodularity-style guarantee pattern, without needing
submodularity for validity).

Every candidate evaluation emits a ``placement.candidate`` telemetry event
through :mod:`repro.obs.telemetry`, so a live stream shows the search as
it runs; the events carry the same fields the returned
:class:`PlacementResult` pins down.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Iterable

import numpy as np

from repro.errors import NetworkError
from repro.network.batch import compile_pair_sweep
from repro.network.graph import NetworkGraph
from repro.network.paths import (
    exact_control_path_unavailability,
    fleet_availability,
)
from repro.obs import telemetry
from repro.sim.rng import derive_seeds

__all__ = [
    "PlacementResult",
    "placement_value",
    "optimize_placement",
    "PLACEMENT_METHODS",
]

#: ``method="auto"`` uses exhaustive search up to this many candidate sites.
EXACT_CANDIDATE_LIMIT = 6

#: Search methods :func:`optimize_placement` accepts.
PLACEMENT_METHODS = ("auto", "exact", "greedy", "local")


@dataclass(frozen=True)
class PlacementResult:
    """The outcome of one placement search.

    Attributes:
        sites: the chosen site tuple (search order preserved for greedy,
            graph order for exact).
        availability: fleet-wide mean A_CP of the chosen placement.
        per_switch: per-switch A_CP under the chosen placement, in graph
            switch order.
        method: ``"exact"``, ``"greedy"``, or ``"local"`` (after ``"auto"``
            resolution).
        k: number of sites requested.
        candidates: the candidate pool searched.
        bound: certified upper bound on the optimal fleet A_CP — the chosen
            value itself for exact search, the all-candidates value for
            greedy and local search (valid by monotonicity).
        evaluations: how many site subsets were evaluated.
        restarts: local-search restart count (``None`` for other methods).
        seed: local-search root seed (``None`` for other methods).
    """

    sites: tuple[str, ...]
    availability: float
    per_switch: tuple[tuple[str, float], ...]
    method: str
    k: int
    candidates: tuple[str, ...]
    bound: float
    evaluations: int
    restarts: int | None = None
    seed: int | None = None

    @property
    def gap(self) -> float:
        """How far below the certified bound the chosen placement sits."""
        return self.bound - self.availability

    def per_switch_map(self) -> dict[str, float]:
        return dict(self.per_switch)

    def to_dict(self) -> dict[str, Any]:
        return {
            "sites": list(self.sites),
            "availability": self.availability,
            "per_switch": {switch: value for switch, value in self.per_switch},
            "method": self.method,
            "k": self.k,
            "candidates": list(self.candidates),
            "bound": self.bound,
            "gap": self.gap,
            "evaluations": self.evaluations,
            "restarts": self.restarts,
            "seed": self.seed,
        }


def placement_value(
    graph: NetworkGraph,
    sites: tuple[str, ...],
    switches: tuple[str, ...],
) -> tuple[float, dict[str, float]]:
    """Fleet A_CP and per-switch A_CP of one candidate site set.

    Exact per-switch evaluation through the memoized factored evaluator —
    a search revisiting the same ``(switch, site subset)`` pair never
    recomputes it.
    """
    per_switch = {
        switch: 1.0 - exact_control_path_unavailability(graph, switch, sites)
        for switch in switches
    }
    return fleet_availability(per_switch), per_switch


def optimize_placement(
    graph: NetworkGraph,
    k: int,
    candidates: Iterable[str] | None = None,
    method: str = "auto",
    restarts: int = 4,
    seed: int = 0,
) -> PlacementResult:
    """Choose ``k`` controller sites maximizing fleet-wide A_CP.

    Args:
        graph: the network graph; its switches are the fleet.
        k: number of sites to place.
        candidates: candidate site names; defaults to every ``"site"`` node.
        method: ``"exact"`` (exhaustive over all k-subsets), ``"greedy"``
            (k rounds of best marginal gain plus a monotonicity bound),
            ``"local"`` (swap hill climbing with ``restarts`` seeded random
            starts, neighborhoods evaluated as batched array sweeps), or
            ``"auto"`` (exact up to :data:`EXACT_CANDIDATE_LIMIT`
            candidates, greedy beyond).
        restarts: local-search restart count (``method="local"`` only).
        seed: local-search root seed; restart starting points derive from
            it via :func:`repro.sim.rng.derive_seeds`.

    Ties (equal fleet A_CP) break deterministically toward the
    lexicographically-smallest site tuple, so equal graph hashes yield
    bit-identical placements.
    """
    pool = tuple(candidates) if candidates is not None else graph.sites
    if not pool:
        raise NetworkError(
            f"graph {graph.name!r} has no candidate controller sites"
        )
    if len(set(pool)) != len(pool):
        raise NetworkError("candidate sites must be distinct")
    node_names = {node.name for node in graph.nodes}
    for site in pool:
        if site not in node_names:
            raise NetworkError(f"graph {graph.name!r} has no node {site!r}")
    if not 1 <= k <= len(pool):
        raise NetworkError(
            f"k must be in [1, {len(pool)}] for {len(pool)} candidates, "
            f"got {k}"
        )
    switches = graph.switches
    if not switches:
        raise NetworkError(f"graph {graph.name!r} has no switches to serve")
    if method not in PLACEMENT_METHODS:
        raise NetworkError(
            f"method must be one of {PLACEMENT_METHODS}, got {method!r}"
        )
    if method == "local" and restarts < 1:
        raise NetworkError(f"restarts must be >= 1, got {restarts}")
    if method == "auto":
        method = "exact" if len(pool) <= EXACT_CANDIDATE_LIMIT else "greedy"

    telemetry.emit(
        "placement.start",
        graph=graph.name,
        graph_hash=graph.graph_hash(),
        k=k,
        method=method,
        candidates=len(pool),
        switches=len(switches),
    )
    evaluations = 0

    def evaluate(subset: tuple[str, ...]) -> tuple[float, dict[str, float]]:
        nonlocal evaluations
        value, per_switch = placement_value(graph, subset, switches)
        evaluations += 1
        telemetry.emit(
            "placement.candidate",
            sites=list(subset),
            availability=value,
        )
        return value, per_switch

    if method == "exact":
        best: tuple[str, ...] | None = None
        best_value = -1.0
        best_per_switch: dict[str, float] = {}
        for combo in itertools.combinations(sorted(pool), k):
            value, per_switch = evaluate(combo)
            if value > best_value or (value == best_value and combo < best):
                best, best_value, best_per_switch = combo, value, per_switch
        assert best is not None
        bound = best_value
        chosen, chosen_value, chosen_per_switch = best, best_value, best_per_switch
    elif method == "greedy":
        bound, _ = evaluate(tuple(sorted(pool)))
        chosen_list: list[str] = []
        chosen_value = 0.0
        chosen_per_switch = {}
        for _ in range(k):
            round_best: str | None = None
            round_value = -1.0
            round_per_switch: dict[str, float] = {}
            for site in sorted(set(pool) - set(chosen_list)):
                subset = tuple(sorted((*chosen_list, site)))
                value, per_switch = evaluate(subset)
                if value > round_value:
                    round_best, round_value, round_per_switch = (
                        site, value, per_switch,
                    )
            assert round_best is not None
            chosen_list.append(round_best)
            chosen_value, chosen_per_switch = round_value, round_per_switch
        chosen = tuple(chosen_list)
    else:
        plan = compile_pair_sweep(graph, switches=switches, candidates=pool)

        def evaluate_batch(
            subsets: tuple[tuple[str, ...], ...],
        ) -> tuple[list[float], list[dict[str, float]]]:
            nonlocal evaluations
            sweep = plan.evaluate(subsets)
            fleet = sweep.fleet()
            evaluations += len(subsets)
            for subset, value in zip(subsets, fleet):
                telemetry.emit(
                    "placement.candidate",
                    sites=list(subset),
                    availability=float(value),
                )
            return (
                [float(value) for value in fleet],
                [sweep.per_switch_map(row) for row in range(len(subsets))],
            )

        pool_sorted = tuple(sorted(pool))
        (bound,), _ = evaluate_batch((pool_sorted,))
        chosen = None
        chosen_value = -1.0
        chosen_per_switch = {}
        for restart, child_seed in enumerate(derive_seeds(seed, restarts)):
            rng = np.random.default_rng(child_seed)
            picks = rng.choice(len(pool_sorted), size=k, replace=False)
            current = tuple(sorted(pool_sorted[i] for i in sorted(picks)))
            (value,), (per_switch,) = evaluate_batch((current,))
            telemetry.emit(
                "placement.restart",
                index=restart,
                start=list(current),
                availability=value,
            )
            while True:
                inside = set(current)
                neighborhood = sorted(
                    {
                        tuple(sorted((inside - {out}) | {new}))
                        for out in current
                        for new in pool_sorted
                        if new not in inside
                    }
                )
                if not neighborhood:
                    break
                values, per_switches = evaluate_batch(tuple(neighborhood))
                # The neighborhood is lexicographically sorted, so the
                # first maximum is also the deterministic tie-break.
                step = max(range(len(values)), key=lambda i: (values[i], -i))
                if values[step] <= value:
                    break
                current, value, per_switch = (
                    neighborhood[step], values[step], per_switches[step],
                )
            if value > chosen_value or (
                value == chosen_value and current < chosen
            ):
                chosen, chosen_value, chosen_per_switch = (
                    current, value, per_switch,
                )
        assert chosen is not None

    result = PlacementResult(
        sites=chosen,
        availability=chosen_value,
        per_switch=tuple(
            (switch, chosen_per_switch[switch]) for switch in switches
        ),
        method=method,
        k=k,
        candidates=pool,
        bound=bound,
        evaluations=evaluations,
        restarts=restarts if method == "local" else None,
        seed=seed if method == "local" else None,
    )
    telemetry.emit(
        "placement.end",
        sites=list(result.sites),
        availability=result.availability,
        bound=result.bound,
        gap=result.gap,
        evaluations=result.evaluations,
    )
    return result
