"""Simulation-versus-analytic validation harness.

Runs the Monte-Carlo controller simulation and the closed-form SW-centric
models on the *same* parameters and reports the agreement — the paper's
proposed future-work validation, and ablation A3 in DESIGN.md.

For tractable run times the validation is typically performed at *stressed*
parameters (lower availabilities than the paper defaults, so failures
actually occur during the horizon); both routes see the same parameters, so
agreement still validates the model structure.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.controller.spec import ControllerSpec
from repro.models.dataplane import local_dp_availability
from repro.models.sw import cp_availability, shared_dp_availability
from repro.params.hardware import HardwareParams
from repro.params.software import RestartScenario, SoftwareParams
from repro.sim.controller_sim import (
    SimulationConfig,
    SimulationResult,
    simulate_controller,
)
from repro.topology.deployment import DeploymentTopology


@dataclass(frozen=True)
class ValidationReport:
    """Side-by-side analytic and simulated availabilities."""

    topology: str
    scenario: RestartScenario
    analytic_cp: float
    analytic_sdp: float
    analytic_ldp: float
    analytic_dp: float
    simulated: SimulationResult

    def unavailability_ratio(self, plane: str) -> float:
        """Simulated / analytic unavailability — 1.0 is perfect agreement."""
        pairs = {
            "cp": (self.simulated.cp, self.analytic_cp),
            "sdp": (self.simulated.shared_dp, self.analytic_sdp),
            "ldp": (self.simulated.local_dp, self.analytic_ldp),
            "dp": (self.simulated.dp, self.analytic_dp),
        }
        sim_a, ana_a = pairs[plane]
        if ana_a >= 1.0:
            return 1.0 if sim_a >= 1.0 else float("inf")
        return (1.0 - sim_a) / (1.0 - ana_a)

    def analytic_within_interval(self, plane: str) -> bool:
        """Whether the analytic value falls in the simulation's 95% CI."""
        analytic = {
            "cp": self.analytic_cp,
            "sdp": self.analytic_sdp,
            "ldp": self.analytic_ldp,
            "dp": self.analytic_dp,
        }[plane]
        return self.simulated.interval(plane).contains(analytic)


def analytic_predictions(
    spec: ControllerSpec,
    topology_name: str,
    hardware: HardwareParams,
    software: SoftwareParams,
    scenario: RestartScenario,
    effective_correction: bool = True,
) -> dict[str, float]:
    """Closed-form cp/sdp/ldp/dp availabilities for one configuration.

    The shared analytic side of :func:`validate_against_analytic` and the
    fault-campaign cross-validation (:mod:`repro.faults.crossval`).
    ``effective_correction`` applies the paper's section VI.A scenario-1
    refinement (``A* = F/(F + R*)`` for auto-restarted processes) — see
    :func:`validate_against_analytic` for why that is the right comparison
    target at stressed parameters.
    """
    if effective_correction and scenario is RestartScenario.NOT_REQUIRED:
        software = SoftwareParams.from_availabilities(
            software.effective_availability(scenario),
            software.a_unsupervised,
            mtbf_hours=software.mtbf_hours,
        )
    sdp = shared_dp_availability(
        spec, topology_name, hardware, software, scenario
    )
    ldp = local_dp_availability(spec, software, scenario)
    return {
        "cp": cp_availability(
            spec, topology_name, hardware, software, scenario
        ),
        "sdp": sdp,
        "ldp": ldp,
        "dp": sdp * ldp,
    }


def validate_against_analytic(
    spec: ControllerSpec,
    topology: DeploymentTopology,
    topology_name: str,
    hardware: HardwareParams,
    software: SoftwareParams,
    scenario: RestartScenario,
    config: SimulationConfig | None = None,
    effective_correction: bool = True,
) -> ValidationReport:
    """Run both routes on identical parameters and package the comparison.

    ``topology_name`` selects the closed-form model ('small'/'medium'/
    'large') matching the explicit ``topology`` the simulator runs on.

    ``effective_correction`` applies the paper's section VI.A scenario-1
    refinement to the analytic side: auto-restarted processes are given the
    effective availability ``A* = F/(F + R*)`` (a process that fails during
    its supervisor's outage window restarts manually).  At the paper's
    parameters ``A* ~= A`` and the correction is invisible; at the stressed
    parameters used to make simulation runs tractable it is not, and the
    corrected analytic is the right comparison target.
    """
    simulated = simulate_controller(
        spec, topology, hardware, software, scenario, config
    )
    analytic = analytic_predictions(
        spec, topology_name, hardware, software, scenario,
        effective_correction=effective_correction,
    )
    return ValidationReport(
        topology=topology_name,
        scenario=scenario,
        analytic_cp=analytic["cp"],
        analytic_sdp=analytic["sdp"],
        analytic_ldp=analytic["ldp"],
        analytic_dp=analytic["dp"],
        simulated=simulated,
    )
