"""Batched (switch, site-set) sweeps against per-pair scalar evaluation.

One compiled :class:`~repro.network.batch.PairSweepPlan` must reproduce
:func:`repro.network.paths.exact_control_path_unavailability` for every
(switch, site subset) pair at 1e-12 — including subsets where a control
path *transits* an unchosen candidate site, the case the virtual
``ctrl@`` indicator elements exist for.  Also pins the availability
override path, the fleet objective, and the input validation.
"""

from __future__ import annotations

import itertools

import pytest

from repro.errors import NetworkError
from repro.network import (
    NetworkGraph,
    NetworkLink,
    NetworkNode,
    compile_pair_sweep,
    exact_control_path_unavailability,
    sweep_site_sets,
)
from repro.network.batch import CTRL_PREFIX, indicator_path_sets
from repro.topology.network_reference import (
    backbone_network,
    fat_tree_pod,
    ring_network,
)

TOL = 1e-12


def transit_chain() -> NetworkGraph:
    """S - A - B: reaching candidate B requires transiting candidate A."""
    return NetworkGraph(
        name="transit-chain",
        nodes=(
            NetworkNode("A", kind="site", availability=0.9),
            NetworkNode("B", kind="site", availability=0.8),
            NetworkNode("S", availability=0.95),
        ),
        links=(
            NetworkLink("LSA", "S", "A", availability=0.99),
            NetworkLink("LAB", "A", "B", availability=0.98),
        ),
    )


def all_site_subsets(pool):
    return [
        subset
        for size in range(1, len(pool) + 1)
        for subset in itertools.combinations(pool, size)
    ]


class TestAgreementWithScalarEvaluator:
    @pytest.mark.parametrize(
        "builder", [backbone_network, fat_tree_pod, ring_network]
    )
    def test_every_pair_matches_exact(self, builder):
        graph = builder()
        plan = compile_pair_sweep(graph)
        subsets = all_site_subsets(plan.candidates)
        result = plan.evaluate(subsets)
        for row, sites in enumerate(subsets):
            for column, switch in enumerate(plan.switches):
                expected = 1.0 - exact_control_path_unavailability(
                    graph, switch, sites
                )
                assert result.availability[row, column] == pytest.approx(
                    expected, abs=TOL
                ), (sites, switch)

    def test_transit_through_unchosen_candidate(self):
        graph = transit_chain()
        plan = compile_pair_sweep(graph)
        result = plan.evaluate([("A",), ("B",), ("A", "B")])
        for row, sites in enumerate([("A",), ("B",), ("A", "B")]):
            expected = 1.0 - exact_control_path_unavailability(
                graph, "S", sites
            )
            assert result.availability[row, 0] == pytest.approx(
                expected, abs=TOL
            ), sites
        # Choosing only B really does route through A's node.
        only_a = result.availability[0, 0]
        only_b = result.availability[1, 0]
        assert only_b < only_a

    def test_indicator_paths_carry_ctrl_elements(self):
        graph = transit_chain()
        paths = indicator_path_sets(graph, "S", ("A", "B"))
        indicators = {
            name
            for path in paths
            for name in path
            if name.startswith(CTRL_PREFIX)
        }
        assert indicators == {"ctrl@A", "ctrl@B"}
        # The B-terminating path transits A's node but not A's indicator.
        to_b = [path for path in paths if "ctrl@B" in path]
        assert to_b and all("A" in path for path in to_b)
        assert all("ctrl@A" not in path for path in to_b)


class TestAvailabilityOverride:
    def test_override_matches_rebuilt_graph(self):
        graph = backbone_network()
        plan = compile_pair_sweep(graph)
        subsets = [("CTRL1",), ("CTRL1", "CTRL2")]
        overridden = plan.evaluate(
            subsets, availability={"LB2": 0.7, "R3": 0.9}
        )
        rebuilt = NetworkGraph(
            name=graph.name,
            nodes=tuple(
                node if node.name != "R3" else NetworkNode(
                    "R3", kind=node.kind, availability=0.9
                )
                for node in graph.nodes
            ),
            links=tuple(
                link if link.name != "LB2" else NetworkLink(
                    "LB2", link.a, link.b, availability=0.7, srg=link.srg
                )
                for link in graph.links
            ),
            srgs=graph.srgs,
        )
        for row, sites in enumerate(subsets):
            for column, switch in enumerate(plan.switches):
                expected = 1.0 - exact_control_path_unavailability(
                    rebuilt, switch, sites
                )
                assert overridden.availability[row, column] == (
                    pytest.approx(expected, abs=TOL)
                )

    def test_unknown_override_element_rejected(self):
        plan = compile_pair_sweep(backbone_network())
        with pytest.raises(NetworkError, match="no element"):
            plan.evaluate([("CTRL1",)], availability={"ghost": 0.5})


class TestResultSurface:
    def test_fleet_is_mean_over_switches(self):
        plan = compile_pair_sweep(backbone_network())
        result = plan.evaluate([("CTRL1", "CTRL2")])
        assert result.fleet()[0] == pytest.approx(
            float(result.availability[0].mean()), abs=TOL
        )

    def test_per_switch_map_and_to_dict(self):
        plan = compile_pair_sweep(backbone_network())
        result = plan.evaluate([("CTRL2",)])
        mapped = result.per_switch_map(0)
        assert set(mapped) == set(plan.switches)
        payload = result.to_dict()
        assert payload["switches"] == list(plan.switches)
        assert payload["site_sets"] == [["CTRL2"]]
        assert payload["fleet"][0] == pytest.approx(
            result.fleet()[0], abs=TOL
        )

    def test_sweep_site_sets_defaults_pool_to_union(self):
        graph = backbone_network()
        result = sweep_site_sets(graph, [("CTRL2",), ("CTRL1", "CTRL2")])
        assert result.site_sets == (("CTRL2",), ("CTRL1", "CTRL2"))
        expected = 1.0 - exact_control_path_unavailability(
            graph, "SW1", ("CTRL2",)
        )
        assert result.availability[0, 0] == pytest.approx(expected, abs=TOL)


class TestValidation:
    def test_unknown_site_in_subset_rejected(self):
        plan = compile_pair_sweep(backbone_network())
        with pytest.raises(NetworkError, match="not in the compiled"):
            plan.evaluate([("R1",)])

    def test_empty_and_duplicate_subsets_rejected(self):
        plan = compile_pair_sweep(backbone_network())
        with pytest.raises(NetworkError, match="non-empty"):
            plan.evaluate([()])
        with pytest.raises(NetworkError, match="duplicate"):
            plan.evaluate([("CTRL1", "CTRL1")])
        with pytest.raises(NetworkError, match="at least one site set"):
            plan.evaluate([])

    def test_switch_in_candidate_pool_rejected(self):
        with pytest.raises(NetworkError, match="cannot also be"):
            compile_pair_sweep(
                backbone_network(), candidates=("CTRL1", "SW1")
            )

    def test_unknown_candidate_rejected(self):
        with pytest.raises(NetworkError, match="no node"):
            compile_pair_sweep(backbone_network(), candidates=("ghost",))
