"""Property-based tests for Eq. (1) (repro.core.kofn)."""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.kofn import (
    a_m_of_n,
    a_m_of_n_exact,
    binomial_pmf,
    kofn_unavailability,
)

alphas = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
small_n = st.integers(min_value=0, max_value=8)
quorums = st.integers(min_value=0, max_value=10)


class TestBounds:
    @given(m=quorums, n=small_n, alpha=alphas)
    def test_result_is_probability(self, m, n, alpha):
        value = a_m_of_n(m, n, alpha)
        assert 0.0 <= value <= 1.0

    @given(m=quorums, n=small_n, alpha=alphas)
    def test_complement_identity(self, m, n, alpha):
        assert a_m_of_n(m, n, alpha) + kofn_unavailability(
            m, n, alpha
        ) == pytest.approx(1.0, abs=1e-12)


class TestMonotonicity:
    @given(
        m=st.integers(min_value=1, max_value=5),
        n=st.integers(min_value=1, max_value=8),
        lo=alphas,
        hi=alphas,
    )
    def test_monotone_in_alpha(self, m, n, lo, hi):
        lo, hi = min(lo, hi), max(lo, hi)
        assert a_m_of_n(m, n, lo) <= a_m_of_n(m, n, hi) + 1e-12

    @given(m=st.integers(min_value=1, max_value=8), n=small_n, alpha=alphas)
    def test_decreasing_in_quorum(self, m, n, alpha):
        assert a_m_of_n(m + 1, n, alpha) <= a_m_of_n(m, n, alpha) + 1e-12

    @given(m=st.integers(min_value=1, max_value=6), n=small_n, alpha=alphas)
    def test_increasing_in_replicas(self, m, n, alpha):
        # Adding a replica never hurts an m-of-n requirement.
        assert a_m_of_n(m, n, alpha) <= a_m_of_n(m, n + 1, alpha) + 1e-12


class TestRecurrence:
    @given(
        m=st.integers(min_value=1, max_value=6),
        n=st.integers(min_value=1, max_value=8),
        alpha=alphas,
    )
    def test_pascal_recurrence(self, m, n, alpha):
        # Condition on the last component: A_{m/n} =
        # alpha A_{m-1/n-1} + (1-alpha) A_{m/n-1}.
        lhs = a_m_of_n(m, n, alpha)
        rhs = alpha * a_m_of_n(m - 1, n - 1, alpha) + (1 - alpha) * a_m_of_n(
            m, n - 1, alpha
        )
        assert lhs == pytest.approx(rhs, abs=1e-12)


class TestExactOracle:
    @given(
        m=quorums,
        n=small_n,
        num=st.integers(min_value=0, max_value=100),
    )
    @settings(max_examples=60)
    def test_matches_rational_arithmetic(self, m, n, num):
        alpha = Fraction(num, 100)
        expected = float(a_m_of_n_exact(m, n, alpha))
        assert a_m_of_n(m, n, num / 100) == pytest.approx(expected, abs=1e-12)


class TestBinomial:
    @given(n=small_n, p=alphas)
    def test_pmf_normalizes(self, n, p):
        total = sum(binomial_pmf(k, n, p) for k in range(n + 1))
        assert total == pytest.approx(1.0, abs=1e-10)

    @given(n=small_n, p=alphas, m=quorums)
    def test_tail_sum_equals_eq1(self, n, p, m):
        tail = sum(binomial_pmf(k, n, p) for k in range(min(m, n + 1), n + 1))
        if m <= n:
            assert tail == pytest.approx(a_m_of_n(m, n, p), abs=1e-10)
