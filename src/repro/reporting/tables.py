"""Minimal, dependency-free ASCII table rendering.

The benchmark harness regenerates the paper's tables and figure series as
text; this module renders them with aligned columns so the output can be
compared side-by-side with the paper.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import ReproError


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render a table with a header rule and aligned columns.

    Cells are converted with ``str``; floats should be pre-formatted by the
    caller to control precision.  Raises if any row's width differs from the
    header width.
    """
    header_cells = [str(h) for h in headers]
    text_rows = []
    for row in rows:
        cells = [str(cell) for cell in row]
        if len(cells) != len(header_cells):
            raise ReproError(
                f"row {row!r} has {len(cells)} cells, expected {len(header_cells)}"
            )
        text_rows.append(cells)
    widths = [len(h) for h in header_cells]
    for cells in text_rows:
        for i, cell in enumerate(cells):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(header_cells, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for cells in text_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(cells, widths)))
    return "\n".join(lines)


def format_availability(value: float, digits: int = 7) -> str:
    """Format an availability with enough digits to distinguish nines."""
    return f"{value:.{digits}f}"
