"""Batch sizing for the struct-of-arrays replication kernel.

The batched kernel (:mod:`repro.sim.batched`) holds per-replication clock
matrices and RNG buffers for every replication it advances in lockstep;
memory grows as ``replications * components``.  This module picks how many
replications to advance per chunk so the arrays stay cache/memory friendly
while keeping enough rows in flight to amortize the fixed per-round numpy
dispatch cost.
"""

from __future__ import annotations

from repro.errors import SimulationError

#: Approximate resident bytes per (replication row, component): the fail and
#: repair clock columns (2 x 8 B), the two 64-deep standard-exponential
#: buffers (2 x 64 x 8 B), buffer cursors, and intrinsic-state bookkeeping.
BYTES_PER_ROW_COMPONENT = 1104

#: Default memory budget for one kernel chunk (~96 MiB keeps the arrays
#: comfortably in main memory on small CI runners).
DEFAULT_BUDGET_BYTES = 96 * 2**20


def replication_batch_size(
    replications: int,
    components: int,
    budget_bytes: int = DEFAULT_BUDGET_BYTES,
) -> int:
    """Replication rows to advance per lockstep chunk.

    Caps chunk memory at ``budget_bytes`` given the kernel's per-row cost
    of ``components * BYTES_PER_ROW_COMPONENT`` bytes; never below 1 row
    and never above ``replications``.
    """
    if replications < 1:
        raise SimulationError(f"replications must be >= 1, got {replications}")
    if components < 1:
        raise SimulationError(f"components must be >= 1, got {components}")
    if budget_bytes < 1:
        raise SimulationError(f"budget_bytes must be >= 1, got {budget_bytes}")
    rows = budget_bytes // (components * BYTES_PER_ROW_COMPONENT)
    return int(min(replications, max(1, rows)))
