"""Tests for SLA risk analysis (repro.analysis.sla)."""

import math

import numpy as np
import pytest

from repro.analysis.frequency import OutageProfile
from repro.analysis.sla import (
    annual_downtime_samples,
    exceedance_probability,
    zero_downtime_probability,
)
from repro.errors import ParameterError
from repro.units import HOURS_PER_YEAR


def profile(outages_per_year=0.5, mean_hours=4.0):
    frequency = outages_per_year / HOURS_PER_YEAR
    return OutageProfile(
        unavailability=frequency * mean_hours,
        frequency_per_hour=frequency,
    )


class TestZeroDowntime:
    def test_closed_form(self):
        p = profile(outages_per_year=0.1)
        assert zero_downtime_probability(p, years=1.0) == pytest.approx(
            math.exp(-0.1)
        )

    def test_paper_rack_decade(self):
        # A 1-per-500-years rack: ~98% chance of a quiet decade.
        p = profile(outages_per_year=1 / 500)
        assert zero_downtime_probability(p, years=10) == pytest.approx(
            math.exp(-10 / 500)
        )

    def test_validation(self):
        with pytest.raises(ParameterError):
            zero_downtime_probability(profile(), years=-1)


class TestSamples:
    def test_mean_matches_profile(self):
        p = profile(outages_per_year=2.0, mean_hours=3.0)
        samples = annual_downtime_samples(p, samples=40_000, seed=1)
        expected_minutes = 2.0 * 3.0 * 60.0
        assert np.mean(samples) == pytest.approx(expected_minutes, rel=0.05)

    def test_zero_fraction_matches_poisson(self):
        p = profile(outages_per_year=0.5)
        samples = annual_downtime_samples(p, samples=40_000, seed=2)
        zero_fraction = float(np.mean(samples == 0.0))
        assert zero_fraction == pytest.approx(math.exp(-0.5), abs=0.01)

    def test_deterministic_per_seed(self):
        p = profile()
        a = annual_downtime_samples(p, samples=100, seed=3)
        b = annual_downtime_samples(p, samples=100, seed=3)
        assert np.array_equal(a, b)

    def test_validation(self):
        with pytest.raises(ParameterError):
            annual_downtime_samples(profile(), samples=0)


class TestExceedance:
    def test_monotone_in_threshold(self):
        p = profile(outages_per_year=2.0, mean_hours=2.0)
        low = exceedance_probability(p, 10.0, samples=20_000, seed=4)
        high = exceedance_probability(p, 600.0, samples=20_000, seed=4)
        assert low > high

    def test_zero_threshold_is_any_outage(self):
        p = profile(outages_per_year=1.0)
        any_outage = exceedance_probability(p, 0.0, samples=40_000, seed=5)
        assert any_outage == pytest.approx(1 - math.exp(-1.0), abs=0.01)

    def test_small_vs_large_sla_risk(self, spec, hardware, software):
        # The operational takeaway: Small and Large have similar chances
        # of an outage-free year, but Small's bad years are much worse.
        from repro.controller.spec import Plane
        from repro.models.outage import plane_outage_profile
        from repro.params.software import RestartScenario
        from repro.topology.reference import large_topology, small_topology

        small_profile = plane_outage_profile(
            spec, small_topology(spec), hardware, software,
            RestartScenario.NOT_REQUIRED, Plane.CP,
        )
        large_profile = plane_outage_profile(
            spec, large_topology(spec), hardware, software,
            RestartScenario.NOT_REQUIRED, Plane.CP,
        )
        quiet_small = zero_downtime_probability(small_profile)
        quiet_large = zero_downtime_probability(large_profile)
        assert quiet_small == pytest.approx(quiet_large, abs=0.01)
        # P(> 1 hour of CP downtime in a year): Small is far riskier.
        risk_small = exceedance_probability(
            small_profile, 60.0, samples=40_000, seed=6
        )
        risk_large = exceedance_probability(
            large_profile, 60.0, samples=40_000, seed=6
        )
        assert risk_small > 3 * risk_large
