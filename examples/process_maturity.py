"""Process maturity sweep: how software quality moves the availability needle.

The paper sweeps process availability "+/- 1 order of magnitude of
downtime ... to reflect differing degrees of SW process maturity and
auto-recovery capabilities."  This example reads the sweep as an
engineering roadmap: given the current process MTBF, what do (a) faster
auto-restart, (b) supervisor hardening, and (c) fewer crashes each buy?

Run with::

    python examples/process_maturity.py
"""

from dataclasses import replace

from repro import (
    PAPER_HARDWARE,
    PAPER_SOFTWARE,
    evaluate_option,
    opencontrail_3x,
)


def report(label, spec, software):
    result_cp = evaluate_option(spec, "2L", PAPER_HARDWARE, software)
    result_dp = evaluate_option(spec, "2S", PAPER_HARDWARE, software)
    print(
        f"  {label:34} CP(2L) {result_cp.cp_downtime_minutes:6.2f} m/y"
        f"   DP(2S) {result_dp.dp_downtime_minutes:7.1f} m/y"
    )


def main() -> None:
    spec = opencontrail_3x()
    base = PAPER_SOFTWARE

    print("Improvement levers, realistic (supervisor-required) options:\n")
    report("baseline (F=5000h, R=0.1h, R_S=1h)", spec, base)
    report(
        "2x faster auto-restart (R=0.05h)",
        spec,
        replace(base, auto_restart_hours=0.05),
    )
    report(
        "2x faster manual restart (R_S=0.5h)",
        spec,
        replace(base, manual_restart_hours=0.5),
    )
    report(
        "2x fewer crashes (F=10000h)",
        spec,
        replace(base, mtbf_hours=10000.0),
    )
    report(
        "automated supervisor recovery (R_S=R)",
        spec,
        replace(base, manual_restart_hours=base.auto_restart_hours),
    )

    print(
        "\nReading: auto-restart speed barely matters (it is already fast);\n"
        "the big wins are crash-rate reduction and — above all — automating\n"
        "the manual restarts (supervisor, redis, Database).  That is the\n"
        "paper's closing recommendation: 'develop automation to reduce\n"
        "downtime and improve vRouter availability'."
    )

    print("\nFull maturity sweep (A and A_S in lock-step):\n")
    print(f"  {'orders':>7} {'A':>10} {'CP 2L m/y':>10} {'DP 2S m/y':>10}")
    for orders in (-1.0, -0.5, 0.0, 0.5, 1.0):
        scaled = base.scaled(orders)
        cp = evaluate_option(spec, "2L", PAPER_HARDWARE, scaled)
        dp = evaluate_option(spec, "2S", PAPER_HARDWARE, scaled)
        print(
            f"  {orders:>+7.1f} {scaled.a_process:>10.6f} "
            f"{cp.cp_downtime_minutes:>10.2f} {dp.dp_downtime_minutes:>10.1f}"
        )


if __name__ == "__main__":
    main()
