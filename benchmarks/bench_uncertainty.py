"""A7 — robustness of the paper's orderings under parameter uncertainty.

The paper: "These values are intended to represent ballpark parameters ...
The resulting relative comparisons and observations remain the same
regardless of the actual values used."  This bench stress-tests that
assertion: every hardware unavailability is perturbed log-uniformly within
±0.5 and ±1.0 orders of magnitude and the headline orderings re-checked.
"""

import pytest

from repro.analysis.uncertainty import (
    corner_bounds,
    monte_carlo,
    ordering_confidence,
)
from repro.models.hw_closed import hw_large, hw_medium, hw_small
from repro.reporting.tables import format_table

MODELS = {"small": hw_small, "medium": hw_medium, "large": hw_large}


def robustness(hardware):
    rows = []
    for spread in (0.5, 1.0):
        confidence = ordering_confidence(
            MODELS,
            ("medium", "small", "large"),
            hardware,
            spread_orders=spread,
            samples=400,
            seed=17,
        )
        distribution = monte_carlo(
            hw_large, hardware, spread, samples=400, seed=17
        )
        bounds = corner_bounds(hw_large, hardware, spread)
        rows.append((spread, confidence, distribution, bounds))
    return rows


def test_uncertainty(benchmark, hardware):
    rows = benchmark(robustness, hardware)
    print(
        "\n"
        + format_table(
            (
                "Spread (orders)",
                "P(M <= S <= L)",
                "Large p5",
                "Large p95",
                "Large lo bound",
                "Large hi bound",
            ),
            [
                (
                    f"±{spread}",
                    f"{confidence:.3f}",
                    f"{dist.p5:.7f}",
                    f"{dist.p95:.7f}",
                    f"{bounds[0]:.7f}",
                    f"{bounds[1]:.7f}",
                )
                for spread, confidence, dist, bounds in rows
            ],
            title="Ablation A7: ordering robustness under parameter uncertainty",
        )
    )
    for spread, confidence, dist, bounds in rows:
        # The paper's claim: the qualitative ordering survives everywhere.
        assert confidence == pytest.approx(1.0)
        # Monotone corner bounds bracket the sampled distribution.
        assert bounds[0] <= dist.p5 <= dist.p95 <= bounds[1]
