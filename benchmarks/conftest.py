"""Shared benchmark fixtures and the results directory."""

from __future__ import annotations

from pathlib import Path

import pytest


def pytest_collection_modifyitems(items):
    """Everything collected from benchmarks/ carries the ``bench`` marker."""
    for item in items:
        item.add_marker(pytest.mark.bench)

from repro.controller.opencontrail import opencontrail_3x
from repro.params.defaults import PAPER_HARDWARE, PAPER_SOFTWARE

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


@pytest.fixture(scope="session")
def spec():
    return opencontrail_3x()


@pytest.fixture(scope="session")
def hardware():
    return PAPER_HARDWARE


@pytest.fixture(scope="session")
def software():
    return PAPER_SOFTWARE


@pytest.fixture(scope="session")
def results_dir():
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR
