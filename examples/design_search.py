"""Mechanized cost:resiliency design search.

The paper's models exist to evaluate "the cost:resiliency tradeoff before
capital investment occurs".  This example automates that evaluation: it
sweeps the layout design space (combined vs separated node VMs x racks
used), prices each layout, and prints the Pareto frontier and the cheapest
design for several availability targets — rediscovering the paper's "one
rack or three, but not two" and "separation buys nothing" laws as search
results rather than analysis.

Run with::

    python examples/design_search.py
"""

from repro import (
    PAPER_HARDWARE,
    PAPER_SOFTWARE,
    RestartScenario,
    opencontrail_3x,
)
from repro.models.design import (
    CostModel,
    cheapest_meeting,
    enumerate_designs,
    pareto_frontier,
)


def main() -> None:
    spec = opencontrail_3x()
    cost_model = CostModel(rack_cost=10.0, host_cost=1.0)
    points = enumerate_designs(
        spec,
        PAPER_HARDWARE,
        PAPER_SOFTWARE,
        RestartScenario.REQUIRED,
        cost_model=cost_model,
    )

    print("Design space (option 2*, CP availability, exact engine):\n")
    print(f"  {'layout':14} {'racks':>5} {'hosts':>5} {'cost':>5} "
          f"{'A_CP':>11} {'m/y':>7}")
    frontier_names = {p.name for p in pareto_frontier(points)}
    for p in points:
        marker = "  <- Pareto" if p.name in frontier_names else ""
        print(
            f"  {p.name:14} {len(p.topology.racks):>5} "
            f"{len(p.topology.hosts):>5} {p.cost:>5.0f} "
            f"{p.availability:>11.8f} {p.downtime_minutes:>7.2f}{marker}"
        )

    print("\nCheapest design per availability target:\n")
    for target, label in (
        (0.9999, "four nines"),
        (0.99998, "~10 m/y"),
        (0.999995, "~2.6 m/y"),
        (0.99999999, "eight nines"),
    ):
        winner = cheapest_meeting(points, target)
        name = winner.name if winner else "infeasible with this controller"
        print(f"  {label:12} (A >= {target}): {name}")

    print(
        "\nFindings (all three are the paper's conclusions, here produced\n"
        "by search rather than analysis):\n"
        "* two racks never appear on the frontier — one rack or three;\n"
        "* separated role VMs/hosts cost more and buy nothing;\n"
        "* the jump worth paying for is the third rack (~5 m/y saved)."
    )


if __name__ == "__main__":
    main()
