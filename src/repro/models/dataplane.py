"""Host data-plane composition: ``A_DP = A_SDP × A_LDP``.

The per-host data plane has two independent contributions (section VI.C):

* the **shared** contribution ``A_SDP`` from controller-side roles (a
  Control/Config outage takes down *every* host's DP) — computed by
  :func:`repro.models.sw.shared_dp_availability`;
* the **local** contribution ``A_LDP`` from the host's own vRouter
  processes: ``A^K`` when the vRouter supervisor is not required, and
  ``A^K · A_S`` when it is (K = 2 in OpenContrail: *vrouter-agent* and
  *vrouter-dpdk*).
"""

from __future__ import annotations

from repro.controller.spec import ControllerSpec, Plane
from repro.errors import ModelError
from repro.models.sw import shared_dp_availability
from repro.params.hardware import HardwareParams
from repro.params.software import RestartScenario, SoftwareParams


def local_dp_availability(
    spec: ControllerSpec,
    software: SoftwareParams,
    scenario: RestartScenario,
) -> float:
    """``A_LDP`` — the host-local vRouter contribution to the DP.

    The product of the host role's DP-required process availabilities (each
    "1 of 1"), times the vRouter supervisor availability when the supervisor
    is required.  Controllers without a per-host role (hardware forwarding
    planes) return 1.
    """
    role = spec.host_role
    if role is None:
        return 1.0
    amap = software.availability_map()
    value = 1.0
    for unit in role.quorum_units(Plane.DP.value):
        if unit.quorum != 1:
            raise ModelError(
                f"per-host unit {unit.label!r} must be '1 of 1', got "
                f"quorum {unit.quorum}"
            )
        value *= unit.alpha(amap)
    if scenario is RestartScenario.REQUIRED and role.supervisor is not None:
        value *= software.a_unsupervised
    return value


def dp_availability(
    spec: ControllerSpec,
    topology_name: str,
    hardware: HardwareParams,
    software: SoftwareParams,
    scenario: RestartScenario,
) -> float:
    """Per-host data-plane availability ``A_DP = A_SDP · A_LDP``."""
    shared = shared_dp_availability(
        spec, topology_name, hardware, software, scenario
    )
    local = local_dp_availability(spec, software, scenario)
    return shared * local
