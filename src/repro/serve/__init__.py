"""Availability-as-a-service: the analytic and campaign stacks over HTTP.

A stdlib-only asyncio service that answers the paper's availability
questions on demand instead of per CLI invocation:

* :mod:`repro.serve.protocol` — minimal HTTP/1.1 framing with hard
  request limits (plus chunked :class:`StreamingResponse` for live
  streams);
* :mod:`repro.serve.cache` — single-flight, LRU-bounded result cache
  keyed on canonical parameter hashes (schema-versioned, so version
  bumps self-invalidate);
* :mod:`repro.serve.batching` — micro-batching of concurrent closed-form
  queries into one vectorized kernel call;
* :mod:`repro.serve.admission` — queue-depth and per-tenant caps that
  shed overload with 429s;
* :mod:`repro.serve.jobs` — the sharded campaign job queue (submit,
  poll), deterministic-identical to CLI runs;
* :mod:`repro.serve.tracing` — per-request trace contexts and latency
  attribution segments;
* :mod:`repro.serve.stream` — server-sent-events fan-out of the live
  telemetry bus (``GET /v1/events``, ``GET /v1/jobs/<id>/events``);
* :mod:`repro.serve.loadtest` — open-loop multi-tenant load generation
  and the attribution-coverage check;
* :mod:`repro.serve.app` — routing, instrumentation, and lifecycle.

``repro-avail serve`` starts a server (``repro-avail serve loadtest``
drives one); ``repro-avail query`` is a tiny line client;
``docs/SERVE.md`` documents the HTTP API.
"""

from repro.serve.admission import (
    AdmissionController,
    AdmissionError,
    AdmissionPolicy,
)
from repro.serve.app import ServeApp, ServeConfig
from repro.serve.batching import MicroBatcher
from repro.serve.cache import (
    CACHE_KEY_VERSIONS,
    SingleFlightCache,
    result_key,
)
from repro.serve.jobs import Job, JobQueue
from repro.serve.loadtest import LoadtestConfig, LoadtestReport, run_loadtest
from repro.serve.protocol import (
    ProtocolError,
    Request,
    Response,
    StreamingResponse,
    read_request,
)
from repro.serve.stream import TelemetryHub, encode_sse_event
from repro.serve.tracing import RequestTrace, current_request, request_scope

__all__ = [
    "AdmissionController",
    "AdmissionError",
    "AdmissionPolicy",
    "ServeApp",
    "ServeConfig",
    "MicroBatcher",
    "CACHE_KEY_VERSIONS",
    "SingleFlightCache",
    "result_key",
    "Job",
    "JobQueue",
    "LoadtestConfig",
    "LoadtestReport",
    "run_loadtest",
    "ProtocolError",
    "Request",
    "RequestTrace",
    "Response",
    "StreamingResponse",
    "TelemetryHub",
    "current_request",
    "encode_sse_event",
    "read_request",
    "request_scope",
]
