"""Property-based edge-case tests for the perf layer and Eq. (1) paths.

Covers the degenerate inputs a sweep or quorum computation can reach —
empty and singleton grids, ``n = 1`` and ``k = n`` quorums, availabilities
pinned at exactly 0 or 1 — and demands the three Eq. (1) implementations
(stable scalar float, exact :class:`~fractions.Fraction`, vectorized numpy)
agree there, where naive formulations typically diverge first.
"""

from __future__ import annotations

from fractions import Fraction

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.kofn import a_m_of_n, a_m_of_n_array, a_m_of_n_exact
from repro.errors import ParameterError
from repro.perf.vectorized import sweep_vectorized

alphas = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
sizes = st.integers(min_value=1, max_value=8)


class TestSweepGridEdges:
    def test_empty_grid(self):
        result = sweep_vectorized("A_C", [], {"id": lambda a: a})
        assert result.grid == ()
        assert result.series == {"id": ()}

    @given(value=alphas)
    def test_singleton_grid(self, value):
        result = sweep_vectorized(
            "A_C", [value], {"quorum": lambda a: a_m_of_n_array(2, 3, a)}
        )
        assert result.grid == (value,)
        # scalar and numpy pow can differ in the last ULP
        assert result.series["quorum"][0] == pytest.approx(
            a_m_of_n(2, 3, value), rel=1e-12, abs=1e-15
        )

    def test_no_evaluators_raises(self):
        with pytest.raises(ParameterError):
            sweep_vectorized("A_C", [0.5], {})

    def test_multidimensional_grid_raises(self):
        with pytest.raises(ParameterError):
            sweep_vectorized(
                "A_C", np.ones((2, 2)), {"id": lambda a: a}
            )

    def test_wrong_evaluator_shape_raises(self):
        with pytest.raises(ParameterError):
            sweep_vectorized(
                "A_C", [0.1, 0.2], {"bad": lambda a: a[:1]}
            )


class TestQuorumEdges:
    @given(n=sizes, alpha=alphas)
    def test_n_equals_1(self, n, alpha):
        """A 1-of-1 block is the element itself."""
        assert a_m_of_n(1, 1, alpha) == pytest.approx(alpha, abs=1e-15)

    @given(n=sizes, alpha=alphas)
    def test_k_equals_n_is_series(self, n, alpha):
        """An n-of-n block is a pure series system: alpha**n."""
        value = a_m_of_n(n, n, alpha)
        assert value == pytest.approx(alpha**n, rel=1e-12, abs=1e-15)
        exact = a_m_of_n_exact(n, n, Fraction(alpha))
        assert exact == Fraction(alpha) ** n

    @given(n=sizes, alpha=alphas)
    def test_m_zero_and_m_above_n(self, n, alpha):
        assert a_m_of_n(0, n, alpha) == 1.0
        assert a_m_of_n(n + 1, n, alpha) == 0.0
        assert a_m_of_n_exact(0, n, Fraction(alpha)) == 1
        assert a_m_of_n_exact(n + 1, n, Fraction(alpha)) == 0


class TestExtremeAvailabilityAgreement:
    """A in {0, 1}: all three Eq. (1) implementations agree exactly."""

    @given(m=st.integers(min_value=1, max_value=8), n=sizes)
    def test_alpha_one(self, m, n):
        expected = 1.0 if m <= n else 0.0
        assert a_m_of_n(m, n, 1.0) == expected
        assert a_m_of_n_exact(m, n, Fraction(1)) == expected
        assert float(a_m_of_n_array(m, n, 1.0)) == expected

    @given(m=st.integers(min_value=1, max_value=8), n=sizes)
    def test_alpha_zero(self, m, n):
        assert a_m_of_n(m, n, 0.0) == 0.0
        assert a_m_of_n_exact(m, n, Fraction(0)) == 0
        assert float(a_m_of_n_array(m, n, 0.0)) == 0.0

    @settings(max_examples=50)
    @given(
        m=st.integers(min_value=0, max_value=9),
        n=sizes,
        alpha=st.sampled_from([0.0, 1.0]) | alphas,
    )
    def test_three_paths_agree(self, m, n, alpha):
        """Scalar, exact-Fraction, and vectorized paths agree to a few ULPs."""
        scalar = a_m_of_n(m, n, alpha)
        exact = float(a_m_of_n_exact(m, n, Fraction(alpha)))
        vector = float(a_m_of_n_array(m, n, np.asarray([alpha]))[0])
        assert scalar == pytest.approx(exact, rel=1e-12, abs=1e-15)
        assert vector == pytest.approx(exact, rel=1e-12, abs=1e-15)

    def test_array_path_matches_scalar_on_extreme_grid(self):
        grid = np.asarray([0.0, 1e-12, 0.5, 1.0 - 1e-12, 1.0])
        vector = a_m_of_n_array(2, 3, grid)
        for value, expected in zip(
            vector, (a_m_of_n(2, 3, float(a)) for a in grid)
        ):
            assert float(value) == pytest.approx(expected, abs=1e-15)
