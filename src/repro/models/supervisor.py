"""Supervisor restart-scenario analysis — section VI.A.

The quantitative core lives on :class:`~repro.params.software.SoftwareParams`
(``effective_availability`` etc.); this module adds the comparison report
the paper walks through: for each scenario, the effective failure interval
``F*``, restart time ``R*``, and availability ``A*``, with the paper's
conclusions ("process availability A is not measurably impacted in scenario
1"; "every process effectively inherits the supervisor availability A_S in
scenario 2") as testable predicates.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.params.software import RestartScenario, SoftwareParams


@dataclass(frozen=True)
class ScenarioAnalysis:
    """Effective process behaviour under one supervisor scenario."""

    scenario: RestartScenario
    effective_mtbf_hours: float
    effective_restart_hours: float
    effective_availability: float


def analyze_scenario(
    software: SoftwareParams, scenario: RestartScenario
) -> ScenarioAnalysis:
    """The paper's (F*, R*, A*) triple for one scenario."""
    return ScenarioAnalysis(
        scenario=scenario,
        effective_mtbf_hours=software.effective_mtbf_hours(scenario),
        effective_restart_hours=software.effective_restart_hours(scenario),
        effective_availability=software.effective_availability(scenario),
    )


def compare_scenarios(
    software: SoftwareParams,
) -> dict[RestartScenario, ScenarioAnalysis]:
    """Both scenarios side by side — the section VI.A walkthrough."""
    return {
        scenario: analyze_scenario(software, scenario)
        for scenario in RestartScenario
    }


def scenario1_preserves_availability(
    software: SoftwareParams, tolerance: float = 1e-5
) -> bool:
    """Scenario-1 claim: ``A* ~= A`` (supervisor loss barely matters).

    True when the scenario-1 effective unavailability differs from the
    supervised unavailability by less than ``tolerance`` (absolute).
    """
    a_star = software.effective_availability(RestartScenario.NOT_REQUIRED)
    return abs(a_star - software.a_process) < tolerance


def scenario2_inherits_supervisor(
    software: SoftwareParams, relative_tolerance: float = 0.25
) -> bool:
    """Scenario-2 claim: ``A* ~= A_S`` (processes inherit supervisor availability).

    True when the scenario-2 effective *unavailability* is within
    ``relative_tolerance`` of the unsupervised unavailability.  The paper's
    defaults give ``1 - A* = 2.2e-4`` vs ``1 - A_S = 2.0e-4`` — "every
    process effectively inherits the supervisor availability".
    """
    a_star = software.effective_availability(RestartScenario.REQUIRED)
    u_star = 1.0 - a_star
    u_s = 1.0 - software.a_unsupervised
    if u_s == 0.0:
        return u_star == 0.0
    return abs(u_star - u_s) / u_s <= relative_tolerance
