"""Quantifying the paper's closing recommendation.

The paper ends with a call to "develop automation to reduce downtime and
improve vRouter availability" and to give the community "focus areas for
code improvements".  This example prices those recommendations:

1. rank the weak links (which automation to build first);
2. evaluate a *hardened* OpenContrail profile where every manual-restart
   process (redis, the Database quartet) is auto-restarted;
3. show what remains — the vRouter supervisor — and what fixing it buys.

Run with::

    python examples/automation_payoff.py
"""

from repro import (
    PAPER_HARDWARE,
    PAPER_SOFTWARE,
    RestartScenario,
    evaluate_option,
    opencontrail_3x,
)
from repro.controller.library import hardened_opencontrail
from repro.controller.spec import Plane
from repro.models.weak_links import rank_weak_links
from repro.topology.reference import large_topology


def main() -> None:
    base = opencontrail_3x()
    hardened = hardened_opencontrail()
    topology = large_topology(base)

    print("Step 1 — where the downtime lives (CP, option 2L):\n")
    links = rank_weak_links(
        base, topology, PAPER_HARDWARE, PAPER_SOFTWARE,
        RestartScenario.REQUIRED, Plane.CP, top=6,
    )
    for link in links:
        print(
            f"  {link.component:36} FV {link.fussell_vesely:6.1%}   "
            f"automation buys {link.automation_benefit_minutes:5.2f} m/y"
        )

    print("\nStep 2 — harden the manual restarts (redis + Database):\n")
    print(f"  {'option':7} {'baseline CP m/y':>16} {'hardened CP m/y':>16} "
          f"{'baseline DP m/y':>16} {'hardened DP m/y':>16}")
    for option in ("1S", "2S", "1L", "2L"):
        before = evaluate_option(base, option, PAPER_HARDWARE, PAPER_SOFTWARE)
        after = evaluate_option(
            hardened, option, PAPER_HARDWARE, PAPER_SOFTWARE
        )
        print(
            f"  {option:7} {before.cp_downtime_minutes:>16.2f} "
            f"{after.cp_downtime_minutes:>16.2f} "
            f"{before.dp_downtime_minutes:>16.1f} "
            f"{after.dp_downtime_minutes:>16.1f}"
        )

    print(
        "\nStep 3 — the remaining DP gap is the vRouter supervisor:\n"
        "  hardened 2S DP downtime stays >100 m/y because the per-host\n"
        "  supervisor is still a manual-restart single point of failure;\n"
        "  compare option 1S (supervisor not required) to see the prize:"
    )
    required = evaluate_option(hardened, "2S", PAPER_HARDWARE, PAPER_SOFTWARE)
    not_required = evaluate_option(
        hardened, "1S", PAPER_HARDWARE, PAPER_SOFTWARE
    )
    print(
        f"\n  hardened, supervisor required:     "
        f"{required.dp_downtime_minutes:6.1f} m/y"
        f"\n  hardened, supervisor made hitless: "
        f"{not_required.dp_downtime_minutes:6.1f} m/y"
        f"\n  payoff: {required.dp_downtime_minutes - not_required.dp_downtime_minutes:.1f} "
        "minutes/year per host"
    )


if __name__ == "__main__":
    main()
