"""Tests for weak-link ranking and the composite report."""

import pytest

from repro.analysis.report import generate_report, render_report
from repro.controller.spec import Plane
from repro.models.weak_links import rank_weak_links
from repro.params.software import RestartScenario

S1 = RestartScenario.NOT_REQUIRED
S2 = RestartScenario.REQUIRED


class TestWeakLinks:
    def test_rack_dominates_small_cp(self, spec, small, hardware, software):
        links = rank_weak_links(
            spec, small, hardware, software, S1, Plane.CP
        )
        assert links[0].component == "rack:R1"
        assert links[0].fussell_vesely > 0.5

    def test_database_supervisor_prominent_in_scenario2(
        self, spec, small, hardware, software
    ):
        links = rank_weak_links(
            spec, small, hardware, software, S2, Plane.CP
        )
        names = [link.component for link in links]
        assert "sup:Database" in names
        # ... and it outranks every individual Database process.
        sup_rank = names.index("sup:Database")
        for name in names:
            if name.startswith("proc:Database/"):
                assert sup_rank < names.index(name)

    def test_vrouter_supervisor_is_the_dp_automation_target(
        self, spec, small, hardware, software
    ):
        # The paper's headline recommendation: automating the vRouter
        # supervisor recovers most of the DP downtime.
        links = rank_weak_links(
            spec, small, hardware, software, S2, Plane.DP
        )
        assert links[0].component == "local:supervisor"
        assert links[0].automation_benefit_minutes > 90.0

    def test_auto_restarted_processes_have_no_benefit(
        self, spec, small, hardware, software
    ):
        links = rank_weak_links(
            spec, small, hardware, software, S1, Plane.DP
        )
        by_name = {link.component: link for link in links}
        assert by_name[
            "local:vrouter-agent"
        ].automation_benefit_minutes == pytest.approx(0.0)

    def test_instances_grouped_by_class(
        self, spec, large, hardware, software
    ):
        links = rank_weak_links(
            spec, large, hardware, software, S1, Plane.CP, top=30
        )
        for link in links:
            if link.component.startswith("proc:"):
                # No trailing instance index.
                assert not link.component.rsplit("-", 1)[-1].isdigit()

    def test_shares_sum_near_one(self, spec, small, hardware, software):
        links = rank_weak_links(
            spec, small, hardware, software, S1, Plane.CP, top=100
        )
        # Fussell-Vesely shares overlap on multi-component cuts, so the
        # sum exceeds... each order-2 cut contributes its probability to
        # two components; total is between 1 and 2.
        total = sum(link.fussell_vesely for link in links)
        assert 1.0 <= total <= 2.0


class TestReport:
    def test_report_values_match_exact_models(
        self, spec, small, hardware, software
    ):
        from repro.models.sw import plane_availability_exact

        report = generate_report(
            spec, small, hardware, software, S2
        )
        assert report.cp == pytest.approx(
            plane_availability_exact(
                spec, Plane.CP, small, hardware, software, S2
            )
        )
        assert report.dp == pytest.approx(
            report.shared_dp * report.local_dp
        )

    def test_render_contains_sections(self, spec, small, hardware, software):
        report = generate_report(spec, small, hardware, software, S2)
        text = render_report(report)
        assert "SDN control plane" in text
        assert "Dominant CP failure mode" in text
        assert "Automation benefit" in text
        assert "outage every" in text

    def test_report_cli(self, capsys):
        from repro.cli import main

        assert main(["report", "--option", "2S", "--top", "3"]) == 0
        out = capsys.readouterr().out
        assert "Availability report" in out
        assert "local:supervisor" in out
