"""HW-centric availability via the exact topology engine.

Same quantity as :mod:`repro.models.hw_closed`, computed by the generic
enumeration engine over an explicit :class:`DeploymentTopology` — the
independent cross-check of the closed forms, and the evaluator for layouts
the paper has no closed form for (custom rack/host arrangements).
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.controller.spec import ControllerSpec
from repro.errors import ModelError
from repro.models.engine import (
    RoleRequirement,
    UnitRequirement,
    evaluate_topology,
)
from repro.params.hardware import HardwareParams
from repro.topology.deployment import DeploymentTopology


def hw_role_requirements(
    roles_and_quorums: Mapping[str, int] | Sequence[tuple[str, int]],
    a_role: float,
) -> tuple[RoleRequirement, ...]:
    """Atomic-role requirements: one m-of-n unit per role, alpha = A_C."""
    items = (
        roles_and_quorums.items()
        if isinstance(roles_and_quorums, Mapping)
        else roles_and_quorums
    )
    return tuple(
        RoleRequirement(role, (UnitRequirement(role, quorum, a_role),))
        for role, quorum in items
    )


def hw_availability_exact(
    topology: DeploymentTopology,
    params: HardwareParams,
    quorums: Mapping[str, int] | None = None,
) -> float:
    """Exact HW-centric controller availability on an explicit topology.

    Args:
        topology: any deployment (the reference Small/Medium/Large builders
            or a custom layout).
        params: the four hardware availabilities.
        quorums: role-name -> required instances.  Defaults to the paper's
            rule: every placed role needs 1 instance except a role named
            ``"Database"``, which needs a majority.
    """
    if quorums is None:
        quorums = {}
        for role in topology.role_names():
            count = topology.replica_count(role)
            quorums[role] = count // 2 + 1 if role == "Database" else 1
    for role in quorums:
        if role not in topology.role_names():
            raise ModelError(f"role {role!r} is not placed in {topology.name}")
    requirements = hw_role_requirements(quorums, params.a_role)
    availability = {
        "rack": params.a_rack,
        "host": params.a_host,
        "vm": params.a_vm,
    }
    return evaluate_topology(topology, requirements, availability)


def hw_availability_exact_for_spec(
    topology: DeploymentTopology,
    spec: ControllerSpec,
    params: HardwareParams,
) -> float:
    """HW-centric availability with quorums derived from a controller spec.

    The role-level quorum is the maximum CP quorum of any process in the
    role — the paper's abstraction that "at least 2 out of 3 nodes of the
    Database role must be available" because its processes need 2-of-3.
    """
    quorums: dict[str, int] = {}
    for role in spec.cluster_roles:
        quorums[role.name] = max(
            (p.cp_quorum for p in role.processes), default=0
        )
    quorums = {role: q for role, q in quorums.items() if q > 0}
    return hw_availability_exact(topology, params, quorums)
