"""Tests for custom layouts and anti-affinity checks (repro.topology.custom)."""

import pytest

from repro.controller.spec import Plane
from repro.errors import TopologyError
from repro.models.sw import plane_availability_exact
from repro.params.software import RestartScenario
from repro.topology.custom import (
    check_anti_affinity,
    cross_rack_small,
    database_spread,
    hardware_footprint,
)

ROLES = ("Config", "Control", "Analytics", "Database")


class TestCrossRackSmall:
    def test_footprint(self, spec):
        topo = cross_rack_small(spec)
        assert hardware_footprint(topo) == (3, 3, 3)

    def test_rack_anti_affinity_for_all_roles(self, spec):
        topo = cross_rack_small(spec)
        for role in ROLES:
            assert check_anti_affinity(topo, role, "rack")

    def test_vm_affinity_within_node(self, spec):
        # Roles share the combined VM, so VM anti-affinity fails.
        topo = cross_rack_small(spec)
        vms = {i.vm for i in topo.instances if i.index == 1}
        assert vms == {"GCAD1"}

    def test_matches_large_availability(self, spec, hardware, software):
        # The headline ablation: rack diversity, not host count, drives
        # the Small -> Large improvement.
        from repro.topology.reference import large_topology

        cross = plane_availability_exact(
            spec, Plane.CP, cross_rack_small(spec), hardware, software,
            RestartScenario.NOT_REQUIRED,
        )
        large = plane_availability_exact(
            spec, Plane.CP, large_topology(spec), hardware, software,
            RestartScenario.NOT_REQUIRED,
        )
        assert (1 - cross) == pytest.approx(1 - large, rel=0.05)


class TestDatabaseSpread:
    def test_shape(self, spec):
        topo = database_spread(spec)
        assert hardware_footprint(topo) == (3, 6, 6)
        assert check_anti_affinity(topo, "Database", "rack")
        assert not check_anti_affinity(topo, "Config", "rack")

    def test_does_not_help(self, spec, hardware, software):
        # Rack R1 still takes down all 1-of-3 roles: availability stays at
        # the Small level despite doubling the hosts.
        from repro.topology.reference import small_topology

        spread = plane_availability_exact(
            spec, Plane.CP, database_spread(spec), hardware, software,
            RestartScenario.NOT_REQUIRED,
        )
        small = plane_availability_exact(
            spec, Plane.CP, small_topology(spec), hardware, software,
            RestartScenario.NOT_REQUIRED,
        )
        assert (1 - spread) == pytest.approx(1 - small, rel=0.25)

    def test_unknown_quorum_role_rejected(self, spec):
        with pytest.raises(TopologyError):
            database_spread(spec, quorum_role="Ghost")


class TestAntiAffinity:
    def test_large_has_host_anti_affinity(self, spec, large):
        for role in ROLES:
            assert check_anti_affinity(large, role, "host")
            assert check_anti_affinity(large, role, "rack")

    def test_small_lacks_rack_anti_affinity(self, spec, small):
        assert not check_anti_affinity(small, "Database", "rack")
        assert check_anti_affinity(small, "Database", "host")

    def test_medium_rack_affinity_broken(self, spec, medium):
        # Two instances share rack R1 in the Medium layout.
        assert not check_anti_affinity(medium, "Database", "rack")

    def test_bad_level_rejected(self, spec, small):
        with pytest.raises(TopologyError):
            check_anti_affinity(small, "Database", "datacenter")
