"""Observability layer: tracing, metrics, and run manifests.

Three pieces, built to be *zero-cost when disabled* and to never perturb
results (instrumented runs are bit-identical to uninstrumented ones):

* :mod:`repro.obs.trace` — span-based tracer (context manager + decorator,
  monotonic timings, nesting);
* :mod:`repro.obs.metrics` — counters, gauges, and timing histograms;
* :mod:`repro.obs.manifest` — :class:`RunManifest`, the JSON-round-tripping
  provenance record (params hash, topology, seed material, package version,
  solver path, per-phase timings) of one run.

Instrumented code goes through :mod:`repro.obs.runtime`, whose module-level
helpers collapse to no-ops while no session is active; the CLI's global
``--trace file.json`` flag and the ``repro-avail obs`` subcommand are the
user-facing entry points.
"""

from repro.obs.manifest import (
    SCHEMA_VERSION,
    PhaseTiming,
    RunManifest,
    package_version,
    params_hash,
)
from repro.obs.metrics import Counter, Gauge, MetricsRegistry, TimingHistogram
from repro.obs.runtime import (
    ObsSession,
    active,
    annotate,
    count,
    enabled,
    gauge,
    note_solver,
    observe,
    session,
    span,
    start,
    stop,
    traced,
)
from repro.obs.trace import Span, Tracer
from repro.obs.export import render_manifest, summarize_spans

__all__ = [
    # trace
    "Span",
    "Tracer",
    # metrics
    "Counter",
    "Gauge",
    "TimingHistogram",
    "MetricsRegistry",
    # manifest
    "SCHEMA_VERSION",
    "PhaseTiming",
    "RunManifest",
    "params_hash",
    "package_version",
    # runtime
    "ObsSession",
    "start",
    "stop",
    "active",
    "enabled",
    "session",
    "span",
    "traced",
    "count",
    "gauge",
    "observe",
    "note_solver",
    "annotate",
    # export
    "render_manifest",
    "summarize_spans",
]
