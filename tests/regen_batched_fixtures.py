"""Regenerate the scalar-vs-batched equivalence fixtures.

Run from the repository root::

    PYTHONPATH=src python -m tests.regen_batched_fixtures

The fixture pins the *exact* per-replication outputs (availabilities at
full float precision, outage episode statistics, batch-means intervals,
and the complete downtime-attribution ledgers) of one expressible campaign
run on the **scalar** engine.  ``tests/test_sim_batched.py`` replays the
same campaign on both engines (``batched="off"`` and ``batched="on"``) and
requires bit-identical equality with the fixture (``==``, no tolerance):
the struct-of-arrays kernel must reproduce the scalar engine's event
stream draw for draw.  Regenerate (and commit the diff) only when a change
is *supposed* to alter the event stream, and say why in the commit
message.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.faults import CampaignSpec, run_campaign

GOLDEN_DIR = Path(__file__).resolve().parent / "golden"
FIXTURE_NAME = "sim_batched_fixtures.json"

#: The pinned expressible campaign: scenario 1, no hazards, unlimited
#: crews — every feature the lockstep kernel models, long enough that each
#: replication sees hundreds of failure/repair cycles and real outages on
#: every signal.
CAMPAIGN_SPEC = CampaignSpec(
    option="1S",
    horizon_hours=2_000.0,
    replications=4,
    seed=23,
    batches=5,
)


def result_record(result) -> dict:
    """Every measured quantity of one :class:`SimulationResult`."""
    return {
        "cp": result.cp,
        "sdp": result.shared_dp,
        "ldp": result.local_dp,
        "dp": result.dp,
        "intervals": {
            name: {
                "mean": interval.mean,
                "half_width": interval.half_width,
                "batches": interval.batches,
            }
            for name, interval in sorted(result.intervals.items())
        },
        "outages": {
            name: {
                "count": stats.count,
                "frequency_per_hour": stats.frequency_per_hour,
                "mean_duration_hours": stats.mean_duration_hours,
            }
            for name, stats in sorted(result.outages.items())
        },
        "attribution": {
            name: ledger.to_dict()
            for name, ledger in sorted(result.attribution.items())
        },
    }


def run_fixture_campaign(batched: str = "off"):
    """The pinned campaign workload (shared with the equivalence tests)."""
    return run_campaign(CAMPAIGN_SPEC, batched=batched)


def build_fixture() -> dict:
    campaign = run_fixture_campaign(batched="off")
    return {
        "description": (
            "Bit-exact scalar-engine outputs of the pinned expressible "
            "campaign; test_sim_batched requires == equality from both "
            "the scalar and the struct-of-arrays lockstep engines"
        ),
        "spec": CAMPAIGN_SPEC.to_dict(),
        "seeds": list(campaign.replications.seeds),
        "results": [
            result_record(r) for r in campaign.replications.results
        ],
        "events": [stat["events"] for stat in campaign.stats],
    }


def regenerate(directory: Path = GOLDEN_DIR) -> Path:
    directory.mkdir(parents=True, exist_ok=True)
    target = directory / FIXTURE_NAME
    target.write_text(
        json.dumps(build_fixture(), indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return target


def main(argv: list[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out",
        type=Path,
        default=GOLDEN_DIR,
        help="directory to write the fixture into (default: tests/golden)",
    )
    args = parser.parse_args(argv)
    print(f"wrote {regenerate(args.out)}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
