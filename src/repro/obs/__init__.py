"""Observability layer: tracing, metrics, manifests, telemetry, forensics.

Five pieces, built to be *zero-cost when disabled* and to never perturb
results (instrumented runs are bit-identical to uninstrumented ones):

* :mod:`repro.obs.trace` — span-based tracer (context manager + decorator,
  monotonic timings, nesting);
* :mod:`repro.obs.metrics` — counters, gauges, and timing histograms;
* :mod:`repro.obs.manifest` — :class:`RunManifest`, the JSON-round-tripping
  provenance record (params hash, topology, seed material, package version,
  solver path, per-phase timings) of one run;
* :mod:`repro.obs.telemetry` — streaming event bus with pluggable sinks
  (rotating JSONL, in-process aggregation, Prometheus/OpenMetrics text
  snapshots) carrying progress/heartbeat and metric-snapshot events;
* :mod:`repro.obs.forensics` — cross-checks simulated per-outage
  attribution ledgers against analytic Birnbaum / Fussell–Vesely
  importance (imported lazily — ``from repro.obs import forensics`` — to
  keep the base package free of :mod:`repro.sim` imports).

Instrumented code goes through :mod:`repro.obs.runtime`, whose module-level
helpers collapse to no-ops while no session is active; the CLI's global
``--trace file.json`` flag, per-run ``--telemetry file.jsonl`` flags, and
the ``repro-avail obs`` subcommand are the user-facing entry points.
"""

from repro.obs.manifest import (
    SCHEMA_VERSION,
    PhaseTiming,
    RunManifest,
    package_version,
    params_hash,
)
from repro.obs.metrics import Counter, Gauge, MetricsRegistry, TimingHistogram
from repro.obs.runtime import (
    ObsSession,
    active,
    annotate,
    count,
    enabled,
    gauge,
    note_solver,
    observe,
    session,
    span,
    start,
    stop,
    traced,
)
from repro.obs.slo import SLOConfig, SLOTracker
from repro.obs.telemetry import (
    TELEMETRY_SCHEMA_VERSION,
    AggregatorSink,
    JsonlSink,
    NullSink,
    PrometheusSink,
    ProgressTracker,
    TelemetryBus,
    follow_sse,
    read_events,
    render_event,
    render_openmetrics,
)
from repro.obs.trace import (
    Span,
    TraceContext,
    Tracer,
    current_trace,
    trace_scope,
)
from repro.obs.export import render_manifest, summarize_spans

__all__ = [
    # trace
    "Span",
    "Tracer",
    "TraceContext",
    "current_trace",
    "trace_scope",
    # metrics
    "Counter",
    "Gauge",
    "TimingHistogram",
    "MetricsRegistry",
    # manifest
    "SCHEMA_VERSION",
    "PhaseTiming",
    "RunManifest",
    "params_hash",
    "package_version",
    # runtime
    "ObsSession",
    "start",
    "stop",
    "active",
    "enabled",
    "session",
    "span",
    "traced",
    "count",
    "gauge",
    "observe",
    "note_solver",
    "annotate",
    # telemetry
    "TELEMETRY_SCHEMA_VERSION",
    "TelemetryBus",
    "NullSink",
    "JsonlSink",
    "AggregatorSink",
    "PrometheusSink",
    "ProgressTracker",
    "follow_sse",
    "read_events",
    "render_event",
    "render_openmetrics",
    # slo
    "SLOConfig",
    "SLOTracker",
    # export
    "render_manifest",
    "summarize_spans",
]
