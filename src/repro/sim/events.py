"""Discrete-event queue.

A heap-ordered future event list with stable FIFO tie-breaking and
token-based cancellation: events carry the epoch of the component they were
scheduled for, and the dispatcher drops events whose epoch has moved on
(the standard trick for exponential clocks that pause under failure
masking).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable

from repro.errors import SimulationError


@dataclass(order=True)
class _Entry:
    time: float
    sequence: int
    event: "Event" = field(compare=False)


@dataclass
class Event:
    """A scheduled callback with a staleness token.

    Attributes:
        time: absolute simulation time the event fires at.
        action: zero-argument callable run when the event is dispatched.
        component: optional component key the event belongs to.
        epoch: the component's epoch at scheduling time; the queue owner
            compares it against the current epoch to drop stale events.
    """

    time: float
    action: Callable[[], None]
    component: str | None = None
    epoch: int = 0


class EventQueue:
    """Time-ordered event queue with deterministic tie-breaking."""

    def __init__(self) -> None:
        self._heap: list[_Entry] = []
        self._sequence = itertools.count()
        self._now = 0.0

    @property
    def now(self) -> float:
        return self._now

    def __len__(self) -> int:
        return len(self._heap)

    def schedule(self, event: Event) -> None:
        if event.time < self._now:
            raise SimulationError(
                f"cannot schedule event at {event.time} before now={self._now}"
            )
        heapq.heappush(self._heap, _Entry(event.time, next(self._sequence), event))

    def pop(self) -> Event:
        if not self._heap:
            raise SimulationError("event queue is empty")
        entry = heapq.heappop(self._heap)
        if entry.time < self._now:
            raise SimulationError("event queue produced an out-of-order event")
        self._now = entry.time
        return entry.event

    def advance_to(self, time: float) -> None:
        """Move the clock forward without dispatching (end-of-horizon)."""
        if time < self._now:
            raise SimulationError(
                f"cannot advance clock backwards to {time} from {self._now}"
            )
        self._now = time
