"""Exact availability engine for arbitrary deployment topologies.

The paper evaluates each topology by hand: condition on the shared
infrastructure (hosts in the Small topology, racks in Medium/Large), then on
the per-role platform counts, then multiply per-process quorum blocks
(Eqs. 2, 4-5, 7, 9-15).  This module mechanizes that methodology for *any*
topology and *any* set of quorum requirements:

1. Classify deployment elements as **shared** (supporting more than one role
   instance — these must be enumerated jointly) or **private** (supporting a
   single instance — their availabilities fold into that instance's platform
   probability).  Sharing is upward closed (a shared VM implies a shared
   host and rack), so enumeration respects the containment hierarchy.
2. Enumerate the up/down states of the shared elements; a child whose parent
   is down is forced down (its own availability does not apply).
3. Per state and role, compute the exact distribution of the number of *up
   platforms* (instances whose shared supports are up, thinned by their
   private-element and extra per-instance probabilities) by convolution.
4. Per platform count ``g``, the role's conditional availability is the
   product over its quorum units of ``A_{m/g}(alpha)`` — the paper's
   Eq. (13) — and the result is the weighted sum over all cases.

For the reference topologies this reproduces the printed equations exactly
(Small) or to first order (Medium, whose printed Eq. 6 drops an ``A_R``
from a second-order term); the engine is the ground truth the closed forms
are tested against.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from functools import lru_cache
from typing import Mapping, Sequence

from repro.core.kofn import a_m_of_n
from repro.errors import ModelError
from repro.obs import runtime as obs
from repro.topology.deployment import DeploymentTopology
from repro.units import check_probability


@dataclass(frozen=True)
class UnitRequirement:
    """An m-of-x quorum block with per-instance availability ``alpha``."""

    label: str
    quorum: int
    alpha: float

    def __post_init__(self) -> None:
        if self.quorum < 0:
            raise ModelError(f"quorum must be >= 0 for unit {self.label!r}")
        check_probability(self.alpha, f"alpha of unit {self.label!r}")


@dataclass(frozen=True)
class RoleRequirement:
    """Quorum requirements for one role plus per-instance extras.

    Attributes:
        role: role name, matching the topology's placed instances.
        units: the role's quorum units for the plane being evaluated.
        extra_instance_availability: additional per-instance survival factor
            applied on top of the private infrastructure chain — e.g. the
            supervisor availability ``A_S`` in the scenario-2 models, where
            a node-role with a dead supervisor is entirely down.
    """

    role: str
    units: tuple[UnitRequirement, ...]
    extra_instance_availability: float = 1.0

    def __post_init__(self) -> None:
        object.__setattr__(self, "units", tuple(self.units))
        check_probability(
            self.extra_instance_availability,
            f"extra_instance_availability of role {self.role!r}",
        )


def resolve_availability(
    element: str,
    level: str,
    availability: Mapping[str, float],
) -> float:
    """Availability of a deployment element.

    ``availability`` may contain per-element entries (keyed by element name)
    and per-level defaults (keyed by ``"rack"``, ``"host"``, ``"vm"``);
    element entries win.
    """
    if element in availability:
        return check_probability(availability[element], element)
    if level in availability:
        return check_probability(availability[level], level)
    raise ModelError(
        f"no availability given for element {element!r} (level {level!r})"
    )


def evaluate_topology(
    topology: DeploymentTopology,
    requirements: Sequence[RoleRequirement],
    availability: Mapping[str, float],
) -> float:
    """Exact system availability of ``requirements`` over ``topology``.

    Args:
        topology: the deployment (placement of role instances on VMs).
        requirements: quorum requirements per role.  Roles placed in the
            topology but absent here contribute nothing (their processes are
            not required); requirements for unplaced roles raise.
        availability: element availabilities by element name and/or by level
            (``"rack"``, ``"host"``, ``"vm"``).

    Returns:
        The probability that every role's every quorum unit is satisfied.
    """
    obs.note_solver("exact-engine")
    obs.annotate("topology", topology.name)
    with obs.span(
        "engine.evaluate_topology",
        topology=topology.name,
        roles=len(requirements),
        instances=len(topology.instances),
    ):
        return _evaluate_topology(topology, requirements, availability)


def _evaluate_topology(
    topology: DeploymentTopology,
    requirements: Sequence[RoleRequirement],
    availability: Mapping[str, float],
) -> float:
    shared = topology.shared_elements()
    shared_set = set(shared)
    parents = {name: topology.parent_of(name) for name in shared}
    levels = {name: topology.level_of(name) for name in shared}
    probabilities = {
        name: resolve_availability(name, levels[name], availability)
        for name in shared
    }

    # Per role: list of (shared supports, private platform probability).
    role_platforms: dict[str, list[tuple[frozenset[str], float]]] = {}
    for requirement in requirements:
        platforms: list[tuple[frozenset[str], float]] = []
        for instance in topology.instances_of(requirement.role):
            chain = topology.support_chain(instance)
            supports = frozenset(e for e in chain if e in shared_set)
            private = 1.0
            for element, level in zip(chain, ("rack", "host", "vm")):
                if element not in shared_set:
                    private *= resolve_availability(
                        element, level, availability
                    )
            private *= requirement.extra_instance_availability
            platforms.append((supports, private))
        role_platforms[requirement.role] = platforms

    role_terms = {
        requirement.role: _conditional_role_term(requirement.units)
        for requirement in requirements
    }

    total = 0.0
    for state, weight in _enumerate_shared(shared, parents, probabilities):
        case = weight
        for requirement in requirements:
            if case == 0.0:
                break
            platforms = role_platforms[requirement.role]
            counts = _platform_count_distribution(platforms, state)
            term = role_terms[requirement.role]
            case *= sum(
                probability * term(g)
                for g, probability in enumerate(counts)
                if probability > 0.0
            )
        total += case
    return min(1.0, max(0.0, total))


def freeze_availability(
    availability: Mapping[str, float],
) -> tuple[tuple[str, float], ...]:
    """A hashable, order-independent key for an availability mapping."""
    return tuple(sorted(availability.items()))


@lru_cache(maxsize=4096)
def _evaluate_frozen(
    topology: DeploymentTopology,
    requirements: tuple[RoleRequirement, ...],
    frozen_availability: tuple[tuple[str, float], ...],
) -> float:
    return evaluate_topology(topology, requirements, dict(frozen_availability))


def evaluate_topology_cached(
    topology: DeploymentTopology,
    requirements: Sequence[RoleRequirement],
    availability: Mapping[str, float],
) -> float:
    """Memoized :func:`evaluate_topology`.

    Every argument is already immutable (the topology and requirements are
    frozen dataclasses; the availability mapping is frozen to a sorted
    tuple), so repeated evaluations — design searches, sweeps revisiting
    grid points, Monte-Carlo draws hitting the same corner — return without
    re-enumerating shared states.  Extends the per-call ``lru_cache`` on
    :func:`_conditional_role_term` to whole-evaluation granularity.

    When an observability session is active, memo hits and misses are
    counted as ``engine.cache.hit`` / ``engine.cache.miss``.
    """
    if not obs.enabled():
        return _evaluate_frozen(
            topology, tuple(requirements), freeze_availability(availability)
        )
    before = _evaluate_frozen.cache_info().misses
    value = _evaluate_frozen(
        topology, tuple(requirements), freeze_availability(availability)
    )
    missed = _evaluate_frozen.cache_info().misses > before
    obs.count("engine.cache.miss" if missed else "engine.cache.hit")
    return value


def evaluate_topology_weighted(
    topology: DeploymentTopology,
    requirements: Sequence[RoleRequirement],
    regimes: Sequence[tuple[float, Mapping[str, float]]],
) -> float:
    """Exact availability under a mixture of availability regimes.

    ``regimes`` is a sequence of ``(weight, availability)`` pairs whose
    weights must sum to 1 (within 1e-9): the system spends fraction
    ``weight`` of time under each availability mapping, and the long-run
    availability is the weighted sum of the per-regime exact evaluations.
    This is how deterministic duty cycles enter the analytic side — a
    maintenance window that takes ``host:H2`` down for fraction ``f`` of
    the time is the two-regime mixture ``(f, {"H2": 0.0, ...base})`` and
    ``(1 - f, base)`` (per-element entries override level defaults, see
    :func:`resolve_availability`).  Each regime evaluation goes through
    :func:`evaluate_topology_cached`, so sweeps revisiting regimes stay
    memoized.
    """
    regimes = list(regimes)
    if not regimes:
        raise ModelError("at least one availability regime is required")
    total_weight = sum(weight for weight, _ in regimes)
    if abs(total_weight - 1.0) > 1e-9:
        raise ModelError(
            f"regime weights must sum to 1, got {total_weight!r}"
        )
    value = 0.0
    for weight, availability in regimes:
        if weight < 0.0:
            raise ModelError(f"regime weight must be >= 0, got {weight}")
        if weight > 0.0:
            value += weight * evaluate_topology_cached(
                topology, requirements, availability
            )
    return value


def engine_cache_info():
    """Hit/miss statistics of the :func:`evaluate_topology_cached` memo."""
    return _evaluate_frozen.cache_info()


def clear_engine_cache() -> None:
    """Drop all memoized :func:`evaluate_topology_cached` results."""
    _evaluate_frozen.cache_clear()


def _enumerate_shared(
    shared: Sequence[str],
    parents: Mapping[str, str | None],
    probabilities: Mapping[str, float],
):
    """Yield (state, weight) over shared-element up/down assignments.

    Elements are listed racks-first, so a parent always precedes its
    children; a child of a down shared parent is forced down and its own
    availability does not contribute to the weight.
    """
    names = list(shared)
    for bits in itertools.product((True, False), repeat=len(names)):
        state = dict(zip(names, bits))
        weight = 1.0
        consistent = True
        for name, up in state.items():
            parent = parents[name]
            parent_down = parent in state and not state[parent]
            if parent_down:
                if up:
                    consistent = False
                    break
                continue  # forced down, no probability factor
            p = probabilities[name]
            weight *= p if up else (1.0 - p)
        if consistent and weight > 0.0:
            yield state, weight


def _platform_count_distribution(
    platforms: Sequence[tuple[frozenset[str], float]],
    state: Mapping[str, bool],
) -> list[float]:
    """Distribution of the number of up platforms, by exact convolution.

    A platform is *up* when all of its shared supports are up (per
    ``state``) and its private chain survives (its probability).
    """
    counts = [1.0]
    for supports, probability in platforms:
        p = probability if all(state[s] for s in supports) else 0.0
        nxt = [0.0] * (len(counts) + 1)
        for g, w in enumerate(counts):
            nxt[g] += w * (1.0 - p)
            nxt[g + 1] += w * p
        counts = nxt
    return counts


def _conditional_role_term(units: tuple[UnitRequirement, ...]):
    """Return ``term(g)`` = product of ``A_{m/g}(alpha)`` over the units.

    Cached per platform count since the engine revisits the same ``g``
    across many enumerated states.
    """

    @lru_cache(maxsize=None)
    def term(g: int) -> float:
        value = 1.0
        for unit in units:
            value *= a_m_of_n(unit.quorum, g, unit.alpha)
            if value == 0.0:
                break
        return value

    return term
