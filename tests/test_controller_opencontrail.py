"""Tests for the OpenContrail 3.x profile (repro.controller.opencontrail)."""

import pytest

from repro.controller.opencontrail import opencontrail_3x
from repro.controller.process import ProcessKind, RestartMode
from repro.controller.spec import Plane


class TestTableOne:
    """Spot-check the Table I transcription."""

    def test_all_config_processes_auto(self, spec):
        config = spec.role("Config")
        assert all(
            p.restart is RestartMode.AUTO for p in config.regular_processes
        )

    def test_all_database_processes_manual(self, spec):
        database = spec.role("Database")
        assert all(
            p.restart is RestartMode.MANUAL
            for p in database.regular_processes
        )

    def test_redis_is_the_only_manual_analytics_process(self, spec):
        analytics = spec.role("Analytics")
        manual = [
            p.name
            for p in analytics.regular_processes
            if p.restart is RestartMode.MANUAL
        ]
        assert manual == ["redis"]

    def test_database_quorums_are_two_of_three(self, spec):
        database = spec.role("Database")
        assert all(p.cp_quorum == 2 for p in database.regular_processes)
        assert all(p.dp_quorum == 0 for p in database.regular_processes)

    def test_dns_named_not_required_for_cp(self, spec):
        control = spec.role("Control")
        assert control.process("dns").cp_quorum == 0
        assert control.process("named").cp_quorum == 0
        assert control.process("control").cp_quorum == 1

    def test_control_dns_named_grouped_for_dp(self, spec):
        control = spec.role("Control")
        groups = {p.name: p.dp_group for p in control.regular_processes}
        assert groups == {"control": "ctl", "dns": "ctl", "named": "ctl"}

    def test_every_role_has_supervisor_and_nodemgr(self, spec):
        for role in spec.roles:
            kinds = {p.kind for p in role.processes}
            assert ProcessKind.SUPERVISOR in kinds
            assert ProcessKind.NODEMGR in kinds

    def test_vrouter_processes_one_of_one(self, spec):
        vrouter = spec.host_role
        assert {p.name for p in vrouter.regular_processes} == {
            "vrouter-agent",
            "vrouter-dpdk",
        }
        assert all(p.dp_quorum == 1 for p in vrouter.regular_processes)
        assert all(p.cp_quorum == 0 for p in vrouter.regular_processes)


class TestGeneralization:
    def test_default_is_three_nodes(self, spec):
        assert spec.cluster_size == 3

    def test_five_node_cluster_scales_quorums(self):
        spec5 = opencontrail_3x(cluster_size=5)
        assert spec5.cluster_size == 5
        database = spec5.role("Database")
        # "2 of 3" interpreted as majority: 3 of 5.
        assert all(p.cp_quorum == 3 for p in database.regular_processes)
        # 1-of-n requirements stay 1.
        assert spec5.role("Config").process("config-api").cp_quorum == 1

    def test_even_cluster_rejected(self):
        with pytest.raises(ValueError):
            opencontrail_3x(cluster_size=4)

    def test_too_small_cluster_rejected(self):
        with pytest.raises(ValueError):
            opencontrail_3x(cluster_size=1)

    def test_dp_blocks_survive_rescaling(self):
        spec5 = opencontrail_3x(cluster_size=5)
        units = spec5.role("Control").quorum_units("dp")
        assert units[0].label == "{control+dns+named}"
        assert spec5.quorum_sums(Plane.DP) == (0, 2)
