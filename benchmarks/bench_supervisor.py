"""E8 — section VI.A: supervisor scenario effective availability.

Regenerates the (F*, R*, A*) walkthrough: scenario 1 leaves process
availability unmeasurably changed (R* = 0.102 h, A* ~= 0.99998); scenario 2
makes every process inherit the supervisor availability (F* = 2500 h,
R* = 0.55 h, A* ~= 0.9998).
"""

import pytest

from repro.models.supervisor import compare_scenarios
from repro.params.software import RestartScenario
from repro.reporting.tables import format_table


def test_supervisor_scenarios(benchmark, software):
    results = benchmark(compare_scenarios, software)
    print(
        "\n"
        + format_table(
            ("Scenario", "F* (h)", "R* (h)", "A*"),
            [
                (
                    analysis.scenario.name,
                    f"{analysis.effective_mtbf_hours:.0f}",
                    f"{analysis.effective_restart_hours:.3f}",
                    f"{analysis.effective_availability:.6f}",
                )
                for analysis in results.values()
            ],
            title="Section VI.A: supervisor restart scenarios",
        )
    )
    s1 = results[RestartScenario.NOT_REQUIRED]
    s2 = results[RestartScenario.REQUIRED]
    assert s1.effective_restart_hours == pytest.approx(0.102, abs=1e-3)
    assert s1.effective_availability == pytest.approx(0.99998, abs=1e-6)
    assert s2.effective_mtbf_hours == pytest.approx(2500.0)
    assert s2.effective_restart_hours == pytest.approx(0.55)
    assert s2.effective_availability == pytest.approx(0.9998, abs=3e-5)
