"""Coherent structure functions.

A *structure function* maps a component up/down state vector to the system
up/down state.  This module provides a thin, explicit representation used to
bridge the RBD layer (:mod:`repro.core.blocks`) with the cut-set machinery
(:mod:`repro.core.cutsets`): any monotone boolean function over named
components, evaluated by exhaustive enumeration for exactness.

The sizes involved in the paper (a handful of racks/hosts/processes per
conditioning layer) keep exhaustive enumeration cheap; the analytic models
in :mod:`repro.models` never enumerate the full joint process space — they
factor it per the paper's equations — so this module is a *verification*
tool, not the production path.
"""

from __future__ import annotations

import itertools
from typing import Callable, Mapping, Sequence

from repro.core.blocks import Block
from repro.errors import ModelError
from repro.units import check_probability

StateMap = Mapping[str, bool]


class StructureFunction:
    """A named-component boolean system function with exact evaluation."""

    def __init__(self, names: Sequence[str], fn: Callable[[StateMap], bool]):
        if len(set(names)) != len(names):
            raise ModelError("component names must be distinct")
        self._names = tuple(names)
        self._fn = fn

    @property
    def names(self) -> tuple[str, ...]:
        return self._names

    @classmethod
    def from_block(cls, block: Block) -> "StructureFunction":
        """Wrap an RBD block's structure function."""
        names = tuple(sorted(block.names()))
        return cls(names, block.structure)

    def __call__(self, state: StateMap) -> bool:
        return bool(self._fn(state))

    def is_coherent(self) -> bool:
        """Check monotonicity and relevance by exhaustive enumeration.

        A structure function is *coherent* when it is non-decreasing in every
        component (repairing a component never takes the system down) and
        every component is relevant (changes the outcome in at least one
        state).  All of the paper's models are coherent.
        """
        names = self._names
        relevant = {name: False for name in names}
        for bits in itertools.product((False, True), repeat=len(names)):
            state = dict(zip(names, bits))
            value = self(state)
            for name in names:
                if not state[name]:
                    flipped = dict(state)
                    flipped[name] = True
                    value_up = self(flipped)
                    if value and not value_up:
                        return False  # repairing `name` broke the system
                    if value_up != value:
                        relevant[name] = True
        return all(relevant.values())

    def availability(self, probabilities: Mapping[str, float]) -> float:
        """Exact system availability by enumeration over all 2**n states."""
        for name in self._names:
            if name not in probabilities:
                raise ModelError(f"missing probability for component {name!r}")
            check_probability(probabilities[name], name)
        total = 0.0
        for bits in itertools.product((False, True), repeat=len(self._names)):
            state = dict(zip(self._names, bits))
            weight = 1.0
            for name, up in state.items():
                p = probabilities[name]
                weight *= p if up else (1.0 - p)
            if weight > 0.0 and self(state):
                total += weight
        return total


def factored_unavailability(
    structure: StructureFunction, probabilities: Mapping[str, float]
) -> float:
    """Exact system unavailability by Shannon factoring with coherence pruning.

    Equivalent to ``1 - structure.availability(probabilities)`` (up to float
    summation order) but conditions on one component at a time and stops a
    branch as soon as coherence decides it: if the system is down with every
    still-undecided component up, the branch contributes its full weight; if
    it is up with every undecided component down, it contributes nothing.
    For series-parallel-ish network structures this visits a tiny fraction
    of the 2**n states, which is what makes exact per-switch evaluation on
    the reference graphs in :mod:`repro.topology` practical.

    Only valid for *monotone* (coherent) structures — the pruning tests are
    exactly the monotone bounding argument.
    """
    names = structure.names
    for name in names:
        if name not in probabilities:
            raise ModelError(f"missing probability for component {name!r}")
        check_probability(probabilities[name], name)

    def branch(index: int, state: dict[str, bool]) -> float:
        for name in names[index:]:
            state[name] = True
        down_with_rest_up = not structure(state)
        if down_with_rest_up:
            for name in names[index:]:
                del state[name]
            return 1.0
        for name in names[index:]:
            state[name] = False
        up_with_rest_down = structure(state)
        for name in names[index:]:
            del state[name]
        if up_with_rest_down:
            return 0.0
        # Both outcomes still reachable, so at least one component is
        # undecided; condition on the next one.
        name = names[index]
        p = probabilities[name]
        state[name] = True
        up_term = p * branch(index + 1, state)
        state[name] = False
        down_term = (1.0 - p) * branch(index + 1, state)
        del state[name]
        return up_term + down_term

    return branch(0, {})
