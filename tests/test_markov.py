"""Tests for the CTMC substrate (repro.markov)."""

import numpy as np
import pytest

from repro.errors import ConvergenceError, ModelError, ParameterError
from repro.markov.birth_death import birth_death_steady_state
from repro.markov.ctmc import Ctmc, steady_state
from repro.markov.kofn_markov import (
    kofn_availability_markov,
    kofn_availability_rbd,
    kofn_chain,
    shared_repair_penalty,
)


class TestCtmc:
    def test_two_state_machine(self):
        # Up/down with rates lam, mu: pi_up = mu/(lam+mu).
        lam, mu = 0.01, 1.0
        chain = Ctmc()
        chain.add_transition("up", "down", lam)
        chain.add_transition("down", "up", mu)
        pi = chain.steady_state()
        assert pi["up"] == pytest.approx(mu / (lam + mu))

    def test_rates_accumulate(self):
        chain = Ctmc()
        chain.add_transition("a", "b", 0.5)
        chain.add_transition("a", "b", 0.5)
        chain.add_transition("b", "a", 1.0)
        pi = chain.steady_state()
        assert pi["a"] == pytest.approx(0.5)

    def test_self_transition_rejected(self):
        chain = Ctmc()
        with pytest.raises(ModelError):
            chain.add_transition("a", "a", 1.0)

    def test_negative_rate_rejected(self):
        chain = Ctmc()
        with pytest.raises(ParameterError):
            chain.add_transition("a", "b", -1.0)

    def test_zero_rate_is_noop(self):
        chain = Ctmc()
        chain.add_transition("a", "b", 1.0)
        chain.add_transition("b", "a", 1.0)
        chain.add_transition("a", "b", 0.0)
        assert len(chain.states) == 2

    def test_probability_predicate(self):
        chain = Ctmc()
        chain.add_transition(0, 1, 1.0)
        chain.add_transition(1, 0, 1.0)
        assert chain.probability(lambda s: s == 0) == pytest.approx(0.5)

    def test_generator_rows_sum_to_zero(self):
        chain = kofn_chain(4, 0.1, 1.0)
        q = chain.generator()
        assert np.allclose(q.sum(axis=1), 0.0)

    def test_reducible_chain_detected(self):
        q = np.zeros((2, 2))  # absorbing everywhere: singular system
        q[0, 0] = -1.0
        q[0, 1] = 1.0
        # state 1 absorbing: steady state is deterministic, solvable; build
        # a truly disconnected chain instead.
        q = np.zeros((3, 3))
        q[0, 1] = 1.0
        q[0, 0] = -1.0
        q[1, 0] = 1.0
        q[1, 1] = -1.0
        # state 2 isolated -> reducible
        with pytest.raises(ConvergenceError):
            steady_state(q)

    def test_bad_generator_rejected(self):
        with pytest.raises(ModelError):
            steady_state(np.ones((2, 3)))
        with pytest.raises(ModelError):
            steady_state(np.ones((2, 2)))  # rows don't sum to zero


class TestBirthDeath:
    def test_two_state(self):
        pi = birth_death_steady_state([0.1], [1.0])
        assert pi[0] == pytest.approx(1 / 1.1)

    def test_matches_generic_solver(self):
        up, down = [0.3, 0.2, 0.1], [1.0, 2.0, 3.0]
        pi = birth_death_steady_state(up, down)
        chain = Ctmc()
        for i, (u, d) in enumerate(zip(up, down)):
            chain.add_transition(i, i + 1, u)
            chain.add_transition(i + 1, i, d)
        generic = chain.steady_state()
        for i in range(4):
            assert generic[i] == pytest.approx(pi[i])

    def test_length_mismatch_rejected(self):
        with pytest.raises(ParameterError):
            birth_death_steady_state([1.0], [1.0, 2.0])

    def test_nonpositive_rate_rejected(self):
        with pytest.raises(ParameterError):
            birth_death_steady_state([0.0], [1.0])


class TestKofnMarkov:
    @pytest.mark.parametrize("m,n", [(1, 1), (1, 3), (2, 3), (3, 5), (2, 2)])
    def test_independent_repair_matches_eq1(self, m, n):
        # The headline cross-validation: CTMC steady state with one crew
        # per component equals the paper's Eq. (1).
        lam, mu = 0.02, 1.0
        markov = kofn_availability_markov(m, n, lam, mu)
        rbd = kofn_availability_rbd(m, n, lam, mu)
        assert markov == pytest.approx(rbd, rel=1e-10)

    def test_shared_repair_strictly_worse(self):
        penalty = shared_repair_penalty(2, 3, 0.05, 1.0)
        assert penalty > 0

    def test_shared_repair_equal_for_single_component(self):
        assert shared_repair_penalty(1, 1, 0.05, 1.0) == pytest.approx(0.0)

    def test_penalty_grows_with_load(self):
        light = shared_repair_penalty(2, 3, 0.01, 1.0)
        heavy = shared_repair_penalty(2, 3, 0.2, 1.0)
        assert heavy > light

    def test_degenerate_quorums(self):
        assert kofn_availability_markov(0, 3, 0.1, 1.0) == 1.0
        assert kofn_availability_markov(4, 3, 0.1, 1.0) == 0.0

    def test_bad_parameters_rejected(self):
        with pytest.raises(ParameterError):
            kofn_chain(0, 0.1, 1.0)
        with pytest.raises(ParameterError):
            kofn_chain(3, -0.1, 1.0)

    def test_database_quorum_example(self):
        # The paper's Database block at its parameters: F = 5000 h manual
        # restart R_S = 1 h -> lam = 1/5000, mu = 1.  2-of-3 quorum.
        lam, mu = 1 / 5000, 1.0
        markov = kofn_availability_markov(2, 3, lam, mu)
        rbd = kofn_availability_rbd(2, 3, lam, mu)
        assert markov == pytest.approx(rbd, rel=1e-9)
        assert 1 - markov == pytest.approx(1.2e-7, rel=0.05)
