"""Cross-validation wall for the network control-path subsystem.

Five independent evaluators exist for the same predicate — the
sum-of-disjoint-products kernel, the Shannon factored evaluator,
brute-force structure enumeration, inclusion-exclusion over the minimal
cut sets, and the cut/path union bounds.  This suite generates random
connected graphs (spanning tree plus chords, stressed element
availabilities, optional shared-risk group) and requires:

* the bracket ``union_bound >= exact >= path_lower_bound`` on every fully
  enumerated graph;
* 1e-12 agreement between the SDP and factored evaluators, between
  factored evaluation and brute-force enumeration, and 1e-9 agreement
  with cut-set inclusion-exclusion;
* the batched pair sweep reproducing the scalar evaluator on every
  (switch, site subset) pair;
* placement exactness — ``auto`` resolves to exhaustive search at <= 6
  candidates and matches an independent brute force (value and
  tie-breaking), greedy and local search never exceed their certified
  monotonicity bounds, and local search is bit-identical for a fixed
  seed.
"""

from __future__ import annotations

import itertools

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.cutsets import exact_unavailability
from repro.core.structure import factored_unavailability
from repro.errors import NetworkError
from repro.network import (
    NetworkGraph,
    NetworkLink,
    NetworkNode,
    SharedRiskGroup,
    analyze_switch,
    compile_pair_sweep,
    optimize_placement,
)
from repro.network.paths import (
    control_path_structure,
    exact_control_path_unavailability,
)
from repro.network.placement import EXACT_CANDIDATE_LIMIT, placement_value

TOL = 1e-12
#: Inclusion-exclusion sums 2^cuts alternating terms; its agreement
#: tolerance is looser than the factored/enumeration comparison.
IE_TOL = 1e-9

availabilities = st.floats(min_value=0.5, max_value=1.0, allow_nan=False)


@st.composite
def connected_graphs(draw, max_nodes: int = 6, max_chords: int = 3):
    """Random connected graphs: spanning tree + chords, <= 10 links.

    Node 0 (and sometimes node 1) are controller sites; the rest are
    switches.  Availabilities sit in [0.5, 1.0] so failures are common
    enough that bound gaps are visible, and about half the graphs put a
    random subset of links into one shared-risk group.
    """
    count = draw(st.integers(min_value=3, max_value=max_nodes))
    names = [f"N{i}" for i in range(count)]
    edges: set[tuple[int, int]] = set()
    for i in range(1, count):
        j = draw(st.integers(min_value=0, max_value=i - 1))
        edges.add((j, i))
    for _ in range(draw(st.integers(min_value=0, max_value=max_chords))):
        a = draw(st.integers(min_value=0, max_value=count - 2))
        b = draw(st.integers(min_value=a + 1, max_value=count - 1))
        edges.add((a, b))
    with_srg = draw(st.booleans())
    srgs = (
        (SharedRiskGroup("G", availability=draw(availabilities)),)
        if with_srg
        else ()
    )
    links = tuple(
        NetworkLink(
            f"L{index}",
            names[a],
            names[b],
            availability=draw(availabilities),
            srg="G" if with_srg and draw(st.booleans()) else None,
        )
        for index, (a, b) in enumerate(sorted(edges))
    )
    site_count = draw(st.integers(min_value=1, max_value=min(2, count - 1)))
    nodes = tuple(
        NetworkNode(
            name,
            kind="site" if index < site_count else "switch",
            availability=draw(availabilities),
        )
        for index, name in enumerate(names)
    )
    return NetworkGraph(name="prop", nodes=nodes, links=links, srgs=srgs)


class TestEvaluatorAgreement:
    @given(graph=connected_graphs())
    @settings(max_examples=60, deadline=None)
    def test_bounds_bracket_exact(self, graph):
        switch = graph.switches[-1]
        analysis = analyze_switch(graph, switch)
        assert 0.0 <= analysis.unavailability <= 1.0
        assert analysis.path_lower_bound is not None
        assert analysis.union_bound >= analysis.unavailability - TOL
        assert analysis.unavailability >= analysis.path_lower_bound - TOL
        assert analysis.min_cut_order >= 1

    @given(graph=connected_graphs())
    @settings(max_examples=40, deadline=None)
    def test_factored_matches_brute_force_enumeration(self, graph):
        switch = graph.switches[-1]
        structure = control_path_structure(graph, switch)
        availability = graph.availability_map()
        factored = factored_unavailability(structure, availability)
        enumerated = 1.0 - structure.availability(availability)
        assert factored == pytest.approx(enumerated, abs=TOL)

    @given(graph=connected_graphs(max_nodes=5, max_chords=2))
    @settings(max_examples=30, deadline=None)
    def test_cut_set_inclusion_exclusion_matches_factored(self, graph):
        switch = graph.switches[-1]
        analysis = analyze_switch(graph, switch)
        assume(len(analysis.cut_sets) <= 12)
        via_cuts = exact_unavailability(
            [cut.components for cut in analysis.cut_sets],
            graph.unavailability_map(),
        )
        assert via_cuts == pytest.approx(analysis.unavailability, abs=IE_TOL)

    @given(graph=connected_graphs())
    @settings(max_examples=60, deadline=None)
    def test_sdp_matches_factored_evaluator(self, graph):
        switch = graph.switches[-1]
        via_sdp = exact_control_path_unavailability(
            graph, switch, evaluator="sdp"
        )
        via_factored = exact_control_path_unavailability(
            graph, switch, evaluator="factored"
        )
        assert via_sdp == pytest.approx(via_factored, abs=TOL)
        # The default exact number sits inside the analysis bracket.
        analysis = analyze_switch(graph, switch)
        assert analysis.evaluator == "sdp"
        assert analysis.union_bound >= via_sdp - TOL
        assert via_sdp >= analysis.path_lower_bound - TOL

    @given(graph=connected_graphs(), data=st.data())
    @settings(max_examples=30, deadline=None)
    def test_batched_sweep_matches_scalar_pairs(self, graph, data):
        pool = graph.sites
        assume(len(pool) >= 1)
        plan = compile_pair_sweep(graph)
        subsets = [
            subset
            for size in range(1, len(pool) + 1)
            for subset in itertools.combinations(sorted(pool), size)
        ]
        result = plan.evaluate(subsets)
        for row, sites in enumerate(subsets):
            for column, switch in enumerate(plan.switches):
                expected = 1.0 - exact_control_path_unavailability(
                    graph, switch, sites
                )
                assert result.availability[row, column] == pytest.approx(
                    expected, abs=TOL
                ), (sites, switch)

    @given(graph=connected_graphs())
    @settings(max_examples=30, deadline=None)
    def test_path_lower_bound_needs_complete_enumeration(self, graph):
        """Bounded-order analyses must not claim a path lower bound."""
        switch = graph.switches[-1]
        bounded = analyze_switch(graph, switch, max_order=1)
        assert bounded.path_lower_bound is None
        assert bounded.max_order == 1
        complete = analyze_switch(graph, switch)
        assert complete.path_lower_bound is not None
        # The exact number is independent of the cut-order bound.
        assert bounded.unavailability == complete.unavailability


class TestPerfectAvailabilityDegeneracy:
    def test_perfect_elements_give_zero_unavailability(self):
        graph = NetworkGraph(
            name="perfect",
            nodes=(
                NetworkNode("CTRL", kind="site"),
                NetworkNode("S1"),
            ),
            links=(NetworkLink("L0", "CTRL", "S1"),),
        )
        analysis = analyze_switch(graph, "S1")
        assert analysis.unavailability == 0.0
        assert analysis.path_lower_bound == 0.0

    def test_unreachable_switch_is_fully_unavailable(self):
        graph = NetworkGraph(
            name="split",
            nodes=(
                NetworkNode("CTRL", kind="site"),
                NetworkNode("S1"),
                NetworkNode("S2"),
            ),
            links=(NetworkLink("L0", "S1", "S2"),),
        )
        assert exact_control_path_unavailability(graph, "S1") == 1.0

    def test_switch_as_site_rejected(self):
        graph = NetworkGraph(
            name="bad",
            nodes=(NetworkNode("CTRL", kind="site"), NetworkNode("S1")),
            links=(NetworkLink("L0", "CTRL", "S1"),),
        )
        with pytest.raises(NetworkError, match="cannot also be"):
            analyze_switch(graph, "S1", sites=("S1",))


def _brute_force(graph, k):
    """Independent exhaustive search with the documented tie-breaking."""
    pool = sorted(graph.sites)
    best, best_value = None, -1.0
    for combo in itertools.combinations(pool, k):
        value, _ = placement_value(graph, combo, graph.switches)
        if value > best_value or (value == best_value and combo < best):
            best, best_value = combo, value
    return best, best_value


class TestPlacementExactness:
    @given(graph=connected_graphs(), data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_auto_matches_brute_force_below_limit(self, graph, data):
        assume(len(graph.sites) >= 1)
        assert len(graph.sites) <= EXACT_CANDIDATE_LIMIT
        k = data.draw(
            st.integers(min_value=1, max_value=len(graph.sites)), label="k"
        )
        result = optimize_placement(graph, k=k, method="auto")
        assert result.method == "exact"
        expected_sites, expected_value = _brute_force(graph, k)
        assert result.sites == expected_sites
        assert result.availability == expected_value
        assert result.bound == result.availability
        assert result.gap == 0.0

    @given(graph=connected_graphs(), data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_greedy_respects_certified_bound(self, graph, data):
        assume(len(graph.sites) >= 1)
        k = data.draw(
            st.integers(min_value=1, max_value=len(graph.sites)), label="k"
        )
        greedy = optimize_placement(graph, k=k, method="greedy")
        assert greedy.method == "greedy"
        assert greedy.availability <= greedy.bound + TOL
        # The certified bound also dominates the true optimum.
        _, optimum = _brute_force(graph, k)
        assert optimum <= greedy.bound + TOL
        assert greedy.availability <= optimum + TOL

    @given(graph=connected_graphs())
    @settings(max_examples=30, deadline=None)
    def test_full_pool_placement_is_monotone_ceiling(self, graph):
        """Adding sites never hurts: value(k = all) >= value(k = 1)."""
        pool = graph.sites
        assume(len(pool) >= 2)
        one = optimize_placement(graph, k=1, method="exact")
        everything = optimize_placement(graph, k=len(pool), method="exact")
        assert everything.availability >= one.availability - TOL

    @given(graph=connected_graphs(), data=st.data())
    @settings(max_examples=25, deadline=None)
    def test_local_search_respects_bound_and_reaches_optimum(
        self, graph, data
    ):
        assume(len(graph.sites) >= 1)
        k = data.draw(
            st.integers(min_value=1, max_value=len(graph.sites)), label="k"
        )
        local = optimize_placement(
            graph, k=k, method="local", restarts=3, seed=19
        )
        assert local.method == "local"
        assert local.restarts == 3 and local.seed == 19
        assert local.availability <= local.bound + TOL
        _, optimum = _brute_force(graph, k)
        assert optimum <= local.bound + TOL
        assert local.availability <= optimum + TOL
        # On these tiny pools every restart climbs to the global optimum.
        assert local.availability == pytest.approx(optimum, abs=TOL)

    @given(graph=connected_graphs(), data=st.data())
    @settings(max_examples=15, deadline=None)
    def test_local_search_is_deterministic_for_fixed_seed(
        self, graph, data
    ):
        assume(len(graph.sites) >= 1)
        k = data.draw(
            st.integers(min_value=1, max_value=len(graph.sites)), label="k"
        )
        first = optimize_placement(
            graph, k=k, method="local", restarts=2, seed=7
        )
        second = optimize_placement(
            graph, k=k, method="local", restarts=2, seed=7
        )
        assert first == second

    def test_invalid_method_and_k_rejected(self):
        graph = NetworkGraph(
            name="tiny",
            nodes=(NetworkNode("CTRL", kind="site"), NetworkNode("S1")),
            links=(NetworkLink("L0", "CTRL", "S1"),),
        )
        with pytest.raises(NetworkError, match="method must be"):
            optimize_placement(graph, k=1, method="quantum")
        with pytest.raises(NetworkError, match="k must be in"):
            optimize_placement(graph, k=2)
        with pytest.raises(NetworkError, match="no node"):
            optimize_placement(graph, k=1, candidates=("ghost",))
        with pytest.raises(NetworkError, match="restarts must be"):
            optimize_placement(graph, k=1, method="local", restarts=0)
