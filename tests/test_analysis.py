"""Tests for sweeps, sensitivity, and figure series (repro.analysis)."""

import pytest

from repro.analysis.figures import fig3_series, fig4_series, fig5_series
from repro.analysis.sensitivity import (
    hardware_tornado,
    local_sensitivity,
    unavailability_elasticity,
)
from repro.analysis.sweep import grid, sweep
from repro.errors import ParameterError
from repro.models.hw_closed import hw_large, hw_small


class TestSweep:
    def test_grid_inclusive(self):
        values = grid(0.0, 1.0, 5)
        assert values[0] == 0.0 and values[-1] == 1.0
        assert len(values) == 5

    def test_grid_validation(self):
        with pytest.raises(ParameterError):
            grid(0.0, 1.0, 1)
        with pytest.raises(ParameterError):
            grid(1.0, 1.0, 5)

    def test_grid_descending(self):
        values = grid(1.0, 0.0, 5)
        assert values[0] == 1.0 and values[-1] == 0.0
        assert list(values) == sorted(values, reverse=True)

    def test_sweep_rows(self):
        result = sweep("x", [1.0, 2.0], {"sq": lambda x: x * x})
        assert result.rows() == [(1.0, 1.0), (2.0, 4.0)]
        assert result.labels == ("sq",)

    def test_sweep_needs_evaluators(self):
        with pytest.raises(ParameterError):
            sweep("x", [1.0], {})


class TestFig3:
    def test_endpoints_match_models(self, hardware):
        result = fig3_series(hardware, points=5)
        assert result.series["Small"][0] == pytest.approx(
            hw_small(hardware.with_role_availability(0.999))
        )
        assert result.series["Large"][-1] == pytest.approx(
            hw_large(hardware.with_role_availability(1.0))
        )

    def test_large_dominates_everywhere(self, hardware):
        result = fig3_series(hardware, points=9)
        for s, m, l in zip(
            result.series["Small"],
            result.series["Medium"],
            result.series["Large"],
        ):
            assert l > s >= m

    def test_monotone_in_role_availability(self, hardware):
        result = fig3_series(hardware, points=9)
        for label in ("Small", "Medium", "Large"):
            series = result.series[label]
            assert all(a <= b + 1e-15 for a, b in zip(series, series[1:]))


class TestFig4And5:
    def test_fig4_center_matches_options(self, spec, hardware, software):
        from repro.models.sw_options import evaluate_option

        result = fig4_series(spec, hardware, software, points=3)
        center = {
            option: result.series[option][1] for option in result.labels
        }
        for option, value in center.items():
            expected = evaluate_option(spec, option, hardware, software).cp
            assert value == pytest.approx(expected, rel=1e-12)

    def test_fig5_center_matches_options(self, spec, hardware, software):
        from repro.models.sw_options import evaluate_option

        result = fig5_series(spec, hardware, software, points=3)
        for option in result.labels:
            expected = evaluate_option(spec, option, hardware, software).dp
            assert result.series[option][1] == pytest.approx(
                expected, rel=1e-12
            )

    def test_curves_monotone_in_process_availability(
        self, spec, hardware, software
    ):
        result = fig4_series(spec, hardware, software, points=9)
        for option in result.labels:
            series = result.series[option]
            assert all(a <= b + 1e-15 for a, b in zip(series, series[1:]))

    def test_scenario1_dominates_scenario2_pointwise(
        self, spec, hardware, software
    ):
        for maker in (fig4_series, fig5_series):
            result = maker(spec, hardware, software, points=5)
            for a1, a2 in zip(result.series["1S"], result.series["2S"]):
                assert a1 >= a2
            for a1, a2 in zip(result.series["1L"], result.series["2L"]):
                assert a1 >= a2


class TestSensitivity:
    def test_local_sensitivity_of_series_system(self):
        # d(x * 0.9)/dx = 0.9.
        assert local_sensitivity(lambda x: x * 0.9, 0.5) == pytest.approx(0.9)

    def test_boundary_clipping(self):
        derivative = local_sensitivity(lambda x: x, 1.0, step=1e-6)
        assert derivative == pytest.approx(1.0)

    def test_elasticity_series_element(self):
        # For the sole series element the elasticity is exactly 1.
        fn = lambda a: a  # noqa: E731
        assert unavailability_elasticity(fn, 0.99) == pytest.approx(1.0)

    def test_elasticity_with_partner_slightly_below_one(self):
        # A fixed-partner series element dilutes the elasticity below 1.
        fn = lambda a: a * 0.999  # noqa: E731
        value = unavailability_elasticity(fn, 0.99)
        assert 0.8 < value < 1.0

    def test_elasticity_redundant_element(self, hardware):
        # The role in the Large topology is protected by 2-of-3 redundancy:
        # elasticity of system unavailability to role unavailability ~ 2
        # in the regime where role failures dominate.
        params = hardware
        fn = lambda a: hw_large(  # noqa: E731
            params.with_role_availability(a)
        )
        elasticity = unavailability_elasticity(fn, 0.995, factor=2.0)
        assert elasticity == pytest.approx(2.0, abs=0.25)

    def test_tornado_ranks_host_over_rack_in_large(self, hardware):
        impacts = hardware_tornado(hw_large, hardware)
        # In the Large topology the rack joins the redundant chain, so
        # degrading racks hurts less than degrading the (also redundant but
        # larger-unavailability) hosts... all four should be modest.
        assert set(impacts) == {"a_role", "a_vm", "a_host", "a_rack"}
        assert all(v >= -1e-9 for v in impacts.values())

    def test_tornado_rack_dominates_small(self, hardware):
        impacts = hardware_tornado(hw_small, hardware)
        # The Small topology's single rack is a series element: degrading
        # it 10x adds ~47 min/yr, more than any redundancy-protected term.
        assert impacts["a_rack"] == max(impacts.values())
        assert impacts["a_rack"] == pytest.approx(47.3, abs=1.5)

    def test_tornado_validation(self, hardware):
        with pytest.raises(ParameterError):
            hardware_tornado(hw_small, hardware, downtime_factor=1.0)
