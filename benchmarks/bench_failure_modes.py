"""E10 — section VI-G: dominant failure-mode identification.

Mechanically derives the failure modes the paper names:

* 1S CP: "two failures of the same Database process in different nodes";
* 2S CP: "one Database supervisor failure and any Database process failure
  in another node";
* 1* DP: "failure of either vRouter process";
* 2* DP: "failure of any supervisor" (the local vRouter supervisor).
"""


from repro.controller.spec import Plane
from repro.models.failure_modes import dominant_failure_modes
from repro.params.software import RestartScenario
from repro.reporting.tables import format_table
from repro.topology.reference import large_topology, small_topology


def compute_modes(spec, hardware, software):
    large = large_topology(spec)
    small = small_topology(spec)
    return {
        "1L-CP": dominant_failure_modes(
            spec, large, hardware, software,
            RestartScenario.NOT_REQUIRED, Plane.CP, top=40,
        ),
        "2L-CP": dominant_failure_modes(
            spec, large, hardware, software,
            RestartScenario.REQUIRED, Plane.CP, top=60,
        ),
        "1S-DP": dominant_failure_modes(
            spec, small, hardware, software,
            RestartScenario.NOT_REQUIRED, Plane.DP, top=10,
        ),
        "2S-DP": dominant_failure_modes(
            spec, small, hardware, software,
            RestartScenario.REQUIRED, Plane.DP, top=10,
        ),
    }


def software_only(modes):
    return [
        m
        for m in modes
        if all(c.startswith(("proc:", "sup:", "local:")) for c in m.components)
    ]


def test_failure_modes(benchmark, spec, hardware, software):
    all_modes = benchmark(compute_modes, spec, hardware, software)
    for label, modes in all_modes.items():
        print(
            "\n"
            + format_table(
                ("Rank", "Probability", "Cut set"),
                [
                    (i + 1, f"{m.probability:.3e}", " + ".join(sorted(m.components)))
                    for i, m in enumerate(modes[:6])
                ],
                title=f"Dominant failure modes, {label}",
            )
        )

    top_1l = software_only(all_modes["1L-CP"])[0]
    assert all(c.startswith("proc:Database/") for c in top_1l.components)
    same_process = {
        c.split("/")[1].rsplit("-", 1)[0] for c in top_1l.components
    }
    assert len(same_process) == 1

    modes_2l = software_only(all_modes["2L-CP"])
    assert any(
        any(c.startswith("sup:Database-") for c in m.components)
        for m in modes_2l[:20]
    )

    top_1s_dp = software_only(all_modes["1S-DP"])[0]
    assert top_1s_dp.order == 1
    assert next(iter(top_1s_dp.components)).startswith("local:vrouter")

    top_2s_dp = software_only(all_modes["2S-DP"])[0]
    assert top_2s_dp.components == frozenset({"local:supervisor"})
