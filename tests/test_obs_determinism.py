"""Instrumentation must never perturb results.

The observability runtime is observational-only: it reads clocks and
appends records, but never touches random state or feeds back into model
code.  These tests enforce the consequence — every evaluation path produces
*bit-identical* results with tracing on and off — and exercise the
manifests the instrumented runs emit, including the CLI's global
``--trace`` flag (``repro-avail perf --trace out.json``).
"""

from __future__ import annotations

from repro.cli import main
from repro.controller.spec import Plane
from repro.models.engine import evaluate_topology
from repro.models.hw_closed import hw_large, hw_small
from repro.models.sw import plane_requirements
from repro.obs import runtime as obs
from repro.obs import telemetry
from repro.obs.manifest import RunManifest
from repro.params.software import RestartScenario
from repro.perf import monte_carlo_parallel
from repro.sim.controller_sim import SimulationConfig
from repro.sim.replicate import run_replications

import pytest

S2 = RestartScenario.REQUIRED


@pytest.fixture(autouse=True)
def _no_leaked_session():
    obs.stop()
    telemetry.stop()
    yield
    obs.stop()
    telemetry.stop()


def _availability(hardware) -> dict[str, float]:
    return {
        "rack": hardware.a_rack,
        "host": hardware.a_host,
        "vm": hardware.a_vm,
    }


class TestBitIdenticalResults:
    def test_evaluate_topology(self, spec, small, hardware, software):
        requirements = plane_requirements(spec, Plane.CP, software, S2)
        availability = _availability(hardware)
        baseline = evaluate_topology(small, requirements, availability)
        with obs.session("determinism") as session:
            traced = evaluate_topology(small, requirements, availability)
        assert traced == baseline  # exact, not approx
        assert "exact-engine" in session.solver_path
        assert session.tracer.total("engine.evaluate_topology") > 0.0

    def test_monte_carlo_parallel_workers_4(self, hardware):
        kwargs = dict(samples=512, seed=13, chunk_size=64, workers=4)
        baseline = monte_carlo_parallel(hw_large, hardware, **kwargs)
        with obs.session("determinism") as session:
            traced = monte_carlo_parallel(hw_large, hardware, **kwargs)
        assert traced.samples == baseline.samples  # tuple equality: bitwise
        assert "monte-carlo" in session.solver_path
        assert session.annotations["seed.mc_root"] == 13
        counters = session.metrics.snapshot()["counters"]
        assert counters["perf.mc.samples"] == 512.0

    def test_monte_carlo_scalar_fallback(self, hardware):
        kwargs = dict(samples=128, seed=5, vectorize=False)
        baseline = monte_carlo_parallel(hw_small, hardware, **kwargs)
        with obs.session("determinism"):
            traced = monte_carlo_parallel(hw_small, hardware, **kwargs)
        assert traced.samples == baseline.samples

    @pytest.mark.slow
    def test_sim_replications(
        self, spec, small, stressed_hardware, stressed_software
    ):
        kwargs = dict(
            config=SimulationConfig(
                seed=17,
                horizon_hours=2000.0,
                batches=2,
                rack_mtbf_hours=2000.0,
                host_mtbf_hours=1000.0,
                vm_mtbf_hours=500.0,
            ),
            replications=2,
        )
        baseline = run_replications(
            spec, small, stressed_hardware, stressed_software, S2, **kwargs
        )
        with obs.session("determinism") as session:
            traced = run_replications(
                spec, small, stressed_hardware, stressed_software, S2,
                **kwargs,
            )
        assert traced.seeds == baseline.seeds
        for a, b in zip(baseline.results, traced.results):
            assert (a.cp, a.shared_dp, a.local_dp, a.dp) == (
                b.cp, b.shared_dp, b.local_dp, b.dp,
            )
        assert "simulation" in session.solver_path
        assert session.annotations["seed.sim_root"] == 17
        counters = session.metrics.snapshot()["counters"]
        assert counters["sim.replications"] == 2.0


class TestTelemetryRoundTrip:
    """The telemetry sink must never perturb results either.

    Acceptance for the streaming pipeline: the same replication workload
    run (a) without telemetry, (b) with a JSONL sink, and (c) with the
    sink plus 4 pool workers yields ``==``-identical availabilities, and
    the recorded stream round-trips through :func:`telemetry.read_events`.
    """

    def _run(self, spec, small, hardware, software, workers):
        return run_replications(
            spec, small, hardware, software, S2,
            config=SimulationConfig(
                seed=29,
                horizon_hours=500.0,
                batches=2,
                rack_mtbf_hours=2000.0,
                host_mtbf_hours=1000.0,
                vm_mtbf_hours=500.0,
            ),
            replications=4,
            workers=workers,
        )

    def test_sink_on_off_and_workers_bit_identical(
        self, spec, small, stressed_hardware, stressed_software, tmp_path
    ):
        baseline = self._run(
            spec, small, stressed_hardware, stressed_software, workers=1
        )
        stream = tmp_path / "telemetry.jsonl"
        telemetry.start([telemetry.JsonlSink(stream)])
        try:
            recorded = self._run(
                spec, small, stressed_hardware, stressed_software, workers=1
            )
            recorded_parallel = self._run(
                spec, small, stressed_hardware, stressed_software, workers=4
            )
        finally:
            telemetry.stop()
        for name in ("cp", "sdp", "ldp", "dp"):
            assert recorded.availability(name) == baseline.availability(name)
            assert recorded_parallel.availability(name) == (
                baseline.availability(name)
            )

        events = list(telemetry.read_events(stream))
        assert events, "sink recorded nothing"
        assert all(event["schema"] == 1 for event in events)
        seqs = [event["seq"] for event in events]
        assert seqs == sorted(seqs)
        kinds = {event["kind"] for event in events}
        assert {"replications.start", "progress", "replications.end"} <= kinds
        ends = [e for e in events if e["kind"] == "replications.end"]
        assert ends[0]["availability"]["cp"] == baseline.availability("cp")
        # Per-replication progress from both the inline and the pooled
        # dispatch paths.
        progress = [e for e in events if e["kind"] == "progress"]
        assert [e["completed"] for e in progress[:4]] == [1, 2, 3, 4]
        # The pooled run also streamed merged metric snapshots upward.
        metrics = [e for e in events if e["kind"] == "metrics"]
        assert metrics
        counters = metrics[-1]["snapshot"]["counters"]
        assert counters["sim.events"] > 0


class TestTraceContextBitIdentity:
    """Request tracing must never perturb results either.

    The serving layer ships the active trace context into every warm-pool
    worker payload and rides worker spans back on the result channel.
    Trace ids come from ``os.urandom`` — never the seeded RNGs — so the
    same campaign inside and outside a trace scope, at any worker count,
    must produce ``==``-identical payloads.
    """

    SPEC = {
        "option": "1S",
        "horizon_hours": 300.0,
        "replications": 4,
        "seed": 11,
    }

    def _payload(self, workers: int, traced: bool) -> dict:
        import json

        from repro.faults.campaign import CampaignSpec
        from repro.faults.crossval import evaluate_campaign
        from repro.obs.trace import TraceContext, trace_scope
        from repro.reporting.faults import crossval_payload

        spec = CampaignSpec.from_dict(self.SPEC)
        # batched="off" forces the scalar engine through the dispatch
        # path tracing instruments.
        if traced:
            with trace_scope(TraceContext.new()):
                crossval = evaluate_campaign(
                    spec, workers=workers, batched="off"
                )
        else:
            crossval = evaluate_campaign(spec, workers=workers, batched="off")
        return json.loads(json.dumps(crossval_payload(crossval)))

    def test_tracing_on_off_and_workers_bit_identical(self):
        baseline = self._payload(workers=1, traced=False)
        assert self._payload(workers=1, traced=True) == baseline
        assert self._payload(workers=4, traced=False) == baseline
        assert self._payload(workers=4, traced=True) == baseline

    def test_worker_spans_ride_back_under_a_session(self):
        from repro.faults.campaign import CampaignSpec, run_campaign
        from repro.obs.trace import TraceContext, trace_scope

        spec = CampaignSpec.from_dict(self.SPEC)
        with obs.session("ride-back") as session:
            with trace_scope(TraceContext.new()):
                run_campaign(spec, workers=2, batched="off")
        merged = [
            span
            for span in session.tracer.spans
            if span.attrs.get("chunk") is not None
        ]
        assert merged, "no worker spans were merged back"
        # Merged worker spans are children, never phase roots.
        roots = {id(span) for span in session.tracer.roots()}
        assert all(id(span) not in roots for span in merged)


class TestSessionManifests:
    def test_instrumented_run_round_trips(self, hardware, tmp_path):
        with obs.session("round-trip") as session:
            monte_carlo_parallel(hw_large, hardware, samples=256, seed=3)
        manifest = session.build_manifest(
            arguments={"samples": 256, "seed": 3}
        )
        path = manifest.write(tmp_path / "trace.json")
        restored = RunManifest.load(path)
        assert restored == manifest
        assert restored.seed["mc_root"] == 3
        assert "monte-carlo" in restored.solver_path
        assert restored.metrics["counters"]["perf.mc.samples"] == 256.0


class TestCliTrace:
    def test_perf_trace_writes_valid_manifest(self, capsys, tmp_path):
        """Acceptance: ``repro-avail perf --trace out.json`` -> RunManifest."""
        trace = tmp_path / "out.json"
        assert main([
            "perf", "--trace", str(trace),
            "--samples", "256", "--points", "11", "--repeats", "1",
            "--workers", "1",
        ]) == 0
        assert "wrote trace manifest" in capsys.readouterr().out
        manifest = RunManifest.load(trace)
        assert manifest.command == "perf"
        assert manifest.arguments["samples"] == 256
        assert manifest.params_hash
        assert manifest.seed["mc_root"] == 0
        assert "monte-carlo" in manifest.solver_path
        assert "vectorized" in manifest.solver_path
        assert [p.name for p in manifest.phases] == ["cli.perf"]
        assert manifest.phases[0].seconds > 0.0
        assert any(s["name"] == "perf.monte_carlo" for s in manifest.spans)
        assert not obs.enabled()  # the CLI stopped its session

    def test_global_trace_flag_position(self, capsys, tmp_path):
        trace = tmp_path / "hw.json"
        assert main(["--trace", str(trace), "hw"]) == 0
        manifest = RunManifest.load(trace)
        assert manifest.command == "hw"
        assert "closed-form" in manifest.solver_path
        assert manifest.metrics["counters"]["models.hw_closed.calls"] >= 3.0

    def test_trace_does_not_change_output(self, capsys, tmp_path):
        assert main(["hw"]) == 0
        plain = capsys.readouterr().out
        assert main(["hw", "--trace", str(tmp_path / "t.json")]) == 0
        traced = capsys.readouterr().out
        assert traced.startswith(plain)
        extra = traced[len(plain):]
        assert extra.startswith("wrote trace manifest")

    def test_obs_command_renders_stored_manifest(self, capsys, tmp_path):
        trace = tmp_path / "demo.json"
        assert main([
            "obs", "--trace", str(trace), "--samples", "128",
        ]) == 0
        capsys.readouterr()
        assert main(["obs", "--manifest", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "Run manifest" in out
        assert "Span profile" in out
