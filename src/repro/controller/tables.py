"""Render the paper's Tables I-III from a :class:`ControllerSpec`.

These renderers regenerate the paper's encapsulation tables verbatim for
OpenContrail 3.x and, by construction, for any other controller profile.
"""

from __future__ import annotations

from repro.controller.spec import ControllerSpec, Plane
from repro.reporting.tables import format_table


def render_table1(spec: ControllerSpec) -> str:
    """Table I: node process and failure modes (per-process quorums)."""
    rows = spec.process_rows()
    return format_table(
        ("Role", "Process Name", "SDN CP", "Host DP"),
        rows,
        title=f"TABLE I. {spec.name} node process and failure modes",
    )


def render_table2(spec: ControllerSpec) -> str:
    """Table II: counts of processes by restart mode by role."""
    table = spec.restart_mode_table()
    roles = list(table)
    rows = [
        ["Auto"] + [table[r][0] for r in roles],
        ["Manual"] + [table[r][1] for r in roles],
    ]
    return format_table(
        ["Restart Mode"] + roles,
        rows,
        title=f"TABLE II. {spec.name} counts of processes by restart mode by role",
    )


def render_table3(spec: ControllerSpec) -> str:
    """Table III: counts of processes by quorum type (M, N) by role and plane."""
    cp = spec.quorum_table(Plane.CP)
    dp = spec.quorum_table(Plane.DP)
    rows = []
    for role in cp:
        rows.append(
            (role, cp[role][0], cp[role][1], dp[role][0], dp[role][1])
        )
    cp_sums = spec.quorum_sums(Plane.CP)
    dp_sums = spec.quorum_sums(Plane.DP)
    rows.append(("Sums", cp_sums[0], cp_sums[1], dp_sums[0], dp_sums[1]))
    return format_table(
        ("Role", "CP M", "CP N", "DP M", "DP N"),
        rows,
        title=f"TABLE III. {spec.name} counts of processes by quorum type by role",
    )
