"""Availability models.

Three independent evaluation routes for controller availability:

* **Paper closed forms** — the printed equations (Eqs. 3/6/8 for the
  HW-centric section V; Eqs. 9-15 for the SW-centric section VI), in
  :mod:`~repro.models.hw_closed` and :mod:`~repro.models.sw`.
* **Exact engine** — :mod:`~repro.models.engine` enumerates the shared
  infrastructure elements of *any* topology and conditions per the paper's
  methodology, generalizing the printed formulas; used through
  :mod:`~repro.models.hw_exact` and :mod:`~repro.models.sw`.
* **Approximations** — the paper's ``A ~= A_{2/3}(alpha) A_R`` rules of
  thumb in :mod:`~repro.models.hw_approx`.

Plus the section VI.A supervisor-scenario analysis
(:mod:`~repro.models.supervisor`), the data-plane composition
(:mod:`~repro.models.dataplane`), and dominant-failure-mode identification
(:mod:`~repro.models.failure_modes`).
"""

from repro.models.engine import (
    RoleRequirement,
    UnitRequirement,
    evaluate_topology,
)
from repro.models.hw_closed import (
    hw_availability,
    hw_large,
    hw_medium,
    hw_small,
)
from repro.models.hw_exact import hw_availability_exact
from repro.models.hw_approx import hw_approximation
from repro.models.sw import cp_availability, shared_dp_availability
from repro.models.dataplane import dp_availability, local_dp_availability
from repro.models.sw_options import OptionResult, evaluate_option

__all__ = [
    "UnitRequirement",
    "RoleRequirement",
    "evaluate_topology",
    "hw_small",
    "hw_medium",
    "hw_large",
    "hw_availability",
    "hw_availability_exact",
    "hw_approximation",
    "cp_availability",
    "shared_dp_availability",
    "local_dp_availability",
    "dp_availability",
    "OptionResult",
    "evaluate_option",
]
