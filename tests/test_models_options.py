"""Tests for the 1S/2S/1L/2L option wrappers and data-plane composition."""

import pytest

from repro.errors import ModelError
from repro.models.dataplane import dp_availability, local_dp_availability
from repro.models.sw_options import (
    PAPER_OPTIONS,
    evaluate_all_options,
    evaluate_option,
    parse_option,
)
from repro.params.software import RestartScenario

S1 = RestartScenario.NOT_REQUIRED
S2 = RestartScenario.REQUIRED


class TestParseOption:
    def test_all_paper_options(self):
        assert parse_option("1S") == (S1, "small")
        assert parse_option("2S") == (S2, "small")
        assert parse_option("1L") == (S1, "large")
        assert parse_option("2L") == (S2, "large")

    def test_medium_supported(self):
        assert parse_option("2M") == (S2, "medium")

    def test_case_insensitive(self):
        assert parse_option("2l") == (S2, "large")

    def test_rejects_garbage(self):
        for bad in ("", "3S", "1X", "XL", "1SL"):
            with pytest.raises(ModelError):
                parse_option(bad)


class TestLocalDp:
    def test_scenario1_is_a_to_the_k(self, spec, software):
        # A_LDP = A^K with K = 2 (vrouter-agent, vrouter-dpdk).
        assert local_dp_availability(spec, software, S1) == pytest.approx(
            software.a_process**2
        )

    def test_scenario2_adds_supervisor(self, spec, software):
        # A_LDP = A^K A_S.
        assert local_dp_availability(spec, software, S2) == pytest.approx(
            software.a_process**2 * software.a_unsupervised
        )

    def test_no_host_role_is_perfect(self, split_spec, software):
        assert local_dp_availability(split_spec, software, S1) == 1.0
        assert local_dp_availability(split_spec, software, S2) == 1.0


class TestDpComposition:
    def test_dp_is_product(self, spec, hardware, software):
        for topology in ("small", "large"):
            for scenario in (S1, S2):
                from repro.models.sw import shared_dp_availability

                shared = shared_dp_availability(
                    spec, topology, hardware, software, scenario
                )
                local = local_dp_availability(spec, software, scenario)
                assert dp_availability(
                    spec, topology, hardware, software, scenario
                ) == pytest.approx(shared * local)


class TestOptionResults:
    def test_result_fields_consistent(self, spec, hardware, software):
        result = evaluate_option(spec, "2L", hardware, software)
        assert result.option == "2L"
        assert result.dp == pytest.approx(result.shared_dp * result.local_dp)
        assert 0 < result.cp_downtime_minutes < 10
        assert 0 < result.dp_downtime_minutes < 200

    def test_all_options(self, spec, hardware, software):
        results = evaluate_all_options(spec, hardware, software)
        assert set(results) == set(PAPER_OPTIONS)

    def test_option_ordering_cp(self, spec, hardware, software):
        # CP: 1L best, then 2L, then 1S, then 2S (Fig. 4 at x = 0).
        results = evaluate_all_options(spec, hardware, software)
        assert (
            results["1L"].cp
            > results["2L"].cp
            > results["1S"].cp
            > results["2S"].cp
        )

    def test_option_ordering_dp(self, spec, hardware, software):
        # DP: supervisor requirement dominates; topology is secondary
        # (Fig. 5: 1L > 1S >> 2L > 2S).
        results = evaluate_all_options(spec, hardware, software)
        assert results["1L"].dp > results["1S"].dp
        assert results["2L"].dp > results["2S"].dp
        assert results["1S"].dp > results["2L"].dp
