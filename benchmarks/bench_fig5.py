"""E6 — regenerate Fig. 5: per-host data-plane availability A_DP.

Paper reference: Fig. 5 (section VI-G).  Four curves (1S, 2S, 1L, 2L); the
supervisor requirement dominates (the vRouter supervisor is a per-host
single point of failure), topology is secondary.

Shape assertions:
* supervisor-scenario separation: {1S, 1L} >> {2S, 2L} at the center;
* quoted downtimes at x = 0 (26 / 131 / 21 / 126 min/yr);
* convergence values at the sweep edges (0.9976 / 0.9996 left).
"""

import pytest

from repro.analysis.figures import fig5_series
from repro.reporting.csvout import write_csv
from repro.reporting.tables import format_table
from repro.units import downtime_minutes_per_year


def test_fig5(benchmark, spec, hardware, software, results_dir):
    result = benchmark(fig5_series, spec, hardware, software, 21)

    headers = ("orders", *result.labels)
    rows = result.rows()
    print(
        "\n"
        + format_table(
            headers,
            [tuple(f"{v:.8f}" for v in row) for row in rows],
            title="Figure 5: OpenContrail DP availability A_DP (SW-centric)",
        )
    )
    write_csv(results_dir / "fig5.csv", headers, rows)

    center = result.grid.index(min(result.grid, key=abs))
    values = {label: result.series[label][center] for label in result.labels}
    minutes = {
        label: downtime_minutes_per_year(value)
        for label, value in values.items()
    }
    assert minutes["1S"] == pytest.approx(26.0, abs=1.0)
    assert minutes["2S"] == pytest.approx(131.0, abs=1.5)
    assert minutes["1L"] == pytest.approx(21.0, abs=1.0)
    assert minutes["2L"] == pytest.approx(126.0, abs=1.5)
    # Scenario dominates topology.
    assert min(values["1S"], values["1L"]) > max(values["2S"], values["2L"])

    left = {label: result.series[label][0] for label in result.labels}
    assert left["2S"] == pytest.approx(0.9976, abs=3e-4)
    assert left["2L"] == pytest.approx(0.9976, abs=3e-4)
    assert left["1S"] == pytest.approx(0.9996, abs=1e-4)
