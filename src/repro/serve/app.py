"""The availability service: routing, instrumentation, and lifecycle.

:class:`ServeApp` wires the serving pieces together over one asyncio event
loop:

* **Queries** (``POST /v1/query``) answer the paper's analytic questions —
  closed-form hardware availability (micro-batched through the vectorized
  kernels), software-option evaluation, and control-network path analysis
  — through the single-flight LRU cache, so identical concurrent requests
  compute once and repeated requests are near-free.
* **Jobs** (``POST /v1/jobs`` / ``GET /v1/jobs/<id>``) run Monte-Carlo
  campaigns asynchronously on the sharded queue with admission control;
  results are deterministic-identical to CLI runs of the same spec.
* **Observability** (``GET /metrics``, ``GET /v1/stats``) exposes request
  latency histograms, per-request latency-attribution segments
  (queue-wait / cache / batch-assembly / kernel-compute / other), cache
  hit/miss/eviction counters, batch sizes, queue-depth gauges, and the
  rolling :class:`~repro.obs.slo.SLOTracker` state as OpenMetrics text and
  JSON; when a telemetry bus is active the app also emits ``serve.*``
  lifecycle events and periodic ``metrics`` snapshots (which a
  :class:`~repro.obs.telemetry.PrometheusSink` turns into a scrapeable
  file).
* **Tracing** (every request) — a :class:`~repro.obs.trace.TraceContext`
  per request (continuing an inbound W3C ``traceparent`` when present),
  installed as a contextvar scope so the cache, batcher, and job queue
  attribute latency to the right request without new call signatures.
  Responses carry ``X-Trace-Id``; query responses embed a ``trace``
  section.  Tracing never touches computed values — instrumented results
  are bit-identical to uninstrumented ones.
* **Streaming** (``GET /v1/events``, ``GET /v1/jobs/<id>/events``) —
  server-sent events fanned out from the live telemetry bus through
  :class:`~repro.serve.stream.TelemetryHub`; each frame's ``data:`` line
  is byte-identical to the :class:`~repro.obs.telemetry.JsonlSink` line
  for the same event, in the same ``(run, seq)`` order.

Everything is stdlib ``asyncio`` plus this package's own modules — no web
framework.
"""

from __future__ import annotations

import asyncio
import contextlib
import time
from dataclasses import dataclass, field, replace
from typing import Any, AsyncIterator, Mapping

import numpy as np

from repro.errors import ReproError, ServeError
from repro.obs import telemetry
from repro.obs.metrics import MetricsRegistry
from repro.obs.slo import SLOConfig, SLOTracker
from repro.obs.telemetry import render_openmetrics
from repro.obs.trace import TraceContext
from repro.serve.admission import AdmissionController, AdmissionPolicy
from repro.serve.batching import (
    DEFAULT_MAX_BATCH,
    DEFAULT_WINDOW_SECONDS,
    MicroBatcher,
)
from repro.serve.cache import (
    DEFAULT_MAX_ENTRIES,
    SingleFlightCache,
    result_key,
)
from repro.serve.jobs import DEFAULT_SHARDS, JobQueue
from repro.serve.protocol import (
    LAST_CHUNK,
    MAX_BODY_BYTES,
    ProtocolError,
    Request,
    Response,
    StreamingResponse,
    encode_chunk,
    read_request,
)
from repro.serve.stream import (
    DEFAULT_BUFFER_EVENTS,
    DEFAULT_QUEUE_EVENTS,
    STREAM_CLOSED,
    Subscription,
    TelemetryHub,
    encode_sse_event,
)
from repro.serve.tracing import (
    SEGMENT_NAMES,
    RequestTrace,
    current_request,
    request_scope,
)

__all__ = ["ServeConfig", "ServeApp"]

#: Emit a ``metrics`` telemetry snapshot every this many requests (when a
#: telemetry bus is active), plus once at shutdown.
METRICS_EVERY_REQUESTS = 100

#: Terminal job states (a job event stream ends after these).
_TERMINAL_STATES = ("done", "failed")


@dataclass(frozen=True)
class ServeConfig:
    """Tunables for one :class:`ServeApp` instance."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 = ephemeral; read ``app.port`` after start()
    cache_entries: int = DEFAULT_MAX_ENTRIES
    batch_window_seconds: float = DEFAULT_WINDOW_SECONDS
    max_batch: int = DEFAULT_MAX_BATCH
    shards: int = DEFAULT_SHARDS
    workers_per_job: int = 1
    admission: AdmissionPolicy = field(default_factory=AdmissionPolicy)
    max_body_bytes: int = MAX_BODY_BYTES
    slo: SLOConfig = field(default_factory=SLOConfig)
    stream_buffer_events: int = DEFAULT_BUFFER_EVENTS
    stream_queue_events: int = DEFAULT_QUEUE_EVENTS
    stream_heartbeat_seconds: float = 15.0


def _probability(
    payload: Mapping[str, Any], name: str, default: float | None = None
) -> float:
    try:
        value = float(payload[name])
    except KeyError:
        if default is not None:
            return default
        raise ProtocolError(f"hw query is missing {name!r}") from None
    except (TypeError, ValueError):
        raise ProtocolError(
            f"hw query field {name!r} must be a number, "
            f"got {payload[name]!r}"
        ) from None
    if not 0.0 <= value <= 1.0:
        raise ProtocolError(f"{name} must be in [0, 1], got {value}")
    return value


def _hw_models() -> dict[str, Any]:
    from repro.perf.vectorized import (
        hw_large_array,
        hw_medium_array,
        hw_small_array,
    )

    return {
        "small": hw_small_array,
        "medium": hw_medium_array,
        "large": hw_large_array,
    }


def _lower_hw(model_fn: Any, batch: list[dict[str, float]]) -> list[float]:
    """One vectorized kernel call over a whole batch of hw queries.

    The kernels are elementwise over their parameter arrays, so element
    ``i`` of the result is bit-identical to evaluating request ``i`` alone
    — the equivalence the micro-batch tests pin.
    """
    columns = {
        name: np.array([item[name] for item in batch], dtype=np.float64)
        for name in ("a_role", "a_vm", "a_host", "a_rack")
    }
    values = model_fn(
        columns["a_role"],
        columns["a_vm"],
        columns["a_host"],
        columns["a_rack"],
    )
    return [float(value) for value in np.atleast_1d(values)]


def _resolve_graph(payload: Mapping[str, Any]) -> Any:
    from repro.network.graph import NetworkGraph
    from repro.topology.network_reference import reference_network

    graph = payload.get("graph")
    if isinstance(graph, str):
        try:
            return reference_network(graph)
        except ReproError as error:
            raise ProtocolError(
                f"unknown reference network {graph!r}: {error}"
            ) from None
    if isinstance(graph, Mapping):
        try:
            return NetworkGraph.from_dict(graph)
        except ReproError as error:
            raise ProtocolError(f"invalid network graph: {error}") from None
    raise ProtocolError(
        "network query needs 'graph': a reference name or a graph object"
    )


def _analyze_network(payload: Mapping[str, Any]) -> dict[str, Any]:
    """Blocking control-path analysis for one switch (runs on a thread)."""
    from repro.network.paths import analyze_switch

    graph = _resolve_graph(payload)
    switch = payload.get("switch")
    if not isinstance(switch, str) or not switch:
        raise ProtocolError("network query needs 'switch': a switch name")
    max_order = payload.get("max_order")
    if max_order is not None and not isinstance(max_order, int):
        raise ProtocolError(
            f"max_order must be an integer, got {max_order!r}"
        )
    try:
        analysis = analyze_switch(graph, switch, max_order=max_order)
    except ReproError as error:
        raise ProtocolError(f"network analysis failed: {error}") from None
    return {
        "switch": analysis.switch,
        "sites": list(analysis.sites),
        "availability": analysis.availability,
        "unavailability": analysis.unavailability,
        "union_bound": analysis.union_bound,
        "max_order": analysis.max_order,
        "cut_sets": len(analysis.cut_sets),
    }


def _evaluate_option(payload: Mapping[str, Any]) -> dict[str, Any]:
    from dataclasses import replace

    from repro.controller.opencontrail import opencontrail_3x
    from repro.models.sw_options import evaluate_option
    from repro.params.defaults import PAPER_HARDWARE, PAPER_SOFTWARE

    option = payload.get("option")
    if not isinstance(option, str) or not option:
        raise ProtocolError("option query needs 'option': e.g. \"2S\"")
    overrides = {
        name: _probability(payload, name)
        for name in ("a_role", "a_vm", "a_host", "a_rack")
        if name in payload
    }
    hardware = (
        replace(PAPER_HARDWARE, **overrides) if overrides else PAPER_HARDWARE
    )
    try:
        result = evaluate_option(
            opencontrail_3x(), option, hardware, PAPER_SOFTWARE
        )
    except ReproError as error:
        raise ProtocolError(f"option evaluation failed: {error}") from None
    return {
        "option": result.option,
        "cp": result.cp,
        "shared_dp": result.shared_dp,
        "local_dp": result.local_dp,
        "dp": result.dp,
        "cp_downtime_minutes": result.cp_downtime_minutes,
        "dp_downtime_minutes": result.dp_downtime_minutes,
    }


class ServeApp:
    """The availability service over one asyncio event loop."""

    def __init__(self, config: ServeConfig | None = None):
        self.config = config or ServeConfig()
        self.registry = MetricsRegistry()
        self.cache = SingleFlightCache(
            max_entries=self.config.cache_entries,
            registry=self.registry,
        )
        self.admission = AdmissionController(self.config.admission)
        self.jobs = JobQueue(
            admission=self.admission,
            shards=self.config.shards,
            workers_per_job=self.config.workers_per_job,
            registry=self.registry,
        )
        self.slo = SLOTracker(self.config.slo)
        self._slo_compliant: dict[str, bool] = {
            "availability": True,
            "latency": True,
        }
        self._hub: TelemetryHub | None = None
        self._hub_bus: telemetry.TelemetryBus | None = None
        self.batchers = {
            name: MicroBatcher(
                lambda batch, fn=model_fn: _lower_hw(fn, batch),
                window_seconds=self.config.batch_window_seconds,
                max_batch=self.config.max_batch,
            )
            for name, model_fn in _hw_models().items()
        }
        self.requests_served = 0
        self._server: asyncio.base_events.Server | None = None

    # -- lifecycle ------------------------------------------------------------

    @property
    def port(self) -> int:
        """The bound TCP port (after :meth:`start`)."""
        if self._server is None:
            raise ServeError("server is not running")
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> None:
        if self._server is not None:
            raise ServeError("server is already running")
        self.jobs.start()
        self._server = await asyncio.start_server(
            self._serve_connection, self.config.host, self.config.port
        )
        self._ensure_hub()
        telemetry.emit(
            "serve.start", host=self.config.host, port=self.port
        )

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for batcher in self.batchers.values():
            await batcher.drain()
        await self.jobs.stop()
        self._emit_metrics_event()
        telemetry.emit("serve.stop", requests=self.requests_served)
        self._detach_hub()

    def _ensure_hub(self) -> TelemetryHub | None:
        """The SSE fan-out hub, attached to the *currently* active bus.

        The hub follows the bus: when no bus is active there is nothing to
        stream (``None``); when the active bus changed since the last
        attachment (tests start and stop buses around a running app) the
        old hub is closed and a fresh one attached.
        """
        bus = telemetry.active()
        if bus is None:
            self._detach_hub()
            return None
        if self._hub is None or self._hub_bus is not bus:
            self._detach_hub()
            hub = TelemetryHub(
                loop=asyncio.get_running_loop(),
                buffer_events=self.config.stream_buffer_events,
                max_queue_events=self.config.stream_queue_events,
            )
            bus.add_sink(hub)
            self._hub = hub
            self._hub_bus = bus
        return self._hub

    def _detach_hub(self) -> None:
        if self._hub is not None:
            if self._hub_bus is not None:
                self._hub_bus.remove_sink(self._hub)
            self._hub.close()
        self._hub = None
        self._hub_bus = None

    async def serve_until(self, stop: asyncio.Event) -> None:
        """Run until ``stop`` is set, then shut down cleanly."""
        await self.start()
        try:
            await stop.wait()
        finally:
            await self.stop()

    # -- connection handling --------------------------------------------------

    async def _serve_connection(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        try:
            while True:
                try:
                    request = await read_request(
                        reader, max_body_bytes=self.config.max_body_bytes
                    )
                except ProtocolError as error:
                    response = Response.error(error.status, str(error))
                    self._count_response(response.status)
                    writer.write(response.encode(keep_alive=False))
                    await writer.drain()
                    return
                if request is None:
                    return
                response = await self.handle(request)
                if isinstance(response, StreamingResponse):
                    await self._stream_response(reader, writer, response)
                    return  # the stream consumed the connection
                writer.write(response.encode(keep_alive=request.keep_alive))
                await writer.drain()
                if not request.keep_alive:
                    return
        except (ConnectionResetError, BrokenPipeError):
            return
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _stream_response(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        response: StreamingResponse,
    ) -> None:
        """Write a chunked stream until it ends or the client disconnects.

        A concurrent ``read`` watches the socket: SSE clients send nothing
        after the request, so any read completion (EOF on disconnect)
        means the peer is gone and the generator is closed promptly — a
        canceled stream must not hold its hub subscription.
        """
        generator = response.chunks
        eof_watch = asyncio.create_task(reader.read(1))
        try:
            writer.write(response.encode_head())
            await writer.drain()
            while True:
                next_chunk = asyncio.create_task(anext(generator))
                done, _ = await asyncio.wait(
                    {next_chunk, eof_watch},
                    return_when=asyncio.FIRST_COMPLETED,
                )
                if next_chunk not in done:
                    next_chunk.cancel()
                    with contextlib.suppress(
                        asyncio.CancelledError, StopAsyncIteration
                    ):
                        await next_chunk
                    return  # client went away
                try:
                    chunk = next_chunk.result()
                except StopAsyncIteration:
                    writer.write(LAST_CHUNK)
                    await writer.drain()
                    return
                writer.write(encode_chunk(chunk))
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            return
        finally:
            eof_watch.cancel()
            with contextlib.suppress(asyncio.CancelledError, Exception):
                await eof_watch
            await generator.aclose()

    # -- routing --------------------------------------------------------------

    async def handle(
        self, request: Request
    ) -> Response | StreamingResponse:
        """Route one request to a handler; exceptions become status codes.

        Every request runs inside a :func:`~repro.serve.tracing.
        request_scope`: a new trace (or the continuation of an inbound
        W3C ``traceparent``) whose latency-attribution segments are
        recorded into the ``serve.segment_seconds.*`` histograms and whose
        trace id is returned as ``X-Trace-Id``.
        """
        started = time.perf_counter()
        context = TraceContext.from_traceparent(
            request.headers.get("traceparent")
        )
        if context is None:
            context = TraceContext.new()
        trace = RequestTrace(context=context, started=started)
        try:
            with request_scope(trace):
                response = await self._dispatch(request)
        except ServeError as error:
            response = Response.error(error.status, str(error))
        except ReproError as error:
            response = Response.error(400, str(error))
        except Exception as error:  # noqa: BLE001 - the server must answer
            response = Response.error(
                500, f"internal error: {type(error).__name__}: {error}"
            )
        elapsed = time.perf_counter() - started
        self.requests_served += 1
        self.registry.histogram("serve.request_seconds").observe(elapsed)
        for name, seconds in trace.finalize(elapsed).items():
            self.registry.histogram(
                f"serve.segment_seconds.{name}"
            ).observe(seconds)
        self.slo.record(response.status < 500, elapsed)
        self._check_slo()
        self._count_response(response.status)
        response = self._with_trace_header(response, context)
        if (
            telemetry.enabled()
            and self.requests_served % METRICS_EVERY_REQUESTS == 0
        ):
            self._emit_metrics_event()
        return response

    @staticmethod
    def _with_trace_header(
        response: Response | StreamingResponse, context: TraceContext
    ) -> Response | StreamingResponse:
        headers = response.headers + (("X-Trace-Id", context.trace_id),)
        if isinstance(response, StreamingResponse):
            response.headers = headers
            return response
        return replace(response, headers=headers)

    def _check_slo(self) -> None:
        """Emit breach/recovered telemetry on SLO compliance transitions."""
        if not telemetry.enabled():
            return
        compliance = self.slo.compliance()
        for objective, compliant in compliance.items():
            if compliant != self._slo_compliant[objective]:
                kind = (
                    "serve.slo.recovered"
                    if compliant
                    else "serve.slo.breach"
                )
                telemetry.emit(
                    kind,
                    objective=objective,
                    slo=self.slo.snapshot()[objective],
                )
        self._slo_compliant = compliance

    async def _dispatch(
        self, request: Request
    ) -> Response | StreamingResponse:
        path = request.path
        if path == "/healthz":
            self._require_method(request, "GET")
            return Response.json({"status": "ok"})
        if path == "/metrics":
            self._require_method(request, "GET")
            return Response.text(render_openmetrics(self.metrics_snapshot()))
        if path == "/v1/stats":
            self._require_method(request, "GET")
            return Response.json(self.stats())
        if path == "/v1/query":
            self._require_method(request, "POST")
            return await self._handle_query(request)
        if path == "/v1/jobs":
            self._require_method(request, "POST")
            return self._handle_job_submit(request)
        if path == "/v1/events":
            self._require_method(request, "GET")
            return self._handle_firehose(request)
        if path.startswith("/v1/jobs/") and path.endswith("/events"):
            self._require_method(request, "GET")
            job_id = path.removeprefix("/v1/jobs/").removesuffix("/events")
            return self._handle_job_events(job_id)
        if path.startswith("/v1/jobs/"):
            self._require_method(request, "GET")
            job = self.jobs.get(path.removeprefix("/v1/jobs/"))
            return Response.json(job.status())
        raise ServeError(f"no route for {path!r}", status=404)

    @staticmethod
    def _require_method(request: Request, method: str) -> None:
        if request.method != method:
            raise ServeError(
                f"{request.path} only supports {method}, "
                f"got {request.method}",
                status=405,
            )

    # -- queries --------------------------------------------------------------

    async def _handle_query(self, request: Request) -> Response:
        payload = request.json_object()
        kind = payload.get("kind")
        if kind == "hw":
            return await self._query_hw(payload)
        if kind == "option":
            return await self._query_cached(
                "option", payload, lambda: asyncio.to_thread(
                    _evaluate_option, payload
                )
            )
        if kind == "network":
            return await self._query_cached(
                "network", payload, lambda: asyncio.to_thread(
                    _analyze_network, payload
                )
            )
        raise ProtocolError(
            f"unknown query kind {kind!r} "
            "(expected 'hw', 'option', or 'network')"
        )

    async def _query_hw(self, payload: Mapping[str, Any]) -> Response:
        model = payload.get("model", "small")
        batcher = self.batchers.get(model)
        if batcher is None:
            raise ProtocolError(
                f"unknown hw model {model!r} "
                f"(expected one of {sorted(self.batchers)})"
            )
        from repro.params.defaults import PAPER_HARDWARE

        # Absent parameters fall back to the paper's values (the same
        # override semantics as the option query); the cache key is built
        # from the resolved params, so defaulted and explicit requests for
        # the same numbers share one entry.
        params = {
            name: _probability(payload, name, getattr(PAPER_HARDWARE, name))
            for name in ("a_role", "a_vm", "a_host", "a_rack")
        }
        key = result_key("hw", {"model": model, **params})
        started = time.perf_counter()
        value, outcome = await self.cache.get_with_outcome(
            key, lambda: batcher.submit(params)
        )
        self._observe_query(started, outcome)
        record = {
            "kind": "hw",
            "model": model,
            "availability": value,
            "cache": outcome,
        }
        return Response.json(self._with_trace_payload(record))

    async def _query_cached(
        self, kind: str, payload: Mapping[str, Any], compute: Any
    ) -> Response:
        body = {k: v for k, v in payload.items() if k != "kind"}
        key = result_key(kind, body)
        started = time.perf_counter()
        value, outcome = await self.cache.get_with_outcome(
            key, lambda: self._timed_compute(compute)
        )
        self._observe_query(started, outcome)
        record = {"kind": kind, "cache": outcome, **value}
        return Response.json(self._with_trace_payload(record))

    @staticmethod
    async def _timed_compute(compute: Any) -> Any:
        """Run an un-batched computation, attributing it kernel time."""
        trace = current_request()
        if trace is None:
            return await compute()
        started = time.perf_counter()
        try:
            return await compute()
        finally:
            trace.add_segment(
                "kernel_compute", time.perf_counter() - started
            )

    @staticmethod
    def _with_trace_payload(record: dict[str, Any]) -> dict[str, Any]:
        trace = current_request()
        if trace is not None:
            record["trace"] = trace.payload()
        return record

    def _observe_query(self, started: float, outcome: str) -> None:
        elapsed = time.perf_counter() - started
        self.registry.histogram(
            f"serve.query_seconds.{outcome}"
        ).observe(elapsed)

    # -- jobs -----------------------------------------------------------------

    def _handle_job_submit(self, request: Request) -> Response:
        payload = request.json_object()
        kind = payload.get("kind")
        if not isinstance(kind, str):
            raise ProtocolError(
                "job submission needs 'kind': "
                "'campaign' or 'network_campaign'"
            )
        spec = payload.get("spec")
        if not isinstance(spec, Mapping):
            raise ProtocolError("job submission needs 'spec': a JSON object")
        job = self.jobs.submit(kind, spec, request.tenant)
        return Response.json(job.status(), status=202)

    # -- streaming ------------------------------------------------------------

    def _require_hub(self) -> TelemetryHub:
        hub = self._ensure_hub()
        if hub is None:
            raise ServeError(
                "event streaming needs an active telemetry bus "
                "(start the server with --telemetry or --stream)",
                status=503,
            )
        return hub

    def _handle_firehose(self, request: Request) -> StreamingResponse:
        """``GET /v1/events`` — every bus event as it happens.

        ``?kinds=a,b`` filters by event kind; ``?replay=1`` prepends the
        hub's buffered history (the firehose defaults to live-only —
        job streams, which need a complete record, always replay).
        """
        hub = self._require_hub()
        kinds_param = request.query.get("kinds", "")
        kinds = {k.strip() for k in kinds_param.split(",") if k.strip()}
        replay = request.query.get("replay", "") in ("1", "true", "yes")
        predicate = None
        if kinds:
            def predicate(event: Mapping[str, Any]) -> bool:
                return str(event.get("kind", "")) in kinds
        subscription = hub.subscribe(predicate=predicate, replay=replay)
        return StreamingResponse(chunks=self._sse_chunks(subscription))

    def _handle_job_events(self, job_id: str) -> StreamingResponse:
        """``GET /v1/jobs/<id>/events`` — one job's stream, ending with it.

        Replays the buffered events for the job (so connecting after
        submission loses nothing the hub still holds), then follows live
        until the job's ``serve.job.end`` event has been delivered.
        """
        job = self.jobs.get(job_id)  # 404 for unknown ids
        hub = self._require_hub()

        def belongs(event: Mapping[str, Any]) -> bool:
            return event.get("job_id") == job_id

        def is_end(event: Mapping[str, Any]) -> bool:
            return event.get("kind") == "serve.job.end" and belongs(event)

        subscription = hub.subscribe(predicate=belongs, replay=True)
        # A terminal job emitted its end event before this subscription
        # existed; if the ring no longer holds it, close after replay
        # rather than waiting for an event that will never come.
        follow = job.state not in _TERMINAL_STATES or any(
            is_end(event) for event in subscription.replayed
        )
        return StreamingResponse(
            chunks=self._sse_chunks(
                subscription, end_when=is_end, follow=follow
            )
        )

    async def _sse_chunks(
        self,
        subscription: Subscription,
        end_when: Any = None,
        follow: bool = True,
    ) -> AsyncIterator[bytes]:
        """Replayed then live SSE frames; heartbeats keep idle streams up."""
        heartbeat = self.config.stream_heartbeat_seconds
        try:
            for event in subscription.replayed:
                yield encode_sse_event(event)
                if end_when is not None and end_when(event):
                    return
            if not follow:
                return
            while True:
                item = await subscription.get(timeout=heartbeat)
                if item is None:
                    yield b": keepalive\n\n"
                    continue
                if item is STREAM_CLOSED:
                    return
                yield encode_sse_event(item)
                if end_when is not None and end_when(item):
                    return
        finally:
            subscription.unsubscribe()

    # -- observability --------------------------------------------------------

    def metrics_snapshot(self) -> dict[str, Any]:
        """The registry snapshot overlaid with serve-layer instruments.

        The cache counts directly on this registry, so only the layers
        that still keep their own counters (admission, jobs, batchers)
        are overlaid by delta here.
        """
        counters: dict[str, float] = {}
        counters.update(self.admission.counters())
        counters.update(self.jobs.counters())
        for batcher in self.batchers.values():
            for name, value in batcher.counters().items():
                counters[name] = counters.get(name, 0) + value
        for name, value in counters.items():
            counter = self.registry.counter(name)
            if value > counter.value:
                counter.increment(value - counter.value)
        depths = self.jobs.queue_depths()
        self.registry.gauge("serve.jobs.queue_depth").set(sum(depths))
        for shard, depth in enumerate(depths):
            self.registry.gauge(
                f"serve.jobs.queue_depth.shard{shard}"
            ).set(depth)
        self.registry.gauge("serve.cache.entries").set(len(self.cache))
        self.registry.gauge(
            "serve.admission.inflight"
        ).set(self.admission.total_inflight)
        for name, value in self.slo.gauges().items():
            self.registry.gauge(name).set(value)
        self.registry.gauge("serve.stream.subscribers").set(
            self._hub.subscriber_count if self._hub is not None else 0
        )
        return self.registry.snapshot()

    def stats(self) -> dict[str, Any]:
        """JSON operational stats, including latency quantiles."""
        self.metrics_snapshot()  # refresh overlaid counters and gauges

        def latency(name: str) -> dict[str, Any]:
            histogram = self.registry.histogram(name)
            if not histogram.count:
                return {"count": 0, "total_seconds": 0.0}
            return {
                "count": histogram.count,
                "total_seconds": histogram.total,
                "mean_seconds": histogram.mean,
                "p50_seconds": histogram.quantile(0.50),
                "p99_seconds": histogram.quantile(0.99),
            }

        return {
            "requests": self.requests_served,
            "cache": self.cache.counters() | {"entries": len(self.cache)},
            "admission": self.admission.counters()
            | {"inflight": self.admission.total_inflight},
            "jobs": self.jobs.counters()
            | {"queue_depths": self.jobs.queue_depths()},
            "batch": {
                name: batcher.counters()
                for name, batcher in self.batchers.items()
            },
            "latency": {
                "request": latency("serve.request_seconds"),
                "query_hit": latency("serve.query_seconds.hit"),
                "query_miss": latency("serve.query_seconds.miss"),
                "query_coalesced": latency("serve.query_seconds.coalesced"),
            },
            # Per-request attribution: each finished request's wall time is
            # decomposed into these segments, so across any traffic mix the
            # segment totals sum to the request-histogram total (the
            # loadtest's coverage check).
            "segments": {
                name: latency(f"serve.segment_seconds.{name}")
                for name in SEGMENT_NAMES
            },
            "slo": self.slo.snapshot(),
        }

    def _count_response(self, status: int) -> None:
        self.registry.counter(
            f"serve.responses.{status // 100}xx"
        ).increment()

    def _emit_metrics_event(self) -> None:
        if telemetry.enabled():
            telemetry.emit("metrics", snapshot=self.metrics_snapshot())
