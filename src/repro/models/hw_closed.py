"""HW-centric closed-form availability models — section V, Eqs. (2)-(8).

Each controller node is treated as an atomic element: one availability
``A_C`` per role instance, with role-level quorums (1-of-3 for Config,
Control, Analytics; 2-of-3 for Database in the reference configuration).

Functions are generalized over the cluster size ``n`` and the role quorum
vector, with the paper's values as defaults, and all follow the paper's
conditioning methodology exactly:

* :func:`hw_small` — condition on the ``{VM+host}`` blocks (Eq. 2); the
  printed Eq. (3) is algebraically identical.
* :func:`hw_medium` — condition on racks then hosts (Eqs. 4-5).  The
  *printed* Eq. (6) simplifies a second-order term (it replaces an ``A_R²``
  by ``A_R`` inside the three-hosts-up term); :func:`hw_medium_paper` is the
  verbatim printed form, :func:`hw_medium` the exact conditioning.  They
  agree to O((1-A)²) — tested.
* :func:`hw_large` — condition on racks (Eq. 7); the printed Eq. (8) is
  identical.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.kofn import a_m_of_n, binomial_pmf
from repro.errors import ModelError
from repro.obs import runtime as obs
from repro.params.hardware import HardwareParams

#: The paper's role quorum vector: 1-of-n for Config/Control/Analytics,
#: 2-of-n (majority) for Database.
PAPER_ROLE_QUORUMS: tuple[int, ...] = (1, 1, 1, 2)


def _conditional(x: int, alpha: float, quorums: Sequence[int]) -> float:
    """``(A | x blocks up)`` = product over roles of ``A_{m/x}(alpha)``."""
    value = 1.0
    for m in quorums:
        value *= a_m_of_n(m, x, alpha)
        if value == 0.0:
            return 0.0
    return value


def hw_small(
    params: HardwareParams,
    quorums: Sequence[int] = PAPER_ROLE_QUORUMS,
    n: int = 3,
) -> float:
    """Small-topology controller availability (Eqs. 2-3).

    All roles of node ``i`` share one VM on one host; all hosts share one
    rack.  Condition on the number of ``{VM+host}`` blocks up, then require
    each role's quorum among surviving nodes with ``alpha = A_C``.
    """
    obs.note_solver("closed-form")
    obs.count("models.hw_closed.calls")
    block = params.a_vm * params.a_host
    total = 0.0
    for x in range(n + 1):
        weight = binomial_pmf(x, n, block)
        if weight > 0.0:
            total += weight * _conditional(x, params.a_role, quorums)
    return total * params.a_rack


def hw_medium(
    params: HardwareParams,
    quorums: Sequence[int] = PAPER_ROLE_QUORUMS,
    n: int = 3,
) -> float:
    """Medium-topology controller availability, exact conditioning (Eqs. 4-5).

    Roles in separate VMs (``alpha = A_C A_V``); node ``i``'s VMs on host
    ``Hi``; hosts ``H1..H(n-1)`` in rack R1, ``Hn`` in rack R2.  Condition on
    the rack pair, then on hosts within up racks.
    """
    if n < 2:
        raise ModelError("the Medium topology needs at least 2 nodes")
    obs.note_solver("closed-form")
    obs.count("models.hw_closed.calls")
    alpha = params.a_role * params.a_vm
    a_h, a_r = params.a_host, params.a_rack

    def hosts_term(k: int) -> float:
        """Expected conditional availability with ``k`` candidate hosts."""
        return sum(
            binomial_pmf(x, k, a_h) * _conditional(x, alpha, quorums)
            for x in range(k + 1)
        )

    both_up = a_r * a_r * hosts_term(n)
    r1_only = a_r * (1.0 - a_r) * hosts_term(n - 1)
    r2_only = (1.0 - a_r) * a_r * hosts_term(1)
    return both_up + r1_only + r2_only


def hw_medium_paper(params: HardwareParams, as_printed: bool = False) -> float:
    """The paper's Medium closed form, Eq. (6), 3-node configuration.

    ``A_M = [A_{1/3}^3 A_{2/3} A_H A_R + A_{1/2}^3 A_{2/2} (4 - 3A_H - A_R)]
    A_H^2 A_R`` with ``alpha = A_C A_V``.  This is the paper's first-order
    simplification of :func:`hw_medium` (the exact three-hosts-up term has
    coefficient ``1 + 2A_R - 3 A_H A_R`` where Eq. 6 writes ``4 - 3A_H -
    A_R``; they agree to O((1-A)²)).

    The equation *as printed* in the paper omits the ``A_R`` factor from the
    first bracket term, which contradicts the paper's own Fig. 3 (it would
    make Medium ~1e-5 *more* available than Small, while the text stresses
    that "adding a second rack actually slightly reduces availability" and
    Fig. 3 shows Small = Medium = 0.999989 at the defaults).  The default
    here restores the evidently intended ``A_R``; pass ``as_printed=True``
    for the verbatim transcription.  See EXPERIMENTS.md, discrepancy D1.
    """
    alpha = params.a_role * params.a_vm
    a13 = a_m_of_n(1, 3, alpha)
    a23 = a_m_of_n(2, 3, alpha)
    a12 = a_m_of_n(1, 2, alpha)
    a22 = a_m_of_n(2, 2, alpha)
    a_h, a_r = params.a_host, params.a_rack
    first = a13**3 * a23 * a_h * (1.0 if as_printed else a_r)
    second = a12**3 * a22 * (4.0 - 3.0 * a_h - a_r)
    return (first + second) * a_h**2 * a_r


def hw_large(
    params: HardwareParams,
    quorums: Sequence[int] = PAPER_ROLE_QUORUMS,
    n: int = 3,
) -> float:
    """Large-topology controller availability (Eqs. 7-8).

    Every role copy on its own host; node ``i`` in its own rack.  Condition
    on the number of racks up; surviving nodes are ``{role+VM+host}`` blocks
    with ``alpha = A_C A_V A_H``.
    """
    obs.note_solver("closed-form")
    obs.count("models.hw_closed.calls")
    alpha = params.a_role * params.a_vm * params.a_host
    total = 0.0
    for r in range(n + 1):
        weight = binomial_pmf(r, n, params.a_rack)
        if weight > 0.0:
            total += weight * _conditional(r, alpha, quorums)
    return total


_DISPATCH = {"small": hw_small, "medium": hw_medium, "large": hw_large}


def hw_availability(
    topology_name: str,
    params: HardwareParams,
    quorums: Sequence[int] = PAPER_ROLE_QUORUMS,
    n: int = 3,
) -> float:
    """Closed-form controller availability by reference topology name."""
    try:
        model = _DISPATCH[topology_name.lower()]
    except KeyError:
        raise ModelError(
            f"no closed form for topology {topology_name!r}; expected one "
            f"of {sorted(_DISPATCH)}"
        ) from None
    return model(params, quorums=quorums, n=n)
