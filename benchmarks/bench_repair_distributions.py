"""A9 — repair-distribution sensitivity of the steady-state results.

The analytic models use only mean restart times; the alternating-renewal
theorem promises the steady-state availability is distribution-free.  This
bench demonstrates it on the simulator: exponential, deterministic, and
heavy-tailed lognormal repairs with identical means produce the same
availability (while the outage-duration tail differs drastically).
"""

import numpy as np
import pytest

from repro.reporting.tables import format_table
from repro.sim.distributions import (
    deterministic_repairs,
    exponential_repairs,
    lognormal_repairs,
)
from repro.sim.engine import AvailabilitySimulator
from repro.sim.entities import Component, ComponentKind

LAM, MTTR, HORIZON = 0.05, 1.0, 80_000.0
EXPECTED = (1 / LAM) / (1 / LAM + MTTR)


def run_all():
    samplers = {
        "exponential": exponential_repairs,
        "deterministic": deterministic_repairs,
        "lognormal cv=2": lognormal_repairs(cv=2.0),
    }
    rows = []
    for label, sampler in samplers.items():
        component = Component(
            key="x",
            kind=ComponentKind.PROCESS,
            failure_rate=LAM,
            repair_mean=MTTR,
        )
        sim = AvailabilitySimulator(
            [component], seed=19, repair_sampler=sampler
        )
        sim.add_signal("x", lambda s: s.effectively_up("x"))
        sim.run(horizon=HORIZON, batches=5)
        durations = sim.signal("x").outage_durations
        rows.append(
            (
                label,
                sim.availability("x"),
                float(np.percentile(durations, 95)),
            )
        )
    return rows


def test_repair_distributions(benchmark):
    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    print(
        "\n"
        + format_table(
            ("Repair distribution", "Availability", "p95 outage (h)"),
            [
                (label, f"{a:.5f}", f"{p95:.2f}")
                for label, a, p95 in rows
            ],
            title=(
                "Ablation A9: steady-state availability is repair-shape "
                f"free (expected {EXPECTED:.5f})"
            ),
        )
    )
    availabilities = {label: a for label, a, _ in rows}
    p95s = {label: p for label, _, p in rows}
    for label, a in availabilities.items():
        assert a == pytest.approx(EXPECTED, abs=0.006), label
    # What changes is the outage experience, not the average.
    assert p95s["lognormal cv=2"] > 2 * p95s["deterministic"]
