"""Tests for the exact topology engine (repro.models.engine)."""

import pytest

from repro.core.kofn import a_m_of_n
from repro.errors import ModelError, TopologyError
from repro.models.engine import (
    RoleRequirement,
    UnitRequirement,
    evaluate_topology,
    resolve_availability,
)
from repro.topology.deployment import DeploymentTopology
from repro.topology.elements import Host, Rack, RoleInstance, Vm


def chain_topology():
    """One role instance on one VM/host/rack — a pure series chain."""
    return DeploymentTopology(
        "Chain",
        (Rack("R1"),),
        (Host("H1", "R1"),),
        (Vm("V1", "H1"),),
        (RoleInstance("A", 1, "V1"),),
    )


def triple_topology():
    """Three instances of one role on private chains in one rack."""
    return DeploymentTopology(
        "Triple",
        (Rack("R1"),),
        tuple(Host(f"H{i}", "R1") for i in (1, 2, 3)),
        tuple(Vm(f"V{i}", f"H{i}") for i in (1, 2, 3)),
        tuple(RoleInstance("A", i, f"V{i}") for i in (1, 2, 3)),
    )


LEVELS = {"rack": 0.999, "host": 0.998, "vm": 0.997}


class TestSeriesChain:
    def test_single_instance_is_series(self):
        req = RoleRequirement("A", (UnitRequirement("p", 1, 0.99),))
        result = evaluate_topology(chain_topology(), (req,), LEVELS)
        assert result == pytest.approx(0.999 * 0.998 * 0.997 * 0.99)

    def test_zero_quorum_unit_ignores_infrastructure(self):
        req = RoleRequirement("A", (UnitRequirement("p", 0, 0.5),))
        result = evaluate_topology(chain_topology(), (req,), LEVELS)
        assert result == pytest.approx(1.0)

    def test_no_requirements_is_certain(self):
        assert evaluate_topology(chain_topology(), (), LEVELS) == 1.0


class TestKofnOverPrivateChains:
    def test_two_of_three_thins_by_chain(self):
        # Each instance survives with p = A_H A_V alpha; the rack is a
        # shared series element.  2-of-3 over the thinned instances.
        alpha = 0.99
        req = RoleRequirement("A", (UnitRequirement("p", 2, alpha),))
        result = evaluate_topology(triple_topology(), (req,), LEVELS)
        p = 0.998 * 0.997 * alpha
        assert result == pytest.approx(a_m_of_n(2, 3, p) * 0.999, rel=1e-12)

    def test_extra_instance_availability(self):
        # The scenario-2 supervisor factor thins each platform further.
        alpha, extra = 0.99, 0.95
        req = RoleRequirement(
            "A",
            (UnitRequirement("p", 2, alpha),),
            extra_instance_availability=extra,
        )
        result = evaluate_topology(triple_topology(), (req,), LEVELS)
        p = 0.998 * 0.997 * extra * alpha
        assert result == pytest.approx(a_m_of_n(2, 3, p) * 0.999, rel=1e-12)

    def test_multiple_units_share_platforms(self):
        # Two units of the same role are correlated through platforms:
        # P = E[prod_u A_{1/g}(alpha_u)] over the platform count g, which is
        # NOT the product of the units' marginal availabilities.
        req = RoleRequirement(
            "A",
            (UnitRequirement("u1", 1, 0.9), UnitRequirement("u2", 1, 0.9)),
        )
        result = evaluate_topology(triple_topology(), (req,), LEVELS)
        # Exact: condition on g ~ thinned Binomial(3, A_H A_V).
        from repro.core.kofn import binomial_pmf

        p = 0.998 * 0.997
        expected = 0.999 * sum(
            binomial_pmf(g, 3, p) * a_m_of_n(1, g, 0.9) ** 2
            for g in range(4)
        )
        assert result == pytest.approx(expected, rel=1e-12)
        # And strictly above the naive independent-marginals product.
        marginal = 0.999 * sum(
            binomial_pmf(g, 3, p) * a_m_of_n(1, g, 0.9) for g in range(4)
        )
        assert result > (marginal / 0.999) ** 2 * 0.999


class TestSharedVms:
    def test_shared_vm_conditioned_once(self):
        # Two roles on one VM: P(both up) = chain * alpha_a * alpha_b, not
        # chain^2.
        topo = DeploymentTopology(
            "SharedVM",
            (Rack("R1"),),
            (Host("H1", "R1"),),
            (Vm("V1", "H1"),),
            (RoleInstance("A", 1, "V1"), RoleInstance("B", 1, "V1")),
        )
        reqs = (
            RoleRequirement("A", (UnitRequirement("pa", 1, 0.9),)),
            RoleRequirement("B", (UnitRequirement("pb", 1, 0.8),)),
        )
        result = evaluate_topology(topo, reqs, LEVELS)
        assert result == pytest.approx(
            0.999 * 0.998 * 0.997 * 0.9 * 0.8, rel=1e-12
        )


class TestErrors:
    def test_unplaced_role_rejected(self):
        req = RoleRequirement("Z", (UnitRequirement("p", 1, 0.9),))
        with pytest.raises(TopologyError):
            evaluate_topology(chain_topology(), (req,), LEVELS)

    def test_missing_level_availability_rejected(self):
        req = RoleRequirement("A", (UnitRequirement("p", 1, 0.9),))
        with pytest.raises(ModelError):
            evaluate_topology(chain_topology(), (req,), {"rack": 0.999})

    def test_per_element_override(self):
        assert resolve_availability("H1", "host", {"H1": 0.5, "host": 0.9}) == 0.5
        assert resolve_availability("H2", "host", {"H1": 0.5, "host": 0.9}) == 0.9

    def test_bad_alpha_rejected(self):
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            UnitRequirement("p", 1, 1.5)

    def test_negative_quorum_rejected(self):
        with pytest.raises(ModelError):
            UnitRequirement("p", -1, 0.5)
