"""The discrete-event simulation core.

:class:`AvailabilitySimulator` runs a set of :class:`Component` instances
with exponential failure/repair dynamics under hierarchical masking, and
integrates caller-supplied binary system signals (CP up, DP up, ...) over
simulated time with per-batch accounting.

Correctness notes (these are tested):

* Failure clocks only run while a component is effectively up.  Because
  failures are exponential, *resampling* a fresh failure time whenever the
  effective state is re-evaluated is distributionally equivalent to pausing
  the clock (memorylessness), so every effective-state change simply bumps
  the component's epoch and reschedules.
* Repairs continue while a component is masked (a replaced server does not
  un-replace because its rack lost power).
* Scenario-2 supervisor semantics are injected through ``on_repair`` hooks:
  when a supervisor completes its manual restart it restores all of its
  supervised processes (the paper's "the supervisor can then auto-restart
  those processes under its oversight").
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.errors import SimulationError
from repro.obs import runtime as obs
from repro.sim.entities import Component, ComponentKind, ComponentState
from repro.sim.events import Event, EventQueue
from repro.sim.measures import BinarySignal
from repro.sim.rng import RngStreams

RepairPolicy = Callable[[Component], float]
SignalPredicate = Callable[["AvailabilitySimulator"], bool]
RepairHook = Callable[["AvailabilitySimulator", Component], None]


class RepairController:
    """Repair-capacity policy consulted on every downward transition.

    The default grants every request immediately (unlimited repair
    capacity), which reproduces the seed behavior exactly.  A limited
    policy (:class:`repro.faults.hazards.RepairCrews`) may answer ``False``
    from :meth:`request` to queue the repair; it then owns the obligation
    to call :meth:`AvailabilitySimulator.begin_repair` later, when capacity
    frees up.  :meth:`release` is invoked from the single upward-transition
    site for *every* component that comes up (and for holds that cancel a
    pending repair), so the policy can retire active work, drop queued
    entries, and start the next queued repair.
    """

    def request(
        self, simulator: "AvailabilitySimulator", component: Component
    ) -> bool:
        """Whether the repair may start now (``True``) or is queued."""
        return True

    def release(
        self, simulator: "AvailabilitySimulator", component: Component
    ) -> None:
        """The component no longer needs (or holds) repair capacity."""


class AvailabilitySimulator:
    """Generic failure/repair simulator over a component dependency DAG."""

    def __init__(
        self,
        components: Sequence[Component],
        seed: int,
        repair_policy: RepairPolicy | None = None,
        on_repair: RepairHook | None = None,
        repair_sampler=None,
        repair_controller: RepairController | None = None,
    ):
        self.components: dict[str, Component] = {}
        for component in components:
            if component.key in self.components:
                raise SimulationError(f"duplicate component {component.key!r}")
            self.components[component.key] = component
        for component in components:
            for dependency in component.dependencies:
                if dependency not in self.components:
                    raise SimulationError(
                        f"{component.key!r} depends on unknown "
                        f"{dependency!r}"
                    )
                self.components[dependency].dependents.append(component.key)
        self._queue = EventQueue()
        self._rng = RngStreams(seed)
        self._repair_policy = repair_policy or (lambda c: c.repair_mean)
        self._on_repair = on_repair
        if repair_sampler is None:
            from repro.sim.distributions import exponential_repairs

            repair_sampler = exponential_repairs
        self._repair_sampler = repair_sampler
        self._repair_controller = repair_controller
        self._signals: list[tuple[BinarySignal, SignalPredicate]] = []
        self._batch_records: dict[str, list[float]] = {}
        #: Events executed across every :meth:`run` of this simulator.
        self.events_processed = 0

    # -- state queries -----------------------------------------------------------

    @property
    def now(self) -> float:
        return self._queue.now

    @property
    def repair_controller(self) -> RepairController | None:
        return self._repair_controller

    def set_repair_controller(
        self, controller: RepairController | None
    ) -> None:
        """Install a repair-capacity policy (before any failures occur)."""
        self._repair_controller = controller

    def intrinsically_up(self, key: str) -> bool:
        return self.components[key].state is ComponentState.UP

    def effectively_up(self, key: str) -> bool:
        """Intrinsically up and every dependency effectively up."""
        component = self.components[key]
        if component.state is not ComponentState.UP:
            return False
        return all(self.effectively_up(d) for d in component.dependencies)

    # -- signals ------------------------------------------------------------------

    def add_signal(self, name: str, predicate: SignalPredicate) -> None:
        signal = BinarySignal(name, predicate(self), start_time=self.now)
        self._signals.append((signal, predicate))
        self._batch_records[name] = []

    def _refresh_signals(self) -> None:
        for signal, predicate in self._signals:
            signal.update(self.now, predicate(self))

    # -- scheduling ----------------------------------------------------------------

    def _schedule_failure(self, component: Component) -> None:
        if component.failure_rate <= 0.0:
            return
        delay = self._rng.exponential(
            f"fail:{component.key}", 1.0 / component.failure_rate
        )
        epoch = component.epoch
        self._queue.schedule(
            Event(
                time=self.now + delay,
                action=lambda: self._fail(component.key, epoch),
                component=component.key,
                epoch=epoch,
            )
        )

    def _schedule_repair(self, component: Component) -> None:
        mean = self._repair_policy(component)
        delay = self._repair_sampler(
            self._rng, f"repair:{component.key}", mean
        )
        epoch = component.epoch
        self._queue.schedule(
            Event(
                time=self.now + delay,
                action=lambda: self._repair(component.key, epoch),
                component=component.key,
                epoch=epoch,
            )
        )

    def schedule_action(self, time: float, action: Callable[[], None]) -> None:
        """Schedule a non-component callback (hazard processes, maintenance).

        The event carries no staleness token, so it always fires (unless the
        run ends first); same-time events keep FIFO scheduling order.
        """
        self._queue.schedule(Event(time=time, action=action))

    def draw_exponential(self, stream: str, mean: float) -> float:
        """One exponential variate from a named stream of this run's RNG.

        Hazard processes draw their inter-event times here so they share
        the simulator's seed discipline: a run is a pure function of the
        root seed and the (deterministic) stream-creation order.
        """
        return self._rng.exponential(stream, mean)

    def _transitive_dependents(self, key: str) -> list[str]:
        seen: list[str] = []
        stack = list(self.components[key].dependents)
        while stack:
            dependent = stack.pop()
            if dependent not in seen:
                seen.append(dependent)
                stack.extend(self.components[dependent].dependents)
        return seen

    def _reschedule_subtree(self, key: str) -> None:
        """Re-evaluate failure clocks for ``key``'s dependents.

        Every transitive dependent gets its pending *failure* clock
        invalidated; those now effectively up get a fresh one (valid by
        memorylessness), those masked get none.  Pending repairs are left
        alone — repairs proceed regardless of masking.
        """
        for dependent_key in self._transitive_dependents(key):
            dependent = self.components[dependent_key]
            if dependent.state is ComponentState.UP:
                dependent.bump()
                if self.effectively_up(dependent_key):
                    self._schedule_failure(dependent)

    # -- transitions -----------------------------------------------------------------
    #
    # Every transition — stochastic clocks, scenario injections, hazard
    # engines, supervisor restores — funnels through _apply_down/_apply_up,
    # the ONLY sites that flip component state and bump epochs.  Stale-event
    # dropping therefore behaves identically no matter which layer caused
    # the transition.

    def _apply_down(
        self, component: Component, *, want_repair: bool, hold: bool
    ) -> bool:
        """The single downward-transition (and epoch-bump) site.

        ``want_repair`` schedules the component's repair through the
        capacity policy; ``False`` leaves it down until an explicit repair
        (scenario/maintenance semantics).  ``hold`` additionally cancels a
        pending or queued repair when the component is *already* down, so a
        maintenance window can pin a stochastically-failed component down
        for its full duration.  Returns whether the intrinsic state changed.
        """
        if component.state is ComponentState.REPAIRING:
            if hold:
                component.bump()  # cancels the pending repair event
                if self._repair_controller is not None:
                    self._repair_controller.release(self, component)
            return False
        component.state = ComponentState.REPAIRING
        component.bump()
        if want_repair and (
            self._repair_controller is None
            or self._repair_controller.request(self, component)
        ):
            self._schedule_repair(component)
        self._reschedule_subtree(component.key)
        return True

    def _apply_up(self, component: Component, *, run_hook: bool) -> bool:
        """The single upward-transition (and epoch-bump) site.

        Cancels any pending repair event via the epoch bump, releases the
        component's repair-capacity claim, optionally runs the ``on_repair``
        hook (supervisor semantics), and restarts the failure clock when the
        component comes back effectively up.
        """
        if component.state is ComponentState.UP:
            return False
        component.state = ComponentState.UP
        component.bump()
        if self._repair_controller is not None:
            self._repair_controller.release(self, component)
        if run_hook and self._on_repair is not None:
            self._on_repair(self, component)
        if self.effectively_up(component.key):
            self._schedule_failure(component)
        self._reschedule_subtree(component.key)
        return True

    def _fail(self, key: str, epoch: int) -> None:
        component = self.components[key]
        if component.epoch != epoch or component.state is not ComponentState.UP:
            return  # stale clock
        self._apply_down(component, want_repair=True, hold=False)
        self._refresh_signals()

    def _repair(self, key: str, epoch: int) -> None:
        component = self.components[key]
        if (
            component.epoch != epoch
            or component.state is not ComponentState.REPAIRING
        ):
            return  # cancelled (e.g. supervisor restored the process)
        self._apply_up(component, run_hook=True)
        self._refresh_signals()

    def begin_repair(self, key: str) -> None:
        """Start the repair of a down component now (crew became available).

        Called by limited-capacity repair policies when a queued component
        reaches the head of the line; the repair time is sampled at *start*
        time, so queueing delay adds to — never overlaps — repair time.
        """
        component = self.components[key]
        if component.state is not ComponentState.REPAIRING:
            raise SimulationError(
                f"cannot begin repair of {key!r}: component is up"
            )
        self._schedule_repair(component)

    def advance_time(self, time: float) -> None:
        """Move the clock forward with no intervening events (scenario use)."""
        self._queue.advance_to(time)
        self._refresh_signals()

    def force_fail(
        self, key: str, *, repair: bool = False, hold: bool = False
    ) -> bool:
        """Fail a component immediately.

        By default (scenario semantics) no repair is scheduled — the
        component stays down until :meth:`force_repair`.  Hazard engines
        pass ``repair=True`` to route the outage through the normal repair
        machinery (including any capacity policy), and ``hold=True`` to
        also pin already-down components (cancelling their pending repair)
        until an explicit :meth:`force_repair`.
        """
        changed = self._apply_down(
            self.components[key], want_repair=repair, hold=hold
        )
        self._refresh_signals()
        return changed

    def force_repair(self, key: str) -> bool:
        """Repair a component immediately (scenario counterpart of force_fail).

        Applies the same supervisor hook as a stochastic repair, so a
        scenario-restarted supervisor restores its processes.
        """
        changed = self._apply_up(self.components[key], run_hook=True)
        self._refresh_signals()
        return changed

    def fail_group(
        self,
        keys: Sequence[str],
        *,
        repair: bool = False,
        hold: bool = False,
    ) -> int:
        """Fail several components at one instant (correlated events).

        Signals refresh once, after the whole group transitioned, so a
        simultaneous multi-component event is observed as a single outage
        edge.  Returns how many components actually changed state.
        """
        changed = 0
        for key in keys:
            if self._apply_down(
                self.components[key], want_repair=repair, hold=hold
            ):
                changed += 1
        self._refresh_signals()
        return changed

    def repair_group(self, keys: Sequence[str]) -> int:
        """Repair several components at one instant (maintenance-window end)."""
        changed = 0
        for key in keys:
            if self._apply_up(self.components[key], run_hook=True):
                changed += 1
        self._refresh_signals()
        return changed

    def restore_component(self, key: str) -> None:
        """Force a component up immediately (used by supervisor hooks).

        Cancels its pending repair, marks it up, and schedules a fresh
        failure clock if it is effectively up.  Unlike :meth:`force_repair`
        this does not re-run the ``on_repair`` hook (the caller *is* the
        hook) and leaves signal refreshing to the enclosing transition.
        """
        self._apply_up(self.components[key], run_hook=False)

    # -- group selectors ---------------------------------------------------------------

    def resolve_group(self, selector: str) -> tuple[str, ...]:
        """Expand a component/group selector to concrete component keys.

        Grammar (used by scenario injections and hazard specs):

        * an exact component key (``"host:H2"``) — itself;
        * ``"<key>/*"`` — the element plus every transitive dependent
          (``"rack:R1/*"`` is the rack and all hosts/VMs/processes on it);
        * ``"role:<Name>"`` — every supervisor and process of the role
          across all its instances (``"role:Database"``);
        * ``"kind:<kind>"`` — every component of one
          :class:`~repro.sim.entities.ComponentKind` (``"kind:host"``).
        """
        if selector in self.components:
            return (selector,)
        if selector.endswith("/*"):
            root = selector[:-2]
            if root in self.components:
                return (root, *self._transitive_dependents(root))
        prefix, _, name = selector.partition(":")
        if prefix == "role" and name:
            keys = tuple(
                key
                for key in self.components
                if key.startswith(f"sup:{name}-")
                or key.startswith(f"proc:{name}/")
            )
            if keys:
                return keys
        if prefix == "kind" and name:
            try:
                kind = ComponentKind(name)
            except ValueError:
                kind = None
            if kind is not None:
                keys = tuple(
                    key
                    for key, component in self.components.items()
                    if component.kind is kind
                )
                if keys:
                    return keys
        raise SimulationError(
            f"cannot resolve component or group {selector!r}"
        )

    # -- run loop ---------------------------------------------------------------------

    def run(self, horizon: float, batches: int = 10) -> None:
        """Simulate to ``horizon`` time units with ``batches`` batch windows."""
        if horizon <= 0:
            raise SimulationError(f"horizon must be > 0, got {horizon}")
        if batches < 1:
            raise SimulationError(f"batches must be >= 1, got {batches}")
        obs.note_solver("simulation")
        with obs.span(
            "sim.run",
            horizon=horizon,
            batches=batches,
            components=len(self.components),
        ):
            events_before = self.events_processed
            for component in self.components.values():
                if component.state is ComponentState.UP and self.effectively_up(
                    component.key
                ):
                    self._schedule_failure(component)
            boundaries = [horizon * (i + 1) / batches for i in range(batches)]
            previous: dict[str, tuple[float, float]] = {
                signal.name: (0.0, 0.0) for signal, _ in self._signals
            }
            boundary_index = 0
            while self._queue and boundary_index < batches:
                event = self._queue.pop()
                while (
                    boundary_index < batches
                    and event.time >= boundaries[boundary_index]
                ):
                    self._record_batch(boundaries[boundary_index], previous)
                    boundary_index += 1
                if event.time >= horizon:
                    break
                event.action()
                self.events_processed += 1
            while boundary_index < batches:
                self._record_batch(boundaries[boundary_index], previous)
                boundary_index += 1
        if obs.enabled():
            obs.count("sim.events", self.events_processed - events_before)
            for signal, _ in self._signals:
                obs.count(
                    f"sim.outage_episodes.{signal.name}", signal.outage_count
                )

    def _record_batch(
        self, boundary: float, previous: dict[str, tuple[float, float]]
    ) -> None:
        for signal, predicate in self._signals:
            signal.update(boundary, predicate(self))
            up, total = signal.cumulative()
            prev_up, prev_total = previous[signal.name]
            batch_total = total - prev_total
            if batch_total > 0:
                self._batch_records[signal.name].append(
                    (up - prev_up) / batch_total
                )
            previous[signal.name] = (up, total)

    # -- results -------------------------------------------------------------------------

    def availability(self, name: str) -> float:
        return self.signal(name).availability()

    def signal(self, name: str) -> BinarySignal:
        """Access a signal's full record (outage episodes, integrals)."""
        for signal, _ in self._signals:
            if signal.name == name:
                return signal
        raise SimulationError(f"unknown signal {name!r}")

    def batch_availabilities(self, name: str) -> list[float]:
        if name not in self._batch_records:
            raise SimulationError(f"unknown signal {name!r}")
        return list(self._batch_records[name])
